//! The admission fleet: dense source ids hash-routed across N shards,
//! driven through a deterministic discrete-event loop with typed admission
//! outcomes, bounded fail-closed retry, a load-shedding ladder and
//! checkpoint-based shard failover.
//!
//! Every arrival ends in exactly one [`AdmitOutcome`] — admitted, denied by
//! the δ⁻ monitor, or shed with a typed [`ShedReason`]. Nothing is silent:
//! the fleet ledger balances `scheduled = admitted + denied + shed` and
//! `admitted = completed + lost_in_flight + in_flight_at_end`, and the
//! fleet-wide oracle re-checks both identities plus per-victim Eq. 13–16
//! independence over the union of all shards' admitted streams.

use std::fmt;

use rthv_hypervisor::{HealthSignal, HealthState, SupervisionPolicy};
use rthv_monitor::{Admission, DeltaFunction};
use rthv_obs::MetricsHub;
use rthv_sim::{EngineKind, EngineQueue};
use rthv_stats::LatencyHistogram;
use rthv_time::{Duration, Instant};
use rthv_workload::FloodEvent;

use rthv_faults::{check_admitted_stream, check_global_budget, check_group_budget, Violation};

use crate::shard::{InFlight, Shard, ShardCounters};
use crate::tenant::{
    BrownoutController, BrownoutLevel, GroupBudget, TenantBudgetError, TenantConfig,
    TenantCounters, TenantLedger, WindowBudget,
};

/// Why an arrival was shed instead of reaching (or surviving) an admission
/// check. Typed degradation: callers can budget each class separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The shard's bounded in-flight queue was at capacity.
    QueueFull,
    /// The shard was stalled and the deterministic bounded retry budget
    /// (`max_retries × retry_backoff`) could not outlast the stall — the
    /// fail-closed deny-on-stall escalation.
    ShardStalled,
    /// The shard was above its shed watermark and the source's health
    /// state was Probation or Quarantined — the load-shedding ladder
    /// demotes suspect sources first.
    Demoted {
        /// The health state that ranked the source for demotion.
        state: HealthState,
    },
    /// The activation had been admitted but its service was lost to a
    /// shard crash before completing.
    ShardCrash,
    /// The source's tenant is quarantined by the brownout controller:
    /// every arrival is shed until the tenant's offered load fits its
    /// group budget again.
    TenantQuarantined {
        /// The quarantined tenant.
        tenant: u32,
    },
}

impl ShedReason {
    /// Stable machine-readable label.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::ShardStalled => "shard-stalled",
            ShedReason::Demoted { .. } => "demoted",
            ShedReason::ShardCrash => "shard-crash",
            ShedReason::TenantQuarantined { .. } => "tenant-quarantined",
        }
    }
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShedReason::Demoted { state } => write!(f, "demoted:{}", state.slug()),
            ShedReason::TenantQuarantined { tenant } => write!(f, "tenant-quarantined:{tenant}"),
            other => f.write_str(other.slug()),
        }
    }
}

/// The typed outcome of one arrival at the fleet ingress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// Conformant at every level; service scheduled.
    Admitted,
    /// The source's own δ⁻ monitor denied the activation.
    Denied {
        /// δ⁻ entry index of the first violated constraint.
        violated_distance: usize,
    },
    /// The source passed its own monitor but the tenant's group budget
    /// (window/aggregate pair, possibly brownout-shrunk) refused.
    DeniedGroup {
        /// The refusing tenant.
        tenant: u32,
    },
    /// Source and group passed but the fleet-wide global budget refused.
    /// Provably unreachable while budget sums are validated against the
    /// global budget — counted and typed anyway, because the oracle
    /// trusts ledgers over proofs.
    DeniedGlobal,
    /// Shed before the admission check could (safely) run.
    Shed {
        /// The typed degradation class.
        reason: ShedReason,
    },
}

/// How a crashed shard rebuilds its monitor arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverMode {
    /// Restore the last checkpoint and replay the admission journal tail —
    /// the recovered δ⁻ state is exactly the pre-crash state.
    Checkpoint,
    /// Restart with empty monitors (the no-failover baseline). Post-crash
    /// admissions forget the pre-crash stream, so a storm straddling the
    /// cut can overrun the Eq. 13–16 bound — which the fleet oracle must
    /// detect.
    FreshState,
}

impl FailoverMode {
    /// Stable machine-readable label.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            FailoverMode::Checkpoint => "checkpoint",
            FailoverMode::FreshState => "fresh-state",
        }
    }
}

/// Fleet construction error. Every invalid geometry is typed; nothing
/// panics at run time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// `shards == 0`.
    NoShards,
    /// `sources == 0`.
    NoSources,
    /// `queue_capacity == 0` — a shard that can hold nothing admits
    /// nothing.
    ZeroQueueCapacity,
    /// `service_cost` is zero — completions would collapse onto arrivals.
    ZeroServiceCost,
    /// `retry_backoff` is zero — the bounded retry would never advance.
    ZeroBackoff,
    /// `shed_watermark_permille > 1000`.
    BadWatermark,
    /// `engine` names no known event engine.
    UnknownEngine {
        /// The rejected engine name.
        value: String,
    },
    /// The tenant hierarchy was rejected — zero or overflowing budgets,
    /// budget sums escaping the global budget, or a bad source split.
    /// Never silently clamped.
    TenantBudget {
        /// The typed rejection.
        error: TenantBudgetError,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoShards => f.write_str("fleet needs at least one shard"),
            FleetError::NoSources => f.write_str("fleet needs at least one source"),
            FleetError::ZeroQueueCapacity => f.write_str("shard queue capacity must be positive"),
            FleetError::ZeroServiceCost => f.write_str("service cost must be positive"),
            FleetError::ZeroBackoff => f.write_str("retry backoff must be positive"),
            FleetError::BadWatermark => f.write_str("shed watermark must be at most 1000 permille"),
            FleetError::UnknownEngine { value } => {
                write!(f, "unknown event engine {value:?} (expected heap or wheel)")
            }
            FleetError::TenantBudget { error } => write!(f, "tenant budget rejected: {error}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// Fleet geometry and policy. Construction is validated by
/// [`AdmitFleet::new`]; runs are pure functions of the config plus the
/// arrival and fault streams.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Shard count.
    pub shards: u32,
    /// Dense global source-id space `0..sources`.
    pub sources: u32,
    /// The δ⁻ condition every source's monitor enforces.
    pub delta: DeltaFunction,
    /// Bounded per-shard in-flight queue capacity.
    pub queue_capacity: usize,
    /// Service time charged per admitted activation (`C'_BH`).
    pub service_cost: Duration,
    /// Bounded retry budget against a stalled shard.
    pub max_retries: u32,
    /// Deterministic backoff between retries.
    pub retry_backoff: Duration,
    /// In-flight occupancy (‰ of capacity) above which the shedding
    /// ladder starts demoting Probation/Quarantined sources.
    pub shed_watermark_permille: u32,
    /// Per-source supervision policy feeding the ladder.
    pub supervision: SupervisionPolicy,
    /// Checkpoint after this many journalled admissions.
    pub checkpoint_every: u64,
    /// What a crash does to shard state.
    pub failover: FailoverMode,
    /// Event-engine name (`"heap"` or `"wheel"`); rejected values become
    /// [`FleetError::UnknownEngine`], never a silent fallback.
    pub engine: String,
    /// Ingress-to-completion latency histogram bin width.
    pub latency_bin_width: Duration,
    /// Latency histogram range.
    pub latency_range: Duration,
    /// The two-level tenant hierarchy with brownout overload control.
    /// `None` keeps the flat single-level fleet of PR 7, byte-identically.
    pub tenancy: Option<TenantConfig>,
}

impl FleetConfig {
    /// Paper-flavoured defaults: the Section-6 sporadic condition
    /// `d_min = 1 ms`, a 100 µs effective bottom cost, 48-deep shard
    /// queues, shedding from 750 ‰ occupancy, 3 retries at 200 µs and a
    /// checkpoint every 32 admissions.
    #[must_use]
    pub fn paper(shards: u32, sources: u32) -> Self {
        FleetConfig {
            shards,
            sources,
            delta: DeltaFunction::from_dmin(Duration::from_millis(1))
                .expect("the paper's 1 ms sporadic condition is a valid δ⁻"),
            queue_capacity: 48,
            service_cost: Duration::from_micros(100),
            max_retries: 3,
            retry_backoff: Duration::from_micros(200),
            shed_watermark_permille: 750,
            supervision: SupervisionPolicy::default(),
            checkpoint_every: 32,
            failover: FailoverMode::Checkpoint,
            engine: "heap".to_owned(),
            latency_bin_width: Duration::from_micros(50),
            latency_range: Duration::from_millis(20),
            tenancy: None,
        }
    }
}

/// A shard-level fault, injected at an absolute instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardFault {
    /// When the fault strikes.
    pub at: Instant,
    /// Which shard it strikes.
    pub shard: u32,
    /// What it does.
    pub kind: ShardFaultKind,
}

/// The shard fault families, mirroring [`rthv_faults::FaultKind`]'s
/// `ShardCrash`/`ShardStall` one layer up where shards actually exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFaultKind {
    /// The shard process dies: in-flight work is lost (typed), state is
    /// rebuilt per [`FailoverMode`].
    Crash,
    /// The shard stops serving for a window; ingress fails closed after
    /// the bounded retry budget.
    Stall {
        /// Stall window length.
        duration: Duration,
    },
}

/// Routes a global source id to its shard: a splitmix64 finalizer over the
/// id, reduced mod `shards`. Pure and stable — the same `(source, shards)`
/// pair routes identically across fleet reconstructions, engines and
/// processes.
#[must_use]
pub fn route(source: u32, shards: u32) -> u32 {
    let mut z = u64::from(source).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % u64::from(shards)) as u32
}

/// What flows through the fleet's event engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FleetEvent {
    /// An ingress arrival from `source`.
    Arrival { source: u32 },
    /// Shard crash.
    Crash { shard: u32 },
    /// Shard stall starting now, ending at `until`.
    Stall { shard: u32, until: Instant },
    /// Service completion at the head of one lane of `shard`'s in-flight
    /// queues.
    Drain { shard: u32, lane: u32 },
    /// Retry-ladder re-attempt for an arrival that hit a stalled shard
    /// (tenanted fleets with `retry_ladder` only).
    Retry { source: u32, attempt: u32 },
}

/// The sharded admission fleet. Construction validates the geometry and
/// freezes the source→shard routing table; [`AdmitFleet::run`] executes
/// one deterministic campaign arm over fresh shard state.
#[derive(Debug)]
pub struct AdmitFleet {
    config: FleetConfig,
    engine: EngineKind,
    /// `router[source] = (shard, local index within the shard's arena)`.
    router: Vec<(u32, u32)>,
    /// Sources per shard.
    locals: Vec<u32>,
}

impl AdmitFleet {
    /// Validates `config` and builds the routing table.
    pub fn new(config: FleetConfig) -> Result<AdmitFleet, FleetError> {
        if config.shards == 0 {
            return Err(FleetError::NoShards);
        }
        if config.sources == 0 {
            return Err(FleetError::NoSources);
        }
        if config.queue_capacity == 0 {
            return Err(FleetError::ZeroQueueCapacity);
        }
        if config.service_cost.is_zero() {
            return Err(FleetError::ZeroServiceCost);
        }
        if config.retry_backoff.is_zero() {
            return Err(FleetError::ZeroBackoff);
        }
        if config.shed_watermark_permille > 1000 {
            return Err(FleetError::BadWatermark);
        }
        let engine =
            EngineKind::parse(&config.engine).ok_or_else(|| FleetError::UnknownEngine {
                value: config.engine.clone(),
            })?;
        if let Some(tenancy) = &config.tenancy {
            tenancy
                .validate(config.sources)
                .map_err(|error| FleetError::TenantBudget { error })?;
        }
        let mut locals = vec![0u32; config.shards as usize];
        let router = (0..config.sources)
            .map(|source| {
                let shard = route(source, config.shards);
                let local = locals[shard as usize];
                locals[shard as usize] += 1;
                (shard, local)
            })
            .collect();
        Ok(AdmitFleet {
            config,
            engine,
            router,
            locals,
        })
    }

    /// The validated configuration.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The frozen `(shard, local)` route of `source`, if it exists.
    #[must_use]
    pub fn route_of(&self, source: u32) -> Option<(u32, u32)> {
        self.router.get(source as usize).copied()
    }

    /// Runs one campaign arm: `arrivals` (sorted, as produced by
    /// [`rthv_workload::open_loop_flood`] / [`rthv_workload::ecu_fleet`])
    /// against `faults`, over fresh shard state. Pure in everything except
    /// `hub`, which — when given — receives the observability event stream.
    pub fn run(
        &self,
        arrivals: &[FloodEvent],
        faults: &[ShardFault],
        mut hub: Option<&mut MetricsHub>,
    ) -> FleetReport {
        let cfg = &self.config;
        // A flat fleet serves one lane; a tenanted fleet reserves one lane
        // per tenant plus a shared best-effort lane for demoted tenants.
        let lanes = cfg.tenancy.as_ref().map_or(1, |tc| tc.tenants.len() + 1);
        let shards: Vec<Shard> = self
            .locals
            .iter()
            .map(|&n| Shard::new(n as usize, lanes, &cfg.delta, cfg.supervision))
            .collect();
        let mut tenancy = cfg.tenancy.as_ref().map(TenancyRuntime::new);
        let tick_hint = cfg.delta.dmin().max(Duration::from_micros(64));
        let mut queue: EngineQueue<FleetEvent> = EngineQueue::new(self.engine, tick_hint);

        // Arrivals before faults: at equal instants the FIFO tie-break
        // lets same-tick ingress beat the crash that would shed it, which
        // is both deterministic and the adversarial-maximal ordering (the
        // crash then kills it in flight instead).
        for ev in arrivals {
            queue
                .schedule_at(ev.at, FleetEvent::Arrival { source: ev.source })
                .expect("arrival streams start at the epoch");
        }
        for fault in faults {
            let event = match fault.kind {
                ShardFaultKind::Crash => FleetEvent::Crash { shard: fault.shard },
                ShardFaultKind::Stall { duration } => FleetEvent::Stall {
                    shard: fault.shard,
                    until: fault.at + duration,
                },
            };
            queue
                .schedule_at(fault.at, event)
                .expect("fault plans start at the epoch");
        }

        let mut admitted: Vec<Vec<Instant>> = vec![Vec::new(); cfg.sources as usize];
        let mut latency = LatencyHistogram::new(cfg.latency_bin_width, cfg.latency_range)
            .expect("validated latency geometry");
        let mut max_latency = Duration::ZERO;

        let mut end_of_run = Instant::ZERO;
        while let Some((now, event)) = queue.pop() {
            end_of_run = now;
            match event {
                FleetEvent::Arrival { source } => {
                    let Some(&(shard_id, local)) = self.router.get(source as usize) else {
                        continue; // out-of-range source: not ours to admit
                    };
                    if let Some(h) = hub.as_deref_mut() {
                        h.record_raised(now, source as usize);
                    }
                    if let Some(rt) = tenancy.as_mut() {
                        self.tenant_ingress(
                            rt,
                            &shards,
                            &mut queue,
                            &mut admitted,
                            &mut hub,
                            now,
                            source,
                            0,
                        );
                        continue;
                    }
                    let shard = &shards[shard_id as usize];
                    let outcome = shard.with_state(|s| {
                        s.counters.scheduled += 1;
                        // Fail-closed stall handling: a bounded number of
                        // deterministic backoff retries may outlast the
                        // stall; if they cannot, the arrival is shed — we
                        // never admit against a monitor we cannot reach.
                        if let Some(until) = s.stalled_until {
                            if now < until {
                                let wait = until - now;
                                let backoff = cfg.retry_backoff.as_nanos();
                                let needed = wait.as_nanos().div_ceil(backoff);
                                if needed > u64::from(cfg.max_retries) {
                                    s.counters.shed_stalled += 1;
                                    return AdmitOutcome::Shed {
                                        reason: ShedReason::ShardStalled,
                                    };
                                }
                                s.counters.retries += needed;
                            } else {
                                s.stalled_until = None;
                            }
                        }
                        if s.in_flight[0].len() >= cfg.queue_capacity {
                            s.counters.shed_queue_full += 1;
                            if let Some(tr) =
                                s.trackers[local as usize].signal(HealthSignal::Overflow, now)
                            {
                                if let Some(h) = hub.as_deref_mut() {
                                    h.record_health(
                                        now,
                                        source as usize,
                                        tr.from.slug(),
                                        tr.to.slug(),
                                    );
                                }
                            }
                            return AdmitOutcome::Shed {
                                reason: ShedReason::QueueFull,
                            };
                        }
                        // The shedding ladder: above the watermark, shed
                        // Probation/Quarantined sources before they reach
                        // the monitor, preserving headroom for healthy ones.
                        let occupancy = s.in_flight[0].len() as u64 * 1000;
                        let watermark =
                            u64::from(cfg.shed_watermark_permille) * cfg.queue_capacity as u64;
                        let state = s.trackers[local as usize].state();
                        if occupancy >= watermark && state.shed_rank() >= 2 {
                            s.counters.shed_demoted += 1;
                            return AdmitOutcome::Shed {
                                reason: ShedReason::Demoted { state },
                            };
                        }
                        // Admission always checks the hardware arrival
                        // timestamp (the paper's IRQ-timestamp clock), so
                        // the admitted stream is δ⁻-conformant in arrival
                        // time regardless of queueing or retries.
                        match s.monitors[local as usize].try_admit_detailed(now) {
                            Admission::Admitted => {
                                s.counters.admitted += 1;
                                if let Some(tr) = s.trackers[local as usize].conformant(now) {
                                    if let Some(h) = hub.as_deref_mut() {
                                        h.record_health(
                                            now,
                                            source as usize,
                                            tr.from.slug(),
                                            tr.to.slug(),
                                        );
                                    }
                                }
                                s.note_admitted(local, now, cfg.checkpoint_every);
                                AdmitOutcome::Admitted
                            }
                            Admission::Denied { violated_distance } => {
                                s.counters.denied += 1;
                                if let Some(tr) =
                                    s.trackers[local as usize].signal(HealthSignal::Denied, now)
                                {
                                    if let Some(h) = hub.as_deref_mut() {
                                        h.record_health(
                                            now,
                                            source as usize,
                                            tr.from.slug(),
                                            tr.to.slug(),
                                        );
                                    }
                                }
                                AdmitOutcome::Denied { violated_distance }
                            }
                        }
                    });
                    match outcome {
                        AdmitOutcome::Admitted => {
                            admitted[source as usize].push(now);
                            if let Some(h) = hub.as_deref_mut() {
                                h.record_admitted(now, source as usize);
                            }
                            // Single-server shard: the admission completes
                            // after everything already in service.
                            shard.with_state(|s| {
                                let start = s.busy_until[0].max(now);
                                let completion = start + cfg.service_cost;
                                s.busy_until[0] = completion;
                                let id = queue
                                    .schedule_at(
                                        completion,
                                        FleetEvent::Drain {
                                            shard: shard_id,
                                            lane: 0,
                                        },
                                    )
                                    .expect("completions are in the future");
                                s.in_flight[0].push_back(InFlight {
                                    id,
                                    source,
                                    arrival: now,
                                });
                            });
                        }
                        AdmitOutcome::Denied { violated_distance } => {
                            if let Some(h) = hub.as_deref_mut() {
                                h.record_denied(
                                    now,
                                    source as usize,
                                    Some(violated_distance as u64),
                                );
                            }
                        }
                        // The flat ingress closure has no tenant levels;
                        // kept for match completeness.
                        AdmitOutcome::DeniedGroup { .. } | AdmitOutcome::DeniedGlobal => {
                            if let Some(h) = hub.as_deref_mut() {
                                h.record_denied(now, source as usize, None);
                            }
                        }
                        AdmitOutcome::Shed { .. } => {
                            if let Some(h) = hub.as_deref_mut() {
                                h.record_shed(now, source as usize);
                            }
                        }
                    }
                }
                FleetEvent::Drain { shard, lane } => {
                    let done = shards[shard as usize].with_state(|s| {
                        let head = s.in_flight[lane as usize].pop_front();
                        if head.is_some() {
                            s.counters.completed += 1;
                        }
                        head
                    });
                    if let Some(flight) = done {
                        let lat = now - flight.arrival;
                        latency.add(lat);
                        max_latency = max_latency.max(lat);
                        if let Some(rt) = tenancy.as_mut() {
                            let t = rt.tenant_of[flight.source as usize] as usize;
                            rt.tenants[t].counters.completed += 1;
                        }
                        if let Some(h) = hub.as_deref_mut() {
                            h.record_completion(now, flight.source as usize, lat);
                        }
                    }
                }
                FleetEvent::Crash { shard } => {
                    let dropped = shards[shard as usize]
                        .with_state(|s| s.crash(now, cfg.failover, &cfg.delta, cfg.supervision));
                    for flight in dropped {
                        queue.cancel(flight.id);
                        if let Some(rt) = tenancy.as_mut() {
                            let t = rt.tenant_of[flight.source as usize] as usize;
                            rt.tenants[t].counters.lost_in_flight += 1;
                        }
                        if let Some(h) = hub.as_deref_mut() {
                            h.record_shed(now, flight.source as usize);
                        }
                    }
                }
                FleetEvent::Stall { shard, until } => {
                    shards[shard as usize].with_state(|s| {
                        s.counters.stalls += 1;
                        s.stalled_until = Some(s.stalled_until.map_or(until, |u| u.max(until)));
                        for busy in &mut s.busy_until {
                            *busy = (*busy).max(until);
                        }
                    });
                }
                FleetEvent::Retry { source, attempt } => {
                    // Retry events exist only in tenanted fleets with the
                    // ladder enabled; a stray one in a flat fleet is inert.
                    if let Some(rt) = tenancy.as_mut() {
                        self.tenant_ingress(
                            rt,
                            &shards,
                            &mut queue,
                            &mut admitted,
                            &mut hub,
                            now,
                            source,
                            attempt,
                        );
                    }
                }
            }
        }

        let shard_counters: Vec<ShardCounters> = shards.iter().map(Shard::counters).collect();
        let mut counters = ShardCounters::default();
        for c in &shard_counters {
            counters.add(c);
        }
        let in_flight_at_end = shards.iter().map(|s| s.in_flight_len() as u64).sum();
        let (tenants, tenant_of) = match tenancy {
            Some(rt) => rt.finish(&shards, end_of_run, hub),
            None => (Vec::new(), Vec::new()),
        };
        FleetReport {
            shards: cfg.shards,
            sources: cfg.sources,
            counters,
            shard_counters,
            admitted,
            in_flight_at_end,
            latency,
            max_latency,
            tenants,
            tenant_of,
            tenancy: cfg.tenancy.clone(),
        }
    }

    /// One tenanted ingress attempt — an arrival (`attempt == 0`) or a
    /// retry-ladder re-attempt — through the three-level admission
    /// hierarchy: quarantine gate, stall policy, lane capacity, watermark
    /// ladder, then source monitor → group budget → global budget, with
    /// every refusal typed by the level that refused. State is recorded in
    /// all three levels only after all three pass, so a higher-level
    /// refusal leaves no phantom admission behind.
    #[allow(clippy::too_many_arguments)]
    fn tenant_ingress(
        &self,
        rt: &mut TenancyRuntime,
        shards: &[Shard],
        queue: &mut EngineQueue<FleetEvent>,
        admitted: &mut [Vec<Instant>],
        hub: &mut Option<&mut MetricsHub>,
        now: Instant,
        source: u32,
        attempt: u32,
    ) {
        let cfg = &self.config;
        let Some(&(shard_id, local)) = self.router.get(source as usize) else {
            return;
        };
        let tenant = rt.tenant_of[source as usize] as usize;
        let shard = &shards[shard_id as usize];
        let retry_ladder = rt.retry_ladder;
        if attempt == 0 {
            shard.with_state(|s| s.counters.scheduled += 1);
            rt.tenants[tenant].counters.scheduled += 1;
        }
        rt.tenants[tenant].brownout.roll(now);
        let level = rt.tenants[tenant].brownout.level();
        if level == BrownoutLevel::Quarantined {
            shard.with_state(|s| s.counters.shed_quarantined += 1);
            let tn = &mut rt.tenants[tenant];
            tn.counters.shed_quarantined += 1;
            tn.brownout.record(true);
            if let Some(h) = hub.as_deref_mut() {
                h.record_shed(now, source as usize);
            }
            return;
        }
        // Reserved lane per tenant; demoted tenants share the best-effort
        // lane at a quarter of a reserved lane's depth.
        let lane = if level >= BrownoutLevel::BestEffort {
            rt.best_effort_lane
        } else {
            tenant
        };
        let lane_cap = if lane == rt.best_effort_lane {
            (cfg.queue_capacity / 4).max(1)
        } else {
            cfg.queue_capacity
        };
        enum Gate {
            RetryLater,
            Shed(ShedReason),
            Denied { violated_distance: usize },
            Cleared,
        }
        let gate = shard.with_state(|s| {
            if let Some(until) = s.stalled_until {
                if now < until {
                    if retry_ladder {
                        // The event-driven ladder: come back one backoff
                        // later, up to the bounded attempt budget, and
                        // fail closed after it.
                        if attempt < cfg.max_retries {
                            s.counters.retries += 1;
                            return Gate::RetryLater;
                        }
                        s.counters.shed_stalled += 1;
                        return Gate::Shed(ShedReason::ShardStalled);
                    }
                    // Flat-style arithmetic fail-closed check.
                    let wait = until - now;
                    let needed = wait.as_nanos().div_ceil(cfg.retry_backoff.as_nanos());
                    if needed > u64::from(cfg.max_retries) {
                        s.counters.shed_stalled += 1;
                        return Gate::Shed(ShedReason::ShardStalled);
                    }
                    s.counters.retries += needed;
                } else {
                    s.stalled_until = None;
                }
            }
            if s.in_flight[lane].len() >= lane_cap {
                s.counters.shed_queue_full += 1;
                if let Some(tr) = s.trackers[local as usize].signal(HealthSignal::Overflow, now) {
                    if let Some(h) = hub.as_deref_mut() {
                        h.record_health(now, source as usize, tr.from.slug(), tr.to.slug());
                    }
                }
                return Gate::Shed(ShedReason::QueueFull);
            }
            // The watermark ladder judges the tenant's own lane, so one
            // tenant's backlog can never demote another's sources.
            let occupancy = s.in_flight[lane].len() as u64 * 1000;
            let watermark = u64::from(cfg.shed_watermark_permille) * lane_cap as u64;
            let state = s.trackers[local as usize].state();
            if occupancy >= watermark && state.shed_rank() >= 2 {
                s.counters.shed_demoted += 1;
                return Gate::Shed(ShedReason::Demoted { state });
            }
            // Level one: the source's own δ⁻ monitor — check only, so a
            // refusal at a higher level leaves no phantom trace entry.
            match s.monitors[local as usize].check(now) {
                Admission::Admitted => Gate::Cleared,
                Admission::Denied { violated_distance } => {
                    s.counters.denied += 1;
                    if let Some(tr) = s.trackers[local as usize].signal(HealthSignal::Denied, now) {
                        if let Some(h) = hub.as_deref_mut() {
                            h.record_health(now, source as usize, tr.from.slug(), tr.to.slug());
                        }
                    }
                    Gate::Denied { violated_distance }
                }
            }
        });
        match gate {
            Gate::RetryLater => {
                rt.tenants[tenant].counters.retries += 1;
                queue
                    .schedule_at(
                        now + cfg.retry_backoff,
                        FleetEvent::Retry {
                            source,
                            attempt: attempt + 1,
                        },
                    )
                    .expect("retries are in the future");
            }
            Gate::Shed(reason) => {
                let tn = &mut rt.tenants[tenant];
                match reason {
                    ShedReason::QueueFull => tn.counters.shed_queue_full += 1,
                    ShedReason::ShardStalled => tn.counters.shed_stalled += 1,
                    ShedReason::Demoted { .. } => tn.counters.shed_demoted += 1,
                    ShedReason::TenantQuarantined { .. } | ShedReason::ShardCrash => {}
                }
                tn.brownout.record(true);
                if let Some(h) = hub.as_deref_mut() {
                    h.record_shed(now, source as usize);
                }
            }
            Gate::Denied { violated_distance } => {
                let tn = &mut rt.tenants[tenant];
                tn.counters.denied_source += 1;
                tn.brownout.record(false);
                if let Some(h) = hub.as_deref_mut() {
                    h.record_denied(now, source as usize, Some(violated_distance as u64));
                }
            }
            Gate::Cleared => {
                // Level two: the tenant's group budget at its (possibly
                // brownout-shrunk) effective limit.
                let tn = &mut rt.tenants[tenant];
                let effective = tn.brownout.effective_budget();
                if !tn.group.admits(now, effective) {
                    shard.with_state(|s| s.counters.denied += 1);
                    tn.counters.denied_group += 1;
                    tn.brownout.record(false);
                    if let Some(h) = hub.as_deref_mut() {
                        h.record_denied(now, source as usize, None);
                    }
                    return;
                }
                // Level three: the global interference budget. With
                // validated budget sums this can never refuse a tenant
                // inside its group budget — it is the defense-in-depth
                // backstop the oracle re-checks.
                if !rt.global.admits(now, u64::MAX) {
                    shard.with_state(|s| s.counters.denied += 1);
                    let tn = &mut rt.tenants[tenant];
                    tn.counters.denied_global += 1;
                    tn.brownout.record(false);
                    if let Some(h) = hub.as_deref_mut() {
                        h.record_denied(now, source as usize, None);
                    }
                    return;
                }
                shard.with_state(|s| {
                    s.counters.admitted += 1;
                    s.monitors[local as usize].record_admitted(now);
                    if let Some(tr) = s.trackers[local as usize].conformant(now) {
                        if let Some(h) = hub.as_deref_mut() {
                            h.record_health(now, source as usize, tr.from.slug(), tr.to.slug());
                        }
                    }
                    s.note_admitted(local, now, cfg.checkpoint_every);
                    let start = s.busy_until[lane].max(now);
                    let completion = start + cfg.service_cost;
                    s.busy_until[lane] = completion;
                    let id = queue
                        .schedule_at(
                            completion,
                            FleetEvent::Drain {
                                shard: shard_id,
                                lane: lane as u32,
                            },
                        )
                        .expect("completions are in the future");
                    s.in_flight[lane].push_back(InFlight {
                        id,
                        source,
                        arrival: now,
                    });
                });
                let tn = &mut rt.tenants[tenant];
                tn.group.record(now);
                rt.global.record(now);
                tn.counters.admitted += 1;
                if attempt > 0 {
                    tn.counters.rescued += 1;
                }
                tn.brownout.record(false);
                admitted[source as usize].push(now);
                if let Some(h) = hub.as_deref_mut() {
                    h.record_admitted(now, source as usize);
                }
            }
        }
    }
}

/// Per-tenant live state inside one fleet run.
#[derive(Debug)]
struct TenantRt {
    group: GroupBudget,
    brownout: BrownoutController,
    counters: TenantCounters,
}

/// Everything the tenancy layer threads through one run: per-tenant
/// budgets and brownout controllers, the global window budget and the
/// frozen source → tenant table. Fleet-level on purpose — a shard crash
/// rebuilds shard arenas but never this ledger, so the budget hierarchy
/// survives failover exactly.
#[derive(Debug)]
struct TenancyRuntime {
    tenants: Vec<TenantRt>,
    global: WindowBudget,
    tenant_of: Vec<u32>,
    best_effort_lane: usize,
    retry_ladder: bool,
}

impl TenancyRuntime {
    fn new(tc: &TenantConfig) -> Self {
        let tenants = tc
            .tenants
            .iter()
            .enumerate()
            .map(|(i, spec)| TenantRt {
                group: GroupBudget::new(spec.budget, tc.window),
                brownout: BrownoutController::new(
                    tc.brownout,
                    tc.window,
                    spec.budget,
                    tc.seed,
                    i as u32,
                ),
                counters: TenantCounters::default(),
            })
            .collect();
        TenancyRuntime {
            tenants,
            global: WindowBudget::new(tc.window, tc.global_budget),
            tenant_of: tc.tenant_of(),
            best_effort_lane: tc.tenants.len(),
            retry_ladder: tc.retry_ladder,
        }
    }

    /// Assembles the per-tenant ledgers (attributing remaining in-flight
    /// work through the source → tenant table) and pushes the per-tenant
    /// gauges into the hub.
    fn finish(
        mut self,
        shards: &[Shard],
        end: Instant,
        hub: Option<&mut MetricsHub>,
    ) -> (Vec<TenantLedger>, Vec<u32>) {
        let mut in_flight = vec![0u64; self.tenants.len()];
        for shard in shards {
            shard.with_state(|s| {
                for lane in &s.in_flight {
                    for flight in lane {
                        in_flight[self.tenant_of[flight.source as usize] as usize] += 1;
                    }
                }
            });
        }
        let ledgers: Vec<TenantLedger> = self
            .tenants
            .iter_mut()
            .enumerate()
            .map(|(t, rt)| TenantLedger {
                counters: rt.counters,
                in_flight_at_end: in_flight[t],
                final_level: rt.brownout.level(),
                escalations: rt.brownout.escalations(),
                recoveries: rt.brownout.recoveries(),
                headroom_at_end: rt.group.headroom(end),
            })
            .collect();
        if let Some(h) = hub {
            for (t, ledger) in ledgers.iter().enumerate() {
                h.record_tenant_gauges(
                    t,
                    ledger.counters.shed_permille(),
                    u64::from(ledger.final_level.rank()),
                    ledger.headroom_at_end,
                );
            }
        }
        (ledgers, self.tenant_of)
    }
}

/// Everything one fleet run leaves behind, sufficient for the fleet-wide
/// oracle to re-verify independence and conservation offline.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Shard count of the run.
    pub shards: u32,
    /// Source count of the run.
    pub sources: u32,
    /// Fleet-aggregated ledger.
    pub counters: ShardCounters,
    /// Per-shard ledgers.
    pub shard_counters: Vec<ShardCounters>,
    /// Per-source admitted timestamps, in admission order.
    pub admitted: Vec<Vec<Instant>>,
    /// Admissions still in service when the horizon ended.
    pub in_flight_at_end: u64,
    /// Ingress-to-completion latency distribution.
    pub latency: LatencyHistogram,
    /// Worst observed completion latency.
    pub max_latency: Duration,
    /// Per-tenant ledgers, empty for a flat run.
    pub tenants: Vec<TenantLedger>,
    /// `tenant_of[source]`, empty for a flat run.
    pub tenant_of: Vec<u32>,
    /// The tenancy the run executed under, if any — carried so the oracle
    /// can re-check group and global budgets offline.
    pub tenancy: Option<TenantConfig>,
}

impl FleetReport {
    /// The union of all shards' admitted streams, merged into one
    /// `(timestamp, source)` sequence ordered by time then source id.
    #[must_use]
    pub fn merged_admitted(&self) -> Vec<(Instant, u32)> {
        let mut merged: Vec<(Instant, u32)> = self
            .admitted
            .iter()
            .enumerate()
            .flat_map(|(source, times)| times.iter().map(move |&at| (at, source as u32)))
            .collect();
        merged.sort_unstable();
        merged
    }

    /// Canonical byte encoding of [`merged_admitted`](Self::merged_admitted)
    /// (`"<at_ns> <source>\n"` lines) — the thing that must be
    /// byte-identical across shard counts and engines.
    #[must_use]
    pub fn merged_bytes(&self) -> String {
        let mut out = String::new();
        for (at, source) in self.merged_admitted() {
            out.push_str(&format!("{} {}\n", at.as_nanos(), source));
        }
        out
    }

    /// Typed sheds per 1000 scheduled arrivals (0 when nothing arrived).
    #[must_use]
    pub fn shed_permille(&self) -> u64 {
        if self.counters.scheduled == 0 {
            return 0;
        }
        self.counters.shed_total() * 1000 / self.counters.scheduled
    }

    /// One tenant's merged admitted stream, `(time, source)` ordered —
    /// the stream the isolation theorem says must not move when *other*
    /// tenants misbehave.
    #[must_use]
    pub fn tenant_admitted(&self, tenant: usize) -> Vec<(Instant, u32)> {
        let mut merged: Vec<(Instant, u32)> = self
            .admitted
            .iter()
            .enumerate()
            .filter(|&(source, _)| self.tenant_of.get(source).copied() == Some(tenant as u32))
            .flat_map(|(source, times)| times.iter().map(move |&at| (at, source as u32)))
            .collect();
        merged.sort_unstable();
        merged
    }

    /// Canonical byte encoding of one tenant's admitted stream
    /// (`"<at_ns> <source>\n"` lines) — the byte-identity witness of the
    /// isolation proptest.
    #[must_use]
    pub fn tenant_bytes(&self, tenant: usize) -> String {
        let mut out = String::new();
        for (at, source) in self.tenant_admitted(tenant) {
            out.push_str(&format!("{} {}\n", at.as_nanos(), source));
        }
        out
    }

    /// The fleet-wide oracle: per-victim δ⁻ replay, sliding-window η⁺
    /// counts and the Eq. 13–16 interference bound over each source's
    /// admitted stream — *including across crash/failover cuts*, because
    /// the streams span the whole run — plus the two conservation
    /// identities of the fleet ledger.
    #[must_use]
    pub fn check(&self, delta: &DeltaFunction, effective_cost: Duration) -> Vec<Violation> {
        let mut out = Vec::new();
        for (source, stream) in self.admitted.iter().enumerate() {
            if stream.is_empty() {
                continue;
            }
            out.extend(check_admitted_stream(
                0,
                source,
                stream,
                delta,
                effective_cost,
            ));
        }
        let c = &self.counters;
        let ingress_accounted = c.admitted + c.denied + c.shed_total();
        if ingress_accounted != c.scheduled {
            out.push(Violation::IrqLost {
                scheduled: c.scheduled,
                accounted: ingress_accounted,
            });
        }
        let service_accounted = c.completed + c.lost_in_flight + self.in_flight_at_end;
        if service_accounted != c.admitted {
            out.push(Violation::IrqLost {
                scheduled: c.admitted,
                accounted: service_accounted,
            });
        }
        if let Some(tc) = &self.tenancy {
            let mut union: Vec<Instant> = Vec::new();
            for (tenant, ledger) in self.tenants.iter().enumerate() {
                let t = &ledger.counters;
                let ingress = t.admitted + t.denied_total() + t.shed_total();
                if ingress != t.scheduled {
                    out.push(Violation::TenantConservation {
                        tenant,
                        expected: t.scheduled,
                        accounted: ingress,
                    });
                }
                let service = t.completed + t.lost_in_flight + ledger.in_flight_at_end;
                if service != t.admitted {
                    out.push(Violation::TenantConservation {
                        tenant,
                        expected: t.admitted,
                        accounted: service,
                    });
                }
                let stream: Vec<Instant> = self
                    .tenant_admitted(tenant)
                    .into_iter()
                    .map(|(at, _)| at)
                    .collect();
                out.extend(check_group_budget(
                    tenant,
                    &stream,
                    tc.tenants[tenant].budget,
                    tc.window,
                ));
                union.extend(stream);
            }
            union.sort_unstable();
            out.extend(check_global_budget(&union, tc.global_budget, tc.window));
        }
        out
    }
}
