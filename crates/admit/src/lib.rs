//! A fault-tolerant sharded δ⁻ admission fleet.
//!
//! The paper's admission test ([`ActivationMonitor`], Eq. 6) protects one
//! interrupt line on one machine. This crate scales the same test to a
//! *fleet*: dense source ids hash-routed across N shards, each shard an
//! arena of monitors behind a poison-immune lock, driven open-loop by
//! Poisson floods, CAN-style ECU fleets and adversarial fault plans. Three
//! robustness layers ride on top:
//!
//! * **Failover** ([`FailoverMode`]) — shards crash (seeded
//!   [`ShardFault`]s); checkpointed monitor state plus a journal-tail
//!   replay restores exactly the pre-crash δ⁻ rings, so admitted streams
//!   stay bound-conformant *across* the cut. The fresh-state baseline
//!   demonstrably does not.
//! * **Graceful degradation** ([`AdmitOutcome`]) — bounded in-flight
//!   queues, deterministic bounded retry with backoff against stalled
//!   shards that fails *closed* ([`ShedReason::ShardStalled`]), and a
//!   load-shedding ladder that demotes Probation/Quarantined sources
//!   first ([`ShedReason::Demoted`]). Every shed is typed; nothing is
//!   silently dropped or blindly admitted.
//! * **A fleet-wide oracle** ([`FleetReport::check`]) — per-victim δ⁻
//!   replay, sliding-window η⁺ counts and the Eq. 13–16 interference
//!   bound over the union of all shards' admitted streams, plus the two
//!   ledger conservation identities.
//!
//! * **Tenant isolation** ([`tenant`]) — a two-level admission hierarchy:
//!   every source belongs to a tenant with its own δ⁻ group budget (an
//!   aggregate monitor / window-budget pair), all tenants draw from a
//!   global interference budget, and an adaptive brownout controller
//!   degrades overloaded tenants through a ladder (shrink → best-effort →
//!   quarantine) with seed-jittered hysteresis. Overload in one tenant
//!   provably never moves another tenant's admitted stream.
//!
//! The [`storm`] module packages all of it into the deterministic,
//! journal-resumable `admit_storm` campaign.
//!
//! [`ActivationMonitor`]: rthv_monitor::ActivationMonitor

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod shard;
pub mod storm;
pub mod tenant;

pub use fleet::{
    route, AdmitFleet, AdmitOutcome, FailoverMode, FleetConfig, FleetError, FleetReport,
    ShardFault, ShardFaultKind, ShedReason,
};
pub use shard::{Shard, ShardCounters};
pub use storm::{
    assemble_report, assemble_tenant_report, fleet_faults, report_passes, run_storm_scenario,
    run_tenant_scenario, storm_hub, storm_scenarios, tenant_scenarios, tenant_storm_hub,
    traffic_events, ArmOutcome, ScenarioRecord, StormConfig, StormOutcome, StormScenario,
    TenantOutcome, TenantRecord, TenantScenario, TenantStormConfig, TrafficKind, HOT_SOURCES,
};
pub use tenant::{
    global_budget_for_bound, group_delta, BrownoutController, BrownoutLevel, BrownoutPolicy,
    GroupBudget, TenantBudgetError, TenantConfig, TenantCounters, TenantLedger, TenantSpec,
    WindowBudget, MAX_GROUP_BUDGET,
};
