//! One shard of the admission fleet: an arena of δ⁻ monitors plus health
//! trackers behind a poison-immune per-shard lock, with checkpoint-based
//! crash recovery.
//!
//! A shard owns the [`ActivationMonitor`]s of every source routed to it,
//! one [`HealthTracker`] per source for the load-shedding ladder, a bounded
//! in-flight service queue and the crash-recovery state: the last
//! [`checkpoint`](ShardState::take_checkpoint) (a deep copy of monitors and
//! trackers) plus a journal of every admission since. On a crash the shard
//! either restores checkpoint-plus-journal-tail (failover) or comes back
//! with fresh monitors (the no-failover baseline that must demonstrably
//! break the independence bound).

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

use rthv_hypervisor::{HealthTracker, SupervisionPolicy};
use rthv_monitor::{ActivationMonitor, DeltaFunction};
use rthv_sim::EventId;
use rthv_time::Instant;

use crate::fleet::FailoverMode;

/// Integer-only per-shard counters; summed into the fleet report. Every
/// arrival ends in exactly one of admitted / denied / shed — the
/// conservation identity the fleet oracle re-checks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardCounters {
    /// Arrivals routed to this shard.
    pub scheduled: u64,
    /// Arrivals admitted by a δ⁻ monitor.
    pub admitted: u64,
    /// Arrivals denied by a δ⁻ monitor.
    pub denied: u64,
    /// Arrivals shed because the in-flight queue was full.
    pub shed_queue_full: u64,
    /// Arrivals shed because the shard was stalled past the retry budget
    /// (the fail-closed escalation).
    pub shed_stalled: u64,
    /// Arrivals shed by the supervision ladder (Probation/Quarantined
    /// sources demoted first under load).
    pub shed_demoted: u64,
    /// Arrivals shed because their tenant was quarantined by the brownout
    /// controller (always zero in a flat, tenant-less fleet).
    pub shed_quarantined: u64,
    /// Admitted activations lost in flight to a shard crash (typed — their
    /// service completions never happen, but they are never silent).
    pub lost_in_flight: u64,
    /// Admitted activations whose service completed.
    pub completed: u64,
    /// Bounded-backoff retries spent by arrivals that hit a stalled shard
    /// and still made it to an admission check.
    pub retries: u64,
    /// Shard crashes suffered.
    pub crashes: u64,
    /// Stall windows suffered.
    pub stalls: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Journal entries replayed into restored monitors during failover.
    pub journal_replayed: u64,
}

impl ShardCounters {
    /// Total typed sheds (queue-full + stalled + demoted + quarantined).
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full + self.shed_stalled + self.shed_demoted + self.shed_quarantined
    }

    /// Field-wise accumulation (fleet aggregation).
    pub fn add(&mut self, other: &ShardCounters) {
        self.scheduled += other.scheduled;
        self.admitted += other.admitted;
        self.denied += other.denied;
        self.shed_queue_full += other.shed_queue_full;
        self.shed_stalled += other.shed_stalled;
        self.shed_demoted += other.shed_demoted;
        self.shed_quarantined += other.shed_quarantined;
        self.lost_in_flight += other.lost_in_flight;
        self.completed += other.completed;
        self.retries += other.retries;
        self.crashes += other.crashes;
        self.stalls += other.stalls;
        self.checkpoints += other.checkpoints;
        self.journal_replayed += other.journal_replayed;
    }
}

/// An admitted activation awaiting its service completion, with the engine
/// id of the pending drain event so a crash can cancel it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InFlight {
    /// Pending drain event in the fleet's engine queue.
    pub id: EventId,
    /// Global source id.
    pub source: u32,
    /// Hardware arrival timestamp (latency = completion − arrival).
    pub arrival: Instant,
}

/// Deep copy of a shard's recovery-relevant state at a checkpoint.
#[derive(Debug, Clone)]
struct ShardCheckpoint {
    monitors: Vec<ActivationMonitor>,
    trackers: Vec<HealthTracker>,
}

/// The mutable state behind a shard's lock.
#[derive(Debug)]
pub(crate) struct ShardState {
    /// δ⁻ monitor arena, one per local source.
    pub monitors: Vec<ActivationMonitor>,
    /// Supervision scores, one per local source (the shed ladder).
    pub trackers: Vec<HealthTracker>,
    checkpoint: ShardCheckpoint,
    /// `(local source, admission timestamp)` since the last checkpoint.
    journal: Vec<(u32, Instant)>,
    /// When a stall window ends, if one is active.
    pub stalled_until: Option<Instant>,
    /// Per-lane single-server service horizons: lane `l`'s next admission
    /// completes at `max(busy_until[l], now) + service_cost`. A flat fleet
    /// has one lane; a tenanted fleet has one reserved lane per tenant
    /// plus a shared best-effort lane, so one tenant's backlog cannot
    /// delay another's completions.
    pub busy_until: Vec<Instant>,
    /// Admitted-but-not-completed activations per lane, completion order.
    pub in_flight: Vec<VecDeque<InFlight>>,
    /// This shard's ledger.
    pub counters: ShardCounters,
}

impl ShardState {
    fn fresh_arena(
        locals: usize,
        delta: &DeltaFunction,
        policy: SupervisionPolicy,
    ) -> (Vec<ActivationMonitor>, Vec<HealthTracker>) {
        let monitors = (0..locals)
            .map(|_| ActivationMonitor::new(delta.clone()))
            .collect();
        let trackers = (0..locals).map(|_| HealthTracker::new(policy)).collect();
        (monitors, trackers)
    }

    /// Records an admission in the journal and checkpoints once
    /// `checkpoint_every` admissions have accumulated.
    pub fn note_admitted(&mut self, local: u32, at: Instant, checkpoint_every: u64) {
        self.journal.push((local, at));
        if self.journal.len() as u64 >= checkpoint_every {
            self.take_checkpoint();
        }
    }

    /// Deep-copies monitors and trackers and truncates the journal: after
    /// this, a crash replays only admissions younger than this instant.
    pub fn take_checkpoint(&mut self) {
        self.checkpoint = ShardCheckpoint {
            monitors: self.monitors.clone(),
            trackers: self.trackers.clone(),
        };
        self.journal.clear();
        self.counters.checkpoints += 1;
    }

    /// Crashes the shard at `at`: the in-flight queue is lost (returned so
    /// the fleet can cancel the pending drain events and count each loss as
    /// a typed outcome), and the monitor arena is rebuilt according to
    /// `mode`:
    ///
    /// * [`FailoverMode::Checkpoint`] — monitors and trackers restore from
    ///   the last checkpoint, then the journal tail is replayed through
    ///   [`ActivationMonitor::record_admitted`]. The restored trace rings
    ///   are *exactly* the pre-crash rings, so the admitted stream stays
    ///   δ⁻-conformant across the cut.
    /// * [`FailoverMode::FreshState`] — the baseline: empty monitors that
    ///   admit everything on restart, which is precisely what the
    ///   fleet-wide oracle must catch.
    pub fn crash(
        &mut self,
        at: Instant,
        mode: FailoverMode,
        delta: &DeltaFunction,
        policy: SupervisionPolicy,
    ) -> Vec<InFlight> {
        let dropped: Vec<InFlight> = self
            .in_flight
            .iter_mut()
            .flat_map(|lane| lane.drain(..))
            .collect();
        self.counters.lost_in_flight += dropped.len() as u64;
        self.counters.crashes += 1;
        for busy in &mut self.busy_until {
            *busy = at;
        }
        self.stalled_until = None;
        match mode {
            FailoverMode::Checkpoint => {
                self.monitors = self.checkpoint.monitors.clone();
                self.trackers = self.checkpoint.trackers.clone();
                self.counters.journal_replayed += self.journal.len() as u64;
                for &(local, t) in &self.journal {
                    self.monitors[local as usize].record_admitted(t);
                }
                // Re-checkpoint the restored state so a second crash
                // replays only its own tail.
                self.take_checkpoint();
            }
            FailoverMode::FreshState => {
                let (monitors, trackers) = Self::fresh_arena(self.monitors.len(), delta, policy);
                self.monitors = monitors;
                self.trackers = trackers;
                self.take_checkpoint();
            }
        }
        dropped
    }
}

/// One shard: [`ShardState`] behind a poison-immune lock, the "arena of
/// `ActivationMonitor`s behind a per-shard lock" of the fleet design.
#[derive(Debug)]
pub struct Shard {
    state: Mutex<ShardState>,
}

impl Shard {
    /// Builds a shard for `locals` sources sharing one δ⁻ condition and
    /// one supervision policy, with `lanes` independent service lanes,
    /// checkpointed at its (empty) initial state.
    pub(crate) fn new(
        locals: usize,
        lanes: usize,
        delta: &DeltaFunction,
        policy: SupervisionPolicy,
    ) -> Self {
        let (monitors, trackers) = ShardState::fresh_arena(locals, delta, policy);
        let checkpoint = ShardCheckpoint {
            monitors: monitors.clone(),
            trackers: trackers.clone(),
        };
        Shard {
            state: Mutex::new(ShardState {
                monitors,
                trackers,
                checkpoint,
                journal: Vec::new(),
                stalled_until: None,
                busy_until: vec![Instant::ZERO; lanes],
                in_flight: vec![VecDeque::new(); lanes],
                counters: ShardCounters::default(),
            }),
        }
    }

    /// Admissions currently in service across all lanes.
    #[must_use]
    pub fn in_flight_len(&self) -> usize {
        self.with_state(|s| s.in_flight.iter().map(VecDeque::len).sum())
    }

    /// Runs `f` under the shard lock. A poisoned lock is recovered, not
    /// propagated: shard state is plain data and every mutation completes
    /// before the lock drops, so the state is consistent even if another
    /// holder panicked.
    pub(crate) fn with_state<R>(&self, f: impl FnOnce(&mut ShardState) -> R) -> R {
        let mut guard = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut guard)
    }

    /// Snapshot of this shard's ledger.
    #[must_use]
    pub fn counters(&self) -> ShardCounters {
        self.with_state(|s| s.counters)
    }
}
