//! The `admit_storm` campaign: seeded storm scenarios driven through the
//! fleet twice — once with checkpoint failover (the system under test) and
//! once with fresh-state restarts (the no-failover baseline) — plus the
//! deterministic, journal-resumable JSON report the campaign binary emits.
//!
//! The campaign's claim mirrors the fault campaign one layer up: under
//! seeded shard-crash storms the failover arm keeps every victim's
//! admitted stream inside the Eq. 13–16 bound (zero oracle violations),
//! while the fresh-state baseline demonstrably breaks it; and under
//! open-loop floods the typed shed rate stays inside a stated budget.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rthv_faults::{FaultKind, FaultScenario};
use rthv_obs::{MetricsHub, ObsConfig, SourceObs};
use rthv_stats::LatencyHistogram;
use rthv_time::{Duration, Instant};
use rthv_workload::{ecu_fleet, open_loop_flood, FloodEvent, FloodSpec};

use crate::fleet::{
    AdmitFleet, FailoverMode, FleetConfig, FleetError, FleetReport, ShardFault, ShardFaultKind,
};
use crate::shard::ShardCounters;

/// Campaign geometry: the fleet config both arms share, the traffic
/// horizon and the shed budget the verdict enforces.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Traffic/fault horizon per scenario.
    pub horizon: Duration,
    /// Verdict budget: worst failover-arm shed rate (‰ of scheduled)
    /// over the flood-family scenarios.
    pub shed_budget_permille: u64,
    /// The shared fleet geometry; [`FleetConfig::failover`] is overridden
    /// per arm.
    pub base: FleetConfig,
}

impl StormConfig {
    /// The standard campaign: 8 shards × 64 sources over a 1 s horizon,
    /// 16-deep shard queues, shed budget 120 ‰. Note that under pure
    /// floods δ⁻ admission caps each shard's admitted rate below its
    /// drain rate, so campaign sheds come from faults (fail-closed stall
    /// sheds, crash drops), not queue overflow — the budget bounds those.
    #[must_use]
    pub fn standard(engine: &str) -> Self {
        let mut base = FleetConfig::paper(8, 64);
        base.queue_capacity = 16;
        base.engine = engine.to_owned();
        StormConfig {
            horizon: Duration::from_millis(1000),
            shed_budget_permille: 120,
            base,
        }
    }

    /// The smoke campaign: 4 shards × 16 sources over 250 ms — small
    /// enough for CI, same families and verdict.
    #[must_use]
    pub fn smoke(engine: &str) -> Self {
        let mut base = FleetConfig::paper(4, 16);
        base.queue_capacity = 16;
        base.engine = engine.to_owned();
        StormConfig {
            horizon: Duration::from_millis(250),
            shed_budget_permille: 120,
            base,
        }
    }
}

/// What drives the fleet ingress in a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficKind {
    /// Open-loop Poisson flood, every source at mean rate `mean`.
    Flood {
        /// Per-source mean interarrival time.
        mean: Duration,
    },
    /// One typical-ECU trace per source ([`ecu_fleet`]).
    EcuFleet,
    /// An adversarial [`FaultScenario`] plan, concentrated onto the
    /// first [`HOT_SOURCES`] source ids round-robin — the paper's single
    /// misbehaving-line adversity aimed at a small victim set.
    FaultPlan {
        /// The injected adversity generating the arrivals.
        kind: FaultKind,
    },
}

/// How many source ids concentrated [`TrafficKind::FaultPlan`] traffic
/// lands on: small enough that storms and bursts stay well below `d_min`
/// per source, so a fresh-state restart demonstrably over-admits.
pub const HOT_SOURCES: u32 = 2;

impl TrafficKind {
    /// Stable machine-readable label.
    #[must_use]
    pub fn slug(&self) -> &'static str {
        match self {
            TrafficKind::Flood { .. } => "flood",
            TrafficKind::EcuFleet => "ecu-fleet",
            TrafficKind::FaultPlan { kind } => kind.slug(),
        }
    }
}

/// One storm scenario: a traffic generator plus a shard-fault adversity,
/// both pure functions of the scenario seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormScenario {
    /// Position in the campaign (stable across runs; part of the label).
    pub id: u32,
    /// Ingress traffic.
    pub traffic: TrafficKind,
    /// Shard-fault adversity (kind + seed); [`FaultKind::Nominal`] means
    /// no shard faults.
    pub fault: FaultScenario,
}

impl StormScenario {
    /// Stable scenario label, e.g. `00-flood-shard-crash`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{:02}-{}-{}",
            self.id,
            self.traffic.slug(),
            self.fault.kind.slug()
        )
    }

    /// Whether the adversity crashes shards (the failover-vs-baseline
    /// differentiator).
    #[must_use]
    pub fn crash_family(&self) -> bool {
        matches!(self.fault.kind, FaultKind::ShardCrash { .. })
    }

    /// Whether the scenario counts toward the shed budget: open-loop
    /// fleet-wide traffic without stalls (stall scenarios shed by design —
    /// that is the fail-closed contract, not an overload symptom).
    #[must_use]
    pub fn flood_family(&self) -> bool {
        matches!(
            self.traffic,
            TrafficKind::Flood { .. } | TrafficKind::EcuFleet
        ) && !matches!(self.fault.kind, FaultKind::ShardStall { .. })
    }
}

/// The seven storm families, cycled `count` times with per-scenario
/// derived seeds. Mirrors [`rthv_faults::standard_scenarios`]'s shape: the
/// list is a pure function of `(count, base_seed)`.
#[must_use]
pub fn storm_scenarios(count: u32, base_seed: u64, horizon: Duration) -> Vec<StormScenario> {
    let crash_period = Duration::from_nanos((horizon.as_nanos() / 5).max(1));
    let stall_period = Duration::from_nanos((horizon.as_nanos() / 4).max(1));
    let families: [(TrafficKind, FaultKind); 7] = [
        (
            TrafficKind::Flood {
                mean: Duration::from_micros(500),
            },
            FaultKind::ShardCrash {
                period: crash_period,
                crashes: 4,
            },
        ),
        (
            TrafficKind::EcuFleet,
            FaultKind::ShardStall {
                period: stall_period,
                stall: Duration::from_millis(2),
            },
        ),
        (
            TrafficKind::FaultPlan {
                kind: FaultKind::BurstyFlood {
                    burst: 24,
                    spacing: Duration::from_micros(20),
                    every: Duration::from_millis(4),
                },
            },
            FaultKind::ShardCrash {
                period: stall_period,
                crashes: 3,
            },
        ),
        (
            TrafficKind::Flood {
                mean: Duration::from_micros(300),
            },
            FaultKind::ShardCrash {
                period: stall_period,
                crashes: 3,
            },
        ),
        (
            TrafficKind::FaultPlan {
                kind: FaultKind::IrqStorm {
                    period: Duration::from_micros(400),
                },
            },
            FaultKind::ShardStall {
                period: crash_period,
                stall: Duration::from_millis(1),
            },
        ),
        (
            TrafficKind::Flood {
                mean: Duration::from_micros(250),
            },
            FaultKind::Nominal {
                period: Duration::from_millis(1),
            },
        ),
        (
            TrafficKind::Flood {
                mean: Duration::from_millis(3),
            },
            FaultKind::Nominal {
                period: Duration::from_millis(1),
            },
        ),
    ];
    (0..count)
        .map(|id| {
            let (traffic, kind) = families[(id as usize) % families.len()];
            StormScenario {
                id,
                traffic,
                fault: FaultScenario {
                    id,
                    kind,
                    seed: derive_seed(base_seed, id),
                },
            }
        })
        .collect()
}

/// Splitmix64 finalizer — the same derivation the flood generators use.
fn derive_seed(base: u64, lane: u32) -> u64 {
    let mut z = base ^ u64::from(lane).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Expands a scenario's traffic into the merged fleet arrival schedule.
#[must_use]
pub fn traffic_events(scenario: &StormScenario, config: &StormConfig) -> Vec<FloodEvent> {
    match scenario.traffic {
        TrafficKind::Flood { mean } => open_loop_flood(&FloodSpec {
            sources: config.base.sources,
            mean,
            horizon: config.horizon,
            seed: scenario.fault.seed ^ 0xF10_0D5,
        }),
        TrafficKind::EcuFleet => ecu_fleet(
            config.base.sources,
            config.horizon,
            scenario.fault.seed ^ 0xEC0_FA5,
        ),
        TrafficKind::FaultPlan { kind } => {
            let plan = FaultScenario {
                id: scenario.id,
                kind,
                seed: scenario.fault.seed ^ 0xAD_7E55,
            }
            .plan(config.horizon, config.base.service_cost);
            let hot = config.base.sources.min(HOT_SOURCES);
            plan.arrivals
                .iter()
                .enumerate()
                .map(|(i, a)| FloodEvent {
                    at: a.at,
                    source: (i as u32) % hot,
                })
                .collect()
        }
    }
}

/// Expands a scenario's [`FaultScenario`] into concrete shard faults:
/// crash/stall `i` strikes a seeded shard at `(i+1) · period` plus seeded
/// sub-period jitter. Nominal (and any non-shard) kinds inject nothing.
#[must_use]
pub fn fleet_faults(fault: &FaultScenario, shards: u32, horizon: Duration) -> Vec<ShardFault> {
    let mut rng = StdRng::seed_from_u64(fault.seed ^ 0x5AAD_FA17);
    let mut out = Vec::new();
    let horizon_ns = horizon.as_nanos();
    match fault.kind {
        FaultKind::ShardCrash { period, crashes } => {
            let period_ns = period.as_nanos().max(1);
            for i in 0..u64::from(crashes) {
                let jitter = rng.gen_range(0..(period_ns / 8).max(1));
                let at = (i + 1) * period_ns + jitter;
                let shard = rng.gen_range(0..shards);
                if at < horizon_ns {
                    out.push(ShardFault {
                        at: Instant::from_nanos(at),
                        shard,
                        kind: ShardFaultKind::Crash,
                    });
                }
            }
        }
        FaultKind::ShardStall { period, stall } => {
            let period_ns = period.as_nanos().max(1);
            let mut i = 0u64;
            loop {
                let jitter = rng.gen_range(0..(period_ns / 8).max(1));
                let at = (i + 1) * period_ns + jitter;
                let shard = rng.gen_range(0..shards);
                if at >= horizon_ns {
                    break;
                }
                out.push(ShardFault {
                    at: Instant::from_nanos(at),
                    shard,
                    kind: ShardFaultKind::Stall { duration: stall },
                });
                i += 1;
            }
        }
        _ => {}
    }
    out.sort_by_key(|f| (f.at, f.shard));
    out
}

/// One arm's distilled result: the ledger, the fleet-oracle verdict and
/// bin-quantized latency percentiles. Everything is an integer or a stable
/// slug, so the serialized form is byte-identical across hosts, engines
/// and resumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArmOutcome {
    /// Fleet-aggregated ledger.
    pub counters: ShardCounters,
    /// Fleet-oracle violation count.
    pub violations: u64,
    /// Sorted, de-duplicated violation-kind slugs.
    pub violation_kinds: Vec<&'static str>,
    /// Typed sheds per 1000 scheduled arrivals.
    pub shed_permille: u64,
    /// Median ingress-to-completion latency, quantized to the histogram
    /// bin's upper edge, in ns (−1 when nothing completed).
    pub p50_latency_ns: i64,
    /// 99th-percentile latency, same quantization.
    pub p99_latency_ns: i64,
    /// Exact worst completion latency in ns (−1 when nothing completed).
    pub max_latency_ns: i64,
}

impl ArmOutcome {
    fn distill(report: &FleetReport, config: &StormConfig) -> ArmOutcome {
        let violations = report.check(&config.base.delta, config.base.service_cost);
        let mut kinds: Vec<&'static str> = violations.iter().map(|v| v.slug()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        let completed = report.latency.count();
        ArmOutcome {
            counters: report.counters,
            violations: violations.len() as u64,
            violation_kinds: kinds,
            shed_permille: report.shed_permille(),
            p50_latency_ns: percentile_ns(&report.latency, 500),
            p99_latency_ns: percentile_ns(&report.latency, 990),
            max_latency_ns: if completed == 0 {
                -1
            } else {
                report.max_latency.as_nanos() as i64
            },
        }
    }

    /// One-line JSON object (integers and stable slugs only).
    #[must_use]
    pub fn to_json(&self) -> String {
        let c = &self.counters;
        let kinds = self
            .violation_kinds
            .iter()
            .map(|k| format!("\"{k}\""))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\"scheduled\":{},\"admitted\":{},\"denied\":{},",
                "\"shed_queue_full\":{},\"shed_stalled\":{},\"shed_demoted\":{},",
                "\"lost_in_flight\":{},\"completed\":{},\"retries\":{},",
                "\"crashes\":{},\"stalls\":{},\"checkpoints\":{},",
                "\"journal_replayed\":{},\"shed_permille\":{},",
                "\"violations\":{},\"violation_kinds\":[{}],",
                "\"p50_latency_ns\":{},\"p99_latency_ns\":{},\"max_latency_ns\":{}}}"
            ),
            c.scheduled,
            c.admitted,
            c.denied,
            c.shed_queue_full,
            c.shed_stalled,
            c.shed_demoted,
            c.lost_in_flight,
            c.completed,
            c.retries,
            c.crashes,
            c.stalls,
            c.checkpoints,
            c.journal_replayed,
            self.shed_permille,
            self.violations,
            kinds,
            self.p50_latency_ns,
            self.p99_latency_ns,
            self.max_latency_ns,
        )
    }
}

/// `permille`-quantile latency as the upper edge of the bin holding that
/// rank, in ns. Ranks landing in the overflow bin report the histogram
/// range (a "≥ range" quantization); an empty histogram reports −1.
fn percentile_ns(latency: &LatencyHistogram, permille: u64) -> i64 {
    let total = latency.count();
    if total == 0 {
        return -1;
    }
    let target = (total * permille).div_ceil(1000).max(1);
    let mut cum = 0u64;
    for i in 0..latency.bins() {
        cum += latency.bin_count(i);
        if cum >= target {
            return (latency.bin_start(i) + latency.bin_width()).as_nanos() as i64;
        }
    }
    (latency.bin_start(latency.bins())).as_nanos() as i64
}

/// One scenario's two-arm result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormOutcome {
    /// Scenario label (stable across runs).
    pub label: String,
    /// Scenario seed.
    pub seed: u64,
    /// Shard-crash adversity?
    pub crash_family: bool,
    /// Counts toward the shed budget?
    pub flood_family: bool,
    /// Checkpoint-failover arm (the system under test).
    pub failover: ArmOutcome,
    /// Fresh-state baseline arm.
    pub baseline: ArmOutcome,
}

impl StormOutcome {
    /// The one-line JSON fragment embedded verbatim in report and journal.
    #[must_use]
    pub fn to_json_fragment(&self) -> String {
        format!(
            "{{\"label\":\"{}\",\"seed\":{},\"crash_family\":{},\"flood_family\":{},\"failover\":{},\"baseline\":{}}}",
            self.label,
            self.seed,
            u8::from(self.crash_family),
            u8::from(self.flood_family),
            self.failover.to_json(),
            self.baseline.to_json(),
        )
    }

    /// Distills the journal/report record.
    #[must_use]
    pub fn record(&self) -> ScenarioRecord {
        ScenarioRecord {
            label: self.label.clone(),
            seed: self.seed,
            crash_family: self.crash_family,
            flood_family: self.flood_family,
            failover_violations: self.failover.violations,
            baseline_violations: self.baseline.violations,
            shed_permille: self.failover.shed_permille,
            failover_sheds: self.failover.counters.shed_total(),
            failover_lost: self.failover.counters.lost_in_flight,
            fragment: self.to_json_fragment(),
        }
    }
}

/// The journal/report unit: the digest integers the verdict needs plus the
/// full JSON fragment spliced verbatim, so a `--resume` run assembles a
/// byte-identical report without re-serializing old results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioRecord {
    /// Scenario label.
    pub label: String,
    /// Scenario seed.
    pub seed: u64,
    /// Shard-crash adversity?
    pub crash_family: bool,
    /// Counts toward the shed budget?
    pub flood_family: bool,
    /// Failover-arm oracle violations.
    pub failover_violations: u64,
    /// Baseline-arm oracle violations.
    pub baseline_violations: u64,
    /// Failover-arm shed rate (‰).
    pub shed_permille: u64,
    /// Failover-arm typed sheds (queue-full + stalled + demoted).
    pub failover_sheds: u64,
    /// Failover-arm in-flight activations dropped by crashes.
    pub failover_lost: u64,
    /// Verbatim scenario JSON fragment.
    pub fragment: String,
}

impl ScenarioRecord {
    /// One journal line: `label seed crash flood failover_viol
    /// baseline_viol shed_permille sheds lost fragment`.
    #[must_use]
    pub fn to_journal_line(&self) -> String {
        format!(
            "{} {} {} {} {} {} {} {} {} {}",
            self.label,
            self.seed,
            u8::from(self.crash_family),
            u8::from(self.flood_family),
            self.failover_violations,
            self.baseline_violations,
            self.shed_permille,
            self.failover_sheds,
            self.failover_lost,
            self.fragment,
        )
    }

    /// Parses a journal line; `None` on any malformed field (torn tails
    /// are dropped by the journal reader before this sees them).
    #[must_use]
    pub fn parse_journal_line(line: &str) -> Option<ScenarioRecord> {
        let mut parts = line.splitn(10, ' ');
        let label = parts.next()?.to_owned();
        let seed = parts.next()?.parse().ok()?;
        let crash_family = match parts.next()? {
            "0" => false,
            "1" => true,
            _ => return None,
        };
        let flood_family = match parts.next()? {
            "0" => false,
            "1" => true,
            _ => return None,
        };
        let failover_violations = parts.next()?.parse().ok()?;
        let baseline_violations = parts.next()?.parse().ok()?;
        let shed_permille = parts.next()?.parse().ok()?;
        let failover_sheds = parts.next()?.parse().ok()?;
        let failover_lost = parts.next()?.parse().ok()?;
        let fragment = parts.next()?.to_owned();
        if !fragment.starts_with('{') || !fragment.ends_with('}') {
            return None;
        }
        Some(ScenarioRecord {
            label,
            seed,
            crash_family,
            flood_family,
            failover_violations,
            baseline_violations,
            shed_permille,
            failover_sheds,
            failover_lost,
            fragment,
        })
    }
}

/// Builds the observability hub matching a storm config: one gauge per
/// source, budgeted at `η⁺(gauge_window)` of the shared δ⁻ with the shard
/// service cost as the per-admission charge, and the fleet's latency
/// binning. Pure observation — feeding it never changes a campaign number.
#[must_use]
pub fn storm_hub(config: &StormConfig) -> MetricsHub {
    let obs = ObsConfig {
        latency_bin_width: config.base.latency_bin_width,
        latency_range: config.base.latency_range,
        ..ObsConfig::default()
    };
    let per_source = SourceObs {
        budget_events: Some(config.base.delta.eta_plus(obs.gauge_window)),
        effective_cost: config.base.service_cost,
    };
    let sources = vec![per_source; config.base.sources as usize];
    MetricsHub::new(obs, &sources)
}

/// Runs one scenario's two arms. The failover arm optionally feeds `hub`
/// (the baseline arm never does — it exists only to be caught by the
/// oracle, not to pollute the export).
pub fn run_storm_scenario(
    config: &StormConfig,
    scenario: &StormScenario,
    hub: Option<&mut MetricsHub>,
) -> Result<StormOutcome, FleetError> {
    let arrivals = traffic_events(scenario, config);
    let faults = fleet_faults(&scenario.fault, config.base.shards, config.horizon);

    let mut failover_cfg = config.base.clone();
    failover_cfg.failover = FailoverMode::Checkpoint;
    let failover_fleet = AdmitFleet::new(failover_cfg)?;
    let failover_report = failover_fleet.run(&arrivals, &faults, hub);

    let mut baseline_cfg = config.base.clone();
    baseline_cfg.failover = FailoverMode::FreshState;
    let baseline_fleet = AdmitFleet::new(baseline_cfg)?;
    let baseline_report = baseline_fleet.run(&arrivals, &faults, None);

    Ok(StormOutcome {
        label: scenario.label(),
        seed: scenario.fault.seed,
        crash_family: scenario.crash_family(),
        flood_family: scenario.flood_family(),
        failover: ArmOutcome::distill(&failover_report, config),
        baseline: ArmOutcome::distill(&baseline_report, config),
    })
}

/// Assembles the deterministic campaign report from scenario records (in
/// campaign order): a config header, the verbatim fragments, totals and
/// the three-part verdict.
#[must_use]
pub fn assemble_report(config: &StormConfig, base_seed: u64, records: &[ScenarioRecord]) -> String {
    let crash_records: Vec<&ScenarioRecord> = records.iter().filter(|r| r.crash_family).collect();
    // Baseline breakage is structurally guaranteed only for fleet-wide
    // floods (every shard hosts sub-d_min-dense sources, so any crash cut
    // lands inside pending traffic); concentrated fault-plan crashes may
    // miss the hot shards and merely contribute to the totals.
    let crash_flood_records: Vec<&ScenarioRecord> = crash_records
        .iter()
        .copied()
        .filter(|r| r.flood_family)
        .collect();
    let failover_violations: u64 = records.iter().map(|r| r.failover_violations).sum();
    let baseline_violations: u64 = records.iter().map(|r| r.baseline_violations).sum();
    let failover_sheds: u64 = records.iter().map(|r| r.failover_sheds).sum();
    let failover_lost: u64 = records.iter().map(|r| r.failover_lost).sum();
    let worst_flood_shed = records
        .iter()
        .filter(|r| r.flood_family)
        .map(|r| r.shed_permille)
        .max()
        .unwrap_or(0);
    let failover_clean = failover_violations == 0;
    let baseline_broken = !crash_flood_records.is_empty()
        && crash_flood_records
            .iter()
            .all(|r| r.baseline_violations > 0);
    let shed_within_budget = worst_flood_shed <= config.shed_budget_permille;
    let pass = failover_clean && baseline_broken && shed_within_budget;

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"shards\":{},\"sources\":{},\"horizon_ns\":{},\"queue_capacity\":{},\"service_cost_ns\":{},\"max_retries\":{},\"retry_backoff_ns\":{},\"shed_watermark_permille\":{},\"checkpoint_every\":{},\"shed_budget_permille\":{},\"base_seed\":{}}},\n",
        config.base.shards,
        config.base.sources,
        config.horizon.as_nanos(),
        config.base.queue_capacity,
        config.base.service_cost.as_nanos(),
        config.base.max_retries,
        config.base.retry_backoff.as_nanos(),
        config.base.shed_watermark_permille,
        config.base.checkpoint_every,
        config.shed_budget_permille,
        base_seed,
    ));
    out.push_str("  \"scenarios\": [\n");
    for (i, record) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        out.push_str(&format!("    {}{}\n", record.fragment, comma));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"totals\": {{\"scenarios\":{},\"crash_scenarios\":{},\"failover_violations\":{},\"baseline_violations\":{},\"failover_sheds\":{},\"failover_lost_in_flight\":{},\"worst_flood_shed_permille\":{}}},\n",
        records.len(),
        crash_records.len(),
        failover_violations,
        baseline_violations,
        failover_sheds,
        failover_lost,
        worst_flood_shed,
    ));
    out.push_str(&format!(
        "  \"verdict\": {{\"failover_clean\":{failover_clean},\"baseline_broken\":{baseline_broken},\"shed_within_budget\":{shed_within_budget},\"pass\":{pass}}}\n",
    ));
    out.push_str("}\n");
    out
}

/// Whether an assembled report's verdict passes (used by the binary's
/// exit code and the smoke gate).
#[must_use]
pub fn report_passes(report: &str) -> bool {
    report.contains("\"pass\":true")
}
