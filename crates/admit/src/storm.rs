//! The `admit_storm` campaign: seeded storm scenarios driven through the
//! fleet twice — once with checkpoint failover (the system under test) and
//! once with fresh-state restarts (the no-failover baseline) — plus the
//! deterministic, journal-resumable JSON report the campaign binary emits.
//!
//! The campaign's claim mirrors the fault campaign one layer up: under
//! seeded shard-crash storms the failover arm keeps every victim's
//! admitted stream inside the Eq. 13–16 bound (zero oracle violations),
//! while the fresh-state baseline demonstrably breaks it; and under
//! open-loop floods the typed shed rate stays inside a stated budget.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rthv_faults::{FaultKind, FaultScenario, Violation};
use rthv_obs::{MetricsHub, ObsConfig, SourceObs};
use rthv_stats::LatencyHistogram;
use rthv_time::{Duration, Instant};
use rthv_workload::{
    ecu_fleet, flood_overlay, open_loop_flood, FloodEvent, FloodSpec, OverlaySpec,
};

use crate::fleet::{
    AdmitFleet, FailoverMode, FleetConfig, FleetError, FleetReport, ShardFault, ShardFaultKind,
};
use crate::shard::ShardCounters;
use crate::tenant::{BrownoutPolicy, TenantConfig, TenantLedger, TenantSpec};

/// Campaign geometry: the fleet config both arms share, the traffic
/// horizon and the shed budget the verdict enforces.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Traffic/fault horizon per scenario.
    pub horizon: Duration,
    /// Verdict budget: worst failover-arm shed rate (‰ of scheduled)
    /// over the flood-family scenarios.
    pub shed_budget_permille: u64,
    /// The shared fleet geometry; [`FleetConfig::failover`] is overridden
    /// per arm.
    pub base: FleetConfig,
}

impl StormConfig {
    /// The standard campaign: 8 shards × 64 sources over a 1 s horizon,
    /// 16-deep shard queues, shed budget 120 ‰. Note that under pure
    /// floods δ⁻ admission caps each shard's admitted rate below its
    /// drain rate, so campaign sheds come from faults (fail-closed stall
    /// sheds, crash drops), not queue overflow — the budget bounds those.
    #[must_use]
    pub fn standard(engine: &str) -> Self {
        let mut base = FleetConfig::paper(8, 64);
        base.queue_capacity = 16;
        base.engine = engine.to_owned();
        StormConfig {
            horizon: Duration::from_millis(1000),
            shed_budget_permille: 120,
            base,
        }
    }

    /// The smoke campaign: 4 shards × 16 sources over 250 ms — small
    /// enough for CI, same families and verdict.
    #[must_use]
    pub fn smoke(engine: &str) -> Self {
        let mut base = FleetConfig::paper(4, 16);
        base.queue_capacity = 16;
        base.engine = engine.to_owned();
        StormConfig {
            horizon: Duration::from_millis(250),
            shed_budget_permille: 120,
            base,
        }
    }
}

/// What drives the fleet ingress in a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficKind {
    /// Open-loop Poisson flood, every source at mean rate `mean`.
    Flood {
        /// Per-source mean interarrival time.
        mean: Duration,
    },
    /// One typical-ECU trace per source ([`ecu_fleet`]).
    EcuFleet,
    /// An adversarial [`FaultScenario`] plan, concentrated onto the
    /// first [`HOT_SOURCES`] source ids round-robin — the paper's single
    /// misbehaving-line adversity aimed at a small victim set.
    FaultPlan {
        /// The injected adversity generating the arrivals.
        kind: FaultKind,
    },
}

/// How many source ids concentrated [`TrafficKind::FaultPlan`] traffic
/// lands on: small enough that storms and bursts stay well below `d_min`
/// per source, so a fresh-state restart demonstrably over-admits.
pub const HOT_SOURCES: u32 = 2;

impl TrafficKind {
    /// Stable machine-readable label.
    #[must_use]
    pub fn slug(&self) -> &'static str {
        match self {
            TrafficKind::Flood { .. } => "flood",
            TrafficKind::EcuFleet => "ecu-fleet",
            TrafficKind::FaultPlan { kind } => kind.slug(),
        }
    }
}

/// One storm scenario: a traffic generator plus a shard-fault adversity,
/// both pure functions of the scenario seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormScenario {
    /// Position in the campaign (stable across runs; part of the label).
    pub id: u32,
    /// Ingress traffic.
    pub traffic: TrafficKind,
    /// Shard-fault adversity (kind + seed); [`FaultKind::Nominal`] means
    /// no shard faults.
    pub fault: FaultScenario,
}

impl StormScenario {
    /// Stable scenario label, e.g. `00-flood-shard-crash`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{:02}-{}-{}",
            self.id,
            self.traffic.slug(),
            self.fault.kind.slug()
        )
    }

    /// Whether the adversity crashes shards (the failover-vs-baseline
    /// differentiator).
    #[must_use]
    pub fn crash_family(&self) -> bool {
        matches!(self.fault.kind, FaultKind::ShardCrash { .. })
    }

    /// Whether the scenario counts toward the shed budget: open-loop
    /// fleet-wide traffic without stalls (stall scenarios shed by design —
    /// that is the fail-closed contract, not an overload symptom).
    #[must_use]
    pub fn flood_family(&self) -> bool {
        matches!(
            self.traffic,
            TrafficKind::Flood { .. } | TrafficKind::EcuFleet
        ) && !matches!(self.fault.kind, FaultKind::ShardStall { .. })
    }
}

/// The seven storm families, cycled `count` times with per-scenario
/// derived seeds. Mirrors [`rthv_faults::standard_scenarios`]'s shape: the
/// list is a pure function of `(count, base_seed)`.
#[must_use]
pub fn storm_scenarios(count: u32, base_seed: u64, horizon: Duration) -> Vec<StormScenario> {
    let crash_period = Duration::from_nanos((horizon.as_nanos() / 5).max(1));
    let stall_period = Duration::from_nanos((horizon.as_nanos() / 4).max(1));
    let families: [(TrafficKind, FaultKind); 7] = [
        (
            TrafficKind::Flood {
                mean: Duration::from_micros(500),
            },
            FaultKind::ShardCrash {
                period: crash_period,
                crashes: 4,
            },
        ),
        (
            TrafficKind::EcuFleet,
            FaultKind::ShardStall {
                period: stall_period,
                stall: Duration::from_millis(2),
            },
        ),
        (
            TrafficKind::FaultPlan {
                kind: FaultKind::BurstyFlood {
                    burst: 24,
                    spacing: Duration::from_micros(20),
                    every: Duration::from_millis(4),
                },
            },
            FaultKind::ShardCrash {
                period: stall_period,
                crashes: 3,
            },
        ),
        (
            TrafficKind::Flood {
                mean: Duration::from_micros(300),
            },
            FaultKind::ShardCrash {
                period: stall_period,
                crashes: 3,
            },
        ),
        (
            TrafficKind::FaultPlan {
                kind: FaultKind::IrqStorm {
                    period: Duration::from_micros(400),
                },
            },
            FaultKind::ShardStall {
                period: crash_period,
                stall: Duration::from_millis(1),
            },
        ),
        (
            TrafficKind::Flood {
                mean: Duration::from_micros(250),
            },
            FaultKind::Nominal {
                period: Duration::from_millis(1),
            },
        ),
        (
            TrafficKind::Flood {
                mean: Duration::from_millis(3),
            },
            FaultKind::Nominal {
                period: Duration::from_millis(1),
            },
        ),
    ];
    (0..count)
        .map(|id| {
            let (traffic, kind) = families[(id as usize) % families.len()];
            StormScenario {
                id,
                traffic,
                fault: FaultScenario {
                    id,
                    kind,
                    seed: derive_seed(base_seed, id),
                },
            }
        })
        .collect()
}

/// Splitmix64 finalizer — the same derivation the flood generators use.
fn derive_seed(base: u64, lane: u32) -> u64 {
    let mut z = base ^ u64::from(lane).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Expands a scenario's traffic into the merged fleet arrival schedule.
#[must_use]
pub fn traffic_events(scenario: &StormScenario, config: &StormConfig) -> Vec<FloodEvent> {
    match scenario.traffic {
        TrafficKind::Flood { mean } => open_loop_flood(&FloodSpec {
            sources: config.base.sources,
            mean,
            horizon: config.horizon,
            seed: scenario.fault.seed ^ 0xF10_0D5,
        }),
        TrafficKind::EcuFleet => ecu_fleet(
            config.base.sources,
            config.horizon,
            scenario.fault.seed ^ 0xEC0_FA5,
        ),
        TrafficKind::FaultPlan { kind } => {
            let plan = FaultScenario {
                id: scenario.id,
                kind,
                seed: scenario.fault.seed ^ 0xAD_7E55,
            }
            .plan(config.horizon, config.base.service_cost);
            let hot = config.base.sources.min(HOT_SOURCES);
            plan.arrivals
                .iter()
                .enumerate()
                .map(|(i, a)| FloodEvent {
                    at: a.at,
                    source: (i as u32) % hot,
                })
                .collect()
        }
    }
}

/// Expands a scenario's [`FaultScenario`] into concrete shard faults:
/// crash/stall `i` strikes a seeded shard at `(i+1) · period` plus seeded
/// sub-period jitter. Nominal (and any non-shard) kinds inject nothing.
#[must_use]
pub fn fleet_faults(fault: &FaultScenario, shards: u32, horizon: Duration) -> Vec<ShardFault> {
    let mut rng = StdRng::seed_from_u64(fault.seed ^ 0x5AAD_FA17);
    let mut out = Vec::new();
    let horizon_ns = horizon.as_nanos();
    match fault.kind {
        FaultKind::ShardCrash { period, crashes } => {
            let period_ns = period.as_nanos().max(1);
            for i in 0..u64::from(crashes) {
                let jitter = rng.gen_range(0..(period_ns / 8).max(1));
                let at = (i + 1) * period_ns + jitter;
                let shard = rng.gen_range(0..shards);
                if at < horizon_ns {
                    out.push(ShardFault {
                        at: Instant::from_nanos(at),
                        shard,
                        kind: ShardFaultKind::Crash,
                    });
                }
            }
        }
        FaultKind::ShardStall { period, stall } => {
            let period_ns = period.as_nanos().max(1);
            let mut i = 0u64;
            loop {
                let jitter = rng.gen_range(0..(period_ns / 8).max(1));
                let at = (i + 1) * period_ns + jitter;
                let shard = rng.gen_range(0..shards);
                if at >= horizon_ns {
                    break;
                }
                out.push(ShardFault {
                    at: Instant::from_nanos(at),
                    shard,
                    kind: ShardFaultKind::Stall { duration: stall },
                });
                i += 1;
            }
        }
        FaultKind::CorrelatedCrash { window, k } => {
            // k crashes on k *distinct* shards, all landing inside one
            // window opening a third of the way into the run — the
            // correlated-failure burst a per-crash schedule cannot model.
            let window_ns = window.as_nanos().max(1);
            let open = horizon_ns / 3;
            let k = k.min(shards) as usize;
            let mut targets: Vec<u32> = (0..shards).collect();
            for i in 0..k {
                let j = rng.gen_range(i..targets.len());
                targets.swap(i, j);
            }
            for &shard in targets.iter().take(k) {
                let at = open + rng.gen_range(0..window_ns);
                if at < horizon_ns {
                    out.push(ShardFault {
                        at: Instant::from_nanos(at),
                        shard,
                        kind: ShardFaultKind::Crash,
                    });
                }
            }
        }
        FaultKind::FailoverStall { period, stall } => {
            // Crash, then a stall on the *same* shard right after its
            // failover — recovery immediately meets unresponsiveness.
            let period_ns = period.as_nanos().max(1);
            let mut i = 0u64;
            loop {
                let jitter = rng.gen_range(0..(period_ns / 8).max(1));
                let at = (i + 1) * period_ns + jitter;
                let shard = rng.gen_range(0..shards);
                if at >= horizon_ns {
                    break;
                }
                out.push(ShardFault {
                    at: Instant::from_nanos(at),
                    shard,
                    kind: ShardFaultKind::Crash,
                });
                let stall_at = at + 1;
                if stall_at < horizon_ns {
                    out.push(ShardFault {
                        at: Instant::from_nanos(stall_at),
                        shard,
                        kind: ShardFaultKind::Stall { duration: stall },
                    });
                }
                i += 1;
            }
        }
        FaultKind::RecoveryFlood { period, crashes } => {
            // The crash schedule of ShardCrash; the "flood" half is the
            // aggressor-tenant traffic overlay the tenant campaign pours
            // on top while these failovers run.
            let period_ns = period.as_nanos().max(1);
            for i in 0..u64::from(crashes) {
                let jitter = rng.gen_range(0..(period_ns / 8).max(1));
                let at = (i + 1) * period_ns + jitter;
                let shard = rng.gen_range(0..shards);
                if at < horizon_ns {
                    out.push(ShardFault {
                        at: Instant::from_nanos(at),
                        shard,
                        kind: ShardFaultKind::Crash,
                    });
                }
            }
        }
        _ => {}
    }
    out.sort_by_key(|f| (f.at, f.shard));
    out
}

/// One arm's distilled result: the ledger, the fleet-oracle verdict and
/// bin-quantized latency percentiles. Everything is an integer or a stable
/// slug, so the serialized form is byte-identical across hosts, engines
/// and resumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArmOutcome {
    /// Fleet-aggregated ledger.
    pub counters: ShardCounters,
    /// Fleet-oracle violation count.
    pub violations: u64,
    /// Sorted, de-duplicated violation-kind slugs.
    pub violation_kinds: Vec<&'static str>,
    /// Typed sheds per 1000 scheduled arrivals.
    pub shed_permille: u64,
    /// Median ingress-to-completion latency, quantized to the histogram
    /// bin's upper edge, in ns (−1 when nothing completed).
    pub p50_latency_ns: i64,
    /// 99th-percentile latency, same quantization.
    pub p99_latency_ns: i64,
    /// Exact worst completion latency in ns (−1 when nothing completed).
    pub max_latency_ns: i64,
}

impl ArmOutcome {
    fn distill(report: &FleetReport, config: &StormConfig) -> ArmOutcome {
        let violations = report.check(&config.base.delta, config.base.service_cost);
        ArmOutcome::distill_with(report, &violations)
    }

    /// Distills from a violation list the caller already computed (the
    /// tenant campaign inspects the list for budget-level slugs first).
    fn distill_with(report: &FleetReport, violations: &[Violation]) -> ArmOutcome {
        let mut kinds: Vec<&'static str> = violations.iter().map(|v| v.slug()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        let completed = report.latency.count();
        ArmOutcome {
            counters: report.counters,
            violations: violations.len() as u64,
            violation_kinds: kinds,
            shed_permille: report.shed_permille(),
            p50_latency_ns: percentile_ns(&report.latency, 500),
            p99_latency_ns: percentile_ns(&report.latency, 990),
            max_latency_ns: if completed == 0 {
                -1
            } else {
                report.max_latency.as_nanos() as i64
            },
        }
    }

    /// One-line JSON object (integers and stable slugs only).
    #[must_use]
    pub fn to_json(&self) -> String {
        let c = &self.counters;
        let kinds = self
            .violation_kinds
            .iter()
            .map(|k| format!("\"{k}\""))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\"scheduled\":{},\"admitted\":{},\"denied\":{},",
                "\"shed_queue_full\":{},\"shed_stalled\":{},\"shed_demoted\":{},",
                "\"lost_in_flight\":{},\"completed\":{},\"retries\":{},",
                "\"crashes\":{},\"stalls\":{},\"checkpoints\":{},",
                "\"journal_replayed\":{},\"shed_permille\":{},",
                "\"violations\":{},\"violation_kinds\":[{}],",
                "\"p50_latency_ns\":{},\"p99_latency_ns\":{},\"max_latency_ns\":{}}}"
            ),
            c.scheduled,
            c.admitted,
            c.denied,
            c.shed_queue_full,
            c.shed_stalled,
            c.shed_demoted,
            c.lost_in_flight,
            c.completed,
            c.retries,
            c.crashes,
            c.stalls,
            c.checkpoints,
            c.journal_replayed,
            self.shed_permille,
            self.violations,
            kinds,
            self.p50_latency_ns,
            self.p99_latency_ns,
            self.max_latency_ns,
        )
    }
}

/// `permille`-quantile latency as the upper edge of the bin holding that
/// rank, in ns. Ranks landing in the overflow bin report the histogram
/// range (a "≥ range" quantization); an empty histogram reports −1.
fn percentile_ns(latency: &LatencyHistogram, permille: u64) -> i64 {
    let total = latency.count();
    if total == 0 {
        return -1;
    }
    let target = (total * permille).div_ceil(1000).max(1);
    let mut cum = 0u64;
    for i in 0..latency.bins() {
        cum += latency.bin_count(i);
        if cum >= target {
            return (latency.bin_start(i) + latency.bin_width()).as_nanos() as i64;
        }
    }
    (latency.bin_start(latency.bins())).as_nanos() as i64
}

/// One scenario's two-arm result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormOutcome {
    /// Scenario label (stable across runs).
    pub label: String,
    /// Scenario seed.
    pub seed: u64,
    /// Shard-crash adversity?
    pub crash_family: bool,
    /// Counts toward the shed budget?
    pub flood_family: bool,
    /// Checkpoint-failover arm (the system under test).
    pub failover: ArmOutcome,
    /// Fresh-state baseline arm.
    pub baseline: ArmOutcome,
}

impl StormOutcome {
    /// The one-line JSON fragment embedded verbatim in report and journal.
    #[must_use]
    pub fn to_json_fragment(&self) -> String {
        format!(
            "{{\"label\":\"{}\",\"seed\":{},\"crash_family\":{},\"flood_family\":{},\"failover\":{},\"baseline\":{}}}",
            self.label,
            self.seed,
            u8::from(self.crash_family),
            u8::from(self.flood_family),
            self.failover.to_json(),
            self.baseline.to_json(),
        )
    }

    /// Distills the journal/report record.
    #[must_use]
    pub fn record(&self) -> ScenarioRecord {
        ScenarioRecord {
            label: self.label.clone(),
            seed: self.seed,
            crash_family: self.crash_family,
            flood_family: self.flood_family,
            failover_violations: self.failover.violations,
            baseline_violations: self.baseline.violations,
            shed_permille: self.failover.shed_permille,
            failover_sheds: self.failover.counters.shed_total(),
            failover_lost: self.failover.counters.lost_in_flight,
            fragment: self.to_json_fragment(),
        }
    }
}

/// The journal/report unit: the digest integers the verdict needs plus the
/// full JSON fragment spliced verbatim, so a `--resume` run assembles a
/// byte-identical report without re-serializing old results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioRecord {
    /// Scenario label.
    pub label: String,
    /// Scenario seed.
    pub seed: u64,
    /// Shard-crash adversity?
    pub crash_family: bool,
    /// Counts toward the shed budget?
    pub flood_family: bool,
    /// Failover-arm oracle violations.
    pub failover_violations: u64,
    /// Baseline-arm oracle violations.
    pub baseline_violations: u64,
    /// Failover-arm shed rate (‰).
    pub shed_permille: u64,
    /// Failover-arm typed sheds (queue-full + stalled + demoted).
    pub failover_sheds: u64,
    /// Failover-arm in-flight activations dropped by crashes.
    pub failover_lost: u64,
    /// Verbatim scenario JSON fragment.
    pub fragment: String,
}

impl ScenarioRecord {
    /// One journal line: `label seed crash flood failover_viol
    /// baseline_viol shed_permille sheds lost fragment`.
    #[must_use]
    pub fn to_journal_line(&self) -> String {
        format!(
            "{} {} {} {} {} {} {} {} {} {}",
            self.label,
            self.seed,
            u8::from(self.crash_family),
            u8::from(self.flood_family),
            self.failover_violations,
            self.baseline_violations,
            self.shed_permille,
            self.failover_sheds,
            self.failover_lost,
            self.fragment,
        )
    }

    /// Parses a journal line; `None` on any malformed field (torn tails
    /// are dropped by the journal reader before this sees them).
    #[must_use]
    pub fn parse_journal_line(line: &str) -> Option<ScenarioRecord> {
        let mut parts = line.splitn(10, ' ');
        let label = parts.next()?.to_owned();
        let seed = parts.next()?.parse().ok()?;
        let crash_family = match parts.next()? {
            "0" => false,
            "1" => true,
            _ => return None,
        };
        let flood_family = match parts.next()? {
            "0" => false,
            "1" => true,
            _ => return None,
        };
        let failover_violations = parts.next()?.parse().ok()?;
        let baseline_violations = parts.next()?.parse().ok()?;
        let shed_permille = parts.next()?.parse().ok()?;
        let failover_sheds = parts.next()?.parse().ok()?;
        let failover_lost = parts.next()?.parse().ok()?;
        let fragment = parts.next()?.to_owned();
        if !fragment.starts_with('{') || !fragment.ends_with('}') {
            return None;
        }
        Some(ScenarioRecord {
            label,
            seed,
            crash_family,
            flood_family,
            failover_violations,
            baseline_violations,
            shed_permille,
            failover_sheds,
            failover_lost,
            fragment,
        })
    }
}

/// Builds the observability hub matching a storm config: one gauge per
/// source, budgeted at `η⁺(gauge_window)` of the shared δ⁻ with the shard
/// service cost as the per-admission charge, and the fleet's latency
/// binning. Pure observation — feeding it never changes a campaign number.
#[must_use]
pub fn storm_hub(config: &StormConfig) -> MetricsHub {
    hub_for(&config.base)
}

/// The hub construction both campaigns share.
fn hub_for(base: &FleetConfig) -> MetricsHub {
    let obs = ObsConfig {
        latency_bin_width: base.latency_bin_width,
        latency_range: base.latency_range,
        ..ObsConfig::default()
    };
    let per_source = SourceObs {
        budget_events: Some(base.delta.eta_plus(obs.gauge_window)),
        effective_cost: base.service_cost,
    };
    let sources = vec![per_source; base.sources as usize];
    MetricsHub::new(obs, &sources)
}

/// Runs one scenario's two arms. The failover arm optionally feeds `hub`
/// (the baseline arm never does — it exists only to be caught by the
/// oracle, not to pollute the export).
pub fn run_storm_scenario(
    config: &StormConfig,
    scenario: &StormScenario,
    hub: Option<&mut MetricsHub>,
) -> Result<StormOutcome, FleetError> {
    let arrivals = traffic_events(scenario, config);
    let faults = fleet_faults(&scenario.fault, config.base.shards, config.horizon);

    let mut failover_cfg = config.base.clone();
    failover_cfg.failover = FailoverMode::Checkpoint;
    let failover_fleet = AdmitFleet::new(failover_cfg)?;
    let failover_report = failover_fleet.run(&arrivals, &faults, hub);

    let mut baseline_cfg = config.base.clone();
    baseline_cfg.failover = FailoverMode::FreshState;
    let baseline_fleet = AdmitFleet::new(baseline_cfg)?;
    let baseline_report = baseline_fleet.run(&arrivals, &faults, None);

    Ok(StormOutcome {
        label: scenario.label(),
        seed: scenario.fault.seed,
        crash_family: scenario.crash_family(),
        flood_family: scenario.flood_family(),
        failover: ArmOutcome::distill(&failover_report, config),
        baseline: ArmOutcome::distill(&baseline_report, config),
    })
}

/// Assembles the deterministic campaign report from scenario records (in
/// campaign order): a config header, the verbatim fragments, totals and
/// the three-part verdict.
#[must_use]
pub fn assemble_report(config: &StormConfig, base_seed: u64, records: &[ScenarioRecord]) -> String {
    let crash_records: Vec<&ScenarioRecord> = records.iter().filter(|r| r.crash_family).collect();
    // Baseline breakage is structurally guaranteed only for fleet-wide
    // floods (every shard hosts sub-d_min-dense sources, so any crash cut
    // lands inside pending traffic); concentrated fault-plan crashes may
    // miss the hot shards and merely contribute to the totals.
    let crash_flood_records: Vec<&ScenarioRecord> = crash_records
        .iter()
        .copied()
        .filter(|r| r.flood_family)
        .collect();
    let failover_violations: u64 = records.iter().map(|r| r.failover_violations).sum();
    let baseline_violations: u64 = records.iter().map(|r| r.baseline_violations).sum();
    let failover_sheds: u64 = records.iter().map(|r| r.failover_sheds).sum();
    let failover_lost: u64 = records.iter().map(|r| r.failover_lost).sum();
    let worst_flood_shed = records
        .iter()
        .filter(|r| r.flood_family)
        .map(|r| r.shed_permille)
        .max()
        .unwrap_or(0);
    let failover_clean = failover_violations == 0;
    let baseline_broken = !crash_flood_records.is_empty()
        && crash_flood_records
            .iter()
            .all(|r| r.baseline_violations > 0);
    let shed_within_budget = worst_flood_shed <= config.shed_budget_permille;
    let pass = failover_clean && baseline_broken && shed_within_budget;

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"shards\":{},\"sources\":{},\"horizon_ns\":{},\"queue_capacity\":{},\"service_cost_ns\":{},\"max_retries\":{},\"retry_backoff_ns\":{},\"shed_watermark_permille\":{},\"checkpoint_every\":{},\"shed_budget_permille\":{},\"base_seed\":{}}},\n",
        config.base.shards,
        config.base.sources,
        config.horizon.as_nanos(),
        config.base.queue_capacity,
        config.base.service_cost.as_nanos(),
        config.base.max_retries,
        config.base.retry_backoff.as_nanos(),
        config.base.shed_watermark_permille,
        config.base.checkpoint_every,
        config.shed_budget_permille,
        base_seed,
    ));
    out.push_str("  \"scenarios\": [\n");
    for (i, record) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        out.push_str(&format!("    {}{}\n", record.fragment, comma));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"totals\": {{\"scenarios\":{},\"crash_scenarios\":{},\"failover_violations\":{},\"baseline_violations\":{},\"failover_sheds\":{},\"failover_lost_in_flight\":{},\"worst_flood_shed_permille\":{}}},\n",
        records.len(),
        crash_records.len(),
        failover_violations,
        baseline_violations,
        failover_sheds,
        failover_lost,
        worst_flood_shed,
    ));
    out.push_str(&format!(
        "  \"verdict\": {{\"failover_clean\":{failover_clean},\"baseline_broken\":{baseline_broken},\"shed_within_budget\":{shed_within_budget},\"pass\":{pass}}}\n",
    ));
    out.push_str("}\n");
    out
}

/// Whether an assembled report's verdict passes (used by the binary's
/// exit code and the smoke gate).
#[must_use]
pub fn report_passes(report: &str) -> bool {
    report.contains("\"pass\":true")
}

// ---------------------------------------------------------------------------
// Tenant-isolation campaign
// ---------------------------------------------------------------------------

/// Geometry of the tenant-isolation campaign: a two-tenant fleet (victim
/// first, aggressor second), sparse baseline traffic every source emits,
/// and a dense aggressor-only overlay that switches on mid-run. The queue
/// is deliberately shallow and the service cost deliberately high so the
/// δ⁻-capped aggressor rate exceeds the per-shard drain rate: the *flat*
/// ablation's shared queues overflow into the victim's arrivals, while the
/// hierarchy's group budget brownouts the aggressor and the victim's
/// stream stays byte-identical to a calm run.
#[derive(Debug, Clone)]
pub struct TenantStormConfig {
    /// Traffic/fault horizon per scenario.
    pub horizon: Duration,
    /// Sparse baseline mean interarrival per source (both tenants).
    pub victim_mean: Duration,
    /// Dense overlay mean interarrival per aggressor source.
    pub overlay_mean: Duration,
    /// Overlay onset — the calm prefix before the aggressor turns on.
    pub overlay_onset: Duration,
    /// The shared fleet geometry; `tenancy` is `Some` here and stripped
    /// for the flat-ablation arms.
    pub base: FleetConfig,
}

/// Shared base for both tenant-campaign sizes: shallow queues, heavy
/// service cost (per-shard drain 1.25/ms against a δ⁻ cap of 1/ms per
/// source), and a two-tenant split with the aggressor owning the upper
/// half of the id space. Budget sums equal the global budget exactly, so
/// the global level is a pure backstop — the oracle still checks it.
fn tenant_fleet_base(
    shards: u32,
    sources: u32,
    engine: &str,
    victim_budget: u64,
    aggressor_budget: u64,
) -> FleetConfig {
    let mut base = FleetConfig::paper(shards, sources);
    base.queue_capacity = 8;
    base.service_cost = Duration::from_micros(800);
    // Disable the per-source watermark ladder (a 1000 ‰ watermark sits at
    // the queue-full check, which fires first). The ladder only demotes
    // sources the δ⁻ monitor has already marked sick, so it shields
    // victims from *non-conformant* aggressors — exactly the defense the
    // tenant hierarchy must not get credit for. With it off, the flat
    // ablation shows the raw shared-queue interference; the hierarchy arm
    // must win on group budgets and lanes alone.
    base.shed_watermark_permille = 1000;
    base.engine = engine.to_owned();
    let half = sources / 2;
    base.tenancy = Some(TenantConfig {
        window: Duration::from_millis(10),
        global_budget: victim_budget + aggressor_budget,
        tenants: vec![
            TenantSpec {
                sources: half,
                budget: victim_budget,
            },
            TenantSpec {
                sources: sources - half,
                budget: aggressor_budget,
            },
        ],
        brownout: BrownoutPolicy::default(),
        seed: 0x7E4A_5EED,
        retry_ladder: true,
    });
    base
}

impl TenantStormConfig {
    /// The standard tenant campaign: 8 shards × 64 sources over 1 s.
    #[must_use]
    pub fn standard(engine: &str) -> Self {
        TenantStormConfig {
            horizon: Duration::from_millis(1000),
            victim_mean: Duration::from_millis(6),
            overlay_mean: Duration::from_micros(300),
            overlay_onset: Duration::from_millis(150),
            base: tenant_fleet_base(8, 64, engine, 120, 160),
        }
    }

    /// The smoke tenant campaign: 4 shards × 16 sources over 250 ms.
    #[must_use]
    pub fn smoke(engine: &str) -> Self {
        TenantStormConfig {
            horizon: Duration::from_millis(250),
            victim_mean: Duration::from_millis(6),
            overlay_mean: Duration::from_micros(300),
            overlay_onset: Duration::from_millis(40),
            base: tenant_fleet_base(4, 16, engine, 40, 60),
        }
    }

    /// The tenancy this campaign runs under.
    ///
    /// # Panics
    ///
    /// Panics if the base config carries no tenancy — the constructors
    /// always set one.
    #[must_use]
    pub fn tenancy(&self) -> &TenantConfig {
        self.base
            .tenancy
            .as_ref()
            .expect("tenant storm config carries a tenancy")
    }
}

/// One tenant-campaign scenario: a correlated-failure adversity struck
/// while the aggressor overlay floods. `identity_family` marks crash-only
/// adversities, where the victim's admitted stream must be byte-identical
/// to the calm run; stall families legitimately move victim arrivals
/// (fail-closed sheds and retries hit whoever meets the stalled shard), so
/// they are exercised for oracle-cleanliness, not byte-identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantScenario {
    /// Position in the campaign (stable across runs; part of the label).
    pub id: u32,
    /// Correlated-failure adversity (kind + seed).
    pub fault: FaultScenario,
    /// Does the byte-identity predicate apply?
    pub identity_family: bool,
}

impl TenantScenario {
    /// Stable scenario label, e.g. `t00-correlated-crash`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("t{:02}-{}", self.id, self.fault.kind.slug())
    }
}

/// The three correlated-failure families, cycled `count` times with
/// per-scenario derived seeds — a pure function of `(count, base_seed)`.
#[must_use]
pub fn tenant_scenarios(count: u32, base_seed: u64, horizon: Duration) -> Vec<TenantScenario> {
    let burst_window = Duration::from_nanos((horizon.as_nanos() / 8).max(1));
    let stall_period = Duration::from_nanos((horizon.as_nanos() / 4).max(1));
    let crash_period = Duration::from_nanos((horizon.as_nanos() / 5).max(1));
    let families: [(FaultKind, bool); 3] = [
        (
            FaultKind::CorrelatedCrash {
                window: burst_window,
                k: 3,
            },
            true,
        ),
        (
            FaultKind::FailoverStall {
                period: stall_period,
                stall: Duration::from_millis(2),
            },
            false,
        ),
        (
            FaultKind::RecoveryFlood {
                period: crash_period,
                crashes: 3,
            },
            true,
        ),
    ];
    (0..count)
        .map(|id| {
            let (kind, identity_family) = families[(id as usize) % families.len()];
            TenantScenario {
                id,
                fault: FaultScenario {
                    id,
                    kind,
                    seed: derive_seed(base_seed ^ 0x007E_4A07, id),
                },
                identity_family,
            }
        })
        .collect()
}

/// One tenant's admitted stream pulled from *any* report — including flat
/// runs, where `FleetReport::tenant_of` is empty — by filtering on the
/// source-id range the tenancy assigns that tenant.
fn range_stream(report: &FleetReport, range: &std::ops::Range<u32>) -> Vec<(Instant, u32)> {
    let mut merged: Vec<(Instant, u32)> = report
        .admitted
        .iter()
        .enumerate()
        .filter(|&(source, _)| range.contains(&(source as u32)))
        .flat_map(|(source, times)| times.iter().map(move |&at| (at, source as u32)))
        .collect();
    merged.sort_unstable();
    merged
}

/// One-line JSON for a tenant's run ledger (integers and slugs only).
fn tenant_ledger_json(tenant: usize, ledger: &TenantLedger) -> String {
    let c = &ledger.counters;
    format!(
        concat!(
            "{{\"tenant\":{},\"scheduled\":{},\"admitted\":{},",
            "\"denied_source\":{},\"denied_group\":{},\"denied_global\":{},",
            "\"shed_queue_full\":{},\"shed_stalled\":{},\"shed_demoted\":{},",
            "\"shed_quarantined\":{},\"lost_in_flight\":{},\"completed\":{},",
            "\"retries\":{},\"rescued\":{},\"in_flight_at_end\":{},",
            "\"final_level\":\"{}\",\"escalations\":{},\"recoveries\":{},",
            "\"headroom_at_end\":{}}}"
        ),
        tenant,
        c.scheduled,
        c.admitted,
        c.denied_source,
        c.denied_group,
        c.denied_global,
        c.shed_queue_full,
        c.shed_stalled,
        c.shed_demoted,
        c.shed_quarantined,
        c.lost_in_flight,
        c.completed,
        c.retries,
        c.rescued,
        ledger.in_flight_at_end,
        ledger.final_level.slug(),
        ledger.escalations,
        ledger.recoveries,
        ledger.headroom_at_end,
    )
}

/// One tenant scenario's four-arm result: the hierarchy under calm and
/// storm, and the flat ablation under both (only the flat-calm victim
/// count is kept — it is the baseline the flat diff is taken against).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantOutcome {
    /// Scenario label (stable across runs).
    pub label: String,
    /// Scenario seed.
    pub seed: u64,
    /// Does the byte-identity predicate apply?
    pub identity_family: bool,
    /// Victim stream byte-identical between hierarchy storm and calm?
    pub hier_isolated: bool,
    /// Victim stream *moved* between flat storm and flat calm?
    pub flat_violates: bool,
    /// Group-budget oracle violations across both hierarchy arms.
    pub group_budget_violations: u64,
    /// Global-budget oracle violations across both hierarchy arms.
    pub global_budget_violations: u64,
    /// Victim tenant's typed-shed rate (‰) in the hierarchy storm arm.
    pub victim_shed_permille: u64,
    /// Aggressor's final brownout level in the hierarchy storm arm.
    pub aggressor_level: &'static str,
    /// Victim admissions, hierarchy calm arm.
    pub victim_admitted_hier_calm: u64,
    /// Victim admissions, hierarchy storm arm.
    pub victim_admitted_hier_storm: u64,
    /// Victim admissions, flat calm arm.
    pub victim_admitted_flat_calm: u64,
    /// Victim admissions, flat storm arm.
    pub victim_admitted_flat_storm: u64,
    /// Hierarchy calm arm.
    pub hier_calm: ArmOutcome,
    /// Hierarchy storm arm (the system under test).
    pub hier_storm: ArmOutcome,
    /// Flat-ablation storm arm.
    pub flat_storm: ArmOutcome,
    /// Per-tenant ledgers of the hierarchy storm arm.
    pub tenants: Vec<TenantLedger>,
}

impl TenantOutcome {
    /// The one-line JSON fragment embedded verbatim in report and journal.
    #[must_use]
    pub fn to_json_fragment(&self) -> String {
        let ledgers = self
            .tenants
            .iter()
            .enumerate()
            .map(|(t, l)| tenant_ledger_json(t, l))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\"label\":\"{}\",\"seed\":{},\"identity_family\":{},",
                "\"hier_isolated\":{},\"flat_violates\":{},",
                "\"group_budget_violations\":{},\"global_budget_violations\":{},",
                "\"victim_shed_permille\":{},\"aggressor_level\":\"{}\",",
                "\"victim_admitted\":{{\"hier_calm\":{},\"hier_storm\":{},",
                "\"flat_calm\":{},\"flat_storm\":{}}},",
                "\"tenants\":[{}],",
                "\"hier_calm\":{},\"hier_storm\":{},\"flat_storm\":{}}}"
            ),
            self.label,
            self.seed,
            u8::from(self.identity_family),
            u8::from(self.hier_isolated),
            u8::from(self.flat_violates),
            self.group_budget_violations,
            self.global_budget_violations,
            self.victim_shed_permille,
            self.aggressor_level,
            self.victim_admitted_hier_calm,
            self.victim_admitted_hier_storm,
            self.victim_admitted_flat_calm,
            self.victim_admitted_flat_storm,
            ledgers,
            self.hier_calm.to_json(),
            self.hier_storm.to_json(),
            self.flat_storm.to_json(),
        )
    }

    /// Distills the journal/report record.
    #[must_use]
    pub fn record(&self) -> TenantRecord {
        TenantRecord {
            label: self.label.clone(),
            seed: self.seed,
            identity_family: self.identity_family,
            hier_isolated: self.hier_isolated,
            flat_violates: self.flat_violates,
            hier_violations: self.hier_calm.violations + self.hier_storm.violations,
            flat_violations: self.flat_storm.violations,
            group_budget_violations: self.group_budget_violations,
            global_budget_violations: self.global_budget_violations,
            victim_shed_permille: self.victim_shed_permille,
            victim_admitted_flat_calm: self.victim_admitted_flat_calm,
            victim_admitted_flat_storm: self.victim_admitted_flat_storm,
            fragment: self.to_json_fragment(),
        }
    }
}

/// The tenant campaign's journal/report unit: verdict digests plus the
/// full JSON fragment spliced verbatim on `--resume`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantRecord {
    /// Scenario label.
    pub label: String,
    /// Scenario seed.
    pub seed: u64,
    /// Does the byte-identity predicate apply?
    pub identity_family: bool,
    /// Victim stream byte-identical between hierarchy storm and calm?
    pub hier_isolated: bool,
    /// Victim stream moved between flat storm and flat calm?
    pub flat_violates: bool,
    /// Oracle violations across both hierarchy arms.
    pub hier_violations: u64,
    /// Oracle violations in the flat storm arm.
    pub flat_violations: u64,
    /// Group-budget oracle violations across the hierarchy arms.
    pub group_budget_violations: u64,
    /// Global-budget oracle violations across the hierarchy arms.
    pub global_budget_violations: u64,
    /// Victim typed-shed rate (‰), hierarchy storm arm.
    pub victim_shed_permille: u64,
    /// Victim admissions, flat calm arm.
    pub victim_admitted_flat_calm: u64,
    /// Victim admissions, flat storm arm.
    pub victim_admitted_flat_storm: u64,
    /// Verbatim scenario JSON fragment.
    pub fragment: String,
}

impl TenantRecord {
    /// One journal line: `label seed identity isolated violates hier_viol
    /// flat_viol group_viol global_viol shed flat_calm flat_storm
    /// fragment`.
    #[must_use]
    pub fn to_journal_line(&self) -> String {
        format!(
            "{} {} {} {} {} {} {} {} {} {} {} {} {}",
            self.label,
            self.seed,
            u8::from(self.identity_family),
            u8::from(self.hier_isolated),
            u8::from(self.flat_violates),
            self.hier_violations,
            self.flat_violations,
            self.group_budget_violations,
            self.global_budget_violations,
            self.victim_shed_permille,
            self.victim_admitted_flat_calm,
            self.victim_admitted_flat_storm,
            self.fragment,
        )
    }

    /// Parses a journal line; `None` on any malformed field.
    #[must_use]
    pub fn parse_journal_line(line: &str) -> Option<TenantRecord> {
        fn flag(part: &str) -> Option<bool> {
            match part {
                "0" => Some(false),
                "1" => Some(true),
                _ => None,
            }
        }
        let mut parts = line.splitn(13, ' ');
        let label = parts.next()?.to_owned();
        let seed = parts.next()?.parse().ok()?;
        let identity_family = flag(parts.next()?)?;
        let hier_isolated = flag(parts.next()?)?;
        let flat_violates = flag(parts.next()?)?;
        let hier_violations = parts.next()?.parse().ok()?;
        let flat_violations = parts.next()?.parse().ok()?;
        let group_budget_violations = parts.next()?.parse().ok()?;
        let global_budget_violations = parts.next()?.parse().ok()?;
        let victim_shed_permille = parts.next()?.parse().ok()?;
        let victim_admitted_flat_calm = parts.next()?.parse().ok()?;
        let victim_admitted_flat_storm = parts.next()?.parse().ok()?;
        let fragment = parts.next()?.to_owned();
        if !fragment.starts_with('{') || !fragment.ends_with('}') {
            return None;
        }
        Some(TenantRecord {
            label,
            seed,
            identity_family,
            hier_isolated,
            flat_violates,
            hier_violations,
            flat_violations,
            group_budget_violations,
            global_budget_violations,
            victim_shed_permille,
            victim_admitted_flat_calm,
            victim_admitted_flat_storm,
            fragment,
        })
    }
}

/// Builds the observability hub matching a tenant campaign config.
#[must_use]
pub fn tenant_storm_hub(config: &TenantStormConfig) -> MetricsHub {
    hub_for(&config.base)
}

/// Runs one tenant scenario's four arms. Only the hierarchy storm arm
/// (the system under test) optionally feeds `hub`.
///
/// # Errors
///
/// Propagates [`FleetError`] from fleet construction (invalid tenancy,
/// unknown engine) — the campaign config is validated loudly, never
/// silently repaired.
pub fn run_tenant_scenario(
    config: &TenantStormConfig,
    scenario: &TenantScenario,
    hub: Option<&mut MetricsHub>,
) -> Result<TenantOutcome, FleetError> {
    let tenancy = config.tenancy();
    let victim = tenancy.source_range(0);
    let aggressor = tenancy.source_range(1);

    let calm = open_loop_flood(&FloodSpec {
        sources: config.base.sources,
        mean: config.victim_mean,
        horizon: config.horizon,
        seed: scenario.fault.seed ^ 0x7E4A_F10D,
    });
    let storm = flood_overlay(
        &calm,
        &OverlaySpec {
            first_source: aggressor.start,
            sources: aggressor.end - aggressor.start,
            mean: config.overlay_mean,
            onset: config.overlay_onset,
            horizon: config.horizon,
            seed: scenario.fault.seed ^ 0x0A66_0E55,
        },
    );
    let faults = fleet_faults(&scenario.fault, config.base.shards, config.horizon);

    let mut hier_cfg = config.base.clone();
    hier_cfg.failover = FailoverMode::Checkpoint;
    let mut flat_cfg = hier_cfg.clone();
    flat_cfg.tenancy = None;
    let hier_fleet = AdmitFleet::new(hier_cfg)?;
    let flat_fleet = AdmitFleet::new(flat_cfg)?;

    let hier_calm_report = hier_fleet.run(&calm, &[], None);
    let hier_storm_report = hier_fleet.run(&storm, &faults, hub);
    let flat_calm_report = flat_fleet.run(&calm, &[], None);
    let flat_storm_report = flat_fleet.run(&storm, &faults, None);

    let delta = &config.base.delta;
    let cost = config.base.service_cost;
    let hier_calm_violations = hier_calm_report.check(delta, cost);
    let hier_storm_violations = hier_storm_report.check(delta, cost);
    let flat_storm_violations = flat_storm_report.check(delta, cost);
    let budget_count = |violations: &[Violation], slug: &str| {
        violations.iter().filter(|v| v.slug() == slug).count() as u64
    };

    let victim_calm = range_stream(&hier_calm_report, &victim);
    let victim_storm = range_stream(&hier_storm_report, &victim);
    let victim_flat_calm = range_stream(&flat_calm_report, &victim);
    let victim_flat_storm = range_stream(&flat_storm_report, &victim);

    Ok(TenantOutcome {
        label: scenario.label(),
        seed: scenario.fault.seed,
        identity_family: scenario.identity_family,
        hier_isolated: victim_storm == victim_calm,
        flat_violates: victim_flat_storm != victim_flat_calm,
        group_budget_violations: budget_count(&hier_calm_violations, "group-budget")
            + budget_count(&hier_storm_violations, "group-budget"),
        global_budget_violations: budget_count(&hier_calm_violations, "global-budget")
            + budget_count(&hier_storm_violations, "global-budget"),
        victim_shed_permille: hier_storm_report.tenants[0].counters.shed_permille(),
        aggressor_level: hier_storm_report.tenants[1].final_level.slug(),
        victim_admitted_hier_calm: victim_calm.len() as u64,
        victim_admitted_hier_storm: victim_storm.len() as u64,
        victim_admitted_flat_calm: victim_flat_calm.len() as u64,
        victim_admitted_flat_storm: victim_flat_storm.len() as u64,
        hier_calm: ArmOutcome::distill_with(&hier_calm_report, &hier_calm_violations),
        hier_storm: ArmOutcome::distill_with(&hier_storm_report, &hier_storm_violations),
        flat_storm: ArmOutcome::distill_with(&flat_storm_report, &flat_storm_violations),
        tenants: hier_storm_report.tenants.clone(),
    })
}

/// Assembles the deterministic tenant-campaign report: a config header,
/// the verbatim fragments, totals and the four-part verdict
/// (`hier_clean`, `tenant_isolated`, `flat_ablation_broken`,
/// `budgets_clean`).
#[must_use]
pub fn assemble_tenant_report(
    config: &TenantStormConfig,
    base_seed: u64,
    records: &[TenantRecord],
) -> String {
    let tenancy = config.tenancy();
    let identity: Vec<&TenantRecord> = records.iter().filter(|r| r.identity_family).collect();
    let hier_violations: u64 = records.iter().map(|r| r.hier_violations).sum();
    let flat_violations: u64 = records.iter().map(|r| r.flat_violations).sum();
    let group_budget_violations: u64 = records.iter().map(|r| r.group_budget_violations).sum();
    let global_budget_violations: u64 = records.iter().map(|r| r.global_budget_violations).sum();
    let worst_victim_shed = records
        .iter()
        .map(|r| r.victim_shed_permille)
        .max()
        .unwrap_or(0);
    let flat_victim_lost: u64 = records
        .iter()
        .map(|r| {
            r.victim_admitted_flat_calm
                .saturating_sub(r.victim_admitted_flat_storm)
        })
        .sum();
    let hier_clean = hier_violations == 0;
    let tenant_isolated = !identity.is_empty() && identity.iter().all(|r| r.hier_isolated);
    let flat_ablation_broken = !identity.is_empty() && identity.iter().all(|r| r.flat_violates);
    let budgets_clean = group_budget_violations == 0 && global_budget_violations == 0;
    let pass = hier_clean && tenant_isolated && flat_ablation_broken && budgets_clean;

    let budgets = tenancy
        .tenants
        .iter()
        .map(|t| t.budget.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        concat!(
            "  \"config\": {{\"shards\":{},\"sources\":{},\"horizon_ns\":{},",
            "\"queue_capacity\":{},\"service_cost_ns\":{},\"window_ns\":{},",
            "\"global_budget\":{},\"budgets\":[{}],\"retry_ladder\":{},",
            "\"victim_mean_ns\":{},\"overlay_mean_ns\":{},\"overlay_onset_ns\":{},",
            "\"base_seed\":{}}},\n"
        ),
        config.base.shards,
        config.base.sources,
        config.horizon.as_nanos(),
        config.base.queue_capacity,
        config.base.service_cost.as_nanos(),
        tenancy.window.as_nanos(),
        tenancy.global_budget,
        budgets,
        tenancy.retry_ladder,
        config.victim_mean.as_nanos(),
        config.overlay_mean.as_nanos(),
        config.overlay_onset.as_nanos(),
        base_seed,
    ));
    out.push_str("  \"scenarios\": [\n");
    for (i, record) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        out.push_str(&format!("    {}{}\n", record.fragment, comma));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        concat!(
            "  \"totals\": {{\"scenarios\":{},\"identity_scenarios\":{},",
            "\"hier_violations\":{},\"flat_violations\":{},",
            "\"group_budget_violations\":{},\"global_budget_violations\":{},",
            "\"worst_victim_shed_permille\":{},\"flat_victim_lost\":{}}},\n"
        ),
        records.len(),
        identity.len(),
        hier_violations,
        flat_violations,
        group_budget_violations,
        global_budget_violations,
        worst_victim_shed,
        flat_victim_lost,
    ));
    out.push_str(&format!(
        "  \"verdict\": {{\"hier_clean\":{hier_clean},\"tenant_isolated\":{tenant_isolated},\"flat_ablation_broken\":{flat_ablation_broken},\"budgets_clean\":{budgets_clean},\"pass\":{pass}}}\n",
    ));
    out.push_str("}\n");
    out
}
