//! Hierarchical per-tenant δ⁻ isolation: group budgets, the global
//! interference budget, and the adaptive brownout controller.
//!
//! Every source belongs to exactly one tenant. An arrival is admitted only
//! if three levels pass, in order: the source's own δ⁻ monitor, the
//! tenant's *group budget* (an aggregate [`ActivationMonitor`] /
//! [`WindowBudget`] pair enforcing "at most B admissions in any window W"
//! over the tenant's merged stream), and the fleet's *global budget*
//! (a [`WindowBudget`] over the union of all tenants, sized from the
//! Eq. 13–16 interference bound). Each refusal is typed by the level that
//! refused; nothing is silently clamped or silently admitted.
//!
//! Because construction rejects tenant budgets whose sum exceeds the
//! global budget, the global level is a pure backstop: a tenant inside its
//! own group budget can never be refused globally (in any window each
//! tenant contributes at most its group budget, so the union stays under
//! the sum). That is the root of the isolation theorem the fleet tests
//! pin — overload in one tenant cannot move another tenant's admitted
//! stream by even one byte.
//!
//! The brownout controller is deterministic and seed-driven — it consumes
//! only the fleet's virtual clock and the tenant's *own* outcomes, never a
//! wall clock — and degrades an overloaded tenant through a ladder:
//! shrink the group budget, demote to best-effort service slots, and
//! finally quarantine the tenant, with hysteresis-guarded recovery whose
//! hold time is jittered from the seed so fleets don't un-brown in
//! lockstep.

use std::collections::VecDeque;
use std::fmt;

use rthv_monitor::{ActivationMonitor, Admission, DeltaFunction};
use rthv_time::{Duration, Instant};

/// Largest accepted per-tenant group budget (admissions per window). The
/// aggregate monitor keeps one trace slot per budgeted admission, so an
/// unbounded budget would be an unbounded arena — reject it as a typed
/// overflow instead of clamping.
pub const MAX_GROUP_BUDGET: u64 = 4096;

/// One tenant: how many of the fleet's dense source ids it owns (tenants
/// partition `0..sources` contiguously, in declaration order) and its
/// group budget in admissions per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSpec {
    /// Number of consecutive source ids owned by this tenant.
    pub sources: u32,
    /// Group budget: at most this many admissions in any sliding window.
    pub budget: u64,
}

/// Why a tenant configuration was rejected. Mirrors the fleet's
/// no-silent-fallback rule: an invalid budget is a typed error at
/// construction, never a clamp at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantBudgetError {
    /// The tenancy declares no tenants at all.
    NoTenants,
    /// The budget window is zero — every budget would be vacuous.
    ZeroWindow,
    /// The global budget is zero — nothing could ever be admitted.
    ZeroGlobal,
    /// A tenant owns zero sources.
    ZeroSources {
        /// The offending tenant index.
        tenant: usize,
    },
    /// A tenant's group budget is zero — it could never admit.
    ZeroBudget {
        /// The offending tenant index.
        tenant: usize,
    },
    /// A tenant's group budget exceeds [`MAX_GROUP_BUDGET`].
    BudgetOverflow {
        /// The offending tenant index.
        tenant: usize,
        /// The rejected budget.
        budget: u64,
    },
    /// The sum of all group budgets overflows `u64`.
    SumOverflow,
    /// The sum of all group budgets exceeds the global budget, which would
    /// let tenants interfere through the global level.
    SumExceedsGlobal {
        /// Sum of the group budgets.
        sum: u64,
        /// The global budget they must fit under.
        global: u64,
    },
    /// The tenants' source counts do not partition the fleet's id space.
    SourceSplit {
        /// Sum of per-tenant source counts.
        assigned: u32,
        /// The fleet's source count.
        sources: u32,
    },
}

impl fmt::Display for TenantBudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenantBudgetError::NoTenants => f.write_str("tenancy declares no tenants"),
            TenantBudgetError::ZeroWindow => f.write_str("tenant budget window must be positive"),
            TenantBudgetError::ZeroGlobal => f.write_str("global budget must be positive"),
            TenantBudgetError::ZeroSources { tenant } => {
                write!(f, "tenant {tenant} owns zero sources")
            }
            TenantBudgetError::ZeroBudget { tenant } => {
                write!(f, "tenant {tenant} has a zero group budget")
            }
            TenantBudgetError::BudgetOverflow { tenant, budget } => write!(
                f,
                "tenant {tenant} group budget {budget} exceeds the maximum {MAX_GROUP_BUDGET}"
            ),
            TenantBudgetError::SumOverflow => f.write_str("sum of group budgets overflows u64"),
            TenantBudgetError::SumExceedsGlobal { sum, global } => write!(
                f,
                "sum of group budgets {sum} exceeds the global budget {global}"
            ),
            TenantBudgetError::SourceSplit { assigned, sources } => write!(
                f,
                "tenant source counts sum to {assigned} but the fleet has {sources} sources"
            ),
        }
    }
}

impl std::error::Error for TenantBudgetError {}

/// The two-level budget hierarchy plus overload policy. Plugged into
/// `FleetConfig::tenancy`; `None` keeps the flat single-level fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantConfig {
    /// Sliding-window width shared by every group budget, the global
    /// budget and the brownout controller's tumbling windows.
    pub window: Duration,
    /// Global budget: at most this many admissions fleet-wide in any
    /// window. Derive it from the Eq. 13–16 bound with
    /// [`global_budget_for_bound`]; validation requires it to cover the
    /// sum of the group budgets.
    pub global_budget: u64,
    /// The tenants, partitioning `0..sources` contiguously in order.
    pub tenants: Vec<TenantSpec>,
    /// Brownout (adaptive overload) policy shared by all tenants.
    pub brownout: BrownoutPolicy,
    /// Seed for the brownout hold-time jitter — the only randomness in the
    /// hierarchy, and it is pure: same seed, same run.
    pub seed: u64,
    /// When `true`, arrivals that hit a stalled shard enter a bounded
    /// retry-with-backoff ladder (re-enqueued fleet events) instead of the
    /// flat fleet's arithmetic fail-closed check. Rescued arrivals are
    /// admitted at their retry instant.
    pub retry_ladder: bool,
}

impl TenantConfig {
    /// An even split: `tenants` tenants sharing `sources` sources as
    /// equally as possible (the remainder goes to the first tenants), each
    /// with group budget `budget`, under a global budget of exactly the
    /// sum.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is zero or exceeds `sources`.
    #[must_use]
    pub fn even_split(tenants: u32, sources: u32, budget: u64, window: Duration) -> Self {
        assert!(tenants > 0, "tenancy needs at least one tenant");
        assert!(tenants <= sources, "more tenants than sources");
        let base = sources / tenants;
        let extra = sources % tenants;
        let tenants: Vec<TenantSpec> = (0..tenants)
            .map(|t| TenantSpec {
                sources: base + u32::from(t < extra),
                budget,
            })
            .collect();
        let global = budget * tenants.len() as u64;
        TenantConfig {
            window,
            global_budget: global,
            tenants,
            brownout: BrownoutPolicy::default(),
            seed: 0xB10C_A11E,
            retry_ladder: false,
        }
    }

    /// Validates the hierarchy against a fleet of `sources` sources.
    ///
    /// # Errors
    ///
    /// One typed [`TenantBudgetError`] per rejection class — zero and
    /// overflowing budgets, budget sums that escape the global budget, and
    /// source splits that do not partition the id space.
    pub fn validate(&self, sources: u32) -> Result<(), TenantBudgetError> {
        if self.tenants.is_empty() {
            return Err(TenantBudgetError::NoTenants);
        }
        if self.window.is_zero() {
            return Err(TenantBudgetError::ZeroWindow);
        }
        if self.global_budget == 0 {
            return Err(TenantBudgetError::ZeroGlobal);
        }
        let mut sum: u64 = 0;
        let mut assigned: u32 = 0;
        for (tenant, spec) in self.tenants.iter().enumerate() {
            if spec.sources == 0 {
                return Err(TenantBudgetError::ZeroSources { tenant });
            }
            if spec.budget == 0 {
                return Err(TenantBudgetError::ZeroBudget { tenant });
            }
            if spec.budget > MAX_GROUP_BUDGET {
                return Err(TenantBudgetError::BudgetOverflow {
                    tenant,
                    budget: spec.budget,
                });
            }
            sum = sum
                .checked_add(spec.budget)
                .ok_or(TenantBudgetError::SumOverflow)?;
            assigned = assigned.saturating_add(spec.sources);
        }
        if sum > self.global_budget {
            return Err(TenantBudgetError::SumExceedsGlobal {
                sum,
                global: self.global_budget,
            });
        }
        if assigned != sources {
            return Err(TenantBudgetError::SourceSplit { assigned, sources });
        }
        Ok(())
    }

    /// Expands the contiguous split into a `source → tenant` table.
    #[must_use]
    pub fn tenant_of(&self) -> Vec<u32> {
        let mut table = Vec::new();
        for (tenant, spec) in self.tenants.iter().enumerate() {
            table.extend((0..spec.sources).map(|_| tenant as u32));
        }
        table
    }

    /// Source-id range owned by `tenant` (contiguous by construction).
    #[must_use]
    pub fn source_range(&self, tenant: usize) -> std::ops::Range<u32> {
        let first: u32 = self.tenants[..tenant].iter().map(|s| s.sources).sum();
        first..first + self.tenants[tenant].sources
    }
}

/// The largest admission count per window whose aggregate service demand
/// stays inside an interference budget of `bound` (the per-victim Eq.
/// 13–16 loss bound): `⌊bound / effective_cost⌋` admissions, each costing
/// `effective_cost`. Use it to size [`TenantConfig::global_budget`].
///
/// # Panics
///
/// Panics if `effective_cost` is zero.
#[must_use]
pub fn global_budget_for_bound(bound: Duration, effective_cost: Duration) -> u64 {
    assert!(
        !effective_cost.is_zero(),
        "effective cost must be positive to size a budget"
    );
    bound.as_nanos() / effective_cost.as_nanos()
}

/// The aggregate δ⁻ of a group budget: `budget − 1` zero entries followed
/// by the window — exactly "any `budget + 1` consecutive admissions span
/// at least `window`", i.e. at most `budget` admissions in any sliding
/// window. Zero entries are valid δ⁻ entries (the superadditive closure
/// keeps them), so the whole budget hierarchy reuses the paper's monitor
/// unchanged.
///
/// # Panics
///
/// Panics if `budget` is zero or exceeds [`MAX_GROUP_BUDGET`], or if
/// `window` is zero — [`TenantConfig::validate`] rejects those first.
#[must_use]
pub fn group_delta(budget: u64, window: Duration) -> DeltaFunction {
    assert!(
        budget > 0 && budget <= MAX_GROUP_BUDGET,
        "group budget out of range"
    );
    assert!(!window.is_zero(), "group window must be positive");
    let mut entries = vec![Duration::ZERO; (budget - 1) as usize];
    entries.push(window);
    DeltaFunction::new(entries).expect("zero-padded window budget is a valid δ⁻")
}

/// A sliding-window admission counter: at most `max` events in any window
/// of `width`. This is the *primary* budget enforcement — unlike a
/// monitor rebuild it keeps its history across brownout shrinks, so a
/// recovered tenant can never have over-admitted against its nominal
/// budget.
#[derive(Debug, Clone)]
pub struct WindowBudget {
    width: Duration,
    max: u64,
    recent: VecDeque<Instant>,
}

impl WindowBudget {
    /// A budget of `max` events per sliding `width`.
    #[must_use]
    pub fn new(width: Duration, max: u64) -> Self {
        WindowBudget {
            width,
            max,
            recent: VecDeque::new(),
        }
    }

    /// Drops events that left the window ending at `now`.
    fn expire(&mut self, now: Instant) {
        while let Some(&front) = self.recent.front() {
            if front + self.width <= now {
                self.recent.pop_front();
            } else {
                break;
            }
        }
    }

    /// Would one more event at `now` stay within `limit` (≤ the configured
    /// max; brownout passes a shrunk limit)? Pure in outcome, but expires
    /// stale entries as a side effect.
    pub fn admits(&mut self, now: Instant, limit: u64) -> bool {
        self.expire(now);
        (self.recent.len() as u64) < limit.min(self.max)
    }

    /// Records an admission at `now`.
    pub fn record(&mut self, now: Instant) {
        self.recent.push_back(now);
    }

    /// Events currently inside the window ending at `now`.
    pub fn occupancy(&mut self, now: Instant) -> u64 {
        self.expire(now);
        self.recent.len() as u64
    }

    /// The configured maximum.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }
}

/// A tenant's group budget: the [`WindowBudget`] (primary, shrink-aware)
/// paired with an aggregate [`ActivationMonitor`] over the tenant's merged
/// admitted stream (independent second enforcement of the *nominal*
/// budget). Both must pass; the pair agreeing is itself an invariant the
/// tests pin.
#[derive(Debug, Clone)]
pub struct GroupBudget {
    /// Nominal budget (admissions per window) before any brownout shrink.
    pub nominal: u64,
    window: WindowBudget,
    aggregate: ActivationMonitor,
}

impl GroupBudget {
    /// A group budget of `nominal` admissions per sliding `width`.
    #[must_use]
    pub fn new(nominal: u64, width: Duration) -> Self {
        GroupBudget {
            nominal,
            window: WindowBudget::new(width, nominal),
            aggregate: ActivationMonitor::new(group_delta(nominal, width)),
        }
    }

    /// Checks one candidate admission at `now` against the shrunk limit
    /// `effective` (≤ nominal) *and* the aggregate monitor at the nominal
    /// budget. `true` only when both levels of the pair agree to admit.
    pub fn admits(&mut self, now: Instant, effective: u64) -> bool {
        let window_ok = self.window.admits(now, effective);
        let monitor_ok = matches!(self.aggregate.check(now), Admission::Admitted);
        window_ok && monitor_ok
    }

    /// Records an admission in both halves of the pair.
    pub fn record(&mut self, now: Instant) {
        self.window.record(now);
        self.aggregate.record_admitted(now);
    }

    /// Remaining nominal headroom in the window ending at `now`.
    pub fn headroom(&mut self, now: Instant) -> u64 {
        self.nominal.saturating_sub(self.window.occupancy(now))
    }
}

/// Where a tenant sits on the brownout ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BrownoutLevel {
    /// Full group budget, reserved service lane.
    Nominal,
    /// Group budget shrunk to `shrink_permille` of nominal.
    Shrunk,
    /// Shrunk budget *and* demoted to the shared best-effort lane.
    BestEffort,
    /// Every arrival is shed (typed) until offered load fits the budget.
    Quarantined,
}

impl BrownoutLevel {
    /// Stable machine-readable label.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            BrownoutLevel::Nominal => "nominal",
            BrownoutLevel::Shrunk => "shrunk",
            BrownoutLevel::BestEffort => "best-effort",
            BrownoutLevel::Quarantined => "quarantined",
        }
    }

    /// Ladder position, 0 (nominal) to 3 (quarantined).
    #[must_use]
    pub fn rank(self) -> u8 {
        match self {
            BrownoutLevel::Nominal => 0,
            BrownoutLevel::Shrunk => 1,
            BrownoutLevel::BestEffort => 2,
            BrownoutLevel::Quarantined => 3,
        }
    }

    fn escalated(self) -> BrownoutLevel {
        match self {
            BrownoutLevel::Nominal => BrownoutLevel::Shrunk,
            BrownoutLevel::Shrunk => BrownoutLevel::BestEffort,
            BrownoutLevel::BestEffort | BrownoutLevel::Quarantined => BrownoutLevel::Quarantined,
        }
    }

    fn recovered(self) -> BrownoutLevel {
        match self {
            BrownoutLevel::Quarantined => BrownoutLevel::BestEffort,
            BrownoutLevel::BestEffort => BrownoutLevel::Shrunk,
            BrownoutLevel::Shrunk | BrownoutLevel::Nominal => BrownoutLevel::Nominal,
        }
    }
}

/// Brownout policy knobs, shared by every tenant's controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutPolicy {
    /// Escalate when a window's shed rate reaches this (‰ of scheduled).
    pub trip_permille: u32,
    /// ... but only when the window saw at least this many arrivals — a
    /// single shed in a quiet window is noise, not overload.
    pub min_scheduled: u64,
    /// Shrunk-level group budget, as ‰ of nominal (floor 1 admission).
    pub shrink_permille: u32,
    /// Base number of consecutive clean windows before recovering one
    /// ladder step (the hysteresis guard).
    pub hold_windows: u32,
    /// Seed-jittered extra hold windows, drawn uniformly from
    /// `0..=hold_jitter` per (tenant, episode) — staggers recovery so a
    /// fleet of browned-out tenants does not un-brown in lockstep.
    pub hold_jitter: u32,
}

impl Default for BrownoutPolicy {
    fn default() -> Self {
        BrownoutPolicy {
            trip_permille: 250,
            min_scheduled: 8,
            shrink_permille: 500,
            hold_windows: 2,
            hold_jitter: 2,
        }
    }
}

/// Per-tenant brownout state machine. Deterministic and wall-clock-free:
/// it advances on the fleet's virtual event clock in tumbling windows
/// anchored at the epoch, evaluates each finished window exactly once, and
/// draws its recovery jitter from a splitmix of `(seed, tenant, episode)`.
#[derive(Debug, Clone)]
pub struct BrownoutController {
    policy: BrownoutPolicy,
    window: Duration,
    nominal_budget: u64,
    seed: u64,
    tenant: u32,
    level: BrownoutLevel,
    /// Index of the tumbling window currently accumulating.
    current: u64,
    scheduled: u64,
    shed: u64,
    clean_streak: u32,
    hold_target: u32,
    /// Bumped on every level change; salts the next jitter draw.
    episode: u64,
    escalations: u64,
    recoveries: u64,
}

impl BrownoutController {
    /// A controller for `tenant` with the given nominal group budget.
    #[must_use]
    pub fn new(
        policy: BrownoutPolicy,
        window: Duration,
        nominal_budget: u64,
        seed: u64,
        tenant: u32,
    ) -> Self {
        let mut ctrl = BrownoutController {
            policy,
            window,
            nominal_budget,
            seed,
            tenant,
            level: BrownoutLevel::Nominal,
            current: 0,
            scheduled: 0,
            shed: 0,
            clean_streak: 0,
            hold_target: 0,
            episode: 0,
            escalations: 0,
            recoveries: 0,
        };
        ctrl.hold_target = ctrl.draw_hold();
        ctrl
    }

    fn draw_hold(&self) -> u32 {
        let span = u64::from(self.policy.hold_jitter) + 1;
        let mut z = self
            .seed
            .wrapping_add(u64::from(self.tenant).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(self.episode.wrapping_mul(0xD1B5_4A32_D192_ED03));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        self.policy.hold_windows + (z % span) as u32
    }

    /// Advances the tumbling windows up to `now`, evaluating every window
    /// that finished before it. Windows with no recorded outcome are
    /// clean by definition, so long quiet gaps are applied in bulk rather
    /// than iterated.
    pub fn roll(&mut self, now: Instant) {
        let idx = now.as_nanos() / self.window.as_nanos();
        if idx <= self.current {
            return;
        }
        // Close the window that actually accumulated outcomes.
        self.finish_window();
        let mut empty = idx - self.current - 1;
        self.current = idx;
        // Every remaining elapsed window is empty: clean, possibly walking
        // the tenant back down the ladder a step per hold interval.
        while empty > 0 && self.level != BrownoutLevel::Nominal {
            let need = u64::from(self.hold_target.saturating_sub(self.clean_streak).max(1));
            if empty >= need {
                empty -= need;
                self.recover();
            } else {
                self.clean_streak += empty as u32;
                empty = 0;
            }
        }
    }

    /// Records the typed outcome of one of this tenant's arrivals into the
    /// current window. `roll` must have been called with the arrival's
    /// timestamp first.
    pub fn record(&mut self, was_shed: bool) {
        self.scheduled += 1;
        if was_shed {
            self.shed += 1;
        }
    }

    fn escalate(&mut self) {
        self.level = self.level.escalated();
        self.escalations += 1;
        self.clean_streak = 0;
        self.episode += 1;
        self.hold_target = self.draw_hold();
    }

    fn recover(&mut self) {
        self.level = self.level.recovered();
        self.recoveries += 1;
        self.clean_streak = 0;
        self.episode += 1;
        self.hold_target = self.draw_hold();
    }

    fn finish_window(&mut self) {
        let scheduled = self.scheduled;
        let shed = self.shed;
        self.scheduled = 0;
        self.shed = 0;
        // A quarantined tenant sheds everything, so its shed rate says
        // nothing; its recovery criterion is offered load fitting the
        // nominal budget again.
        let clean = if self.level == BrownoutLevel::Quarantined {
            scheduled <= self.nominal_budget
        } else {
            scheduled == 0 || shed * 1000 / scheduled < u64::from(self.policy.trip_permille)
        };
        let overloaded = scheduled >= self.policy.min_scheduled
            && scheduled > 0
            && shed * 1000 / scheduled >= u64::from(self.policy.trip_permille);
        if self.level != BrownoutLevel::Quarantined && overloaded {
            self.escalate();
        } else if clean {
            self.clean_streak += 1;
            if self.clean_streak >= self.hold_target && self.level != BrownoutLevel::Nominal {
                self.recover();
            }
        } else {
            self.clean_streak = 0;
        }
    }

    /// The tenant's current ladder position.
    #[must_use]
    pub fn level(&self) -> BrownoutLevel {
        self.level
    }

    /// The group-budget limit the current level allows: nominal when
    /// healthy, `shrink_permille` of nominal (floor 1) when degraded, 0
    /// when quarantined.
    #[must_use]
    pub fn effective_budget(&self) -> u64 {
        match self.level {
            BrownoutLevel::Nominal => self.nominal_budget,
            BrownoutLevel::Shrunk | BrownoutLevel::BestEffort => {
                (self.nominal_budget * u64::from(self.policy.shrink_permille) / 1000).max(1)
            }
            BrownoutLevel::Quarantined => 0,
        }
    }

    /// Ladder escalations so far.
    #[must_use]
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Ladder recoveries so far.
    #[must_use]
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }
}

/// Integer-only per-tenant ledger. The fleet oracle re-checks both
/// conservation identities *per tenant* — a mismatch names the tenant.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TenantCounters {
    /// Arrivals from this tenant's sources.
    pub scheduled: u64,
    /// Admitted through all three levels.
    pub admitted: u64,
    /// Denied by the source's own δ⁻ monitor.
    pub denied_source: u64,
    /// Denied by the tenant's group budget.
    pub denied_group: u64,
    /// Denied by the global budget (provably zero when budget sums are
    /// validated; counted anyway — the oracle trusts ledgers, not proofs).
    pub denied_global: u64,
    /// Shed: tenant's service lane at capacity.
    pub shed_queue_full: u64,
    /// Shed: stalled shard past the retry budget.
    pub shed_stalled: u64,
    /// Shed: watermark ladder demotion.
    pub shed_demoted: u64,
    /// Shed: tenant quarantined by the brownout controller.
    pub shed_quarantined: u64,
    /// Admitted but lost in flight to a shard crash.
    pub lost_in_flight: u64,
    /// Admitted and service-completed.
    pub completed: u64,
    /// Retry-ladder attempts spent by this tenant's arrivals.
    pub retries: u64,
    /// Arrivals the retry ladder rescued into an admission check after a
    /// stall cleared.
    pub rescued: u64,
}

impl TenantCounters {
    /// Total typed sheds.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full + self.shed_stalled + self.shed_demoted + self.shed_quarantined
    }

    /// Total denials across the three levels.
    #[must_use]
    pub fn denied_total(&self) -> u64 {
        self.denied_source + self.denied_group + self.denied_global
    }

    /// Typed sheds per 1000 scheduled arrivals (0 when nothing arrived).
    #[must_use]
    pub fn shed_permille(&self) -> u64 {
        if self.scheduled == 0 {
            return 0;
        }
        self.shed_total() * 1000 / self.scheduled
    }
}

/// What one fleet run leaves behind per tenant, enough for the per-tenant
/// oracle and the storm report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantLedger {
    /// The tenant's ledger.
    pub counters: TenantCounters,
    /// This tenant's admissions still in service at the horizon.
    pub in_flight_at_end: u64,
    /// Ladder position when the run ended.
    pub final_level: BrownoutLevel,
    /// Brownout escalations over the run.
    pub escalations: u64,
    /// Brownout recoveries over the run.
    pub recoveries: u64,
    /// Nominal group-budget headroom left in the last window.
    pub headroom_at_end: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: Duration = Duration::from_millis(10);

    fn at(ns: u64) -> Instant {
        Instant::from_nanos(ns)
    }

    #[test]
    fn window_budget_enforces_the_sliding_count() {
        let mut wb = WindowBudget::new(W, 2);
        assert!(wb.admits(at(0), 2));
        wb.record(at(0));
        assert!(wb.admits(at(1), 2));
        wb.record(at(1));
        assert!(!wb.admits(at(2), 2), "third event inside the window");
        // Exactly one window later the first event expires.
        assert!(wb.admits(at(W.as_nanos()), 2));
    }

    #[test]
    fn group_pair_agrees_with_the_window_budget() {
        // The aggregate monitor's zero-padded δ⁻ and the sliding window
        // must make identical decisions at the nominal limit.
        let budget = 3;
        let mut group = GroupBudget::new(budget, W);
        let mut window = WindowBudget::new(W, budget);
        let mut t = 0u64;
        let mut z = 0x5EEDu64;
        for _ in 0..4000 {
            z = z.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            t += z % (W.as_nanos() / 2) + 1;
            let now = at(t);
            let a = group.admits(now, budget);
            let b = window.admits(now, budget);
            assert_eq!(a, b, "pair disagreed at {t}");
            if a {
                group.record(now);
                window.record(now);
            }
        }
    }

    #[test]
    fn group_delta_is_the_window_budget_in_delta_form() {
        let d = group_delta(4, W);
        assert_eq!(d.len(), 4);
        assert_eq!(d.dmin(), Duration::ZERO);
        assert_eq!(d.entries()[3], W);
    }

    #[test]
    fn brownout_escalates_on_shed_rate_and_recovers_with_hysteresis() {
        let policy = BrownoutPolicy {
            hold_jitter: 0,
            ..BrownoutPolicy::default()
        };
        let mut ctrl = BrownoutController::new(policy, W, 8, 0xFEED, 0);
        assert_eq!(ctrl.level(), BrownoutLevel::Nominal);
        // A window with 10 arrivals, 5 shed: 500 ‰ ≥ 250 ‰ trip.
        ctrl.roll(at(1));
        for i in 0..10 {
            ctrl.record(i < 5);
        }
        ctrl.roll(at(W.as_nanos() + 1));
        assert_eq!(ctrl.level(), BrownoutLevel::Shrunk);
        assert_eq!(ctrl.effective_budget(), 4);
        // Two more dirty windows walk it to quarantine.
        for k in 1..3u64 {
            for i in 0..10 {
                ctrl.record(i < 5);
            }
            ctrl.roll(at((k + 1) * W.as_nanos() + 1));
        }
        assert_eq!(ctrl.level(), BrownoutLevel::Quarantined);
        assert_eq!(ctrl.effective_budget(), 0);
        assert_eq!(ctrl.escalations(), 3);
        // Quiet (empty) windows are clean; with hold_windows = 2 the
        // tenant steps back one level per 2 windows, needing 6 to reach
        // nominal.
        ctrl.roll(at(9 * W.as_nanos() + 1));
        assert_eq!(ctrl.level(), BrownoutLevel::Nominal);
        assert_eq!(ctrl.recoveries(), 3);
    }

    #[test]
    fn brownout_needs_minimum_traffic_to_trip() {
        let mut ctrl = BrownoutController::new(BrownoutPolicy::default(), W, 8, 1, 0);
        ctrl.roll(at(1));
        // 4 arrivals all shed — 1000 ‰, but below min_scheduled = 8.
        for _ in 0..4 {
            ctrl.record(true);
        }
        ctrl.roll(at(W.as_nanos() + 1));
        assert_eq!(ctrl.level(), BrownoutLevel::Nominal, "noise tripped it");
    }

    #[test]
    fn brownout_jitter_is_a_pure_seed_function() {
        let policy = BrownoutPolicy::default();
        let a = BrownoutController::new(policy, W, 8, 42, 3);
        let b = BrownoutController::new(policy, W, 8, 42, 3);
        let c = BrownoutController::new(policy, W, 8, 43, 3);
        assert_eq!(a.hold_target, b.hold_target);
        // Different seeds *may* draw the same jitter; the distinguishing
        // property is determinism, which the equality above pins. Still,
        // the draw must depend on the seed somewhere in a small scan.
        let mut differs = c.hold_target != a.hold_target;
        for tenant in 0..16 {
            let x = BrownoutController::new(policy, W, 8, 42, tenant);
            let y = BrownoutController::new(policy, W, 8, 43, tenant);
            differs |= x.hold_target != y.hold_target;
        }
        assert!(differs, "jitter ignores its seed");
    }

    #[test]
    fn quarantine_recovers_only_when_offered_load_fits_the_budget() {
        let policy = BrownoutPolicy {
            hold_windows: 1,
            hold_jitter: 0,
            ..BrownoutPolicy::default()
        };
        let mut ctrl = BrownoutController::new(policy, W, 4, 7, 0);
        // Trip straight to quarantine with three dirty windows.
        for k in 0..3u64 {
            ctrl.roll(at(k * W.as_nanos() + 1));
            for _ in 0..10 {
                ctrl.record(true);
            }
        }
        ctrl.roll(at(3 * W.as_nanos() + 1));
        assert_eq!(ctrl.level(), BrownoutLevel::Quarantined);
        // Offered load still above the budget of 4: stays quarantined
        // even though (being quarantined) everything is shed.
        for _ in 0..10 {
            ctrl.record(true);
        }
        ctrl.roll(at(4 * W.as_nanos() + 1));
        assert_eq!(ctrl.level(), BrownoutLevel::Quarantined);
        // Offered load fits the budget: one clean window recovers a step.
        for _ in 0..3 {
            ctrl.record(true);
        }
        ctrl.roll(at(5 * W.as_nanos() + 1));
        assert_eq!(ctrl.level(), BrownoutLevel::BestEffort);
    }

    #[test]
    fn even_split_partitions_and_validates() {
        let tc = TenantConfig::even_split(3, 10, 8, W);
        assert_eq!(
            tc.tenants.iter().map(|t| t.sources).collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        tc.validate(10).expect("even split validates");
        assert_eq!(tc.tenant_of(), vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
        assert_eq!(tc.source_range(1), 4..7);
    }
}
