//! Fleet-level robustness invariants: checkpoint failover keeps admitted
//! streams δ⁻-conformant across crash cuts (and the fresh-state baseline
//! does not), stalls fail closed through the bounded retry, the shedding
//! ladder demotes suspect sources first, the ledger balances, and runs are
//! deterministic across reruns and engines.

use rthv_admit::{
    fleet_faults, run_storm_scenario, storm_scenarios, AdmitFleet, FailoverMode, FleetConfig,
    FleetError, ShardFault, ShardFaultKind, ShedReason, StormConfig,
};
use rthv_monitor::DeltaFunction;
use rthv_time::{Duration, Instant};
use rthv_workload::{open_loop_flood, FloodEvent, FloodSpec};

const DMIN: Duration = Duration::from_millis(1);

fn dense_config(shards: u32, sources: u32, failover: FailoverMode) -> FleetConfig {
    let mut config = FleetConfig::paper(shards, sources);
    config.failover = failover;
    config
}

fn dense_flood(sources: u32, horizon: Duration, seed: u64) -> Vec<FloodEvent> {
    open_loop_flood(&FloodSpec {
        sources,
        mean: Duration::from_micros(300),
        horizon,
        seed,
    })
}

fn crash(at_ms: u64, shard: u32) -> ShardFault {
    ShardFault {
        at: Instant::ZERO + Duration::from_millis(at_ms),
        shard,
        kind: ShardFaultKind::Crash,
    }
}

fn stall(at_ms: u64, shard: u32, duration: Duration) -> ShardFault {
    ShardFault {
        at: Instant::ZERO + Duration::from_millis(at_ms),
        shard,
        kind: ShardFaultKind::Stall { duration },
    }
}

#[test]
fn failover_is_conformant_across_crash_cuts_and_baseline_is_not() {
    let horizon = Duration::from_millis(100);
    let arrivals = dense_flood(4, horizon, 0xFA11);
    let faults = vec![crash(30, 0), crash(60, 0)];

    let failover = AdmitFleet::new(dense_config(1, 4, FailoverMode::Checkpoint)).unwrap();
    let report = failover.run(&arrivals, &faults, None);
    let violations = report.check(&DMIN_DELTA(), Duration::from_micros(100));
    assert!(
        violations.is_empty(),
        "checkpoint failover must stay bound-conformant: {violations:?}"
    );
    assert!(report.counters.crashes == 2);
    assert!(
        report.counters.journal_replayed > 0,
        "a crash mid-journal must replay the tail"
    );

    let baseline = AdmitFleet::new(dense_config(1, 4, FailoverMode::FreshState)).unwrap();
    let broken = baseline.run(&arrivals, &faults, None);
    let violations = broken.check(&DMIN_DELTA(), Duration::from_micros(100));
    assert!(
        !violations.is_empty(),
        "a fresh-state restart under a dense flood must over-admit across the cut"
    );
}

#[allow(non_snake_case)]
fn DMIN_DELTA() -> DeltaFunction {
    DeltaFunction::from_dmin(DMIN).unwrap()
}

#[test]
fn crash_loss_is_typed_and_the_ledger_still_balances() {
    let horizon = Duration::from_millis(50);
    let arrivals = dense_flood(8, horizon, 0x10C5);
    let faults = vec![crash(20, 0), crash(20, 1), crash(35, 2)];
    let mut config = dense_config(4, 8, FailoverMode::Checkpoint);
    // Service slow enough that every crash instant finds work in flight.
    config.service_cost = Duration::from_millis(2);
    let fleet = AdmitFleet::new(config).unwrap();
    let report = fleet.run(&arrivals, &faults, None);
    assert!(
        report.counters.lost_in_flight > 0,
        "a crash with work in service must lose it (typed), not pretend otherwise"
    );
    let c = report.counters;
    assert_eq!(
        c.scheduled,
        c.admitted + c.denied + c.shed_total(),
        "every arrival has exactly one typed outcome"
    );
    assert_eq!(
        c.admitted,
        c.completed + c.lost_in_flight + report.in_flight_at_end,
        "every admission completes, is lost to a crash, or is still in service"
    );
}

#[test]
fn stalls_fail_closed_through_the_bounded_retry() {
    // δ⁻ so loose it never denies: the stall path is the only actor.
    let mut config = dense_config(1, 1, FailoverMode::Checkpoint);
    config.delta = DeltaFunction::from_dmin(Duration::from_micros(10)).unwrap();
    config.max_retries = 3;
    config.retry_backoff = Duration::from_micros(100); // budget: 300 µs
    let fleet = AdmitFleet::new(config).unwrap();

    let at = |us: u64| Instant::ZERO + Duration::from_micros(us);
    let arrivals = vec![
        FloodEvent {
            at: at(500),
            source: 0,
        }, // before the stall: admitted
        FloodEvent {
            at: at(1_200),
            source: 0,
        }, // 800 µs of stall left: shed
        FloodEvent {
            at: at(1_950),
            source: 0,
        }, // 50 µs left: 1 retry, admitted
        FloodEvent {
            at: at(2_500),
            source: 0,
        }, // after the stall: admitted
    ];
    let faults = vec![stall(1, 0, Duration::from_millis(1))]; // stalled 1–2 ms
    let report = fleet.run(&arrivals, &faults, None);

    let c = report.counters;
    assert_eq!(c.stalls, 1);
    assert_eq!(
        c.shed_stalled, 1,
        "beyond the retry budget must fail closed"
    );
    assert_eq!(c.retries, 1, "the 50 µs wait costs exactly one backoff");
    assert_eq!(c.admitted, 3);
    assert_eq!(c.denied, 0);
    // The admitted stream records *arrival* timestamps — monitors never
    // see retry-delayed clocks.
    assert_eq!(report.admitted[0], vec![at(500), at(1_950), at(2_500)],);
}

#[test]
fn the_ladder_demotes_probation_sources_above_the_watermark() {
    // One shard, two sources; service long enough that early admissions
    // keep the queue occupied past the watermark.
    let mut config = dense_config(1, 2, FailoverMode::Checkpoint);
    config.service_cost = Duration::from_millis(10);
    config.queue_capacity = 4;
    config.shed_watermark_permille = 500; // occupancy ≥ 2 arms the ladder
    let fleet = AdmitFleet::new(config).unwrap();

    let at = |us: u64| Instant::ZERO + Duration::from_micros(us);
    let mut arrivals = vec![FloodEvent {
        at: at(1_000),
        source: 1,
    }];
    // Four sub-d_min denials push source 1 to Probation (2 × 4 = 8).
    for us in [1_100, 1_200, 1_300, 1_400] {
        arrivals.push(FloodEvent {
            at: at(us),
            source: 1,
        });
    }
    // Source 0 fills the queue to the watermark.
    arrivals.push(FloodEvent {
        at: at(2_000),
        source: 0,
    });
    arrivals.push(FloodEvent {
        at: at(3_200),
        source: 0,
    });
    // Source 1 is back — δ⁻-conformant now, but demoted and over watermark.
    arrivals.push(FloodEvent {
        at: at(3_500),
        source: 1,
    });
    let report = fleet.run(&arrivals, &faults_none(), None);

    let c = report.counters;
    assert_eq!(c.denied, 4);
    assert_eq!(
        c.shed_demoted, 1,
        "the ladder sheds the Probation source first"
    );
    assert_eq!(
        report.admitted[1],
        vec![at(1_000)],
        "the demoted arrival never reaches the monitor"
    );
    assert_eq!(report.admitted[0].len(), 2, "healthy sources are untouched");
}

fn faults_none() -> Vec<ShardFault> {
    Vec::new()
}

#[test]
fn queue_overflow_sheds_are_typed() {
    let mut config = dense_config(1, 1, FailoverMode::Checkpoint);
    config.delta = DeltaFunction::from_dmin(Duration::from_micros(10)).unwrap();
    config.service_cost = Duration::from_millis(10);
    config.queue_capacity = 2;
    config.shed_watermark_permille = 1000; // ladder disarmed: pure overflow
    let fleet = AdmitFleet::new(config).unwrap();
    let at = |us: u64| Instant::ZERO + Duration::from_micros(us);
    let arrivals: Vec<FloodEvent> = (1..=4)
        .map(|i| FloodEvent {
            at: at(i * 100),
            source: 0,
        })
        .collect();
    let report = fleet.run(&arrivals, &faults_none(), None);
    assert_eq!(report.counters.admitted, 2);
    assert_eq!(report.counters.shed_queue_full, 2);
}

#[test]
fn runs_are_deterministic_across_reruns_and_engines() {
    let horizon = Duration::from_millis(60);
    let arrivals = dense_flood(6, horizon, 0xDE7);
    let faults = vec![crash(25, 1), stall(40, 0, Duration::from_millis(1))];
    let mut reference: Option<(String, u64)> = None;
    for engine in ["heap", "wheel"] {
        for _ in 0..2 {
            let mut config = dense_config(3, 6, FailoverMode::Checkpoint);
            config.engine = engine.to_owned();
            let fleet = AdmitFleet::new(config).unwrap();
            let report = fleet.run(&arrivals, &faults, None);
            let key = (report.merged_bytes(), report.counters.shed_total());
            match &reference {
                None => reference = Some(key),
                Some(r) => assert_eq!(
                    r, &key,
                    "fleet runs must be byte-identical across reruns and engines"
                ),
            }
        }
    }
}

#[test]
fn merged_streams_are_invariant_across_shard_counts() {
    let horizon = Duration::from_millis(60);
    let arrivals = dense_flood(16, horizon, 0x5A4D);
    let mut reference: Option<String> = None;
    for shards in [1u32, 4, 16] {
        let mut config = dense_config(shards, 16, FailoverMode::Checkpoint);
        // A capacity no flood reaches: sheds depend on shard occupancy,
        // admissions only on per-source monitors — the invariant under test.
        config.queue_capacity = 1 << 20;
        let fleet = AdmitFleet::new(config).unwrap();
        let report = fleet.run(&arrivals, &[], None);
        assert_eq!(report.counters.shed_total(), 0);
        let bytes = report.merged_bytes();
        match &reference {
            None => reference = Some(bytes),
            Some(r) => assert_eq!(r, &bytes, "{shards} shards changed the admitted stream"),
        }
    }
}

#[test]
fn construction_errors_are_typed() {
    let base = FleetConfig::paper(2, 4);
    let cases: Vec<(FleetConfig, FleetError)> = vec![
        (
            FleetConfig {
                shards: 0,
                ..base.clone()
            },
            FleetError::NoShards,
        ),
        (
            FleetConfig {
                sources: 0,
                ..base.clone()
            },
            FleetError::NoSources,
        ),
        (
            FleetConfig {
                queue_capacity: 0,
                ..base.clone()
            },
            FleetError::ZeroQueueCapacity,
        ),
        (
            FleetConfig {
                service_cost: Duration::ZERO,
                ..base.clone()
            },
            FleetError::ZeroServiceCost,
        ),
        (
            FleetConfig {
                retry_backoff: Duration::ZERO,
                ..base.clone()
            },
            FleetError::ZeroBackoff,
        ),
        (
            FleetConfig {
                shed_watermark_permille: 1001,
                ..base.clone()
            },
            FleetError::BadWatermark,
        ),
        (
            FleetConfig {
                engine: "bogo".to_owned(),
                ..base
            },
            FleetError::UnknownEngine {
                value: "bogo".to_owned(),
            },
        ),
    ];
    for (config, expected) in cases {
        assert_eq!(AdmitFleet::new(config).unwrap_err(), expected);
    }
}

#[test]
fn shed_reasons_have_stable_slugs() {
    assert_eq!(ShedReason::QueueFull.slug(), "queue-full");
    assert_eq!(ShedReason::ShardStalled.slug(), "shard-stalled");
    assert_eq!(ShedReason::ShardCrash.slug(), "shard-crash");
}

#[test]
fn storm_smoke_scenario_separates_failover_from_baseline() {
    let config = StormConfig::smoke("heap");
    let scenarios = storm_scenarios(5, 0x5708, config.horizon);
    for scenario in &scenarios {
        let outcome = run_storm_scenario(&config, scenario, None).unwrap();
        assert_eq!(
            outcome.failover.violations, 0,
            "{}: failover arm must be clean",
            outcome.label
        );
        if scenario.crash_family() {
            assert!(
                fleet_faults(&scenario.fault, config.base.shards, config.horizon).len() > 1,
                "crash scenarios must actually crash shards"
            );
        }
        // Fleet-wide floods are dense on every shard, so any crash cut
        // must make the fresh-state baseline over-admit.
        if scenario.crash_family() && scenario.flood_family() {
            assert!(
                outcome.baseline.violations > 0,
                "{}: fresh-state baseline must break the bound",
                outcome.label
            );
        }
    }
}
