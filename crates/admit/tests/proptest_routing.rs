//! Property tests for the fleet's structural invariants: the hash route
//! is a pure stable function, admitted streams are invariant under the
//! shard count, the engine choice and the checkpoint cadence, and
//! checkpoint failover is admission-transparent — a crashed-and-restored
//! fleet admits exactly what an uncrashed one does.

use proptest::prelude::*;

use rthv_admit::{
    route, AdmitFleet, FailoverMode, FleetConfig, ShardFault, ShardFaultKind, TenantConfig,
    TenantSpec,
};
use rthv_monitor::DeltaFunction;
use rthv_time::{Duration, Instant};
use rthv_workload::{flood_overlay, open_loop_flood, FloodSpec, OverlaySpec};

/// The tenant campaign's geometry adapted for property runs: heavy
/// service cost, watermark ladder off, a 2-tenant split with the
/// aggressor on the upper half and `retry_ladder` on. The lane is deep
/// (unlike the campaign's shallow queue, which only the flat ablation
/// needs): byte-identity requires the victim never to hit its *own*
/// lane cap, because a crash drains in-flight work and thereby moves
/// queue-full timing — self-saturation is not an isolation failure.
fn tenancy_config(shards: u32, engine: &str, checkpoint_every: u64) -> FleetConfig {
    let mut config = FleetConfig::paper(shards, 16);
    config.queue_capacity = 64;
    config.service_cost = Duration::from_micros(800);
    config.shed_watermark_permille = 1000;
    config.engine = engine.to_owned();
    config.checkpoint_every = checkpoint_every;
    config.tenancy = Some(TenantConfig {
        window: Duration::from_millis(10),
        global_budget: 100,
        tenants: vec![
            TenantSpec {
                sources: 8,
                budget: 40,
            },
            TenantSpec {
                sources: 8,
                budget: 60,
            },
        ],
        brownout: Default::default(),
        seed: 0x7E4A_5EED,
        retry_ladder: true,
    });
    config
}

/// A fleet config whose sheds cannot fire: admissions depend only on each
/// source's own monitor and arrival times, which is exactly the
/// sharding-invariance precondition.
fn unshedding_config(
    shards: u32,
    sources: u32,
    engine: &str,
    checkpoint_every: u64,
) -> FleetConfig {
    let mut config = FleetConfig::paper(shards, sources);
    config.queue_capacity = 1 << 20;
    config.engine = engine.to_owned();
    config.checkpoint_every = checkpoint_every;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The route is pure and in-range: the same `(source, shards)` pair
    /// maps to the same shard on every call, in every process, and the
    /// fleet's frozen router agrees with the free function after
    /// reconstruction.
    #[test]
    fn routing_is_pure_stable_and_in_range(
        sources in 1u32..256,
        shards in 1u32..32,
    ) {
        for source in 0..sources {
            let first = route(source, shards);
            prop_assert!(first < shards);
            prop_assert_eq!(first, route(source, shards));
        }
        let a = AdmitFleet::new(unshedding_config(shards, sources, "heap", 32)).unwrap();
        let b = AdmitFleet::new(unshedding_config(shards, sources, "wheel", 7)).unwrap();
        for source in 0..sources {
            let (shard_a, _) = a.route_of(source).unwrap();
            let (shard_b, _) = b.route_of(source).unwrap();
            prop_assert_eq!(shard_a, route(source, shards));
            prop_assert_eq!(shard_a, shard_b,
                "routing must not depend on engine or checkpoint cadence");
        }
    }

    /// The merged admitted stream is byte-identical across shard counts
    /// {1, 4, 16}, both engines and arbitrary checkpoint cadences: with
    /// sheds structurally impossible, admission is a per-source property
    /// and sharding is pure routing.
    #[test]
    fn merged_streams_survive_resharding_engines_and_cadence(
        seed in any::<u64>(),
        mean_us in 150u64..1500,
        checkpoint_every in 1u64..64,
    ) {
        let sources = 16;
        let arrivals = open_loop_flood(&FloodSpec {
            sources,
            mean: Duration::from_micros(mean_us),
            horizon: Duration::from_millis(40),
            seed,
        });
        let mut reference: Option<String> = None;
        for shards in [1u32, 4, 16] {
            for engine in ["heap", "wheel"] {
                let fleet = AdmitFleet::new(
                    unshedding_config(shards, sources, engine, checkpoint_every),
                ).unwrap();
                let report = fleet.run(&arrivals, &[], None);
                prop_assert_eq!(report.counters.shed_total(), 0);
                let bytes = report.merged_bytes();
                match &reference {
                    None => reference = Some(bytes),
                    Some(r) => prop_assert_eq!(
                        r, &bytes,
                        "admitted stream changed under shards={} engine={}",
                        shards, engine
                    ),
                }
            }
        }
    }

    /// Checkpoint failover is admission-transparent: crashing any shard at
    /// any instant (with snapshot + journal-tail restore) leaves the
    /// admitted stream byte-identical to the fault-free run — the δ⁻ rings
    /// come back exactly as they were.
    #[test]
    fn checkpoint_failover_is_admission_transparent(
        seed in any::<u64>(),
        crash_at_us in 1_000u64..39_000,
        crashed_shard in 0u32..4,
        checkpoint_every in 1u64..48,
    ) {
        let sources = 12;
        let arrivals = open_loop_flood(&FloodSpec {
            sources,
            mean: Duration::from_micros(400),
            horizon: Duration::from_millis(40),
            seed,
        });
        let fault = ShardFault {
            at: Instant::ZERO + Duration::from_micros(crash_at_us),
            shard: crashed_shard,
            kind: ShardFaultKind::Crash,
        };
        let config = unshedding_config(4, sources, "heap", checkpoint_every);
        let calm = AdmitFleet::new(config.clone()).unwrap().run(&arrivals, &[], None);
        let crashed = AdmitFleet::new(config).unwrap().run(&arrivals, &[fault], None);
        prop_assert_eq!(
            calm.merged_bytes(), crashed.merged_bytes(),
            "a checkpoint-restored shard must admit exactly what it would have"
        );
        let delta = DeltaFunction::from_dmin(Duration::from_millis(1)).unwrap();
        prop_assert!(crashed.check(&delta, Duration::from_micros(100)).is_empty());

        // The fresh-state ablation of the same cut is NOT transparent
        // whenever the crashed shard had admitted anything before the cut
        // with traffic still pending after it — the δ⁻ history is gone.
        let mut fresh_cfg = unshedding_config(4, sources, "heap", checkpoint_every);
        fresh_cfg.failover = FailoverMode::FreshState;
        let fresh = AdmitFleet::new(fresh_cfg).unwrap().run(&arrivals, &[fault], None);
        prop_assert!(fresh.counters.admitted >= crashed.counters.admitted,
            "forgetting δ⁻ history can only admit more");
    }

    /// Routing ignores the tenancy: attaching a tenant hierarchy never
    /// moves a source to a different shard, across shard counts {1, 4, 16}
    /// and both engines — tenancy partitions budgets, not placement.
    #[test]
    fn routing_is_stable_under_tenant_assignment(
        checkpoint_every in 1u64..48,
    ) {
        for shards in [1u32, 4, 16] {
            for engine in ["heap", "wheel"] {
                let flat = AdmitFleet::new(
                    unshedding_config(shards, 16, engine, checkpoint_every),
                ).unwrap();
                let tenanted = AdmitFleet::new(
                    tenancy_config(shards, engine, checkpoint_every),
                ).unwrap();
                for source in 0..16 {
                    prop_assert_eq!(
                        flat.route_of(source), tenanted.route_of(source),
                        "tenancy moved source {} under shards={} engine={}",
                        source, shards, engine
                    );
                    prop_assert_eq!(
                        flat.route_of(source).unwrap().0,
                        route(source, shards)
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The isolation theorem: a seeded aggressor flood plus correlated
    /// crash cuts in tenant 1 leave tenant 0's admitted stream
    /// byte-identical to the fault-free, flood-free run — at every shard
    /// count in {1, 4, 16}, on both engines, under arbitrary checkpoint
    /// cadences. The stream is also engine-invariant per shard count (it
    /// is *not* shard-count-invariant: lane capacity and drain rate are
    /// per-shard physical resources, so resharding may move it — what must
    /// never move it is another tenant's behavior).
    #[test]
    fn tenant_isolation_survives_floods_crashes_resharding_and_engines(
        seed in any::<u64>(),
        checkpoint_every in 1u64..48,
        crash_a_us in 12_000u64..55_000,
        crash_b_us in 12_000u64..55_000,
        crash_shard_a in 0u32..16,
        crash_shard_b in 0u32..16,
    ) {
        let horizon = Duration::from_millis(60);
        let calm = open_loop_flood(&FloodSpec {
            sources: 16,
            mean: Duration::from_millis(6),
            horizon,
            seed,
        });
        let storm = flood_overlay(&calm, &OverlaySpec {
            first_source: 8,
            sources: 8,
            mean: Duration::from_micros(300),
            onset: Duration::from_millis(10),
            horizon,
            seed: seed ^ 0x0A66_0E55,
        });
        for shards in [1u32, 4, 16] {
            let faults = vec![
                ShardFault {
                    at: Instant::ZERO + Duration::from_micros(crash_a_us),
                    shard: crash_shard_a % shards,
                    kind: ShardFaultKind::Crash,
                },
                ShardFault {
                    at: Instant::ZERO + Duration::from_micros(crash_b_us),
                    shard: crash_shard_b % shards,
                    kind: ShardFaultKind::Crash,
                },
            ];
            let mut reference: Option<String> = None;
            for engine in ["heap", "wheel"] {
                let config = tenancy_config(shards, engine, checkpoint_every);
                let fleet = AdmitFleet::new(config).unwrap();
                let calm_victim = fleet.run(&calm, &[], None).tenant_bytes(0);
                let storm_victim = fleet.run(&storm, &faults, None).tenant_bytes(0);
                prop_assert_eq!(
                    &calm_victim, &storm_victim,
                    "aggressor flood + crashes moved the victim stream \
                     under shards={} engine={}",
                    shards, engine
                );
                match &reference {
                    None => reference = Some(calm_victim),
                    Some(r) => prop_assert_eq!(
                        r, &calm_victim,
                        "victim stream differs across engines at shards={}",
                        shards
                    ),
                }
            }
        }
    }
}
