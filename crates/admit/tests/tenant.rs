//! Tenant-hierarchy integration invariants: every invalid tenancy is a
//! typed construction error (one test per rejection variant — nothing is
//! silently clamped), the per-tenant ledgers obey both conservation
//! identities and sum to the fleet ledger under mixed traffic plus a
//! crash, a ledger mismatch names the tenant, sustained overload walks a
//! tenant to quarantine with typed sheds, and the bounded retry ladder
//! rescues arrivals that can outlast a stall while failing closed on
//! those that cannot.

use rthv_admit::{
    AdmitFleet, FleetConfig, FleetError, ShardFault, ShardFaultKind, TenantBudgetError,
    TenantConfig, TenantSpec, MAX_GROUP_BUDGET,
};
use rthv_faults::Violation;
use rthv_time::{Duration, Instant};
use rthv_workload::{flood_overlay, open_loop_flood, FloodEvent, FloodSpec, OverlaySpec};

const WINDOW: Duration = Duration::from_millis(10);

/// A valid 2-tenant hierarchy over 16 sources; each rejection test breaks
/// exactly one thing.
fn valid_tenancy() -> TenantConfig {
    TenantConfig {
        window: WINDOW,
        global_budget: 100,
        tenants: vec![
            TenantSpec {
                sources: 8,
                budget: 40,
            },
            TenantSpec {
                sources: 8,
                budget: 60,
            },
        ],
        brownout: Default::default(),
        seed: 0x7E4A_5EED,
        retry_ladder: true,
    }
}

fn tenanted_config(shards: u32, tenancy: TenantConfig) -> FleetConfig {
    let mut config = FleetConfig::paper(shards, 16);
    config.queue_capacity = 8;
    config.service_cost = Duration::from_micros(800);
    config.shed_watermark_permille = 1000;
    config.tenancy = Some(tenancy);
    config
}

/// Routes a broken tenancy through `AdmitFleet::new` and returns the
/// typed rejection it must surface.
fn rejection(tenancy: TenantConfig) -> TenantBudgetError {
    match AdmitFleet::new(tenanted_config(4, tenancy)) {
        Err(FleetError::TenantBudget { error }) => error,
        other => panic!("expected a typed tenant rejection, got {other:?}"),
    }
}

#[test]
fn rejects_no_tenants() {
    let mut tc = valid_tenancy();
    tc.tenants.clear();
    assert_eq!(rejection(tc), TenantBudgetError::NoTenants);
}

#[test]
fn rejects_zero_window() {
    let mut tc = valid_tenancy();
    tc.window = Duration::ZERO;
    assert_eq!(rejection(tc), TenantBudgetError::ZeroWindow);
}

#[test]
fn rejects_zero_global_budget() {
    let mut tc = valid_tenancy();
    tc.global_budget = 0;
    assert_eq!(rejection(tc), TenantBudgetError::ZeroGlobal);
}

#[test]
fn rejects_zero_source_tenant() {
    let mut tc = valid_tenancy();
    tc.tenants[1].sources = 0;
    assert_eq!(rejection(tc), TenantBudgetError::ZeroSources { tenant: 1 });
}

#[test]
fn rejects_zero_group_budget() {
    let mut tc = valid_tenancy();
    tc.tenants[0].budget = 0;
    assert_eq!(rejection(tc), TenantBudgetError::ZeroBudget { tenant: 0 });
}

#[test]
fn rejects_group_budget_overflow() {
    let mut tc = valid_tenancy();
    tc.tenants[1].budget = MAX_GROUP_BUDGET + 1;
    // Not clamped to MAX_GROUP_BUDGET — rejected with the offending value.
    assert_eq!(
        rejection(tc),
        TenantBudgetError::BudgetOverflow {
            tenant: 1,
            budget: MAX_GROUP_BUDGET + 1,
        }
    );
}

#[test]
fn sum_overflow_is_unreachable_defense_in_depth() {
    // With every budget capped at MAX_GROUP_BUDGET before it is summed,
    // overflowing u64 would need ~2^52 tenants — the variant exists so the
    // checked add can never silently wrap if the cap is ever raised. Pin
    // its identity and rendering so it stays a first-class rejection.
    let err = TenantBudgetError::SumOverflow;
    assert_eq!(err, TenantBudgetError::SumOverflow);
    assert_eq!(err.to_string(), "sum of group budgets overflows u64");
}

#[test]
fn rejects_budget_sum_exceeding_global() {
    let mut tc = valid_tenancy();
    tc.global_budget = 99; // sum is 100
    assert_eq!(
        rejection(tc),
        TenantBudgetError::SumExceedsGlobal {
            sum: 100,
            global: 99,
        }
    );
}

#[test]
fn rejects_bad_source_split() {
    let mut tc = valid_tenancy();
    tc.tenants[0].sources = 7; // 7 + 8 != 16
    assert_eq!(
        rejection(tc),
        TenantBudgetError::SourceSplit {
            assigned: 15,
            sources: 16,
        }
    );
}

#[test]
fn every_rejection_renders_a_distinct_message() {
    let variants = [
        TenantBudgetError::NoTenants,
        TenantBudgetError::ZeroWindow,
        TenantBudgetError::ZeroGlobal,
        TenantBudgetError::ZeroSources { tenant: 2 },
        TenantBudgetError::ZeroBudget { tenant: 2 },
        TenantBudgetError::BudgetOverflow {
            tenant: 2,
            budget: 9999,
        },
        TenantBudgetError::SumOverflow,
        TenantBudgetError::SumExceedsGlobal { sum: 10, global: 9 },
        TenantBudgetError::SourceSplit {
            assigned: 3,
            sources: 4,
        },
    ];
    let mut rendered: Vec<String> = variants.iter().map(|v| v.to_string()).collect();
    rendered.sort();
    rendered.dedup();
    assert_eq!(rendered.len(), variants.len(), "two rejections collide");
}

/// Mixed traffic (calm victim + dense aggressor overlay) plus a mid-run
/// crash: the per-tenant oracle must stay clean, and every per-tenant
/// counter must sum to the fleet ledger — the hierarchy only *partitions*
/// the accounting, it never invents or loses an arrival.
#[test]
fn tenant_ledgers_conserve_and_sum_to_the_fleet_ledger() {
    let horizon = Duration::from_millis(80);
    let calm = open_loop_flood(&FloodSpec {
        sources: 16,
        mean: Duration::from_millis(6),
        horizon,
        seed: 0x7E4A_0001,
    });
    let storm = flood_overlay(
        &calm,
        &OverlaySpec {
            first_source: 8,
            sources: 8,
            mean: Duration::from_micros(300),
            onset: Duration::from_millis(10),
            horizon,
            seed: 0x7E4A_0002,
        },
    );
    let faults = [ShardFault {
        at: Instant::ZERO + Duration::from_millis(30),
        shard: 1,
        kind: ShardFaultKind::Crash,
    }];
    let fleet = AdmitFleet::new(tenanted_config(4, valid_tenancy())).unwrap();
    let report = fleet.run(&storm, &faults, None);

    let violations = report.check(&fleet.config().delta, Duration::from_micros(100));
    assert!(
        violations.is_empty(),
        "oracle found violations: {violations:?}"
    );

    assert_eq!(report.tenants.len(), 2);
    let sum = |f: fn(&rthv_admit::TenantCounters) -> u64| -> u64 {
        report.tenants.iter().map(|t| f(&t.counters)).sum()
    };
    let c = &report.counters;
    assert_eq!(sum(|t| t.scheduled), c.scheduled);
    assert_eq!(sum(|t| t.admitted), c.admitted);
    assert_eq!(sum(|t| t.denied_total()), c.denied);
    assert_eq!(sum(|t| t.shed_queue_full), c.shed_queue_full);
    assert_eq!(sum(|t| t.shed_stalled), c.shed_stalled);
    assert_eq!(sum(|t| t.shed_demoted), c.shed_demoted);
    assert_eq!(sum(|t| t.shed_quarantined), c.shed_quarantined);
    assert_eq!(sum(|t| t.lost_in_flight), c.lost_in_flight);
    assert_eq!(sum(|t| t.completed), c.completed);
    assert_eq!(sum(|t| t.retries), c.retries);
    let in_flight: u64 = report.tenants.iter().map(|t| t.in_flight_at_end).sum();
    assert_eq!(in_flight, report.in_flight_at_end);

    // The crash must actually have cost the aggressor in-flight work, so
    // the identities above were exercised across a failover cut.
    assert!(c.lost_in_flight > 0, "crash cost no in-flight work");
    // The global backstop can never refuse a validated hierarchy.
    assert_eq!(sum(|t| t.denied_global), 0);
}

/// A corrupted per-tenant ledger is caught by the oracle, and the
/// violation names the tenant.
#[test]
fn ledger_mismatch_names_the_tenant() {
    let horizon = Duration::from_millis(40);
    let arrivals = open_loop_flood(&FloodSpec {
        sources: 16,
        mean: Duration::from_millis(4),
        horizon,
        seed: 0x7E4A_0003,
    });
    let fleet = AdmitFleet::new(tenanted_config(2, valid_tenancy())).unwrap();
    let mut report = fleet.run(&arrivals, &[], None);
    report.tenants[1].counters.scheduled += 1;
    let violations = report.check(&fleet.config().delta, Duration::from_micros(100));
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::TenantConservation { tenant: 1, .. })),
        "corrupted tenant 1 ledger went unnamed: {violations:?}"
    );
    assert!(
        !violations
            .iter()
            .any(|v| matches!(v, Violation::TenantConservation { tenant: 0, .. })),
        "clean tenant 0 was blamed"
    );
}

/// Sustained overload in the aggressor tenant walks its brownout ladder
/// to quarantine, and from then on its arrivals are shed *typed*
/// (`shed_quarantined`), never silently dropped — while the victim tenant
/// stays nominal. One shard, so the aggressor's lane drains at 1.25/ms
/// against a ~27/ms offered flood: the shed rate stays far above the
/// 250 ‰ trip and each dirty window climbs one ladder rung.
#[test]
fn sustained_overload_quarantines_with_typed_sheds() {
    let horizon = Duration::from_millis(150);
    let calm = open_loop_flood(&FloodSpec {
        sources: 16,
        mean: Duration::from_millis(6),
        horizon,
        seed: 0x7E4A_0004,
    });
    let storm = flood_overlay(
        &calm,
        &OverlaySpec {
            first_source: 8,
            sources: 8,
            mean: Duration::from_micros(300),
            onset: Duration::from_millis(10),
            horizon,
            seed: 0x7E4A_0005,
        },
    );
    let fleet = AdmitFleet::new(tenanted_config(1, valid_tenancy())).unwrap();
    let report = fleet.run(&storm, &[], None);

    let aggressor = &report.tenants[1];
    assert_eq!(
        aggressor.final_level.rank(),
        3,
        "aggressor should end quarantined: {aggressor:?}"
    );
    assert!(
        aggressor.escalations >= 3,
        "aggressor never walked the full ladder: {aggressor:?}"
    );
    assert!(
        aggressor.counters.shed_quarantined > 0,
        "quarantine shed nothing: {aggressor:?}"
    );
    let a = &aggressor.counters;
    assert_eq!(
        a.admitted + a.denied_total() + a.shed_total(),
        a.scheduled,
        "a quarantine shed escaped the ledger"
    );

    let victim = &report.tenants[0];
    assert_eq!(victim.final_level.rank(), 0, "victim was browned out");
    assert_eq!(victim.counters.shed_quarantined, 0);
    assert_eq!(victim.escalations, 0);
}

/// The bounded retry ladder against a stalled shard, event-driven
/// (`retry_ladder: true`): an arrival whose `max_retries × retry_backoff`
/// horizon reaches past the stall is admitted at its retry instant and
/// counted `rescued`; one that arrives too early inside the stall burns
/// its attempts and fails *closed* as `shed_stalled`.
#[test]
fn retry_ladder_rescues_late_arrivals_and_fails_closed_on_early_ones() {
    // Paper config: max_retries 3, retry_backoff 200 µs. Stall covers
    // [10 ms, 12 ms).
    let ms = |v: u64| Instant::ZERO + Duration::from_millis(v);
    let us = |v: u64| Instant::ZERO + Duration::from_micros(v);
    let stall = ShardFault {
        at: ms(10),
        shard: 0,
        kind: ShardFaultKind::Stall {
            duration: Duration::from_millis(2),
        },
    };
    let fleet = AdmitFleet::new(tenanted_config(1, valid_tenancy())).unwrap();

    // Rescued: arrival at 11.5 ms retries at 11.7 / 11.9 / 12.1 ms; the
    // third retry lands after the stall clears and is admitted there.
    let late = [FloodEvent {
        at: us(11_500),
        source: 0,
    }];
    let report = fleet.run(&late, &[stall], None);
    let t = &report.tenants[0].counters;
    assert_eq!(t.admitted, 1, "late arrival should be rescued");
    assert_eq!(t.rescued, 1);
    assert_eq!(t.retries, 3);
    assert_eq!(t.shed_stalled, 0);
    assert_eq!(
        report.admitted[0],
        vec![us(12_100)],
        "rescue must admit at the retry instant, not the arrival instant"
    );

    // Fail closed: arrival at 10.1 ms retries at 10.3 / 10.5 / 10.7 ms —
    // all inside the stall — and the attempt budget is gone.
    let early = [FloodEvent {
        at: us(10_100),
        source: 0,
    }];
    let report = fleet.run(&early, &[stall], None);
    let t = &report.tenants[0].counters;
    assert_eq!(t.admitted, 0, "early arrival must not be admitted");
    assert_eq!(t.shed_stalled, 1, "must fail closed, typed");
    assert_eq!(t.retries, 3);
    assert_eq!(t.rescued, 0);
    assert_eq!(
        t.admitted + t.denied_total() + t.shed_total(),
        t.scheduled,
        "the failed-closed arrival escaped the ledger"
    );
}
