//! Tenant-isolation campaign invariants: the hierarchy keeps the victim
//! tenant's admitted stream byte-identical under aggressor floods plus
//! correlated shard failures, the flat ablation demonstrably does not,
//! the per-tenant oracle stays clean, and the whole campaign — faults,
//! records, assembled report — is a pure function of its seed on both
//! engines.

use rthv_admit::{
    assemble_tenant_report, fleet_faults, report_passes, run_tenant_scenario, tenant_scenarios,
    ShardFaultKind, TenantRecord, TenantStormConfig,
};
use rthv_faults::{FaultKind, FaultScenario};
use rthv_time::{Duration, Instant};

const BASE_SEED: u64 = 0x7E4A_2026;

fn smoke_records(engine: &str) -> (TenantStormConfig, Vec<TenantRecord>) {
    let config = TenantStormConfig::smoke(engine);
    let scenarios = tenant_scenarios(3, BASE_SEED, config.horizon);
    let records = scenarios
        .iter()
        .map(|s| {
            run_tenant_scenario(&config, s, None)
                .expect("smoke tenant config is valid")
                .record()
        })
        .collect();
    (config, records)
}

#[test]
fn smoke_campaign_passes_with_isolation_and_broken_ablation() {
    let (config, records) = smoke_records("heap");
    for record in &records {
        assert_eq!(
            record.hier_violations, 0,
            "{}: hierarchy arms must be oracle-clean",
            record.label
        );
        assert_eq!(
            record.group_budget_violations, 0,
            "{}: group budgets must hold",
            record.label
        );
        assert_eq!(
            record.global_budget_violations, 0,
            "{}: the global budget must hold",
            record.label
        );
        if record.identity_family {
            assert!(
                record.hier_isolated,
                "{}: victim stream moved under the hierarchy",
                record.label
            );
            assert!(
                record.flat_violates,
                "{}: flat ablation failed to demonstrate interference",
                record.label
            );
            assert!(
                record.victim_admitted_flat_storm < record.victim_admitted_flat_calm,
                "{}: flat storm should cost the victim admissions ({} vs {})",
                record.label,
                record.victim_admitted_flat_storm,
                record.victim_admitted_flat_calm
            );
        }
    }
    let report = assemble_tenant_report(&config, BASE_SEED, &records);
    assert!(report_passes(&report), "verdict failed:\n{report}");
}

#[test]
fn campaign_is_deterministic_and_engine_invariant() {
    let (config, heap) = smoke_records("heap");
    let (_, heap_again) = smoke_records("heap");
    assert_eq!(heap, heap_again, "campaign is not a pure seed function");
    let (wheel_config, wheel) = smoke_records("wheel");
    assert_eq!(heap, wheel, "campaign differs across engines");
    assert_eq!(
        assemble_tenant_report(&config, BASE_SEED, &heap),
        assemble_tenant_report(&wheel_config, BASE_SEED, &wheel),
        "assembled reports differ across engines"
    );
}

#[test]
fn record_round_trips_through_journal_line() {
    let (_, records) = smoke_records("heap");
    for record in &records {
        let line = record.to_journal_line();
        let parsed = TenantRecord::parse_journal_line(&line).expect("line parses");
        assert_eq!(&parsed, record);
    }
    assert!(TenantRecord::parse_journal_line("").is_none());
    assert!(TenantRecord::parse_journal_line("a 1 2 0 1 0 0 0 0 0 0 0 {}").is_none());
    assert!(TenantRecord::parse_journal_line("a 1 1 0 1 0 0 0 0 0 0 0 torn").is_none());
}

#[test]
fn correlated_crash_hits_distinct_shards_inside_one_window() {
    let horizon = Duration::from_millis(250);
    let window = Duration::from_millis(30);
    let fault = FaultScenario {
        id: 0,
        kind: FaultKind::CorrelatedCrash { window, k: 3 },
        seed: 0xC0_44E1,
    };
    let faults = fleet_faults(&fault, 4, horizon);
    assert_eq!(faults.len(), 3, "k crashes expected");
    let open = Instant::from_nanos(horizon.as_nanos() / 3);
    let mut shards: Vec<u32> = faults.iter().map(|f| f.shard).collect();
    shards.sort_unstable();
    shards.dedup();
    assert_eq!(shards.len(), 3, "crashes must hit distinct shards");
    for f in &faults {
        assert!(matches!(f.kind, ShardFaultKind::Crash));
        assert!(f.at >= open && f.at < open + window, "crash outside window");
    }
    // k is clamped to the shard count, never silently exceeded.
    let clamped = fleet_faults(&fault, 2, horizon);
    assert_eq!(clamped.len(), 2);
}

#[test]
fn failover_stall_pairs_a_stall_right_after_each_crash() {
    let horizon = Duration::from_millis(250);
    let fault = FaultScenario {
        id: 0,
        kind: FaultKind::FailoverStall {
            period: Duration::from_millis(60),
            stall: Duration::from_millis(2),
        },
        seed: 0x0005_7A11,
    };
    let faults = fleet_faults(&fault, 4, horizon);
    assert!(!faults.is_empty());
    let crashes: Vec<_> = faults
        .iter()
        .filter(|f| matches!(f.kind, ShardFaultKind::Crash))
        .collect();
    for crash in &crashes {
        assert!(
            faults
                .iter()
                .any(|f| matches!(f.kind, ShardFaultKind::Stall { .. })
                    && f.shard == crash.shard
                    && f.at == crash.at + Duration::from_nanos(1)),
            "crash at {:?} lacks its paired stall",
            crash.at
        );
    }
}

#[test]
fn recovery_flood_schedules_bounded_crashes() {
    let horizon = Duration::from_millis(250);
    let fault = FaultScenario {
        id: 0,
        kind: FaultKind::RecoveryFlood {
            period: Duration::from_millis(50),
            crashes: 3,
        },
        seed: 0x4EC0_7E4A,
    };
    let faults = fleet_faults(&fault, 4, horizon);
    assert!(!faults.is_empty() && faults.len() <= 3);
    assert!(faults
        .iter()
        .all(|f| matches!(f.kind, ShardFaultKind::Crash)));
}
