//! The q-event busy-window fixed point (Eq. 3 of the paper).

use std::fmt;

use rthv_time::Duration;

/// Errors of the fixed-point iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisError {
    /// The busy window exceeded the divergence horizon — the analyzed
    /// resource is overloaded (utilization ≥ 1) for this demand.
    Diverged {
        /// The horizon that was exceeded.
        horizon: Duration,
    },
    /// The busy-period search exceeded its activation cap without closing.
    BusyPeriodTooLong {
        /// Number of activations examined.
        max_q: u64,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Diverged { horizon } => write!(
                f,
                "busy window exceeded {horizon}; the resource is overloaded for this demand"
            ),
            AnalysisError::BusyPeriodTooLong { max_q } => {
                write!(f, "busy period did not close within {max_q} activations")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Computes the q-event busy time `W(q)` (Eq. 3):
///
/// ```text
/// W(q) = base(q) + interference(W(q))
/// ```
///
/// iterated to the least fixed point, where `base(q)` is the demand of the
/// `q` analyzed activations themselves (e.g. `q·C_i`) and `interference`
/// maps a window length to the maximum interference inside it. The iteration
/// starts at `base(q)` and is monotone, so the first repeated value is the
/// least fixed point.
///
/// # Errors
///
/// Returns [`AnalysisError::Diverged`] when the window exceeds `horizon`
/// (the interference keeps up with the window growth — overload).
///
/// # Examples
///
/// Classic response-time example: a 1 ms job interfered by a periodic
/// 2 ms-period task with 0.5 ms jobs:
///
/// ```
/// use rthv_analysis::{busy_window, EventModel};
/// use rthv_time::Duration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let interferer = EventModel::periodic(Duration::from_millis(2));
/// let w = busy_window(
///     Duration::from_millis(1),
///     |window| interferer.eta_plus(window) * Duration::from_micros(500),
///     Duration::from_secs(1),
/// )?;
/// assert_eq!(w, Duration::from_micros(1_500));
/// # Ok(())
/// # }
/// ```
pub fn busy_window(
    base: Duration,
    interference: impl Fn(Duration) -> Duration,
    horizon: Duration,
) -> Result<Duration, AnalysisError> {
    let mut window = base;
    loop {
        if window > horizon {
            return Err(AnalysisError::Diverged { horizon });
        }
        let next = base.saturating_add(interference(window));
        if next == window {
            return Ok(window);
        }
        debug_assert!(next > window, "busy-window iteration must be monotone");
        window = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventModel;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    #[test]
    fn no_interference_is_identity() {
        let w = busy_window(us(42), |_| Duration::ZERO, us(1_000)).expect("converges");
        assert_eq!(w, us(42));
    }

    #[test]
    fn classic_two_task_response_time() {
        // Low task C=2ms; high task P=5ms, C=1ms → W = 2 + ⌈W/5⌉·1 → 3ms.
        let hi = EventModel::periodic(Duration::from_millis(5));
        let w = busy_window(
            Duration::from_millis(2),
            |window| hi.eta_plus(window) * Duration::from_millis(1),
            Duration::from_secs(1),
        )
        .expect("converges");
        assert_eq!(w, Duration::from_millis(3));
    }

    #[test]
    fn interference_crossing_a_period_boundary_iterates() {
        // C=4.5ms, interferer P=5ms C=1ms:
        // W0=4.5 → 4.5+1=5.5 → ⌈5.5/5⌉=2 → 4.5+2=6.5 → ⌈6.5/5⌉=2 → 6.5. ✓
        let hi = EventModel::periodic(Duration::from_millis(5));
        let w = busy_window(
            us(4_500),
            |window| hi.eta_plus(window) * Duration::from_millis(1),
            Duration::from_secs(1),
        )
        .expect("converges");
        assert_eq!(w, us(6_500));
    }

    #[test]
    fn overload_diverges() {
        // Interferer consumes 2 ms every 1 ms — utilization 2.
        let hi = EventModel::periodic(Duration::from_millis(1));
        let err = busy_window(
            us(100),
            |window| hi.eta_plus(window) * Duration::from_millis(2),
            Duration::from_millis(500),
        )
        .unwrap_err();
        assert_eq!(
            err,
            AnalysisError::Diverged {
                horizon: Duration::from_millis(500)
            }
        );
        assert!(err.to_string().contains("overloaded"));
    }

    #[test]
    fn full_utilization_diverges() {
        // Exactly 100 % interference never closes the window.
        let hi = EventModel::periodic(Duration::from_millis(1));
        let result = busy_window(
            us(1),
            |window| hi.eta_plus(window) * Duration::from_millis(1),
            Duration::from_millis(100),
        );
        assert!(result.is_err());
    }

    #[test]
    fn zero_base_with_interference() {
        let w = busy_window(Duration::ZERO, |_| Duration::ZERO, us(10)).expect("converges");
        assert_eq!(w, Duration::ZERO);
    }
}
