//! Activation models: arrival curves `η⁺` and minimum-distance functions
//! `δ⁻`.

use std::fmt;

use serde::{Deserialize, Serialize};

use rthv_monitor::DeltaFunction;
use rthv_time::Duration;

/// An activation model for one event stream, characterized by the dual pair
/// `η⁺(Δt)` (maximum events in any half-open window of length `Δt`) and
/// `δ⁻(q)` (minimum time spanned by `q` consecutive events).
///
/// The busy-window analysis uses the *half-open* (ceiling) convention
/// throughout, matching the `⌈·⌉` terms of the paper:
/// `η⁺(Δt) = max { q : δ⁻(q) < Δt }`, so a strictly periodic stream with
/// period `P` has `η⁺(Δt) = ⌈Δt / P⌉`.
///
/// # Examples
///
/// ```
/// use rthv_analysis::EventModel;
/// use rthv_time::Duration;
///
/// let periodic = EventModel::periodic(Duration::from_millis(5));
/// assert_eq!(periodic.eta_plus(Duration::from_millis(10)), 2);
/// assert_eq!(periodic.eta_plus(Duration::from_micros(10_001)), 3);
/// assert_eq!(periodic.delta(3), Duration::from_millis(10));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventModel {
    /// Strictly periodic activations.
    Periodic {
        /// Activation period `P`.
        period: Duration,
    },
    /// Periodic activations with release jitter and a minimum distance —
    /// the classical PJD model of compositional analysis.
    PeriodicJitter {
        /// Activation period `P`.
        period: Duration,
        /// Release jitter `J`.
        jitter: Duration,
        /// Minimum distance `d_min` between consecutive activations.
        dmin: Duration,
    },
    /// Sporadic activations with a minimum interarrival distance — exactly
    /// the stream shape the δ⁻ monitor enforces with `l = 1`.
    Sporadic {
        /// Minimum distance `d_min` between consecutive activations.
        dmin: Duration,
    },
    /// An arbitrary finite minimum-distance function (with superadditive
    /// extension) — e.g. one learned by
    /// [`DeltaLearner`](rthv_monitor::DeltaLearner) in Appendix A.
    Delta(DeltaFunction),
}

impl EventModel {
    /// Shorthand for [`EventModel::Periodic`].
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn periodic(period: Duration) -> Self {
        assert!(!period.is_zero(), "period must be positive");
        EventModel::Periodic { period }
    }

    /// Shorthand for [`EventModel::PeriodicJitter`].
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn periodic_jitter(period: Duration, jitter: Duration, dmin: Duration) -> Self {
        assert!(!period.is_zero(), "period must be positive");
        EventModel::PeriodicJitter {
            period,
            jitter,
            dmin,
        }
    }

    /// Shorthand for [`EventModel::Sporadic`].
    ///
    /// # Panics
    ///
    /// Panics if `dmin` is zero (the resulting arrival curve would be
    /// unbounded and no busy window could converge).
    #[must_use]
    pub fn sporadic(dmin: Duration) -> Self {
        assert!(!dmin.is_zero(), "sporadic model needs a positive d_min");
        EventModel::Sporadic { dmin }
    }

    /// `δ⁻(q)`: minimum time spanned by `q` consecutive activations
    /// (`δ⁻(0) = δ⁻(1) = 0`).
    #[must_use]
    pub fn delta(&self, q: u64) -> Duration {
        if q <= 1 {
            return Duration::ZERO;
        }
        let spans = q - 1;
        match self {
            EventModel::Periodic { period } => period.saturating_mul(spans),
            EventModel::PeriodicJitter {
                period,
                jitter,
                dmin,
            } => {
                let periodic = period.saturating_mul(spans).saturating_sub(*jitter);
                periodic.max(dmin.saturating_mul(spans))
            }
            EventModel::Sporadic { dmin } => dmin.saturating_mul(spans),
            EventModel::Delta(delta) => delta.delta(q),
        }
    }

    /// `η⁺(Δt)`: maximum activations in any half-open window of length `Δt`
    /// (`η⁺(0) = 0`), i.e. `max { q : δ⁻(q) < Δt }`.
    ///
    /// Returns `u64::MAX` if the model admits an unbounded burst (a δ⁻
    /// function whose `d_min` is zero).
    #[must_use]
    pub fn eta_plus(&self, dt: Duration) -> u64 {
        if dt.is_zero() {
            return 0;
        }
        match self {
            EventModel::Periodic { period } => dt.div_ceil(*period),
            EventModel::PeriodicJitter {
                period,
                jitter,
                dmin,
            } => {
                // ⌈(Δt + J)/P⌉ capped by the d_min limit ⌈Δt/d_min⌉.
                let by_period = dt.saturating_add(*jitter).div_ceil(*period);
                if dmin.is_zero() {
                    by_period
                } else {
                    by_period.min(dt.div_ceil(*dmin))
                }
            }
            EventModel::Sporadic { dmin } => dt.div_ceil(*dmin),
            EventModel::Delta(delta) => {
                if delta.dmin().is_zero() {
                    return u64::MAX;
                }
                // max q with δ⁻(q) < Δt; search upward (δ⁻ grows at least
                // d_min per extra event, so this terminates).
                let mut q = 1u64;
                while delta.delta(q + 1) < dt {
                    q += 1;
                }
                q
            }
        }
    }

    /// Long-term activation rate upper bound in events per second, if
    /// bounded.
    #[must_use]
    pub fn rate_per_second(&self) -> Option<f64> {
        let gap = match self {
            EventModel::Periodic { period } => *period,
            EventModel::PeriodicJitter { period, .. } => *period,
            EventModel::Sporadic { dmin } => *dmin,
            EventModel::Delta(delta) => {
                // Long-run rate of the superadditive extension: limited by
                // the largest entry span.
                let entries = delta.entries();
                let l = entries.len() as f64;
                let last = entries[entries.len() - 1];
                if last.is_zero() || last == Duration::MAX {
                    delta.dmin()
                } else {
                    // l gaps take at least `last`: rate ≤ l / last.
                    return Some(l / last.as_secs_f64());
                }
            }
        };
        if gap.is_zero() {
            None
        } else {
            Some(1.0 / gap.as_secs_f64())
        }
    }
}

impl From<DeltaFunction> for EventModel {
    fn from(delta: DeltaFunction) -> Self {
        EventModel::Delta(delta)
    }
}

impl fmt::Display for EventModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventModel::Periodic { period } => write!(f, "periodic(P={period})"),
            EventModel::PeriodicJitter {
                period,
                jitter,
                dmin,
            } => write!(f, "pjd(P={period}, J={jitter}, d={dmin})"),
            EventModel::Sporadic { dmin } => write!(f, "sporadic(d={dmin})"),
            EventModel::Delta(delta) => write!(f, "{delta}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    #[test]
    fn periodic_eta_is_ceiling() {
        let m = EventModel::periodic(us(1_000));
        assert_eq!(m.eta_plus(Duration::ZERO), 0);
        assert_eq!(m.eta_plus(us(1)), 1);
        assert_eq!(m.eta_plus(us(1_000)), 1);
        assert_eq!(m.eta_plus(us(1_001)), 2);
        assert_eq!(m.eta_plus(us(2_000)), 2);
    }

    #[test]
    fn periodic_delta_is_linear() {
        let m = EventModel::periodic(us(1_000));
        assert_eq!(m.delta(0), Duration::ZERO);
        assert_eq!(m.delta(1), Duration::ZERO);
        assert_eq!(m.delta(4), us(3_000));
    }

    #[test]
    fn sporadic_matches_paper_ceiling_term() {
        // Eq. 14 uses ⌈Δt/d_min⌉ — the sporadic η⁺ is exactly that.
        let m = EventModel::sporadic(us(300));
        assert_eq!(m.eta_plus(us(1)), 1);
        assert_eq!(m.eta_plus(us(300)), 1);
        assert_eq!(m.eta_plus(us(301)), 2);
        assert_eq!(m.eta_plus(us(900)), 3);
    }

    #[test]
    fn jitter_inflates_short_windows() {
        let m = EventModel::periodic_jitter(us(1_000), us(500), us(100));
        // Window of 1 ns can see ⌈(0.001+500)/1000⌉ = 1 event.
        assert_eq!(m.eta_plus(us(1)), 1);
        // 600 µs window: ⌈1100/1000⌉ = 2 but capped by ⌈600/100⌉ = 6 → 2.
        assert_eq!(m.eta_plus(us(600)), 2);
        // δ⁻(2) = max(P − J, d_min) = 500 µs.
        assert_eq!(m.delta(2), us(500));
        // Heavy jitter: d_min dominates close spans.
        let bursty = EventModel::periodic_jitter(us(1_000), us(5_000), us(100));
        assert_eq!(bursty.delta(2), us(100));
        assert_eq!(bursty.eta_plus(us(200)), 2);
    }

    #[test]
    fn eta_and_delta_are_dual() {
        let models = [
            EventModel::periodic(us(700)),
            EventModel::periodic_jitter(us(700), us(300), us(50)),
            EventModel::sporadic(us(130)),
        ];
        for m in &models {
            for dt_us in [1u64, 99, 700, 701, 1_400, 3_333] {
                let dt = us(dt_us);
                let eta = m.eta_plus(dt);
                assert!(m.delta(eta) < dt, "{m}: δ(η⁺(Δt)) < Δt violated at {dt}");
                assert!(m.delta(eta + 1) >= dt, "{m}: maximality violated at {dt}");
            }
        }
    }

    #[test]
    fn delta_function_model_wraps_monitor_delta() {
        let delta = DeltaFunction::new(vec![us(100), us(500)]).expect("valid");
        let m = EventModel::from(delta);
        assert_eq!(m.delta(3), us(500));
        // Half-open convention: a window of exactly 500 µs sees only 2
        // events (the third arrives exactly at the window edge).
        assert_eq!(m.eta_plus(us(500)), 2);
        assert_eq!(m.eta_plus(us(501)), 3);
    }

    #[test]
    fn unbounded_delta_model_reports_max() {
        let delta = DeltaFunction::from_dmin(Duration::ZERO).expect("valid");
        let m = EventModel::Delta(delta);
        assert_eq!(m.eta_plus(us(1)), u64::MAX);
        assert_eq!(m.rate_per_second(), None);
    }

    #[test]
    fn rates_are_inverse_gaps() {
        assert_eq!(
            EventModel::periodic(Duration::from_millis(2)).rate_per_second(),
            Some(500.0)
        );
        assert_eq!(
            EventModel::sporadic(Duration::from_millis(4)).rate_per_second(),
            Some(250.0)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let _ = EventModel::periodic(Duration::ZERO);
    }

    #[test]
    fn display_names_models() {
        assert_eq!(
            EventModel::periodic(us(1_000)).to_string(),
            "periodic(P=1ms)"
        );
        assert_eq!(EventModel::sporadic(us(5)).to_string(), "sporadic(d=5us)");
    }
}
