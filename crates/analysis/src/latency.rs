//! Worst-case IRQ latency analyses — Eq. 6–16 of the paper.

use std::fmt;

use serde::{Deserialize, Serialize};

use rthv_time::Duration;

use crate::{busy_window, AnalysisError, EventModel};

/// Cap on the number of activations examined when closing the busy period
/// (Eq. 4). Busy periods of real configurations close within a handful of
/// activations; hitting this cap indicates (near-)overload.
const MAX_BUSY_Q: u64 = 100_000;

/// The analyzed IRQ source: activation model and handler costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IrqTask {
    /// Activation model of the IRQ source (`η⁺_i` / `δ⁻_i`).
    pub model: EventModel,
    /// Top-handler WCET `C_THi` (use `C'_THi` of Eq. 15 when the monitoring
    /// function runs; [`IrqTask::with_effective_costs`] does this for you).
    pub top_cost: Duration,
    /// Bottom-handler WCET `C_BHi` (use `C'_BHi` of Eq. 13 for the
    /// interposed analysis).
    pub bottom_cost: Duration,
}

impl IrqTask {
    /// Derives the *effective-cost* task of the monitored system: the top
    /// handler grows by `C_Mon` (Eq. 15) and the bottom handler by
    /// `C_sched + 2·C_ctx` (Eq. 13).
    #[must_use]
    pub fn with_effective_costs(
        &self,
        monitor_cost: Duration,
        sched_cost: Duration,
        context_switch: Duration,
    ) -> IrqTask {
        IrqTask {
            model: self.model.clone(),
            top_cost: self.top_cost + monitor_cost,
            bottom_cost: self.bottom_cost + sched_cost + context_switch * 2,
        }
    }
}

/// An interfering IRQ source: only its top handler disturbs the analyzed
/// IRQ (Eq. 9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interferer {
    /// Activation model `η⁺_j`.
    pub model: EventModel,
    /// Top-handler WCET `C_THj`.
    pub top_cost: Duration,
}

/// TDMA geometry of the subscriber partition: cycle length `T_TDMA` and the
/// partition's own slot `T_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TdmaSlot {
    /// TDMA cycle length `T_TDMA`.
    pub cycle: Duration,
    /// The subscriber's slot length `T_i`.
    pub slot: Duration,
}

/// Result of a worst-case latency analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WcrtResult {
    /// The worst-case IRQ latency `R_i` (Eq. 5 / Eq. 12).
    pub wcrt: Duration,
    /// The activation index `q` attaining the maximum.
    pub critical_q: u64,
    /// Number of activations in the maximal busy period (`Q_i`, Eq. 4).
    pub busy_activations: u64,
}

impl fmt::Display for WcrtResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "R = {} (critical q = {} of {})",
            self.wcrt, self.critical_q, self.busy_activations
        )
    }
}

/// Eq. 8: worst-case interference from foreign TDMA slots (including
/// context-switch overhead) inside a window `Δt`:
/// `I_TDMA(Δt) = ⌈Δt / T_TDMA⌉ · (T_TDMA − T_i)`.
///
/// # Panics
///
/// Panics if the slot is longer than the cycle.
#[must_use]
pub fn tdma_interference(dt: Duration, tdma: TdmaSlot) -> Duration {
    assert!(tdma.slot <= tdma.cycle, "slot cannot exceed the TDMA cycle");
    (tdma.cycle - tdma.slot).saturating_mul(dt.div_ceil(tdma.cycle))
}

/// Eq. 9: total top-handler interference from other IRQ sources in `Δt`.
fn top_interference(dt: Duration, interferers: &[Interferer]) -> Duration {
    interferers
        .iter()
        .map(|j| j.top_cost.saturating_mul(j.model.eta_plus(dt)))
        .fold(Duration::ZERO, Duration::saturating_add)
}

/// Eq. 10 folded into Eq. 11: interference from the analyzed source's *own*
/// top handlers beyond the `q` analyzed activations.
fn own_top_interference(dt: Duration, q: u64, task: &IrqTask) -> Duration {
    let eta = task.model.eta_plus(dt);
    task.top_cost.saturating_mul(eta.max(q) - q)
}

/// Runs the generic Eq. 4/5 busy-period sweep for a per-`q` window function.
fn sweep_wcrt(
    task: &IrqTask,
    window_of: impl Fn(u64) -> Result<Duration, AnalysisError>,
) -> Result<WcrtResult, AnalysisError> {
    let mut best = Duration::ZERO;
    let mut critical_q = 1;
    let mut q = 1u64;
    loop {
        let window = window_of(q)?;
        let response = window.saturating_sub(task.model.delta(q));
        if response > best {
            best = response;
            critical_q = q;
        }
        // Eq. 4: the busy period contains activation q+1 only if it arrives
        // before the q-event busy window ends.
        if task.model.delta(q + 1) >= window {
            return Ok(WcrtResult {
                wcrt: best,
                critical_q,
                busy_activations: q,
            });
        }
        q += 1;
        if q > MAX_BUSY_Q {
            return Err(AnalysisError::BusyPeriodTooLong { max_q: MAX_BUSY_Q });
        }
    }
}

/// A generous divergence horizon: a few thousand TDMA cycles / handler
/// spans.
fn horizon_for(task: &IrqTask, extra: Duration) -> Duration {
    let unit = task
        .bottom_cost
        .saturating_add(task.top_cost)
        .saturating_add(extra);
    unit.saturating_mul(100_000)
}

/// Eq. 11/12: worst-case IRQ latency of the **baseline** (delayed) handling
/// path, where the bottom handler only runs inside the subscriber's own
/// TDMA slot:
///
/// ```text
/// W(q) = q·C_BHi + η⁺_i(W)·C_THi + ⌈W/T_TDMA⌉·(T_TDMA − T_i)
///        + Σ_j η⁺_j(W)·C_THj
/// R_i  = max_q ( W(q) − δ⁻_i(q) )
/// ```
///
/// # Errors
///
/// [`AnalysisError::Diverged`] when the IRQ demand exceeds the slot
/// capacity, [`AnalysisError::BusyPeriodTooLong`] when the busy period does
/// not close.
pub fn baseline_irq_wcrt(
    task: &IrqTask,
    tdma: TdmaSlot,
    interferers: &[Interferer],
) -> Result<WcrtResult, AnalysisError> {
    let horizon = horizon_for(task, tdma.cycle);
    sweep_wcrt(task, |q| {
        busy_window(
            task.bottom_cost.saturating_mul(q),
            |w| {
                own_top_interference(w, q, task)
                    .saturating_add(task.top_cost.saturating_mul(q))
                    .saturating_add(tdma_interference(w, tdma))
                    .saturating_add(top_interference(w, interferers))
            },
            horizon,
        )
    })
}

/// Eq. 16/12: worst-case IRQ latency of the **interposed** path for
/// arrivals that satisfy the monitoring condition. Pass the *effective*
/// costs ([`IrqTask::with_effective_costs`]) — and note the TDMA term is
/// gone entirely:
///
/// ```text
/// W(q) = q·C'_BHi + η⁺_i(W)·C'_THi + Σ_j η⁺_j(W)·C_THj
/// ```
///
/// # Errors
///
/// Same conditions as [`baseline_irq_wcrt`].
pub fn interposed_irq_wcrt(
    effective_task: &IrqTask,
    interferers: &[Interferer],
) -> Result<WcrtResult, AnalysisError> {
    let horizon = horizon_for(effective_task, Duration::ZERO);
    sweep_wcrt(effective_task, |q| {
        busy_window(
            effective_task.bottom_cost.saturating_mul(q),
            |w| {
                own_top_interference(w, q, effective_task)
                    .saturating_add(effective_task.top_cost.saturating_mul(q))
                    .saturating_add(top_interference(w, interferers))
            },
            horizon,
        )
    })
}

/// Eq. 7 with `C'_TH` (Eq. 15): worst-case latency for arrivals that
/// **violate** the monitoring condition — they fall back to delayed
/// handling (full TDMA interference), and additionally pay the monitoring
/// overhead in every top handler.
///
/// `monitor_cost` is `C_Mon`; the bottom-handler cost stays `C_BHi`
/// (no extra context switches are introduced on the delayed path).
///
/// # Errors
///
/// Same conditions as [`baseline_irq_wcrt`].
pub fn violating_irq_wcrt(
    task: &IrqTask,
    monitor_cost: Duration,
    tdma: TdmaSlot,
    interferers: &[Interferer],
) -> Result<WcrtResult, AnalysisError> {
    let monitored = IrqTask {
        model: task.model.clone(),
        top_cost: task.top_cost + monitor_cost,
        bottom_cost: task.bottom_cost,
    };
    baseline_irq_wcrt(&monitored, tdma, interferers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    /// The paper's Section-6 geometry.
    fn paper_tdma() -> TdmaSlot {
        TdmaSlot {
            cycle: us(14_000),
            slot: us(6_000),
        }
    }

    fn paper_task(dmin_us: u64) -> IrqTask {
        IrqTask {
            model: EventModel::sporadic(us(dmin_us)),
            top_cost: us(2),
            bottom_cost: us(30),
        }
    }

    #[test]
    fn tdma_interference_matches_eq8() {
        let tdma = paper_tdma();
        assert_eq!(tdma_interference(us(1), tdma), us(8_000));
        assert_eq!(tdma_interference(us(14_000), tdma), us(8_000));
        assert_eq!(tdma_interference(us(14_001), tdma), us(16_000));
    }

    #[test]
    fn baseline_wcrt_is_tdma_dominated() {
        let result = baseline_irq_wcrt(&paper_task(3_000), paper_tdma(), &[]).expect("converges");
        // One activation: W = 30 + 2 + 8000 plus the Eq. 10 term — an 8 ms
        // window sees η⁺ = 3 arrivals at d_min = 3 ms, i.e. two extra top
        // handlers: W = 8032 + 4 = 8036 µs; R = W − δ(1) = W.
        assert_eq!(result.wcrt, us(8_036));
        assert_eq!(result.critical_q, 1);
        // d_min = 3 ms < W(1), so the busy period spans three activations
        // before δ⁻(4) = 9 ms outruns the window.
        assert_eq!(result.busy_activations, 3);
    }

    #[test]
    fn baseline_busy_period_extends_under_pressure() {
        // d_min = 5 ms < busy window (≈8 ms): the second activation lands
        // inside the window, extending the busy period.
        let result = baseline_irq_wcrt(&paper_task(5_000), paper_tdma(), &[]).expect("converges");
        assert!(result.busy_activations >= 2);
        // q=1: W = 30 + 2 + (⌈8034/5000⌉−1)·2 + 8000 = 8034, R(1) = 8034;
        // q=2: W = 60 + 2·2 + 8000 = 8064, R(2) = 8064 − 5000 = 3064.
        assert_eq!(result.wcrt, us(8_034));
        assert_eq!(result.critical_q, 1);
    }

    #[test]
    fn interposed_wcrt_is_decoupled_from_tdma() {
        let effective = paper_task(3_000).with_effective_costs(us(1), us(4), us(50));
        let result = interposed_irq_wcrt(&effective, &[]).expect("converges");
        // W(1) = (30+4+100) + (2+1) = 137 µs, far below the TDMA cycle.
        assert_eq!(result.wcrt, us(137));
        assert!(result.wcrt < us(14_000));
    }

    #[test]
    fn violating_wcrt_adds_monitor_overhead_to_baseline() {
        let baseline = baseline_irq_wcrt(&paper_task(3_000), paper_tdma(), &[]).expect("converges");
        let violating =
            violating_irq_wcrt(&paper_task(3_000), us(1), paper_tdma(), &[]).expect("converges");
        // Every top handler in the window (η⁺ = 3) pays C_Mon = 1 µs.
        assert_eq!(violating.wcrt, baseline.wcrt + us(3));
    }

    #[test]
    fn interferer_top_handlers_extend_the_window() {
        let interferer = Interferer {
            model: EventModel::periodic(us(1_000)),
            top_cost: us(10),
        };
        let without = interposed_irq_wcrt(
            &paper_task(3_000).with_effective_costs(us(1), us(4), us(50)),
            &[],
        )
        .expect("converges");
        let with = interposed_irq_wcrt(
            &paper_task(3_000).with_effective_costs(us(1), us(4), us(50)),
            &[interferer],
        )
        .expect("converges");
        // The 137 µs window sees one interferer activation → +10 µs.
        assert_eq!(with.wcrt, without.wcrt + us(10));
    }

    #[test]
    fn overload_is_reported() {
        // Bottom handler demand exceeds the slot share: 6 ms of work every
        // 7 ms against a 6/14 duty slot.
        let task = IrqTask {
            model: EventModel::sporadic(us(7_000)),
            top_cost: us(2),
            bottom_cost: us(6_000),
        };
        let result = baseline_irq_wcrt(&task, paper_tdma(), &[]);
        assert!(result.is_err());
    }

    #[test]
    fn effective_costs_match_eq13_and_eq15() {
        let task = paper_task(3_000);
        let effective = task.with_effective_costs(us(1), us(4), us(50));
        assert_eq!(effective.top_cost, us(3));
        assert_eq!(effective.bottom_cost, us(134));
        assert_eq!(effective.model, task.model);
    }

    #[test]
    fn wcrt_result_displays() {
        let result = WcrtResult {
            wcrt: us(8_032),
            critical_q: 1,
            busy_activations: 1,
        };
        assert!(result.to_string().contains("8032us"));
    }

    #[test]
    #[should_panic(expected = "slot cannot exceed")]
    fn tdma_interference_validates_geometry() {
        let _ = tdma_interference(
            us(1),
            TdmaSlot {
                cycle: us(10),
                slot: us(20),
            },
        );
    }

    #[test]
    fn periodic_activation_with_backlog_has_tail_latencies() {
        // Periodic arrivals every 9 ms with an 8 ms TDMA hole: windows grow
        // over multiple activations; ensure the sweep handles q > 1 and the
        // result exceeds the single-event response.
        let task = IrqTask {
            model: EventModel::periodic(us(9_000)),
            top_cost: us(2),
            bottom_cost: us(2_000),
        };
        let result = baseline_irq_wcrt(&task, paper_tdma(), &[]).expect("converges");
        assert!(result.busy_activations >= 2);
        assert!(result.wcrt >= us(10_000));
    }
}
