//! Worst-case interrupt latency analysis for TDMA-scheduled hypervisors.
//!
//! This crate implements Section 4 and Section 5.1 of the DAC'14 paper as a
//! compositional analysis library:
//!
//! * [`EventModel`] — activation models as arrival curves `η⁺(Δt)` and
//!   minimum-distance functions `δ⁻(q)` (periodic, periodic-with-jitter,
//!   sporadic, and arbitrary δ⁻ functions learned by the monitor);
//! * [`busy_window`] — the q-event busy-window fixed point of Eq. 3;
//! * [`tdma_interference`] — Eq. 8, the service an IRQ loses to foreign
//!   TDMA slots;
//! * [`baseline_irq_wcrt`] — Eq. 11/12, the worst-case latency of the
//!   unmodified (delayed) handling path;
//! * [`interposed_irq_wcrt`] — Eq. 16/12, the worst-case latency of the
//!   monitored interposed path for d_min-conformant arrivals — note it no
//!   longer contains the TDMA term at all;
//! * [`violating_irq_wcrt`] — Eq. 7 with `C'_TH` (Eq. 15): the fallback
//!   bound for arrivals that violate the monitoring condition.
//!
//! # Examples
//!
//! Reproducing the headline observation of the paper — the baseline bound
//! is dominated by the TDMA cycle, the interposed bound is not:
//!
//! ```
//! use rthv_analysis::{baseline_irq_wcrt, interposed_irq_wcrt, EventModel, IrqTask, TdmaSlot};
//! use rthv_time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arrivals = EventModel::sporadic(Duration::from_millis(3));
//! let task = IrqTask {
//!     model: arrivals,
//!     top_cost: Duration::from_micros(2),
//!     bottom_cost: Duration::from_micros(30),
//! };
//! let slot = TdmaSlot {
//!     cycle: Duration::from_millis(14),
//!     slot: Duration::from_millis(6),
//! };
//!
//! let baseline = baseline_irq_wcrt(&task, slot, &[])?;
//! let interposed = interposed_irq_wcrt(
//!     &task.with_effective_costs(
//!         Duration::from_nanos(640),   // C_Mon
//!         Duration::from_nanos(4_385), // C_sched
//!         Duration::from_micros(50),   // C_ctx
//!     ),
//!     &[],
//! )?;
//! assert!(baseline.wcrt > Duration::from_millis(8)); // TDMA-dominated
//! assert!(interposed.wcrt < Duration::from_micros(200)); // decoupled
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod busy_window;
mod event_model;
mod latency;
mod output;
mod supply;

pub use busy_window::{busy_window, AnalysisError};
pub use event_model::EventModel;
pub use latency::{
    baseline_irq_wcrt, interposed_irq_wcrt, tdma_interference, violating_irq_wcrt, Interferer,
    IrqTask, TdmaSlot, WcrtResult,
};
pub use output::{
    chain_latency, irq_best_case, output_event_model, propagate_chain, ResponseRange,
};
pub use supply::{
    guest_task_wcrt, GuestTaskSpec, MonitoredSupply, PatternLayoutError, PatternSupply,
    SupplyBound, TdmaSupply,
};
