//! Output event models and end-to-end chains — the compositional step of
//! the analysis framework the paper builds on (Richter's standard event
//! models, the paper's references [12]/[16]).
//!
//! An IRQ's bottom-handler *completions* are themselves an event stream:
//! they activate follow-up processing (a consumer task in another
//! partition, a network send, …). Completion timing inherits the input
//! model's period, widened by the *response jitter* `R − B` between the
//! worst-case and best-case response times. These helpers derive that
//! output model and chain worst/best-case latencies end to end, so a full
//! sensor→IRQ→gateway→actuator path can be bounded with the same machinery
//! that bounds a single IRQ.

use serde::{Deserialize, Serialize};

use rthv_time::Duration;

use crate::EventModel;

/// Worst-/best-case response pair of one processing stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseRange {
    /// Best-case response time `B` (≥ the stage's pure execution time).
    pub best: Duration,
    /// Worst-case response time `R`.
    pub worst: Duration,
}

impl ResponseRange {
    /// Creates a response range.
    ///
    /// # Panics
    ///
    /// Panics if `best > worst`.
    #[must_use]
    pub fn new(best: Duration, worst: Duration) -> Self {
        assert!(best <= worst, "best-case response cannot exceed worst case");
        ResponseRange { best, worst }
    }

    /// The response jitter `R − B` this stage adds.
    #[must_use]
    pub fn jitter(&self) -> Duration {
        self.worst - self.best
    }
}

/// Best-case response of an IRQ under this reproduction's platform model:
/// the top handler followed immediately by the undisturbed bottom handler
/// (the IRQ arrives in its subscriber's slot with an empty queue).
///
/// This is the `B` to pair with the worst cases from
/// [`baseline_irq_wcrt`](crate::baseline_irq_wcrt) /
/// [`interposed_irq_wcrt`](crate::interposed_irq_wcrt).
#[must_use]
pub fn irq_best_case(top_cost: Duration, bottom_cost: Duration) -> Duration {
    top_cost + bottom_cost
}

/// Derives the event model of a stage's *outputs* (completions) from its
/// input model and response range.
///
/// * the long-term period is preserved,
/// * the output jitter is the input jitter plus the response jitter,
/// * the minimum output distance is floored by both the shrunk input
///   distance `δ⁻_in(2) − (R − B)` and the stage's best-case response
///   (two completions of the same handler cannot be closer than one
///   undisturbed execution).
///
/// # Examples
///
/// ```
/// use rthv_analysis::{output_event_model, EventModel, ResponseRange};
/// use rthv_time::Duration;
///
/// let input = EventModel::periodic(Duration::from_millis(5));
/// let response = ResponseRange::new(
///     Duration::from_micros(32),
///     Duration::from_micros(137),
/// );
/// let output = output_event_model(&input, response);
/// // Completions stay 5 ms-periodic with 105 µs of jitter.
/// assert_eq!(output.delta(2), Duration::from_micros(4_895));
/// ```
#[must_use]
pub fn output_event_model(input: &EventModel, response: ResponseRange) -> EventModel {
    let response_jitter = response.jitter();
    // Period: preserved by any work-conserving stage. Recover it from the
    // long-run rate; for δ⁻-shaped inputs fall back to the pairwise
    // distance.
    let (period, input_jitter, input_dmin) = match input {
        EventModel::Periodic { period } => (*period, Duration::ZERO, *period),
        EventModel::PeriodicJitter {
            period,
            jitter,
            dmin,
        } => (*period, *jitter, *dmin),
        EventModel::Sporadic { dmin } => (*dmin, Duration::ZERO, *dmin),
        EventModel::Delta(delta) => (delta.dmin(), Duration::ZERO, delta.dmin()),
    };
    let out_jitter = input_jitter.saturating_add(response_jitter);
    let out_dmin = input_dmin
        .saturating_sub(response_jitter)
        .max(response.best);
    EventModel::PeriodicJitter {
        period,
        jitter: out_jitter,
        dmin: out_dmin,
    }
}

/// End-to-end latency range of a processing chain: the sum of the stage
/// response ranges (each stage starts when its predecessor completes).
///
/// # Examples
///
/// ```
/// use rthv_analysis::{chain_latency, ResponseRange};
/// use rthv_time::Duration;
///
/// let us = Duration::from_micros;
/// let chain = [
///     ResponseRange::new(us(32), us(137)),    // IRQ (interposed bound)
///     ResponseRange::new(us(500), us(2_000)), // gateway task
/// ];
/// let total = chain_latency(&chain);
/// assert_eq!(total.best, us(532));
/// assert_eq!(total.worst, us(2_137));
/// ```
#[must_use]
pub fn chain_latency(stages: &[ResponseRange]) -> ResponseRange {
    let best = stages
        .iter()
        .map(|s| s.best)
        .fold(Duration::ZERO, Duration::saturating_add);
    let worst = stages
        .iter()
        .map(|s| s.worst)
        .fold(Duration::ZERO, Duration::saturating_add);
    ResponseRange { best, worst }
}

/// Propagates an event model through a chain of stages, returning the model
/// of the final stage's completions.
///
/// Useful to feed the completions of an interposed IRQ into the analysis of
/// a consumer in another partition (as an [`Interferer`](crate::Interferer)
/// or as the consumer's own activation model).
#[must_use]
pub fn propagate_chain(input: &EventModel, stages: &[ResponseRange]) -> EventModel {
    let mut model = input.clone();
    for stage in stages {
        model = output_event_model(&model, *stage);
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use rthv_monitor::DeltaFunction;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    #[test]
    fn response_range_validates() {
        let range = ResponseRange::new(us(10), us(40));
        assert_eq!(range.jitter(), us(30));
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn inverted_range_rejected() {
        let _ = ResponseRange::new(us(2), us(1));
    }

    #[test]
    fn periodic_input_gains_response_jitter() {
        let input = EventModel::periodic(us(5_000));
        let output = output_event_model(&input, ResponseRange::new(us(30), us(130)));
        match output {
            EventModel::PeriodicJitter {
                period,
                jitter,
                dmin,
            } => {
                assert_eq!(period, us(5_000));
                assert_eq!(jitter, us(100));
                assert_eq!(dmin, us(4_900));
            }
            other => panic!("unexpected model {other}"),
        }
    }

    #[test]
    fn jitter_accumulates_through_stages() {
        let input = EventModel::periodic_jitter(us(5_000), us(200), us(4_000));
        let output = output_event_model(&input, ResponseRange::new(us(10), us(310)));
        match output {
            EventModel::PeriodicJitter { jitter, .. } => assert_eq!(jitter, us(500)),
            other => panic!("unexpected model {other}"),
        }
    }

    #[test]
    fn output_distance_is_floored_by_best_case() {
        // Huge response jitter would shrink δ⁻ below zero; two completions
        // of the same handler still cannot be closer than B.
        let input = EventModel::sporadic(us(100));
        let output = output_event_model(&input, ResponseRange::new(us(40), us(5_000)));
        match output {
            EventModel::PeriodicJitter { dmin, .. } => assert_eq!(dmin, us(40)),
            other => panic!("unexpected model {other}"),
        }
    }

    #[test]
    fn delta_input_uses_pairwise_distance() {
        let delta = DeltaFunction::from_dmin(us(3_000)).expect("valid");
        let output = output_event_model(
            &EventModel::Delta(delta),
            ResponseRange::new(us(32), us(137)),
        );
        assert_eq!(output.delta(2), us(2_895));
    }

    #[test]
    fn chain_latency_sums_ranges() {
        let total = chain_latency(&[
            ResponseRange::new(us(10), us(100)),
            ResponseRange::new(us(20), us(200)),
            ResponseRange::new(us(30), us(300)),
        ]);
        assert_eq!(total.best, us(60));
        assert_eq!(total.worst, us(600));
    }

    #[test]
    fn empty_chain_is_zero() {
        let total = chain_latency(&[]);
        assert_eq!(total.best, Duration::ZERO);
        assert_eq!(total.worst, Duration::ZERO);
    }

    #[test]
    fn propagation_composes_stages() {
        let input = EventModel::periodic(us(10_000));
        let stages = [
            ResponseRange::new(us(30), us(130)),
            ResponseRange::new(us(500), us(1_500)),
        ];
        let output = propagate_chain(&input, &stages);
        match output {
            EventModel::PeriodicJitter { period, jitter, .. } => {
                assert_eq!(period, us(10_000));
                assert_eq!(jitter, us(1_100));
            }
            other => panic!("unexpected model {other}"),
        }
    }

    #[test]
    fn output_eta_is_sane() {
        // The output of a 5 ms-periodic stream through a low-jitter stage
        // still shows at most 3 events in a 10.2 ms window.
        let input = EventModel::periodic(us(5_000));
        let output = output_event_model(&input, ResponseRange::new(us(30), us(130)));
        assert!(output.eta_plus(us(10_200)) <= 3);
    }

    #[test]
    fn irq_best_case_is_top_plus_bottom() {
        assert_eq!(irq_best_case(us(2), us(30)), us(32));
    }
}
