//! Supply-bound functions for hierarchical (guest-level) analysis.
//!
//! A TDMA partition is a *periodic resource*: it receives its slot `T_i`
//! once per cycle `T_TDMA`. The worst-case supply a guest receives in any
//! window `Δt` is the classical staircase starting right after the slot
//! ends. Under the paper's monitored interposition, other partitions'
//! bottom handlers may additionally steal up to `⌈Δt/d_min⌉ · C'_BH`
//! (Eq. 14) plus the monitored top handlers — the *sufficient temporal
//! independence* budget. [`MonitoredSupply`] subtracts exactly that, which
//! lets guest task sets be verified against the interference the hypervisor
//! enforces.

use serde::{Deserialize, Serialize};

use rthv_time::Duration;

use crate::AnalysisError;

/// A lower bound on processor supply inside any window, usable by the
/// hierarchical guest analysis ([`guest_task_wcrt`]).
pub trait SupplyBound {
    /// Minimum supply delivered in any window of length `dt`.
    fn supply(&self, dt: Duration) -> Duration;

    /// Smallest window guaranteed to deliver `demand` of supply, bounded by
    /// `horizon`.
    ///
    /// The default implementation exponentially brackets and then binary
    /// searches, relying only on monotonicity of [`supply`](Self::supply).
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Diverged`] if even `horizon` does not supply the
    /// demand.
    fn smallest_window(
        &self,
        demand: Duration,
        horizon: Duration,
    ) -> Result<Duration, AnalysisError> {
        if demand.is_zero() {
            return Ok(Duration::ZERO);
        }
        if self.supply(horizon) < demand {
            return Err(AnalysisError::Diverged { horizon });
        }
        // Exponential bracket.
        let mut hi = Duration::from_nanos(1);
        while self.supply(hi) < demand {
            hi = (hi * 2).min(horizon);
        }
        let mut lo = Duration::ZERO; // supply(lo) < demand (demand > 0)
                                     // Binary search for the smallest window with enough supply.
        while hi.as_nanos() - lo.as_nanos() > 1 {
            let mid = Duration::from_nanos((lo.as_nanos() + hi.as_nanos()) / 2);
            if self.supply(mid) >= demand {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(hi)
    }
}

/// The TDMA periodic-resource supply: slot `slot` every `cycle`, with the
/// adversarial window alignment (starting right after the slot ends).
///
/// # Examples
///
/// ```
/// use rthv_analysis::{SupplyBound, TdmaSupply};
/// use rthv_time::Duration;
///
/// let supply = TdmaSupply::new(
///     Duration::from_millis(14),
///     Duration::from_millis(6),
/// );
/// // A window of one gap length can contain no supply at all:
/// assert_eq!(supply.supply(Duration::from_millis(8)), Duration::ZERO);
/// // One full cycle always contains one full slot:
/// assert_eq!(supply.supply(Duration::from_millis(14)), Duration::from_millis(6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TdmaSupply {
    cycle: Duration,
    slot: Duration,
}

impl TdmaSupply {
    /// Creates the supply model.
    ///
    /// # Panics
    ///
    /// Panics if the slot is zero or exceeds the cycle.
    #[must_use]
    pub fn new(cycle: Duration, slot: Duration) -> Self {
        assert!(!slot.is_zero(), "slot must be positive");
        assert!(slot <= cycle, "slot cannot exceed the cycle");
        TdmaSupply { cycle, slot }
    }

    /// The TDMA cycle length.
    #[must_use]
    pub fn cycle(&self) -> Duration {
        self.cycle
    }

    /// The partition's slot length.
    #[must_use]
    pub fn slot(&self) -> Duration {
        self.slot
    }

    /// The per-cycle no-supply gap `T_TDMA − T_i`.
    #[must_use]
    pub fn gap(&self) -> Duration {
        self.cycle - self.slot
    }
}

impl SupplyBound for TdmaSupply {
    fn supply(&self, dt: Duration) -> Duration {
        // Worst alignment: the window opens right at the slot end. Full
        // cycles contribute a slot each; the remainder contributes whatever
        // exceeds the gap.
        let cycles = dt.div_floor(self.cycle);
        let remainder = dt - self.cycle * cycles;
        self.slot * cycles + remainder.saturating_sub(self.gap())
    }
}

/// TDMA supply minus the enforced interposition interference (Eq. 14) and
/// the monitored top handlers of the interposing source.
///
/// This is the supply a *victim* partition is guaranteed under the paper's
/// monitored hypervisor, no matter how the IRQ-subscribing partition or the
/// interrupt source behave.
///
/// # Examples
///
/// ```
/// use rthv_analysis::{MonitoredSupply, SupplyBound, TdmaSupply};
/// use rthv_time::Duration;
///
/// let tdma = TdmaSupply::new(Duration::from_millis(14), Duration::from_millis(6));
/// let monitored = MonitoredSupply::new(
///     tdma,
///     Duration::from_millis(3),    // d_min
///     Duration::from_micros(134),  // C'_BH
///     Duration::from_micros(3),    // C'_TH
/// );
/// let window = Duration::from_millis(14);
/// assert!(monitored.supply(window) < tdma.supply(window));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitoredSupply {
    tdma: TdmaSupply,
    dmin: Duration,
    effective_bottom_cost: Duration,
    monitored_top_cost: Duration,
}

impl MonitoredSupply {
    /// Creates the monitored-supply model.
    ///
    /// # Panics
    ///
    /// Panics if `dmin` is zero (unbounded interference) or the per-`d_min`
    /// interference `C'_BH + C'_TH` is not strictly smaller than `d_min`
    /// (the guarantee would be vacuous).
    #[must_use]
    pub fn new(
        tdma: TdmaSupply,
        dmin: Duration,
        effective_bottom_cost: Duration,
        monitored_top_cost: Duration,
    ) -> Self {
        assert!(!dmin.is_zero(), "d_min must be positive");
        assert!(
            effective_bottom_cost + monitored_top_cost < dmin,
            "per-d_min interference must be smaller than d_min"
        );
        MonitoredSupply {
            tdma,
            dmin,
            effective_bottom_cost,
            monitored_top_cost,
        }
    }

    /// The underlying TDMA supply.
    #[must_use]
    pub fn tdma(&self) -> TdmaSupply {
        self.tdma
    }

    /// Interference budget inside a window `dt`: Eq. 14 plus the monitored
    /// top handlers, with the closed-window-safe event count
    /// `⌊dt/d_min⌋ + 1` (≥ the paper's `⌈dt/d_min⌉`, equal except at exact
    /// multiples).
    #[must_use]
    pub fn interference(&self, dt: Duration) -> Duration {
        if dt.is_zero() {
            return Duration::ZERO;
        }
        let events = dt.div_floor(self.dmin) + 1;
        (self.effective_bottom_cost + self.monitored_top_cost).saturating_mul(events)
    }

    /// Raw (non-monotone) pointwise bound `sbf_TDMA(s) − I(s)`.
    fn raw(&self, s: Duration) -> Duration {
        self.tdma.supply(s).saturating_sub(self.interference(s))
    }
}

impl SupplyBound for MonitoredSupply {
    /// The monotone closure `max_{s ≤ dt} (sbf_TDMA(s) − I(s))`: supply in
    /// a window of length `dt` is at least the guaranteed supply of any
    /// sub-window. The raw difference is piecewise increasing with a
    /// downward jump after every `d_min` multiple, so the maximum is
    /// attained either at `dt` itself or just before one of the jumps.
    fn supply(&self, dt: Duration) -> Duration {
        // On each piece [k·d_min, (k+1)·d_min) the interference count is
        // constant, so the raw bound increases within the piece: the
        // closure's maximum is attained at `dt` or one ns before a d_min
        // multiple.
        let ns = Duration::from_nanos(1);
        let mut best = self.raw(dt);
        let mut piece_end = self.dmin; // exclusive end of piece 0
        while piece_end <= dt {
            best = best.max(self.raw(piece_end - ns));
            piece_end += self.dmin;
        }
        best
    }
}

/// A guest task for the hierarchical analysis: WCET and period (implicit
/// deadline; priorities by position, index 0 highest — rate-monotonic order
/// is the caller's responsibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuestTaskSpec {
    /// Worst-case execution time.
    pub wcet: Duration,
    /// Activation period.
    pub period: Duration,
}

/// Hierarchical fixed-priority response-time analysis: worst-case response
/// time of each guest task when the partition's processor supply is bounded
/// below by `supply`.
///
/// For task `i` the classical demand `W_i(t) = C_i + Σ_{j<i} ⌈t/P_j⌉·C_j`
/// must be covered by the supply: `R_i` is the least fixed point of
/// `R = smallest_window(W_i(R))`.
///
/// # Errors
///
/// Per task, [`AnalysisError::Diverged`] when the demand cannot be supplied
/// within `horizon`.
///
/// # Examples
///
/// ```
/// use rthv_analysis::{guest_task_wcrt, GuestTaskSpec, SupplyBound, TdmaSupply};
/// use rthv_time::Duration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let supply = TdmaSupply::new(Duration::from_millis(14), Duration::from_millis(6));
/// let tasks = [GuestTaskSpec {
///     wcet: Duration::from_millis(2),
///     period: Duration::from_millis(28),
/// }];
/// let wcrt = guest_task_wcrt(&tasks, &supply, Duration::from_secs(1));
/// // 2 ms of demand needs a window of gap + 2 ms = 10 ms in the worst case.
/// assert_eq!(wcrt[0].as_ref().expect("feasible"), &Duration::from_millis(10));
/// # Ok(())
/// # }
/// ```
pub fn guest_task_wcrt<S: SupplyBound>(
    tasks: &[GuestTaskSpec],
    supply: &S,
    horizon: Duration,
) -> Vec<Result<Duration, AnalysisError>> {
    /// Busy-period activation cap; hitting it means (near-)overload.
    const MAX_Q: u64 = 10_000;

    tasks
        .iter()
        .enumerate()
        .map(|(i, task)| {
            // q-event busy window under limited supply: the window must
            // supply q jobs of this task plus all higher-priority demand.
            let window_of = |q: u64| -> Result<Duration, AnalysisError> {
                let demand = |t: Duration| -> Duration {
                    let mut total = task.wcet.saturating_mul(q);
                    for higher in &tasks[..i] {
                        total = total
                            .saturating_add(higher.wcet.saturating_mul(t.div_ceil(higher.period)));
                    }
                    total
                };
                let mut window = supply.smallest_window(demand(Duration::ZERO), horizon)?;
                loop {
                    let next = supply.smallest_window(demand(window), horizon)?;
                    if next == window {
                        return Ok(window);
                    }
                    debug_assert!(next > window, "hierarchical iteration must grow");
                    window = next;
                }
            };
            // Sweep activations until the busy period closes (the next job
            // of this task arrives after the window ends).
            let mut best = Duration::ZERO;
            let mut q = 1u64;
            loop {
                let window = window_of(q)?;
                let response = window.saturating_sub(task.period.saturating_mul(q - 1));
                best = best.max(response);
                if task.period.saturating_mul(q) >= window {
                    return Ok(best);
                }
                q += 1;
                if q > MAX_Q {
                    return Err(AnalysisError::BusyPeriodTooLong { max_q: MAX_Q });
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn paper_supply() -> TdmaSupply {
        TdmaSupply::new(ms(14), ms(6))
    }

    #[test]
    fn tdma_supply_staircase() {
        let s = paper_supply();
        assert_eq!(s.supply(Duration::ZERO), Duration::ZERO);
        assert_eq!(s.supply(ms(8)), Duration::ZERO);
        assert_eq!(s.supply(ms(9)), ms(1));
        assert_eq!(s.supply(ms(14)), ms(6));
        assert_eq!(s.supply(ms(22)), ms(6));
        assert_eq!(s.supply(ms(23)), ms(7));
        assert_eq!(s.supply(ms(28)), ms(12));
    }

    #[test]
    fn smallest_window_inverts_supply() {
        let s = paper_supply();
        let horizon = Duration::from_secs(1);
        assert_eq!(
            s.smallest_window(Duration::ZERO, horizon),
            Ok(Duration::ZERO)
        );
        assert_eq!(s.smallest_window(ms(1), horizon), Ok(ms(9)));
        assert_eq!(s.smallest_window(ms(6), horizon), Ok(ms(14)));
        assert_eq!(s.smallest_window(ms(7), horizon), Ok(ms(23)));
        // Consistency: supply(smallest_window(d)) ≥ d, and one ns less
        // undersupplies.
        for d_us in [1u64, 500, 2_000, 6_000, 6_001, 13_000] {
            let d = Duration::from_micros(d_us);
            let w = s.smallest_window(d, horizon).expect("feasible");
            assert!(s.supply(w) >= d);
            assert!(s.supply(w - Duration::from_nanos(1)) < d);
        }
    }

    #[test]
    fn smallest_window_reports_infeasible() {
        let s = paper_supply();
        let result = s.smallest_window(ms(10), ms(14));
        assert!(result.is_err());
    }

    #[test]
    fn monitored_supply_subtracts_eq14() {
        let tdma = paper_supply();
        let monitored = MonitoredSupply::new(
            tdma,
            ms(3),
            Duration::from_micros(134),
            Duration::from_micros(3),
        );
        let window = ms(14);
        // ⌈14/3⌉ = 5 events of 137 µs.
        assert_eq!(
            monitored.interference(window),
            Duration::from_micros(5 * 137)
        );
        assert_eq!(
            monitored.supply(window),
            tdma.supply(window) - Duration::from_micros(685)
        );
    }

    #[test]
    #[should_panic(expected = "smaller than d_min")]
    fn vacuous_monitored_supply_rejected() {
        let _ = MonitoredSupply::new(paper_supply(), ms(1), ms(1), Duration::ZERO);
    }

    #[test]
    fn guest_wcrt_single_task_matches_hand_calc() {
        let tasks = [GuestTaskSpec {
            wcet: ms(2),
            period: ms(28),
        }];
        let wcrt = guest_task_wcrt(&tasks, &paper_supply(), Duration::from_secs(1));
        assert_eq!(wcrt[0], Ok(ms(10)));
    }

    #[test]
    fn guest_wcrt_with_interference_from_higher_tasks() {
        // High: C=2, P=14; Low: C=3, P=28.
        // Low: W = 3 + 2·⌈t/14⌉; t1 = window(5) = 13; ⌈13/14⌉ = 1 → stays;
        // supply(13) = 5 → R_low = 13 ms.
        let tasks = [
            GuestTaskSpec {
                wcet: ms(2),
                period: ms(14),
            },
            GuestTaskSpec {
                wcet: ms(3),
                period: ms(28),
            },
        ];
        let wcrt = guest_task_wcrt(&tasks, &paper_supply(), Duration::from_secs(1));
        assert_eq!(wcrt[0], Ok(ms(10)));
        assert_eq!(wcrt[1], Ok(ms(13)));
    }

    #[test]
    fn monitored_supply_inflates_guest_wcrt() {
        let tdma = paper_supply();
        let monitored = MonitoredSupply::new(
            tdma,
            ms(3),
            Duration::from_micros(134),
            Duration::from_micros(3),
        );
        let tasks = [GuestTaskSpec {
            wcet: ms(2),
            period: ms(28),
        }];
        let horizon = Duration::from_secs(1);
        let plain = guest_task_wcrt(&tasks, &tdma, horizon)[0].expect("feasible");
        let with_interference = guest_task_wcrt(&tasks, &monitored, horizon)[0].expect("feasible");
        assert!(with_interference > plain);
        // The inflation is bounded by the interference in the window.
        assert!(with_interference < plain + ms(2));
    }

    #[test]
    fn overloaded_guest_diverges() {
        let tasks = [GuestTaskSpec {
            wcet: ms(7),
            period: ms(14),
        }];
        // 7 ms of demand every 14 ms against 6 ms of supply per cycle.
        let wcrt = guest_task_wcrt(&tasks, &paper_supply(), Duration::from_secs(1));
        assert!(wcrt[0].is_err());
    }

    #[test]
    fn supply_is_monotone() {
        let tdma = paper_supply();
        let monitored = MonitoredSupply::new(
            tdma,
            ms(3),
            Duration::from_micros(134),
            Duration::from_micros(3),
        );
        for k in 0..200u64 {
            let a = Duration::from_micros(k * 137);
            let b = Duration::from_micros((k + 1) * 137);
            assert!(tdma.supply(a) <= tdma.supply(b));
            assert!(monitored.supply(a) <= monitored.supply(b));
        }
    }
}

/// Supply bound of an **arbitrary cyclic window layout** — the analysis
/// counterpart of an ARINC653-style multi-window TDMA schedule, where a
/// partition owns several windows per major frame.
///
/// The worst-case window alignment of such a pattern starts right at the
/// end of one of the partition's windows; `supply` minimizes over those
/// candidates.
///
/// # Examples
///
/// Splitting one 6 ms slot into two 3 ms windows improves the supply of
/// short windows (the worst gap shrinks):
///
/// ```
/// use rthv_analysis::{PatternSupply, SupplyBound, TdmaSupply};
/// use rthv_time::Duration;
///
/// let ms = Duration::from_millis;
/// let single = TdmaSupply::new(ms(14), ms(6));
/// let split = PatternSupply::new(ms(14), vec![(ms(3), ms(3)), (ms(9), ms(3))])
///     .expect("valid layout");
/// // An 8 ms window may contain zero supply under the single slot, but the
/// // split layout guarantees some:
/// assert_eq!(single.supply(ms(8)), Duration::ZERO);
/// assert!(split.supply(ms(8)) >= ms(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternSupply {
    cycle: Duration,
    /// The partition's windows as `(offset, length)`, sorted and disjoint.
    windows: Vec<(Duration, Duration)>,
}

/// Error returned by [`PatternSupply::new`] for invalid layouts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternLayoutError {
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for PatternLayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid supply pattern: {}", self.reason)
    }
}

impl std::error::Error for PatternLayoutError {}

impl PatternSupply {
    /// Creates a pattern supply from the partition's windows within one
    /// cycle.
    ///
    /// # Errors
    ///
    /// Rejects empty layouts, zero cycles, zero-length/overlapping windows,
    /// and windows extending beyond the cycle.
    pub fn new(
        cycle: Duration,
        mut windows: Vec<(Duration, Duration)>,
    ) -> Result<Self, PatternLayoutError> {
        if cycle.is_zero() {
            return Err(PatternLayoutError {
                reason: "zero cycle".to_owned(),
            });
        }
        if windows.is_empty() {
            return Err(PatternLayoutError {
                reason: "no windows".to_owned(),
            });
        }
        windows.sort_unstable();
        let mut previous_end = Duration::ZERO;
        for &(offset, length) in &windows {
            if length.is_zero() {
                return Err(PatternLayoutError {
                    reason: "zero-length window".to_owned(),
                });
            }
            if offset < previous_end {
                return Err(PatternLayoutError {
                    reason: "overlapping windows".to_owned(),
                });
            }
            if offset + length > cycle {
                return Err(PatternLayoutError {
                    reason: "window beyond the cycle".to_owned(),
                });
            }
            previous_end = offset + length;
        }
        Ok(PatternSupply { cycle, windows })
    }

    /// Total supply per cycle.
    #[must_use]
    pub fn per_cycle(&self) -> Duration {
        self.windows.iter().map(|&(_, length)| length).sum()
    }

    /// Supply delivered in `[start, start + dt)` for a window-aligned
    /// cyclic pattern, with `start` given as an offset within the cycle.
    fn supplied_from(&self, start: Duration, dt: Duration) -> Duration {
        let full_cycles = dt.div_floor(self.cycle);
        let mut total = self.per_cycle().saturating_mul(full_cycles);
        let remainder_len = dt - self.cycle * full_cycles;
        if remainder_len.is_zero() {
            return total;
        }
        // The remainder spans [start, start + remainder_len) modulo the
        // cycle — at most one wrap.
        let end = start + remainder_len;
        for &(offset, length) in &self.windows {
            let w_start = offset;
            let w_end = offset + length;
            // Intersection with [start, end) directly…
            total += w_end.min(end).saturating_sub(w_start.max(start));
            // …and with the wrapped tail [0, end − cycle).
            if end > self.cycle {
                let wrapped_end = end - self.cycle;
                total += w_end.min(wrapped_end).saturating_sub(w_start);
            }
        }
        total
    }
}

impl SupplyBound for PatternSupply {
    fn supply(&self, dt: Duration) -> Duration {
        // Worst alignment starts right at the end of one of the windows.
        self.windows
            .iter()
            .map(|&(offset, length)| self.supplied_from(offset + length, dt))
            .min()
            .unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod pattern_tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn single_window_matches_tdma_supply() {
        let tdma = TdmaSupply::new(ms(14), ms(6));
        let pattern = PatternSupply::new(ms(14), vec![(ms(2), ms(6))]).expect("valid");
        for dt_us in (0..60_000u64).step_by(317) {
            let dt = Duration::from_micros(dt_us);
            assert_eq!(pattern.supply(dt), tdma.supply(dt), "Δt = {dt}");
        }
    }

    #[test]
    fn split_layout_reduces_the_worst_gap() {
        let single = TdmaSupply::new(ms(14), ms(6));
        let split =
            PatternSupply::new(ms(14), vec![(ms(3), ms(3)), (ms(9), ms(3))]).expect("valid");
        // Same long-term share…
        assert_eq!(split.per_cycle(), ms(6));
        assert_eq!(split.supply(ms(28)), single.supply(ms(28)));
        // …but the first unit of demand arrives much sooner.
        let horizon = Duration::from_secs(1);
        let single_first = single.smallest_window(ms(1), horizon).expect("feasible");
        let split_first = split.smallest_window(ms(1), horizon).expect("feasible");
        assert_eq!(single_first, ms(9));
        assert_eq!(split_first, ms(6)); // worst gap 3 (P0) + 2 (hk) = 5 ms + 1
        assert!(split_first < single_first);
    }

    #[test]
    fn validation_rejects_bad_layouts() {
        assert!(PatternSupply::new(ms(10), vec![]).is_err());
        assert!(PatternSupply::new(Duration::ZERO, vec![(ms(0), ms(1))]).is_err());
        assert!(PatternSupply::new(ms(10), vec![(ms(0), Duration::ZERO)]).is_err());
        assert!(PatternSupply::new(ms(10), vec![(ms(0), ms(3)), (ms(2), ms(3))]).is_err());
        assert!(PatternSupply::new(ms(10), vec![(ms(8), ms(3))]).is_err());
        let err = PatternSupply::new(ms(10), vec![]).unwrap_err();
        assert!(err.to_string().contains("no windows"));
    }

    #[test]
    fn pattern_supply_is_monotone_and_cycle_exact() {
        let pattern = PatternSupply::new(
            ms(14),
            vec![(ms(0), ms(2)), (ms(5), ms(3)), (ms(10), ms(1))],
        )
        .expect("valid");
        let mut last = Duration::ZERO;
        for dt_us in (0..70_000u64).step_by(211) {
            let s = pattern.supply(Duration::from_micros(dt_us));
            assert!(s >= last, "supply must be monotone at {dt_us}");
            last = s;
        }
        for k in 1u64..4 {
            assert_eq!(pattern.supply(ms(14) * k), ms(6) * k);
        }
    }

    #[test]
    fn guest_wcrt_improves_under_split_layout() {
        // The analysis-side mirror of the machine-level measurement: the
        // same guest task bound drops when the partition's slot is split.
        let single = TdmaSupply::new(ms(14), ms(6));
        let split =
            PatternSupply::new(ms(14), vec![(ms(3), ms(3)), (ms(9), ms(3))]).expect("valid");
        let tasks = [GuestTaskSpec {
            wcet: ms(1),
            period: ms(28),
        }];
        let horizon = Duration::from_secs(10);
        let single_bound = guest_task_wcrt(&tasks, &single, horizon)[0].expect("feasible");
        let split_bound = guest_task_wcrt(&tasks, &split, horizon)[0].expect("feasible");
        assert!(split_bound < single_bound);
    }
}
