//! Property tests for the analysis crate: η⁺/δ⁻ duality, busy-window
//! monotonicity, and structural properties of the WCRT formulas.

use proptest::prelude::*;

use rthv_analysis::{
    baseline_irq_wcrt, busy_window, interposed_irq_wcrt, tdma_interference, EventModel, IrqTask,
    TdmaSlot,
};
use rthv_time::Duration;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

/// Strategy: a PJD or sporadic event model with sane microsecond parameters.
fn model_strategy() -> impl Strategy<Value = EventModel> {
    prop_oneof![
        (100u64..20_000).prop_map(|p| EventModel::periodic(us(p))),
        (100u64..20_000, 0u64..10_000, 1u64..100)
            .prop_map(|(p, j, d)| { EventModel::periodic_jitter(us(p), us(j), us(d.min(p))) }),
        (100u64..20_000).prop_map(|d| EventModel::sporadic(us(d))),
    ]
}

proptest! {
    /// η⁺ and δ⁻ are strict duals under the half-open convention:
    /// δ⁻(η⁺(Δt)) < Δt ≤ δ⁻(η⁺(Δt) + 1) for Δt > 0.
    #[test]
    fn eta_delta_duality(model in model_strategy(), dt_us in 1u64..100_000) {
        let dt = us(dt_us);
        let eta = model.eta_plus(dt);
        prop_assert!(model.delta(eta) < dt);
        prop_assert!(model.delta(eta + 1) >= dt);
    }

    /// δ⁻ is non-decreasing in q, and η⁺ non-decreasing in Δt.
    #[test]
    fn curves_are_monotone(model in model_strategy(), q in 0u64..50, dt_us in 0u64..50_000) {
        prop_assert!(model.delta(q) <= model.delta(q + 1));
        prop_assert!(model.eta_plus(us(dt_us)) <= model.eta_plus(us(dt_us + 777)));
    }

    /// The busy-window fixed point is monotone in the base demand.
    #[test]
    fn busy_window_monotone_in_base(
        base_us in 1u64..5_000,
        extra_us in 0u64..5_000,
        period_us in 1_000u64..50_000,
        cost_us in 1u64..200,
    ) {
        let interferer = EventModel::periodic(us(period_us));
        let horizon = Duration::from_secs(10);
        let interference = |w: Duration| interferer.eta_plus(w) * us(cost_us);
        let small = busy_window(us(base_us), interference, horizon);
        let large = busy_window(us(base_us + extra_us), interference, horizon);
        if let (Ok(small), Ok(large)) = (small, large) {
            prop_assert!(large >= small);
        }
    }

    /// The busy window is a true fixed point: W = base + I(W).
    #[test]
    fn busy_window_is_fixed_point(
        base_us in 1u64..5_000,
        period_us in 1_000u64..50_000,
        cost_us in 1u64..200,
    ) {
        let interferer = EventModel::periodic(us(period_us));
        let interference = |w: Duration| interferer.eta_plus(w) * us(cost_us);
        if let Ok(w) = busy_window(us(base_us), interference, Duration::from_secs(10)) {
            prop_assert_eq!(w, us(base_us) + interference(w));
        }
    }

    /// Eq. 8 is monotone in the window and scales with the foreign share.
    #[test]
    fn tdma_interference_monotone(
        dt_us in 1u64..200_000,
        slot_us in 1u64..10_000,
        extra_us in 1u64..10_000,
    ) {
        let tdma = TdmaSlot { cycle: us(slot_us + extra_us), slot: us(slot_us) };
        let a = tdma_interference(us(dt_us), tdma);
        let b = tdma_interference(us(dt_us + 1_000), tdma);
        prop_assert!(b >= a);
        // Full isolation sanity: the interference per cycle equals the
        // foreign share.
        prop_assert_eq!(tdma_interference(us(1), tdma), us(extra_us));
    }

    /// The baseline WCRT always dominates the interposed WCRT computed with
    /// the same raw costs (zero monitoring overheads): removing the TDMA
    /// term can only help.
    #[test]
    fn interposition_never_hurts_with_free_monitoring(
        dmin_us in 2_000u64..20_000,
        bottom_us in 1u64..200,
        slot_us in 2_000u64..8_000,
        foreign_us in 2_000u64..10_000,
    ) {
        let task = IrqTask {
            model: EventModel::sporadic(us(dmin_us)),
            top_cost: us(2),
            bottom_cost: us(bottom_us),
        };
        let tdma = TdmaSlot { cycle: us(slot_us + foreign_us), slot: us(slot_us) };
        let baseline = baseline_irq_wcrt(&task, tdma, &[]);
        // Free monitoring: C_Mon = C_sched = C_ctx = 0 — the interposed
        // system degenerates to "always run immediately".
        let interposed = interposed_irq_wcrt(
            &task.with_effective_costs(Duration::ZERO, Duration::ZERO, Duration::ZERO),
            &[],
        );
        if let (Ok(baseline), Ok(interposed)) = (baseline, interposed) {
            prop_assert!(
                baseline.wcrt >= interposed.wcrt,
                "baseline {} < interposed {}", baseline.wcrt, interposed.wcrt
            );
        }
    }

    /// WCRT grows monotonically with the bottom-handler cost.
    #[test]
    fn wcrt_monotone_in_bottom_cost(
        dmin_us in 5_000u64..20_000,
        bottom_us in 1u64..500,
    ) {
        let tdma = TdmaSlot { cycle: us(14_000), slot: us(6_000) };
        let make = |bottom: u64| IrqTask {
            model: EventModel::sporadic(us(dmin_us)),
            top_cost: us(2),
            bottom_cost: us(bottom),
        };
        let small = baseline_irq_wcrt(&make(bottom_us), tdma, &[]);
        let large = baseline_irq_wcrt(&make(bottom_us + 100), tdma, &[]);
        if let (Ok(small), Ok(large)) = (small, large) {
            prop_assert!(large.wcrt >= small.wcrt);
        }
    }
}

mod supply_props {
    use super::*;
    use rthv_analysis::{guest_task_wcrt, GuestTaskSpec, MonitoredSupply, SupplyBound, TdmaSupply};

    proptest! {
        /// TDMA supply is monotone, bounded by the window, and exact on
        /// whole cycles.
        #[test]
        fn tdma_supply_shape(
            slot_us in 100u64..10_000,
            gap_us in 100u64..10_000,
            dt_us in 0u64..200_000,
        ) {
            let cycle = us(slot_us + gap_us);
            let supply = TdmaSupply::new(cycle, us(slot_us));
            let a = supply.supply(us(dt_us));
            let b = supply.supply(us(dt_us + 777));
            prop_assert!(a <= b, "supply must be monotone");
            prop_assert!(a <= us(dt_us), "supply cannot exceed the window");
            // k whole cycles supply exactly k slots.
            for k in 1u64..4 {
                prop_assert_eq!(supply.supply(cycle * k), us(slot_us) * k);
            }
        }

        /// smallest_window is the exact inverse of supply.
        #[test]
        fn smallest_window_inverts(
            slot_us in 100u64..5_000,
            gap_us in 100u64..5_000,
            demand_us in 1u64..20_000,
        ) {
            let supply = TdmaSupply::new(us(slot_us + gap_us), us(slot_us));
            let horizon = Duration::from_secs(10);
            let w = supply.smallest_window(us(demand_us), horizon).expect("feasible");
            prop_assert!(supply.supply(w) >= us(demand_us));
            prop_assert!(supply.supply(w - Duration::from_nanos(1)) < us(demand_us));
        }

        /// The monitored supply never exceeds the raw TDMA supply and stays
        /// monotone (its closure property).
        #[test]
        fn monitored_supply_is_monotone_and_dominated(
            slot_us in 1_000u64..8_000,
            gap_us in 1_000u64..8_000,
            dmin_us in 500u64..5_000,
            dt_us in 0u64..100_000,
        ) {
            let tdma = TdmaSupply::new(us(slot_us + gap_us), us(slot_us));
            let cost = us(dmin_us / 10 + 1); // well below d_min
            let monitored = MonitoredSupply::new(tdma, us(dmin_us), cost, us(1));
            let a = monitored.supply(us(dt_us));
            let b = monitored.supply(us(dt_us + 333));
            prop_assert!(a <= b, "monitored supply must be monotone");
            prop_assert!(a <= tdma.supply(us(dt_us)));
        }

        /// Guest WCRT bounds are monotone under supply degradation: the
        /// monitored bound never beats the plain TDMA bound.
        #[test]
        fn guest_bounds_degrade_with_interference(
            slot_us in 2_000u64..8_000,
            gap_us in 2_000u64..8_000,
            wcet_us in 100u64..1_000,
        ) {
            let tdma = TdmaSupply::new(us(slot_us + gap_us), us(slot_us));
            let monitored = MonitoredSupply::new(
                tdma,
                us(3_000),
                us(134),
                us(3),
            );
            let tasks = [GuestTaskSpec {
                wcet: us(wcet_us),
                period: us((slot_us + gap_us) * 4),
            }];
            let horizon = Duration::from_secs(10);
            let plain = guest_task_wcrt(&tasks, &tdma, horizon);
            let degraded = guest_task_wcrt(&tasks, &monitored, horizon);
            if let (Ok(plain), Ok(degraded)) = (&plain[0], &degraded[0]) {
                prop_assert!(degraded >= plain);
            }
        }
    }
}
