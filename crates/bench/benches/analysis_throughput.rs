//! Analysis throughput: the Eq. 11/12 and Eq. 16/12 fixed points, and the
//! δ⁻ superadditive extension, per evaluation. These run inside design
//! loops (e.g. d_min sweeps), so they should stay well below a
//! microsecond-to-millisecond budget.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rthv::analysis::{baseline_irq_wcrt, interposed_irq_wcrt, EventModel, IrqTask, TdmaSlot};
use rthv::monitor::DeltaFunction;
use rthv::time::Duration;
use rthv::CostModel;

fn analysis_throughput(c: &mut Criterion) {
    let costs = CostModel::paper_arm926ejs();
    let us = Duration::from_micros;
    let task = IrqTask {
        model: EventModel::sporadic(us(3_000)),
        top_cost: costs.top_handler,
        bottom_cost: us(30),
    };
    let tdma = TdmaSlot {
        cycle: us(14_000),
        slot: us(6_000),
    };

    let mut group = c.benchmark_group("analysis");
    group.bench_function("baseline_wcrt_eq11", |b| {
        b.iter(|| black_box(baseline_irq_wcrt(black_box(&task), tdma, &[])));
    });

    let effective =
        task.with_effective_costs(costs.monitor_check, costs.sched_manip, costs.context_switch);
    group.bench_function("interposed_wcrt_eq16", |b| {
        b.iter(|| black_box(interposed_irq_wcrt(black_box(&effective), &[])));
    });

    let delta = DeltaFunction::new((1..=5).map(|k| Duration::from_micros(137 * k)).collect())
        .expect("valid");
    group.bench_function("delta_extension_q100", |b| {
        b.iter(|| black_box(delta.delta(black_box(100))));
    });
    group.bench_function("eta_plus_10ms", |b| {
        b.iter(|| black_box(delta.eta_plus(black_box(Duration::from_millis(10)))));
    });
    group.finish();
}

criterion_group!(benches, analysis_throughput);
criterion_main!(benches);
