//! End-to-end cost of regenerating one Figure-6 panel (scaled down): the
//! workload generation + simulation + histogram pipeline for each variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rthv::scenarios::{run_fig6, Fig6Config, Fig6Variant};

fn fig6_scenarios(c: &mut Criterion) {
    let config = Fig6Config {
        irqs_per_load: 200,
        ..Fig6Config::default()
    };
    let mut group = c.benchmark_group("fig6_panel_600_irqs");
    group.sample_size(20);
    for variant in [
        Fig6Variant::Unmonitored,
        Fig6Variant::Monitored,
        Fig6Variant::MonitoredNoViolations,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{variant:?}")),
            &variant,
            |b, &variant| {
                b.iter(|| black_box(run_fig6(black_box(&config), variant)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig6_scenarios);
criterion_main!(benches);
