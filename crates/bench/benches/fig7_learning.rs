//! Cost of the Appendix-A building blocks: learning a δ⁻ function from an
//! activation stream (Algorithm 1 per event), the bounding step
//! (Algorithm 2), and a scaled-down end-to-end Figure-7 curve.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use rthv::monitor::DeltaLearner;
use rthv::scenarios::{run_fig7, Fig7Bound, Fig7Config};
use rthv::workload::AutomotiveTraceBuilder;

fn fig7_learning(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");

    let trace = AutomotiveTraceBuilder::typical_ecu(1).build(1_100);
    group.bench_function("algorithm1_learn_1100_events_l5", |b| {
        b.iter_batched(
            || DeltaLearner::new(5),
            |mut learner| {
                for &t in trace.as_slice() {
                    learner.observe(black_box(t));
                }
                learner
            },
            BatchSize::SmallInput,
        );
    });

    let mut learner = DeltaLearner::new(5);
    for &t in trace.as_slice() {
        learner.observe(t);
    }
    let learned = learner.learned_delta().expect("monotonic");
    group.bench_function("algorithm2_bound", |b| {
        let bound = learned.scale_load(0.25);
        b.iter(|| black_box(learned.bounded_by(black_box(&bound))));
    });

    group.sample_size(10);
    let config = Fig7Config {
        events: 1_100,
        ..Fig7Config::default()
    };
    group.bench_function("end_to_end_curve_1100_events", |b| {
        b.iter(|| black_box(run_fig7(black_box(&config), Fig7Bound::LoadFraction(0.25))));
    });
    group.finish();
}

criterion_group!(benches, fig7_learning);
criterion_main!(benches);
