//! Cost of replaying a guest task set over recorded TDMA service intervals,
//! and of the hierarchical supply-bound analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rthv::analysis::{guest_task_wcrt, GuestTaskSpec, TdmaSupply};
use rthv::guest::{replay, GuestTask, GuestTaskSet};
use rthv::time::{Duration, Instant};
use rthv::{ServiceInterval, ServiceKind};

fn guest_replay(c: &mut Criterion) {
    let ms = Duration::from_millis;
    let horizon = Instant::ZERO + Duration::from_secs(2);
    // 2 s of the paper's TDMA pattern: 6 ms of supply every 14 ms.
    let supply: Vec<ServiceInterval> = (0..143)
        .map(|k| ServiceInterval {
            start: Instant::ZERO + ms(14) * k,
            end: Instant::ZERO + ms(14) * k + ms(6),
            kind: ServiceKind::User,
        })
        .collect();
    let tasks = GuestTaskSet::new(vec![
        GuestTask::new("control", ms(28), ms(2)),
        GuestTask::new("fusion", ms(56), ms(4)),
        GuestTask::new("logger", ms(112), ms(6)),
    ])
    .expect("valid");

    let mut group = c.benchmark_group("guest");
    group.bench_function("replay_2s_3_tasks", |b| {
        b.iter(|| black_box(replay(black_box(&tasks), black_box(&supply), horizon)));
    });

    let specs = [
        GuestTaskSpec {
            wcet: ms(2),
            period: ms(28),
        },
        GuestTaskSpec {
            wcet: ms(4),
            period: ms(56),
        },
        GuestTaskSpec {
            wcet: ms(6),
            period: ms(112),
        },
    ];
    let tdma = TdmaSupply::new(ms(14), ms(6));
    group.bench_function("supply_bound_wcrt_3_tasks", |b| {
        b.iter(|| {
            black_box(guest_task_wcrt(
                black_box(&specs),
                &tdma,
                Duration::from_secs(30),
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, guest_replay);
criterion_main!(benches);
