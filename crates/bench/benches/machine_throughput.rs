//! Simulation-engine throughput: virtual IRQs processed per host second in
//! the three handling configurations. Guards against performance
//! regressions in the event queue and the machine's dispatch paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use rthv::monitor::DeltaFunction;
use rthv::time::{Duration, Instant};
use rthv::workload::ExponentialArrivals;
use rthv::{IrqHandlingMode, PaperSetup};
use rthv_experiments::run_paper_machine;

const IRQS: usize = 1_000;

fn run_one(mode: IrqHandlingMode, monitored: bool) -> usize {
    let setup = PaperSetup::default();
    let dmin = Duration::from_millis(3);
    let monitor = monitored.then(|| DeltaFunction::from_dmin(dmin).expect("valid"));
    let trace = ExponentialArrivals::new(dmin, 42).generate(IRQS, Instant::ZERO);
    run_paper_machine(&setup, mode, monitor, trace.as_slice())
        .recorder
        .len()
}

fn machine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_throughput");
    group.throughput(Throughput::Elements(IRQS as u64));
    for (name, mode, monitored) in [
        ("baseline", IrqHandlingMode::Baseline, false),
        ("interposed", IrqHandlingMode::Interposed, true),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            b.iter(|| black_box(run_one(mode, monitored)));
        });
    }
    group.finish();
}

criterion_group!(benches, machine_throughput);
criterion_main!(benches);
