//! Microbenchmark of the monitoring function — the paper claims the
//! monitoring overhead "is in the order of magnitude of 10 cycles" per
//! check (Section 5.1) and 128 instructions including the scheduler call
//! (Section 6.2). This bench measures the admission check of this
//! implementation for l = 1 and l = 5.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use rthv::monitor::{ActivationMonitor, DeltaFunction};
use rthv::time::{Duration, Instant};

fn monitor_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_check");

    let dmin = DeltaFunction::from_dmin(Duration::from_micros(300)).expect("valid");
    group.bench_function("l1_check_only", |b| {
        let mut monitor = ActivationMonitor::new(dmin.clone());
        monitor.record_admitted(Instant::ZERO);
        b.iter(|| black_box(monitor.check(black_box(Instant::from_micros(1_000)))));
    });

    let l5 = DeltaFunction::new((1..=5).map(|k| Duration::from_micros(100 * k)).collect())
        .expect("valid");
    group.bench_function("l5_check_only", |b| {
        let mut monitor = ActivationMonitor::new(l5.clone());
        for k in 0..5u64 {
            monitor.record_admitted(Instant::from_micros(k * 500));
        }
        b.iter(|| black_box(monitor.check(black_box(Instant::from_micros(100_000)))));
    });

    group.bench_function("l1_try_admit_stream", |b| {
        b.iter_batched(
            || ActivationMonitor::new(dmin.clone()),
            |mut monitor| {
                for k in 0..64u64 {
                    black_box(monitor.try_admit(Instant::from_micros(k * 200)));
                }
                monitor
            },
            BatchSize::SmallInput,
        );
    });

    // Ring-buffer cases: the inline trace ring after wrap-around, i.e. the
    // steady state of a long run, at both paper δ⁻ lengths.

    group.bench_function("l1_ring_check_admit", |b| {
        // Length-1 d_min fast path against a warm ring: one load, one
        // subtraction, one compare.
        let mut monitor = ActivationMonitor::new(dmin.clone());
        for k in 0..32u64 {
            monitor.record_admitted(Instant::from_micros(k * 500));
        }
        b.iter(|| black_box(monitor.check(black_box(Instant::from_micros(100_000)))));
    });

    group.bench_function("l1_ring_check_deny", |b| {
        // Fast path, denial branch: the probe lands inside d_min.
        let mut monitor = ActivationMonitor::new(dmin.clone());
        for k in 0..32u64 {
            monitor.record_admitted(Instant::from_micros(k * 500));
        }
        b.iter(|| black_box(monitor.check(black_box(Instant::from_micros(15_600)))));
    });

    group.bench_function("l5_ring_check_wrapped", |b| {
        // Full l = 5 walk over a ring that has wrapped many times.
        let mut monitor = ActivationMonitor::new(l5.clone());
        for k in 0..64u64 {
            monitor.record_admitted(Instant::from_micros(k * 500));
        }
        b.iter(|| black_box(monitor.check(black_box(Instant::from_micros(100_000)))));
    });

    group.bench_function("l5_try_admit_stream", |b| {
        // Mixed admit/deny stream through the l = 5 ring (the modified
        // top handler's per-IRQ sequence).
        b.iter_batched(
            || ActivationMonitor::new(l5.clone()),
            |mut monitor| {
                for k in 0..64u64 {
                    black_box(monitor.try_admit(Instant::from_micros(k * 230)));
                }
                monitor
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, monitor_check);
criterion_main!(benches);
