//! Ablation of the two implicit design decisions: TDMA-boundary-vs-window
//! interaction (defer / abort) and the monitoring-condition timestamp
//! (hardware IRQ time / top-handler completion time). Only the default pair
//! reproduces the paper's measured Figure 6c.
//!
//! Usage: `cargo run --release -p rthv-experiments --bin ablation`

use rthv::scenarios::{run_ablation, AblationConfig};
use rthv::{AdmissionClock, BoundaryPolicy};
use rthv_experiments::{percent, us};

fn main() {
    let config = AblationConfig::default();
    println!(
        "Policy ablation over {} d_min-conformant IRQs (d_min = {})\n",
        config.irqs,
        us(config.dmin)
    );
    println!(
        "{:<10} {:<16} {:>9} {:>11} {:>11} {:>8} {:>8} {:>9}",
        "boundary", "admission clock", "delayed", "mean", "max", "denied", "aborted", "deferred"
    );
    for row in run_ablation(&config) {
        let boundary = match row.policies.boundary {
            BoundaryPolicy::DeferToWindow => "defer",
            BoundaryPolicy::AbortWindow => "abort",
        };
        let clock = match row.policies.admission_clock {
            AdmissionClock::IrqTimestamp => "irq-timestamp",
            AdmissionClock::ProcessingTime => "processing-time",
        };
        println!(
            "{:<10} {:<16} {:>9} {:>11} {:>11} {:>8} {:>8} {:>9}",
            boundary,
            clock,
            percent(row.delayed_fraction),
            us(row.mean_latency),
            us(row.max_latency),
            row.monitor_denied,
            row.aborted_windows,
            row.deferred_boundaries,
        );
    }
    println!(
        "\nOnly defer + irq-timestamp matches the paper's Figure 6c (\"no IRQ \
         is delayed\"); the alternatives demote conformant IRQs through \
         boundary collisions or hypervisor-jitter-induced monitor denials."
    );
}
