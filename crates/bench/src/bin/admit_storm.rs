//! Admission-fleet storm campaign: seeded traffic/fault scenarios driven
//! through the sharded δ⁻ admission fleet twice — once with
//! checkpoint-based shard failover (the system under test) and once with
//! fresh-state shard restarts (the no-failover baseline) — every admitted
//! stream replayed through the fleet-wide temporal-independence oracle,
//! results written as a deterministic JSON report.
//!
//! Usage: `cargo run --release -p rthv-experiments --bin admit_storm
//! [output-path] [scenario-count] [base-seed] [--smoke] [--tenants]
//! [--journal <jsonl>] [--resume <jsonl>] [--abort-after <n>]
//! [--metrics <json>]`
//! (defaults: `STORM_admit.json`, 7 scenarios, seed `0xAD2014`).
//!
//! `--smoke` swaps the 8×64-source 1 s geometry for the CI-sized
//! 4×16-source 250 ms one; families and verdict are unchanged. The event
//! engine comes from `RTHV_ENGINE` (`heap`, the default, or `wheel`); an
//! unknown value is a typed, loud failure before any scenario runs.
//!
//! `--tenants` runs the tenant-isolation campaign instead: each scenario
//! drives four arms (hierarchy calm/storm, flat-ablation calm/storm)
//! under correlated-failure fault plans, and the verdict demands the
//! hierarchy keep the victim tenant's admitted stream byte-identical
//! while the flat ablation demonstrably does not, with zero group- and
//! global-budget oracle violations. Defaults become `STORM_tenants.json`
//! and 3 scenarios; `--journal`/`--resume`/`--abort-after`/`--metrics`
//! compose the same way.
//!
//! With `--journal`, each completed scenario is appended to a JSONL
//! journal the moment it finishes; with `--resume`, scenarios already
//! present in a journal (matched by label *and* seed) are loaded instead
//! of re-executed. Every scenario is pure in `(config, seed)` and resumed
//! report fragments are spliced verbatim, so a resumed report is
//! byte-identical to an uninterrupted run. `--abort-after <n>` is the
//! crash-test hook: the process dies via `abort()` right after the n-th
//! journal append of this run is flushed.
//!
//! With `--metrics <json>`, the first scenario's failover arm is re-run
//! with the flight-recorder observability hub attached and the snapshot is
//! written to the given path. Metrics are pure observation, so the report
//! is unchanged — the binary asserts the observed record equals the
//! report's — and the snapshot file is deterministic.
//!
//! The process exits non-zero unless the report's three-part verdict
//! passes: zero failover-arm oracle violations, every crash+flood baseline
//! broken, and the worst flood-family shed rate inside the stated budget.

use std::process::ExitCode;

use rthv_admit::{
    assemble_report, assemble_tenant_report, report_passes, run_storm_scenario,
    run_tenant_scenario, storm_hub, storm_scenarios, tenant_scenarios, tenant_storm_hub,
    AdmitFleet, ScenarioRecord, StormConfig, TenantRecord, TenantStormConfig,
};
use rthv_experiments::{
    parse_journal_flags, read_complete_lines, Journal, JournalOptions, SweepRunner,
};

fn main() -> ExitCode {
    let (options, positional) = match parse_journal_flags(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("admit_storm: {message}");
            return ExitCode::FAILURE;
        }
    };
    let mut smoke = false;
    let mut tenants = false;
    let positional: Vec<String> = positional
        .into_iter()
        .filter(|arg| {
            let is_smoke = arg == "--smoke";
            let is_tenants = arg == "--tenants";
            smoke |= is_smoke;
            tenants |= is_tenants;
            !is_smoke && !is_tenants
        })
        .collect();
    let mut positional = positional.into_iter();
    let path = positional.next().unwrap_or_else(|| {
        if tenants {
            "STORM_tenants.json".to_string()
        } else {
            "STORM_admit.json".to_string()
        }
    });
    let count: u32 = positional
        .next()
        .map(|s| s.parse().expect("scenario count must be a number"))
        .unwrap_or(if tenants { 3 } else { 7 });
    let base_seed: u64 = positional
        .next()
        .map(|s| s.parse().expect("base seed must be a number"))
        .unwrap_or(0xAD_2014);

    let engine = std::env::var("RTHV_ENGINE").unwrap_or_else(|_| "heap".to_string());
    if tenants {
        return tenant_campaign(&options, smoke, &engine, &path, count, base_seed);
    }
    let config = if smoke {
        StormConfig::smoke(&engine)
    } else {
        StormConfig::standard(&engine)
    };
    // Fail loudly on a bad fleet config — in particular an unknown
    // RTHV_ENGINE value — before any scenario burns cycles.
    if let Err(error) = AdmitFleet::new(config.base.clone()) {
        eprintln!("admit_storm: {error}");
        return ExitCode::FAILURE;
    }
    let scenarios = storm_scenarios(count, base_seed, config.horizon);

    // Completed records from the resume journal, aligned to the scenario
    // list by (label, seed) so a journal from a different seed or count
    // silently resumes nothing rather than corrupting the report.
    let resumed: Vec<Option<ScenarioRecord>> = match &options.resume {
        Some(journal_path) => {
            let lines = read_complete_lines(journal_path).expect("read resume journal");
            let mut completed = Vec::new();
            for line in &lines {
                match ScenarioRecord::parse_journal_line(line) {
                    Some(record) => completed.push(record),
                    None => eprintln!("admit_storm: ignoring corrupt journal line"),
                }
            }
            scenarios
                .iter()
                .map(|scenario| {
                    completed
                        .iter()
                        .find(|r| r.label == scenario.label() && r.seed == scenario.fault.seed)
                        .cloned()
                })
                .collect()
        }
        None => scenarios.iter().map(|_| None).collect(),
    };
    let journal = options
        .journal
        .as_deref()
        .map(|p| Journal::open_append(p).expect("open journal"));
    let abort_after = options.abort_after;

    let runner = SweepRunner::available();
    let records = runner.run(&scenarios, |index, scenario| {
        if let Some(done) = &resumed[index] {
            return done.clone();
        }
        let outcome = run_storm_scenario(&config, scenario, None)
            .expect("fleet config was validated before the sweep");
        let record = outcome.record();
        if let Some(journal) = &journal {
            let appended = journal
                .append(&record.to_journal_line())
                .expect("journal append");
            if abort_after.is_some_and(|limit| appended >= limit) {
                // Crash-test hook: die without unwinding or cleanup —
                // exactly the failure the resume path must survive.
                eprintln!("admit_storm: --abort-after {appended} reached, aborting");
                std::process::abort();
            }
        }
        record
    });
    let report = assemble_report(&config, base_seed, &records);

    let resumed_count = resumed.iter().filter(|r| r.is_some()).count();
    if (runner.threads() > 1 || resumed_count > 0) && count <= 8 {
        // Cheap campaigns double as a determinism self-check: a fresh
        // sequential re-execution must reproduce the assembled report,
        // including every record taken from the resume journal.
        let reference = SweepRunner::sequential().run(&scenarios, |_, scenario| {
            run_storm_scenario(&config, scenario, None)
                .expect("fleet config was validated before the sweep")
                .record()
        });
        assert_eq!(
            assemble_report(&config, base_seed, &reference),
            report,
            "parallel/resumed storm report diverged from sequential re-execution"
        );
    }

    std::fs::write(&path, &report).expect("write storm report");

    if let Some(metrics_path) = &options.metrics {
        // Observability snapshot of the first scenario's failover arm:
        // re-run with the hub attached. Metrics never change outcomes, so
        // the report above is untouched; the assert pins that.
        let mut hub = storm_hub(&config);
        let observed = run_storm_scenario(&config, &scenarios[0], Some(&mut hub))
            .expect("fleet config was validated before the sweep");
        assert_eq!(
            observed.record(),
            records[0],
            "metrics instrumentation changed a scenario outcome"
        );
        std::fs::write(metrics_path, hub.snapshot_json()).expect("write metrics snapshot");
        eprintln!(
            "admit_storm: metrics snapshot -> {}",
            metrics_path.display()
        );
    }

    let failover_violations: u64 = records.iter().map(|r| r.failover_violations).sum();
    let baseline_violations: u64 = records.iter().map(|r| r.baseline_violations).sum();
    let worst_flood_shed = records
        .iter()
        .filter(|r| r.flood_family)
        .map(|r| r.shed_permille)
        .max()
        .unwrap_or(0);
    eprintln!(
        "admit_storm: {} scenarios ({} resumed) on {} thread(s), engine {engine} -> {path}",
        records.len(),
        resumed_count,
        runner.threads(),
    );
    eprintln!("  failover violations:        {failover_violations}");
    eprintln!("  baseline violations:        {baseline_violations}");
    eprintln!(
        "  worst flood shed:           {worst_flood_shed} permille (budget {})",
        config.shed_budget_permille
    );

    if report_passes(&report) {
        eprintln!("PASS: failover holds the bound, the fresh-state baseline demonstrably does not");
        ExitCode::SUCCESS
    } else {
        eprintln!("FAIL: see the verdict block in {path}");
        ExitCode::FAILURE
    }
}

/// The `--tenants` campaign: same sweep/journal/resume machinery as the
/// flat campaign, over [`TenantRecord`]s and the tenant-isolation verdict.
fn tenant_campaign(
    options: &JournalOptions,
    smoke: bool,
    engine: &str,
    path: &str,
    count: u32,
    base_seed: u64,
) -> ExitCode {
    let config = if smoke {
        TenantStormConfig::smoke(engine)
    } else {
        TenantStormConfig::standard(engine)
    };
    // Fail loudly on a bad fleet or tenancy config — in particular an
    // unknown RTHV_ENGINE value — before any scenario burns cycles.
    if let Err(error) = AdmitFleet::new(config.base.clone()) {
        eprintln!("admit_storm: {error}");
        return ExitCode::FAILURE;
    }
    let scenarios = tenant_scenarios(count, base_seed, config.horizon);

    let resumed: Vec<Option<TenantRecord>> = match &options.resume {
        Some(journal_path) => {
            let lines = read_complete_lines(journal_path).expect("read resume journal");
            let mut completed = Vec::new();
            for line in &lines {
                match TenantRecord::parse_journal_line(line) {
                    Some(record) => completed.push(record),
                    None => eprintln!("admit_storm: ignoring corrupt journal line"),
                }
            }
            scenarios
                .iter()
                .map(|scenario| {
                    completed
                        .iter()
                        .find(|r| r.label == scenario.label() && r.seed == scenario.fault.seed)
                        .cloned()
                })
                .collect()
        }
        None => scenarios.iter().map(|_| None).collect(),
    };
    let journal = options
        .journal
        .as_deref()
        .map(|p| Journal::open_append(p).expect("open journal"));
    let abort_after = options.abort_after;

    let runner = SweepRunner::available();
    let records = runner.run(&scenarios, |index, scenario| {
        if let Some(done) = &resumed[index] {
            return done.clone();
        }
        let outcome = run_tenant_scenario(&config, scenario, None)
            .expect("fleet config was validated before the sweep");
        let record = outcome.record();
        if let Some(journal) = &journal {
            let appended = journal
                .append(&record.to_journal_line())
                .expect("journal append");
            if abort_after.is_some_and(|limit| appended >= limit) {
                eprintln!("admit_storm: --abort-after {appended} reached, aborting");
                std::process::abort();
            }
        }
        record
    });
    let report = assemble_tenant_report(&config, base_seed, &records);

    let resumed_count = resumed.iter().filter(|r| r.is_some()).count();
    if (runner.threads() > 1 || resumed_count > 0) && count <= 8 {
        // Cheap campaigns double as a determinism self-check, exactly as
        // in the flat campaign.
        let reference = SweepRunner::sequential().run(&scenarios, |_, scenario| {
            run_tenant_scenario(&config, scenario, None)
                .expect("fleet config was validated before the sweep")
                .record()
        });
        assert_eq!(
            assemble_tenant_report(&config, base_seed, &reference),
            report,
            "parallel/resumed tenant report diverged from sequential re-execution"
        );
    }

    std::fs::write(path, &report).expect("write tenant storm report");

    if let Some(metrics_path) = &options.metrics {
        let mut hub = tenant_storm_hub(&config);
        let observed = run_tenant_scenario(&config, &scenarios[0], Some(&mut hub))
            .expect("fleet config was validated before the sweep");
        assert_eq!(
            observed.record(),
            records[0],
            "metrics instrumentation changed a tenant scenario outcome"
        );
        std::fs::write(metrics_path, hub.snapshot_json()).expect("write metrics snapshot");
        eprintln!(
            "admit_storm: metrics snapshot -> {}",
            metrics_path.display()
        );
    }

    let hier_violations: u64 = records.iter().map(|r| r.hier_violations).sum();
    let budget_violations: u64 = records
        .iter()
        .map(|r| r.group_budget_violations + r.global_budget_violations)
        .sum();
    let isolated = records
        .iter()
        .filter(|r| r.identity_family && r.hier_isolated)
        .count();
    let identity = records.iter().filter(|r| r.identity_family).count();
    let broken = records
        .iter()
        .filter(|r| r.identity_family && r.flat_violates)
        .count();
    let worst_victim_shed = records
        .iter()
        .map(|r| r.victim_shed_permille)
        .max()
        .unwrap_or(0);
    eprintln!(
        "admit_storm: {} tenant scenarios ({} resumed) on {} thread(s), engine {engine} -> {path}",
        records.len(),
        resumed_count,
        runner.threads(),
    );
    eprintln!("  hierarchy oracle violations: {hier_violations}");
    eprintln!("  group+global budget breaks:  {budget_violations}");
    eprintln!("  victim isolated:             {isolated}/{identity} identity scenarios");
    eprintln!("  flat ablation broken:        {broken}/{identity} identity scenarios");
    eprintln!("  worst victim shed:           {worst_victim_shed} permille");

    if report_passes(&report) {
        eprintln!(
            "PASS: the hierarchy isolates the victim tenant, the flat ablation demonstrably \
             does not"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("FAIL: see the verdict block in {path}");
        ExitCode::FAILURE
    }
}
