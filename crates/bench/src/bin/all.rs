//! Runs every experiment at full scale and prints a one-screen summary —
//! the quick way to regenerate the headline numbers of EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p rthv-experiments --bin all`

use rthv::scenarios::{
    run_ablation, run_bounds, run_fig6, run_fig7, run_guest_tasks, run_independence,
    run_multi_source, run_overhead, run_shaper_comparison, run_splitting, AblationConfig,
    BoundsConfig, Fig6Config, Fig6Variant, Fig7Bound, Fig7Config, GuestTasksConfig,
    IndependenceConfig, MultiSourceConfig, OverheadConfig, ShaperComparisonConfig, SplittingConfig,
};
use rthv_experiments::{percent, us};

fn main() {
    println!("== Figure 6 (15000 IRQs) ==");
    let fig6 = Fig6Config::default();
    for variant in [
        Fig6Variant::Unmonitored,
        Fig6Variant::Monitored,
        Fig6Variant::MonitoredNoViolations,
    ] {
        let run = run_fig6(&fig6, variant);
        let (d, i, l) = run.class_fractions();
        println!(
            "  {:<38} avg {:>10}  split {}/{}/{}",
            variant.label(),
            us(run.mean_latency),
            percent(d),
            percent(i),
            percent(l),
        );
    }

    println!("\n== Figure 7 (11000 ECU activations) ==");
    let fig7 = Fig7Config::default();
    for (label, bound) in [
        ("a) unbounded", Fig7Bound::Unbounded),
        ("b) 25%", Fig7Bound::LoadFraction(0.25)),
        ("c) 12.5%", Fig7Bound::LoadFraction(0.125)),
        ("d) 6.25%", Fig7Bound::LoadFraction(0.0625)),
    ] {
        let curve = run_fig7(&fig7, bound);
        println!(
            "  {:<14} learn {:>10}  run {:>10}",
            label,
            us(curve.learn_avg),
            us(curve.run_avg)
        );
    }

    println!("\n== Section 6.2 overhead ==");
    let overhead = run_overhead(&OverheadConfig::default());
    println!(
        "  context switches +{} ({} interposed windows), monitor state {} B (l=1)",
        percent(overhead.context_switch_increase),
        overhead.interposed_windows,
        overhead.monitor_state_bytes_l1,
    );

    println!("\n== Bounds (Sections 4/5.1) ==");
    for row in run_bounds(&BoundsConfig::default()) {
        println!(
            "  {:<38} analytic {:>10}  simulated max {:>10}  holds {}",
            row.name,
            us(row.analytic),
            us(row.simulated_max),
            if row.holds { "yes" } else { "NO" },
        );
    }

    println!("\n== Temporal independence (Eq. 14) ==");
    let indep = run_independence(&IndependenceConfig::default());
    println!(
        "  victim lost {:>10} of bound {:>10}  holds {}",
        us(indep.lost),
        us(indep.interposed_bound + indep.top_handler_bound),
        if indep.holds { "yes" } else { "NO" },
    );

    println!("\n== Guest-task independence ==");
    let guest = run_guest_tasks(&GuestTasksConfig::default());
    println!(
        "  all storm WCRTs within monitored bounds: {}",
        if guest.holds { "yes" } else { "NO" }
    );

    println!("\n== Policy ablation (delayed fraction) ==");
    for row in run_ablation(&AblationConfig::default()) {
        println!(
            "  {:?}/{:?}: {}",
            row.policies.boundary,
            row.policies.admission_clock,
            percent(row.delayed_fraction),
        );
    }

    println!("\n== Multi-source ==");
    let multi = run_multi_source(&MultiSourceConfig::default());
    for row in &multi.sources {
        println!(
            "  {:<10} baseline {:>10} -> monitored {:>10}",
            row.name,
            us(row.baseline_mean),
            us(row.monitored_mean),
        );
    }
    println!(
        "  aggregate interference holds: {}",
        if multi.holds { "yes" } else { "NO" }
    );

    println!("\n== Slot splitting vs interposition (Section 1) ==");
    for row in run_splitting(&SplittingConfig::default()) {
        println!(
            "  {:<36} mean {:>10}  hv overhead {}",
            row.name,
            us(row.mean_latency),
            percent(row.hypervisor_fraction),
        );
    }

    println!("\n== Shaper comparison (bursty workload) ==");
    for row in run_shaper_comparison(&ShaperComparisonConfig::default()) {
        println!(
            "  {:<36} mean {:>10}  guaranteed {:>10}/cyc",
            row.name,
            us(row.mean_latency),
            us(row.guaranteed_interference),
        );
    }
}
