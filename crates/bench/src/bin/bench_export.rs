//! Perf-trajectory exporter: runs the Figure-6c conformant scenario at
//! three scales, sequentially and fanned over all cores, and writes
//! `BENCH_sim.json` with events/sec, IRQs/sec and wall-clock per sweep
//! point — the numbers to track across commits for engine-performance
//! regressions.
//!
//! Usage: `cargo run --release -p rthv-experiments --bin bench_export
//! [output-path]` (default `BENCH_sim.json` in the working directory).
//!
//! The parallel pass fans the scenario's independent load levels over host
//! cores with [`SweepRunner`] and cross-checks that the merged result is
//! identical to the sequential one before reporting its timing.

use std::fmt::Write as _;
use std::time::Instant as HostInstant;

use rthv::scenarios::{merge_fig6_loads, run_fig6_load, Fig6Config, Fig6Run, Fig6Variant};
use rthv_experiments::SweepRunner;

/// IRQs per load level at each scale; the paper's Figure 6 uses 5000.
const SCALES: [usize; 3] = [1_000, 5_000, 20_000];

struct Measured {
    wall_seconds: f64,
    events: u64,
    irqs: u64,
    run: Fig6Run,
}

impl Measured {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_seconds
    }

    fn irqs_per_sec(&self) -> f64 {
        self.irqs as f64 / self.wall_seconds
    }
}

fn measure(config: &Fig6Config, runner: &SweepRunner) -> Measured {
    let indices: Vec<usize> = (0..config.loads.len()).collect();
    let start = HostInstant::now();
    let outcomes = runner.run(&indices, |_, &index| {
        run_fig6_load(config, Fig6Variant::MonitoredNoViolations, index)
    });
    let wall_seconds = start.elapsed().as_secs_f64();
    let events = outcomes.iter().map(|o| o.events_processed).sum();
    let run = merge_fig6_loads(Fig6Variant::MonitoredNoViolations, outcomes);
    Measured {
        wall_seconds,
        events,
        irqs: run.total() as u64,
        run,
    }
}

fn assert_identical(sequential: &Fig6Run, parallel: &Fig6Run) {
    assert_eq!(sequential.mean_latency, parallel.mean_latency);
    assert_eq!(sequential.max_latency, parallel.max_latency);
    assert_eq!(sequential.class_counts, parallel.class_counts);
    assert_eq!(sequential.histogram.count(), parallel.histogram.count());
    assert!(
        sequential.histogram.iter().eq(parallel.histogram.iter()),
        "parallel histogram diverged from sequential"
    );
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let parallel_runner = SweepRunner::available();

    let mut points = String::new();
    for (i, &scale) in SCALES.iter().enumerate() {
        let config = Fig6Config {
            irqs_per_load: scale,
            ..Fig6Config::default()
        };
        let sequential = measure(&config, &SweepRunner::sequential());
        let parallel = measure(&config, &parallel_runner);
        assert_identical(&sequential.run, &parallel.run);
        let speedup = parallel.events_per_sec() / sequential.events_per_sec();

        eprintln!(
            "scale {scale}: sequential {:.0} events/s ({:.3} s), parallel {:.0} events/s \
             ({:.3} s), speedup {speedup:.2}x on {cores} core(s)",
            sequential.events_per_sec(),
            sequential.wall_seconds,
            parallel.events_per_sec(),
            parallel.wall_seconds,
        );

        let _ = write!(
            points,
            r#"    {{
      "irqs_per_load": {scale},
      "total_irqs": {irqs},
      "total_events": {events},
      "sequential": {{
        "wall_seconds": {sw:.6},
        "events_per_sec": {se:.1},
        "irqs_per_sec": {si:.1}
      }},
      "parallel": {{
        "threads": {threads},
        "wall_seconds": {pw:.6},
        "events_per_sec": {pe:.1},
        "irqs_per_sec": {pi:.1}
      }},
      "parallel_speedup": {speedup:.3},
      "mean_latency_us": {mean},
      "max_latency_us": {max}
    }}"#,
            irqs = sequential.irqs,
            events = sequential.events,
            sw = sequential.wall_seconds,
            se = sequential.events_per_sec(),
            si = sequential.irqs_per_sec(),
            threads = parallel_runner.threads(),
            pw = parallel.wall_seconds,
            pe = parallel.events_per_sec(),
            pi = parallel.irqs_per_sec(),
            mean = sequential.run.mean_latency.as_micros(),
            max = sequential.run.max_latency.as_micros(),
        );
        if i + 1 < SCALES.len() {
            points.push_str(",\n");
        } else {
            points.push('\n');
        }
    }

    let json = format!(
        r#"{{
  "benchmark": "fig6c_conformant_scenario",
  "description": "Fig. 6c (monitored, d_min-conformant arrivals) at three scales; parallel pass fans the three load levels over host cores and is verified bit-identical to the sequential pass",
  "host_cores": {cores},
  "points": [
{points}  ]
}}
"#
    );
    std::fs::write(&path, json).expect("write benchmark export");
    eprintln!("wrote {path}");
}
