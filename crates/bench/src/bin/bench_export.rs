//! Perf-trajectory exporter: runs the Figure-6c conformant scenario at
//! three scales, sequentially and fanned over all cores, and writes
//! `BENCH_sim.json` with events/sec, IRQs/sec and wall-clock per sweep
//! point — the numbers to track across commits for engine-performance
//! regressions.
//!
//! Usage: `cargo run --release -p rthv-experiments --bin bench_export
//! [output-path] [--metrics <json>]` (default `BENCH_sim.json` in the
//! working directory). With `--metrics`, the observability probe's metrics
//! snapshot is also written to the given path — deterministic across runs.
//!
//! The parallel pass fans the scenario's independent load levels over host
//! cores with [`SweepRunner`] and cross-checks that the merged result is
//! identical to the sequential one before reporting its timing. A
//! single-core host cannot demonstrate parallel speedup, so each sweep
//! point records how many workers actually ran and whether its speedup
//! number is meaningful at all. The same convention covers the
//! `smp_scaling` probe (the five multi-core platform families at simulated
//! core counts 1/2/4, stepped sequentially vs in parallel inside each
//! scenario on one scoped worker per simulated core, verified
//! byte-identical), and every single-threaded probe records
//! `"threads": 1` so the export is explicit about what ran where.

use std::fmt::Write as _;
use std::time::Instant as HostInstant;

use rthv::monitor::DeltaFunction;
use rthv::scenarios::{merge_fig6_loads, run_fig6_load, Fig6Config, Fig6Run, Fig6Variant};
use rthv::sim::EngineQueue;
use rthv::time::{Duration as SimDuration, Instant as SimInstant};
use rthv::{
    EngineChoice, EngineKind, IrqHandlingMode, IrqSourceId, Machine, PaperSetup, StepChoice,
    SupervisionPolicy,
};
use rthv_admit::{AdmitFleet, FleetConfig, FleetReport, TenantConfig, TenantSpec};
use rthv_experiments::{parse_journal_flags, SweepRunner};
use rthv_faults::{run_smp_case_stepped, smp_scenarios, SmpArm, SmpCase, SmpConfig};
use rthv_workload::FloodEvent;

/// IRQs per load level at each scale; the paper's Figure 6 uses 5000.
const SCALES: [usize; 3] = [1_000, 5_000, 20_000];

/// Both engines, heap first (the reference).
const ENGINES: [EngineKind; 2] = [EngineKind::Heap, EngineKind::Wheel];

struct Measured {
    wall_seconds: f64,
    events: u64,
    irqs: u64,
    run: Fig6Run,
}

impl Measured {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_seconds
    }

    fn irqs_per_sec(&self) -> f64 {
        self.irqs as f64 / self.wall_seconds
    }
}

fn choice(kind: EngineKind) -> EngineChoice {
    match kind {
        EngineKind::Heap => EngineChoice::Heap,
        EngineKind::Wheel => EngineChoice::Wheel,
    }
}

fn measure(config: &Fig6Config, runner: &SweepRunner) -> Measured {
    let indices: Vec<usize> = (0..config.loads.len()).collect();
    let start = HostInstant::now();
    let outcomes = runner.run(&indices, |_, &index| {
        run_fig6_load(config, Fig6Variant::MonitoredNoViolations, index)
    });
    let wall_seconds = start.elapsed().as_secs_f64();
    let events = outcomes.iter().map(|o| o.events_processed).sum();
    let run = merge_fig6_loads(Fig6Variant::MonitoredNoViolations, outcomes);
    Measured {
        wall_seconds,
        events,
        irqs: run.total() as u64,
        run,
    }
}

fn assert_identical(sequential: &Fig6Run, parallel: &Fig6Run) {
    assert_eq!(sequential.mean_latency, parallel.mean_latency);
    assert_eq!(sequential.max_latency, parallel.max_latency);
    assert_eq!(sequential.class_counts, parallel.class_counts);
    assert_eq!(sequential.histogram.count(), parallel.histogram.count());
    assert!(
        sequential.histogram.iter().eq(parallel.histogram.iter()),
        "parallel histogram diverged from sequential"
    );
}

/// Arrivals in the supervision-overhead probe. All are δ⁻-conformant, so
/// both runs make the identical admission decisions and the timing delta is
/// purely the supervision bookkeeping on the admission hot path.
const SUPERVISION_ARRIVALS: u64 = 50_000;

struct SupervisionMeasured {
    wall_seconds: f64,
    decisions: u64,
}

impl SupervisionMeasured {
    fn decisions_per_sec(&self) -> f64 {
        self.decisions as f64 / self.wall_seconds
    }
}

/// Runs a fully conformant monitored workload (arrivals at exactly `d_min`)
/// with supervision on or off and times the whole run. Conformant streams
/// never quarantine, so the two runs traverse the same admission decisions.
fn measure_supervision(supervised: bool) -> SupervisionMeasured {
    let setup = PaperSetup::default();
    let dmin = SimDuration::from_millis(3);
    let delta = DeltaFunction::from_dmin(dmin).expect("positive d_min");
    let mut hv = setup.config(IrqHandlingMode::Interposed, Some(delta));
    if supervised {
        hv.policies.supervision = Some(SupervisionPolicy::default());
    }
    let mut machine = Machine::new(hv).expect("paper setup is valid");
    for i in 1..=SUPERVISION_ARRIVALS {
        machine
            .schedule_irq(
                IrqSourceId::new(0),
                SimInstant::ZERO + dmin.saturating_mul(i),
            )
            .expect("conformant arrival schedules");
    }
    let horizon = SimInstant::ZERO + dmin.saturating_mul(SUPERVISION_ARRIVALS + 2);

    let start = HostInstant::now();
    machine.run_until(horizon);
    let report = machine.finish();
    let wall_seconds = start.elapsed().as_secs_f64();

    assert_eq!(
        report.counters.quarantine_entries, 0,
        "a conformant stream must never quarantine"
    );
    SupervisionMeasured {
        wall_seconds,
        decisions: report.counters.monitor_admitted + report.counters.monitor_denied,
    }
}

/// Arrivals in the observability-overhead probe: same conformant shape as
/// the supervision probe (but longer, to lift the signal above scheduler
/// noise), so the timing delta is purely the flight-recorder hooks on the
/// hot path.
const OBS_ARRIVALS: u64 = 120_000;

/// The instrumented hot path must stay within this factor of the bare one.
const OBS_OVERHEAD_BUDGET: f64 = 1.05;

/// Bare/instrumented run pairs; the reported overhead is the *median* of
/// the pairwise ratios. A single ~100 ms run is hostage to scheduler noise
/// on a busy host; pairing the two modes back to back cancels slow drift,
/// and the median discards the outlier pairs a noisy neighbour produces.
const OBS_REPS: usize = 9;

struct ObsMeasured {
    wall_seconds: f64,
    decisions: u64,
    snapshot: Option<String>,
}

impl ObsMeasured {
    fn decisions_per_sec(&self) -> f64 {
        self.decisions as f64 / self.wall_seconds
    }
}

/// Runs a fully conformant monitored workload (arrivals at exactly `d_min`)
/// with the observability layer off or on and times the whole run. Metrics
/// are pure observation, so both runs make identical admission decisions —
/// asserted by the caller — and the delta is the cost of the counter,
/// histogram, gauge and flight-recorder hooks.
fn measure_obs(instrumented: bool) -> ObsMeasured {
    let setup = PaperSetup::default();
    let dmin = SimDuration::from_millis(3);
    let delta = DeltaFunction::from_dmin(dmin).expect("positive d_min");
    let hv = setup.config(IrqHandlingMode::Interposed, Some(delta));
    let mut machine = Machine::new(hv).expect("paper setup is valid");
    if instrumented {
        let obs_config = machine.default_obs_config();
        machine.enable_metrics(obs_config);
    }
    for i in 1..=OBS_ARRIVALS {
        machine
            .schedule_irq(
                IrqSourceId::new(0),
                SimInstant::ZERO + dmin.saturating_mul(i),
            )
            .expect("conformant arrival schedules");
    }
    let horizon = SimInstant::ZERO + dmin.saturating_mul(OBS_ARRIVALS + 2);

    let start = HostInstant::now();
    machine.run_until(horizon);
    let wall_seconds = start.elapsed().as_secs_f64();
    let snapshot = machine.metrics_snapshot_json();
    let report = machine.finish();

    ObsMeasured {
        wall_seconds,
        decisions: report.counters.monitor_admitted + report.counters.monitor_denied,
        snapshot,
    }
}

/// Conformant arrivals per source in the tenant-hierarchy overhead probe.
const TENANT_ARRIVALS_PER_SOURCE: u64 = 4_000;

/// Sources in the tenant probe fleet (split across two tenants).
const TENANT_SOURCES: u32 = 16;

/// Flat/hierarchical run pairs; the reported overhead is the median of the
/// pairwise ratios, for the same noise-cancelling reasons as the
/// observability probe.
const TENANT_REPS: usize = 9;

/// The hierarchical admission path (tenant table, brownout roll, group
/// window + aggregate monitor, global window) must stay within this factor
/// of the flat path's per-decision cost.
const TENANT_OVERHEAD_BUDGET: f64 = 1.3;

/// A conformant fleet trace: every source fires exactly at `d_min`, with a
/// small per-source phase offset so arrivals interleave rather than
/// colliding on one instant. Both fleet shapes admit every arrival, so the
/// timing delta is purely the hierarchy bookkeeping.
fn tenant_probe_arrivals() -> Vec<FloodEvent> {
    let dmin = SimDuration::from_millis(1);
    let phase = SimDuration::from_micros(25);
    let mut arrivals = Vec::with_capacity((TENANT_ARRIVALS_PER_SOURCE * 16) as usize);
    for i in 1..=TENANT_ARRIVALS_PER_SOURCE {
        for source in 0..TENANT_SOURCES {
            arrivals.push(FloodEvent {
                at: SimInstant::ZERO + dmin.saturating_mul(i) + phase.saturating_mul(source.into()),
                source,
            });
        }
    }
    arrivals
}

/// The probe fleet: deep queues so sheds are structurally impossible, and
/// — when hierarchical — a 2-tenant split whose budgets (9 admissions per
/// 500 µs window against an 8-arrival burst per tenant per millisecond) never deny a conformant stream.
/// The short window also keeps the group's aggregate δ⁻ short — the
/// group check is O(budget) per decision — so the probe prices the
/// hierarchy's bookkeeping, not a degenerate monitor scan.
fn tenant_probe_fleet(hierarchical: bool) -> AdmitFleet {
    let mut config = FleetConfig::paper(4, TENANT_SOURCES);
    config.queue_capacity = 1 << 20;
    if hierarchical {
        config.tenancy = Some(TenantConfig {
            window: SimDuration::from_micros(500),
            global_budget: 18,
            tenants: vec![
                TenantSpec {
                    sources: TENANT_SOURCES / 2,
                    budget: 9,
                },
                TenantSpec {
                    sources: TENANT_SOURCES / 2,
                    budget: 9,
                },
            ],
            brownout: Default::default(),
            seed: 0x7E4A_BE4C,
            retry_ladder: true,
        });
    }
    AdmitFleet::new(config).expect("tenant probe config is valid")
}

struct TenantMeasured {
    wall_seconds: f64,
    decisions: u64,
    report: FleetReport,
}

impl TenantMeasured {
    fn decisions_per_sec(&self) -> f64 {
        self.decisions as f64 / self.wall_seconds
    }
}

/// Times one full fleet run over the conformant trace, flat or
/// hierarchical. The caller asserts both shapes admit byte-identically —
/// the hierarchy must be pure bookkeeping on a stream it never refuses.
fn measure_tenant(hierarchical: bool, arrivals: &[FloodEvent]) -> TenantMeasured {
    let fleet = tenant_probe_fleet(hierarchical);
    let start = HostInstant::now();
    let report = fleet.run(arrivals, &[], None);
    let wall_seconds = start.elapsed().as_secs_f64();
    TenantMeasured {
        wall_seconds,
        decisions: report.counters.scheduled,
        report,
    }
}

/// Arrivals in the checkpoint-overhead probe. Smaller than the supervision
/// probe because the hashed pass steps the machine slot by slot.
const CHECKPOINT_ARRIVALS: u64 = 20_000;

/// Snapshot/restore repetitions for a stable mean.
const CHECKPOINT_REPS: u32 = 100;

struct CheckpointMeasured {
    plain_seconds: f64,
    hashed_seconds: f64,
    boundaries: u64,
    snapshot_mean_seconds: f64,
    restore_mean_seconds: f64,
}

impl CheckpointMeasured {
    /// Relative cost of hashing every slot boundary, in percent.
    fn overhead_percent(&self) -> f64 {
        (self.hashed_seconds / self.plain_seconds - 1.0) * 100.0
    }
}

/// The conformant monitored machine the checkpoint probe runs (the same
/// shape as the supervision probe), without any arrivals scheduled yet.
fn checkpoint_machine() -> Machine {
    let setup = PaperSetup::default();
    let dmin = SimDuration::from_millis(3);
    let delta = DeltaFunction::from_dmin(dmin).expect("positive d_min");
    let hv = setup.config(IrqHandlingMode::Interposed, Some(delta));
    Machine::new(hv).expect("paper setup is valid")
}

/// Runs the probe's conformant scenario slot by slot, injecting arrivals
/// online — each slot's arrivals are scheduled just before the slot runs,
/// the way a real system receives IRQs, so the pending event queue stays
/// small and the per-boundary `observe` hook measures exactly what it
/// costs, not the size of a pre-loaded future. Both checkpoint passes use
/// this driver; their only difference is the hook.
fn drive_checkpoint_run(mut observe: impl FnMut(&Machine)) -> (u64, rthv::RunReport) {
    let dmin = SimDuration::from_millis(3);
    let horizon = SimInstant::ZERO + dmin.saturating_mul(CHECKPOINT_ARRIVALS + 2);
    let mut machine = checkpoint_machine();
    let schedule = machine.schedule().clone();
    let mut next_arrival = 1u64;
    let mut boundaries = 0u64;
    while schedule.boundary_time(boundaries + 1) <= horizon {
        boundaries += 1;
        let boundary = schedule.boundary_time(boundaries);
        while next_arrival <= CHECKPOINT_ARRIVALS
            && SimInstant::ZERO + dmin.saturating_mul(next_arrival) <= boundary
        {
            machine
                .schedule_irq(
                    IrqSourceId::new(0),
                    SimInstant::ZERO + dmin.saturating_mul(next_arrival),
                )
                .expect("conformant arrival schedules");
            next_arrival += 1;
        }
        machine.run_until(boundary);
        observe(&machine);
    }
    machine.run_until(horizon);
    (boundaries, machine.finish())
}

/// Times the Fig. 6c-style conformant scenario three ways: stepped slot by
/// slot without hashing (the reference), the identical stepping with
/// `state_hash()` at every boundary (the cost of continuous divergence
/// checking), and repeated `snapshot()`/`restore()` of a mid-run machine.
/// The hashed run is verified to produce the identical report — hashing is
/// observation, not perturbation.
fn measure_checkpoint() -> CheckpointMeasured {
    let start = HostInstant::now();
    let (boundaries, plain_report) = drive_checkpoint_run(|_| {});
    let plain_seconds = start.elapsed().as_secs_f64();

    let mut digest = 0u64;
    let start = HostInstant::now();
    let (_, hashed_report) = drive_checkpoint_run(|machine| digest ^= machine.state_hash());
    let hashed_seconds = start.elapsed().as_secs_f64();
    std::hint::black_box(digest);
    assert_eq!(
        format!("{plain_report:?}"),
        format!("{hashed_report:?}"),
        "per-slot state hashing must not perturb the run"
    );

    let dmin = SimDuration::from_millis(3);
    let mut machine = checkpoint_machine();
    machine.run_until(SimInstant::ZERO + dmin.saturating_mul(4));
    let start = HostInstant::now();
    for _ in 0..CHECKPOINT_REPS {
        std::hint::black_box(machine.snapshot());
    }
    let snapshot_mean_seconds = start.elapsed().as_secs_f64() / f64::from(CHECKPOINT_REPS);
    let snapshot = machine.snapshot();
    let mut target = checkpoint_machine();
    let start = HostInstant::now();
    for _ in 0..CHECKPOINT_REPS {
        target.restore(&snapshot);
    }
    let restore_mean_seconds = start.elapsed().as_secs_f64() / f64::from(CHECKPOINT_REPS);
    assert_eq!(
        target.state_hash(),
        machine.state_hash(),
        "a restored machine must hash identically to its source"
    );

    CheckpointMeasured {
        plain_seconds,
        hashed_seconds,
        boundaries,
        snapshot_mean_seconds,
        restore_mean_seconds,
    }
}

/// Physical host core count — the single source of truth for every
/// probe's `host_cores` field and speedup-meaningful flag; computing it
/// in one place means the flags can never disagree between probes.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// A measured speedup says something only when the host can actually run
/// more than one worker *and* the probe used more than one.
fn speedup_meaningful(host_cores: usize, threads_used: usize) -> bool {
    host_cores > 1 && threads_used > 1
}

/// Simulated core counts for the multi-core platform scaling probe — the
/// same ladder the `smp_storm` campaign sweeps.
const SMP_CORES: [usize; 3] = [1, 2, 4];

/// Scenarios in the smp scaling probe (the five SMP families once each).
const SMP_SCENARIOS: u32 = 5;

/// Timed passes per smp stepping mode; the best pass is reported.
const SMP_REPS: u32 = 3;

struct SmpMeasured {
    wall_seconds: f64,
    cases: Vec<SmpCase>,
}

impl SmpMeasured {
    fn scenarios_per_sec(&self) -> f64 {
        self.cases.len() as f64 / self.wall_seconds
    }
}

/// Runs the SMP families at a fixed simulated core count with an explicit
/// platform stepping mode, scenarios strictly one after another so
/// intra-scenario stepping is the *only* concurrency being timed, and
/// reports the best of [`SMP_REPS`] passes. The per-scenario outcomes
/// come back in scenario order, so the caller can assert parallel
/// stepping is byte-identical to sequential before trusting its timing.
fn measure_smp(config: &SmpConfig, cores: usize, step: StepChoice) -> SmpMeasured {
    let scenarios = smp_scenarios(SMP_SCENARIOS, 0x5317_2014, config.horizon);
    let mut wall_seconds = f64::INFINITY;
    let mut cases = Vec::new();
    for _ in 0..SMP_REPS {
        let start = HostInstant::now();
        let pass: Vec<SmpCase> = scenarios
            .iter()
            .map(|scenario| {
                run_smp_case_stepped(
                    config,
                    scenario,
                    SmpArm::HierAffinity,
                    cores,
                    true,
                    None,
                    step,
                )
                .expect("smp scaling geometry is valid")
                .0
            })
            .collect();
        wall_seconds = wall_seconds.min(start.elapsed().as_secs_f64());
        cases = pass;
    }
    SmpMeasured {
        wall_seconds,
        cases,
    }
}

/// Live-population levels for the `queue_micro` probe: small (a single
/// scenario's working set), medium (a pre-scheduled campaign), large (the
/// scaling-cliff regime the heap degraded in).
const QUEUE_FILLS: [usize; 3] = [1_000, 32_000, 256_000];

/// Timed operations per phase at each fill level.
const QUEUE_OPS: usize = 200_000;

struct QueueMicro {
    engine: EngineKind,
    fill: usize,
    schedule_per_sec: f64,
    cancel_per_sec: f64,
    pop_per_sec: f64,
}

/// SplitMix64 step — a deterministic offset stream with no external deps.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Times raw engine operations against a queue held at `fill` live events:
/// `QUEUE_OPS` schedules at seeded offsets spread over ~100 TDMA cycles
/// (so the wheel populates several levels), then cancellation of exactly
/// those events (compaction-guard cost included — that is the amortized
/// price of lazy deletion), then `QUEUE_OPS` pops against the same fill.
fn measure_queue_micro(kind: EngineKind, fill: usize) -> QueueMicro {
    let cycle = PaperSetup::default().tdma_cycle();
    let span = cycle.as_nanos().saturating_mul(100).max(1);
    let mut state = 0x5EED_0BAD_u64 ^ ((fill as u64) << 1) ^ kind as u64;
    let mut offset = || SimDuration::from_nanos(1 + splitmix(&mut state) % span);

    let mut queue: EngineQueue<u64> = EngineQueue::new(kind, cycle);
    queue.reserve(fill + QUEUE_OPS);
    for i in 0..fill {
        queue.schedule_in(offset(), i as u64);
    }

    let start = HostInstant::now();
    let mut ids = Vec::with_capacity(QUEUE_OPS);
    for i in 0..QUEUE_OPS {
        ids.push(queue.schedule_in(offset(), i as u64));
    }
    let schedule_per_sec = QUEUE_OPS as f64 / start.elapsed().as_secs_f64();

    let start = HostInstant::now();
    for id in ids {
        queue.cancel(id);
    }
    let cancel_per_sec = QUEUE_OPS as f64 / start.elapsed().as_secs_f64();

    for i in 0..QUEUE_OPS {
        queue.schedule_in(offset(), i as u64);
    }
    let start = HostInstant::now();
    for _ in 0..QUEUE_OPS {
        std::hint::black_box(queue.pop());
    }
    let pop_per_sec = QUEUE_OPS as f64 / start.elapsed().as_secs_f64();
    assert_eq!(queue.len(), fill, "pop phase must leave the fill intact");

    QueueMicro {
        engine: kind,
        fill,
        schedule_per_sec,
        cancel_per_sec,
        pop_per_sec,
    }
}

fn main() {
    let (options, positional) =
        parse_journal_flags(std::env::args().skip(1)).unwrap_or_else(|message| {
            eprintln!("bench_export: {message}");
            std::process::exit(1);
        });
    let path = positional
        .into_iter()
        .next()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let cores = host_cores();
    let parallel_runner = SweepRunner::available();

    let mut points = String::new();
    let total_points = ENGINES.len() * SCALES.len();
    let mut point_index = 0usize;
    let mut reference_runs: Vec<Fig6Run> = Vec::new();
    for engine in ENGINES {
        for &scale in &SCALES {
            let config = Fig6Config {
                irqs_per_load: scale,
                engine: choice(engine),
                ..Fig6Config::default()
            };
            let sequential = measure(&config, &SweepRunner::sequential());
            let parallel = measure(&config, &parallel_runner);
            assert_identical(&sequential.run, &parallel.run);
            // The wheel points must be observationally identical to the
            // heap points measured first — the benchmark doubles as a
            // cross-engine differential check on the exported numbers.
            match engine {
                EngineKind::Heap => reference_runs.push(sequential.run.clone()),
                EngineKind::Wheel => {
                    assert_identical(&reference_runs[point_index % SCALES.len()], &sequential.run);
                }
            }
            let speedup = parallel.events_per_sec() / sequential.events_per_sec();
            // On a single-core host (or a single-load sweep) the "parallel"
            // pass is just the sequential pass with extra bookkeeping; its
            // speedup says nothing about the engine and is flagged as such.
            let threads_used = parallel_runner.effective_threads(config.loads.len());
            let speedup_meaningful = speedup_meaningful(cores, threads_used);

            eprintln!(
                "{engine} @ scale {scale}: sequential {:.0} events/s ({:.3} s), parallel {:.0} \
                 events/s ({:.3} s), speedup {speedup:.2}x on {threads_used} worker(s), {cores} \
                 core(s){}",
                sequential.events_per_sec(),
                sequential.wall_seconds,
                parallel.events_per_sec(),
                parallel.wall_seconds,
                if speedup_meaningful {
                    ""
                } else {
                    " [speedup not meaningful]"
                },
            );

            let _ = write!(
                points,
                r#"    {{
      "engine": "{engine}",
      "host_cores": {cores},
      "irqs_per_load": {scale},
      "total_irqs": {irqs},
      "total_events": {events},
      "sequential": {{
        "wall_seconds": {sw:.6},
        "events_per_sec": {se:.1},
        "irqs_per_sec": {si:.1}
      }},
      "parallel": {{
        "threads": {threads},
        "threads_used": {threads_used},
        "wall_seconds": {pw:.6},
        "events_per_sec": {pe:.1},
        "irqs_per_sec": {pi:.1}
      }},
      "parallel_speedup": {speedup:.3},
      "parallel_speedup_meaningful": {speedup_meaningful},
      "mean_latency_us": {mean},
      "max_latency_us": {max}
    }}"#,
                irqs = sequential.irqs,
                events = sequential.events,
                sw = sequential.wall_seconds,
                se = sequential.events_per_sec(),
                si = sequential.irqs_per_sec(),
                threads = parallel_runner.threads(),
                pw = parallel.wall_seconds,
                pe = parallel.events_per_sec(),
                pi = parallel.irqs_per_sec(),
                mean = sequential.run.mean_latency.as_micros(),
                max = sequential.run.max_latency.as_micros(),
            );
            point_index += 1;
            if point_index < total_points {
                points.push_str(",\n");
            } else {
                points.push('\n');
            }
        }
    }

    let mut queue_micro = String::new();
    for (i, point) in ENGINES
        .iter()
        .flat_map(|&engine| QUEUE_FILLS.iter().map(move |&fill| (engine, fill)))
        .map(|(engine, fill)| measure_queue_micro(engine, fill))
        .enumerate()
    {
        eprintln!(
            "queue_micro {} @ fill {}: schedule {:.1}M ops/s, cancel {:.1}M ops/s, pop {:.1}M \
             ops/s",
            point.engine,
            point.fill,
            point.schedule_per_sec / 1e6,
            point.cancel_per_sec / 1e6,
            point.pop_per_sec / 1e6,
        );
        let _ = write!(
            queue_micro,
            r#"    {{
      "engine": "{engine}",
      "host_cores": {cores},
      "fill": {fill},
      "timed_ops": {ops},
      "threads": 1,
      "schedule_ops_per_sec": {s:.1},
      "cancel_ops_per_sec": {c:.1},
      "pop_ops_per_sec": {p:.1}
    }}"#,
            engine = point.engine,
            fill = point.fill,
            ops = QUEUE_OPS,
            s = point.schedule_per_sec,
            c = point.cancel_per_sec,
            p = point.pop_per_sec,
        );
        if i + 1 < ENGINES.len() * QUEUE_FILLS.len() {
            queue_micro.push_str(",\n");
        } else {
            queue_micro.push('\n');
        }
    }

    // Multi-core platform scaling: the five SMP families at each simulated
    // core count, stepped sequentially vs in parallel *inside* each
    // scenario (scoped worker threads at the safe-horizon barriers, one
    // per simulated core — scenarios themselves run strictly one after
    // another). Parallel stepping is byte-identical by construction and
    // asserted so per core count; the speedup-meaningful flag follows the
    // Fig. 6 convention, with the worker count being the simulated core
    // count itself.
    let smp_config = SmpConfig::smoke();
    let mut smp_points = String::new();
    for (i, &smp_cores) in SMP_CORES.iter().enumerate() {
        let sequential = measure_smp(&smp_config, smp_cores, StepChoice::Sequential);
        let parallel = measure_smp(&smp_config, smp_cores, StepChoice::Parallel);
        assert_eq!(
            sequential.cases, parallel.cases,
            "parallel stepping diverged from sequential at {smp_cores} core(s)"
        );
        let violations: u64 = sequential.cases.iter().map(|c| c.violations).sum();
        let sheds: u64 = sequential.cases.iter().map(|c| c.sheds).sum();
        let ipi_in: u64 = sequential.cases.iter().map(|c| c.ipi_in).sum();
        let speedup = sequential.wall_seconds / parallel.wall_seconds;
        // Parallel stepping spawns one scoped worker per simulated core
        // (a single-core platform short-circuits to the sequential walk);
        // the host can only truly run `cores` of them at once.
        let workers = if smp_cores > 1 { smp_cores } else { 1 };
        let threads_used = workers.min(cores);
        let speedup_meaningful = speedup_meaningful(cores, threads_used);
        if speedup_meaningful && smp_cores == SMP_CORES[SMP_CORES.len() - 1] {
            assert!(
                speedup > 1.0,
                "parallel stepping must beat sequential at {smp_cores} simulated cores on a \
                 {cores}-core host (measured {speedup:.3}x)"
            );
        }
        eprintln!(
            "smp_scaling @ {smp_cores} sim core(s): sequential stepping {:.1} scenarios/s \
             ({:.3} s), parallel stepping {:.1} scenarios/s ({:.3} s), speedup {speedup:.2}x on \
             {workers} worker(s) ({threads_used} effective){}",
            sequential.scenarios_per_sec(),
            sequential.wall_seconds,
            parallel.scenarios_per_sec(),
            parallel.wall_seconds,
            if speedup_meaningful {
                ""
            } else {
                " [speedup not meaningful]"
            },
        );
        let _ = write!(
            smp_points,
            r#"    {{
      "sim_cores": {smp_cores},
      "host_cores": {cores},
      "scenarios": {scenarios},
      "oracle_violations": {violations},
      "typed_sheds": {sheds},
      "cross_core_deliveries": {ipi_in},
      "sequential_stepping": {{
        "threads": 1,
        "wall_seconds": {sw:.6},
        "scenarios_per_sec": {ss:.1}
      }},
      "parallel_stepping": {{
        "threads": {workers},
        "threads_used": {threads_used},
        "wall_seconds": {pw:.6},
        "scenarios_per_sec": {ps:.1}
      }},
      "parallel_speedup": {speedup:.3},
      "parallel_speedup_meaningful": {speedup_meaningful}
    }}"#,
            scenarios = sequential.cases.len(),
            sw = sequential.wall_seconds,
            ss = sequential.scenarios_per_sec(),
            pw = parallel.wall_seconds,
            ps = parallel.scenarios_per_sec(),
        );
        if i + 1 < SMP_CORES.len() {
            smp_points.push_str(",\n");
        } else {
            smp_points.push('\n');
        }
    }

    let off = measure_supervision(false);
    let on = measure_supervision(true);
    assert_eq!(
        off.decisions, on.decisions,
        "supervision must not change a conformant stream's admission decisions"
    );
    let overhead_ratio = on.wall_seconds / off.wall_seconds;
    eprintln!(
        "supervision overhead: {} decisions — off {:.0} decisions/s ({:.3} s), on {:.0} \
         decisions/s ({:.3} s), ratio {overhead_ratio:.3}x",
        off.decisions,
        off.decisions_per_sec(),
        off.wall_seconds,
        on.decisions_per_sec(),
        on.wall_seconds,
    );

    // Run the two modes back to back OBS_REPS times; keep each mode's best
    // run for the throughput numbers and the median pairwise ratio as the
    // overhead estimate.
    let mut ratios = Vec::with_capacity(OBS_REPS);
    let mut bare = measure_obs(false);
    let mut instrumented = measure_obs(true);
    ratios.push(instrumented.wall_seconds / bare.wall_seconds);
    for _ in 1..OBS_REPS {
        let b = measure_obs(false);
        let i = measure_obs(true);
        ratios.push(i.wall_seconds / b.wall_seconds);
        if b.wall_seconds < bare.wall_seconds {
            bare = b;
        }
        if i.wall_seconds < instrumented.wall_seconds {
            instrumented = i;
        }
    }
    assert_eq!(
        bare.decisions, instrumented.decisions,
        "observability must not change a conformant stream's admission decisions"
    );
    ratios.sort_by(f64::total_cmp);
    let obs_ratio = ratios[ratios.len() / 2];
    eprintln!(
        "observability overhead: {} decisions — bare {:.0} decisions/s ({:.3} s), instrumented \
         {:.0} decisions/s ({:.3} s), ratio {obs_ratio:.3}x (budget {OBS_OVERHEAD_BUDGET:.2}x)",
        bare.decisions,
        bare.decisions_per_sec(),
        bare.wall_seconds,
        instrumented.decisions_per_sec(),
        instrumented.wall_seconds,
    );
    if obs_ratio > OBS_OVERHEAD_BUDGET {
        eprintln!(
            "WARNING: observability overhead {obs_ratio:.3}x exceeds the \
             {OBS_OVERHEAD_BUDGET:.2}x budget on this host"
        );
    }
    if let Some(metrics_path) = &options.metrics {
        let snapshot = instrumented
            .snapshot
            .as_ref()
            .expect("instrumented probe has metrics");
        std::fs::write(metrics_path, snapshot).expect("write metrics snapshot");
        eprintln!(
            "bench_export: metrics snapshot -> {}",
            metrics_path.display()
        );
    }

    // Flat vs hierarchical admission cost, paired back to back with the
    // median pairwise ratio, exactly like the observability probe.
    let arrivals = tenant_probe_arrivals();
    let mut tenant_ratios = Vec::with_capacity(TENANT_REPS);
    let mut flat = measure_tenant(false, &arrivals);
    let mut hierarchical = measure_tenant(true, &arrivals);
    assert_eq!(
        flat.report.merged_bytes(),
        hierarchical.report.merged_bytes(),
        "the hierarchy must not move a conformant stream it never refuses"
    );
    assert_eq!(flat.decisions, hierarchical.decisions);
    tenant_ratios.push(hierarchical.wall_seconds / flat.wall_seconds);
    for _ in 1..TENANT_REPS {
        let f = measure_tenant(false, &arrivals);
        let h = measure_tenant(true, &arrivals);
        tenant_ratios.push(h.wall_seconds / f.wall_seconds);
        if f.wall_seconds < flat.wall_seconds {
            flat = f;
        }
        if h.wall_seconds < hierarchical.wall_seconds {
            hierarchical = h;
        }
    }
    tenant_ratios.sort_by(f64::total_cmp);
    let tenant_ratio = tenant_ratios[tenant_ratios.len() / 2];
    eprintln!(
        "tenant hierarchy overhead: {} decisions — flat {:.0} decisions/s ({:.3} s), \
         hierarchical {:.0} decisions/s ({:.3} s), ratio {tenant_ratio:.3}x (budget \
         {TENANT_OVERHEAD_BUDGET:.2}x)",
        flat.decisions,
        flat.decisions_per_sec(),
        flat.wall_seconds,
        hierarchical.decisions_per_sec(),
        hierarchical.wall_seconds,
    );
    if tenant_ratio > TENANT_OVERHEAD_BUDGET {
        eprintln!(
            "WARNING: tenant hierarchy overhead {tenant_ratio:.3}x exceeds the \
             {TENANT_OVERHEAD_BUDGET:.2}x budget on this host"
        );
    }

    let checkpoint = measure_checkpoint();
    eprintln!(
        "checkpoint overhead: {} boundaries — plain {:.3} s, hashed {:.3} s ({:+.2}%), \
         snapshot {:.1} us, restore {:.1} us",
        checkpoint.boundaries,
        checkpoint.plain_seconds,
        checkpoint.hashed_seconds,
        checkpoint.overhead_percent(),
        checkpoint.snapshot_mean_seconds * 1e6,
        checkpoint.restore_mean_seconds * 1e6,
    );

    let json = format!(
        r#"{{
  "benchmark": "fig6c_conformant_scenario",
  "description": "Fig. 6c (monitored, d_min-conformant arrivals) at three scales per event engine (heap reference vs hierarchical timing wheel, verified observationally identical); parallel pass fans the three load levels over host cores and is verified bit-identical to the sequential pass; smp_scaling times the five multi-core platform families at simulated core counts 1/2/4 with sequential vs parallel intra-scenario stepping (one scoped worker per simulated core, byte-identical results asserted); queue_micro times raw engine schedule/cancel/pop ops at three fill levels; every probe records the thread count it ran on, and per-core speedups are flagged not-meaningful on a single-core host",
  "host_cores": {cores},
  "supervision_overhead": {{
    "description": "conformant monitored workload timed with health supervision off vs on; both runs make identical admission decisions, so the delta is pure supervision bookkeeping",
    "threads": 1,
    "arrivals": {arrivals},
    "admission_decisions": {decisions},
    "off": {{
      "wall_seconds": {ow:.6},
      "decisions_per_sec": {od:.1}
    }},
    "on": {{
      "wall_seconds": {nw:.6},
      "decisions_per_sec": {nd:.1}
    }},
    "overhead_ratio": {overhead_ratio:.4}
  }},
  "observability_overhead": {{
    "description": "conformant monitored workload timed with the flight-recorder observability layer off vs on; both runs make identical admission decisions, so the delta is the cost of the counter/histogram/gauge/recorder hooks",
    "threads": 1,
    "arrivals": {oarrivals},
    "admission_decisions": {odecisions},
    "bare": {{
      "wall_seconds": {bw:.6},
      "decisions_per_sec": {bd:.1}
    }},
    "instrumented": {{
      "wall_seconds": {iw:.6},
      "decisions_per_sec": {id:.1}
    }},
    "overhead_ratio": {obs_ratio:.4},
    "overhead_budget_ratio": {OBS_OVERHEAD_BUDGET:.2},
    "within_budget": {within_budget}
  }},
  "tenant_hierarchy_overhead": {{
    "description": "conformant 16-source fleet trace run through the flat fleet vs the 2-tenant budget hierarchy; both shapes admit byte-identically (asserted), so the delta is the tenant table, brownout roll, group window + aggregate monitor and global window on the admission hot path",
    "threads": 1,
    "arrivals": {tarrivals},
    "admission_decisions": {tdecisions},
    "flat": {{
      "wall_seconds": {tfw:.6},
      "decisions_per_sec": {tfd:.1}
    }},
    "hierarchical": {{
      "wall_seconds": {thw:.6},
      "decisions_per_sec": {thd:.1}
    }},
    "overhead_ratio": {tenant_ratio:.4},
    "overhead_budget_ratio": {TENANT_OVERHEAD_BUDGET:.2},
    "within_budget": {tenant_within_budget}
  }},
  "checkpoint_overhead": {{
    "description": "conformant monitored workload with online arrival injection, stepped slot-by-slot without vs with state_hash() at every boundary (verified non-perturbing), plus mean snapshot()/restore() cost of a mid-run machine; state_hash is O(live machine state), so pre-scheduling an entire campaign's arrivals would inflate it",
    "threads": 1,
    "arrivals": {carrivals},
    "slot_boundaries": {boundaries},
    "plain_wall_seconds": {cplain:.6},
    "hashed_wall_seconds": {chashed:.6},
    "per_slot_hash_overhead_percent": {coverhead:.2},
    "snapshot_mean_us": {csnap:.2},
    "restore_mean_us": {crestore:.2}
  }},
  "smp_scaling": [
{smp_points}  ],
  "queue_micro": [
{queue_micro}  ],
  "points": [
{points}  ]
}}
"#,
        arrivals = SUPERVISION_ARRIVALS,
        decisions = off.decisions,
        ow = off.wall_seconds,
        od = off.decisions_per_sec(),
        nw = on.wall_seconds,
        nd = on.decisions_per_sec(),
        oarrivals = OBS_ARRIVALS,
        odecisions = bare.decisions,
        bw = bare.wall_seconds,
        bd = bare.decisions_per_sec(),
        iw = instrumented.wall_seconds,
        id = instrumented.decisions_per_sec(),
        within_budget = obs_ratio <= OBS_OVERHEAD_BUDGET,
        tarrivals = TENANT_ARRIVALS_PER_SOURCE * u64::from(TENANT_SOURCES),
        tdecisions = flat.decisions,
        tfw = flat.wall_seconds,
        tfd = flat.decisions_per_sec(),
        thw = hierarchical.wall_seconds,
        thd = hierarchical.decisions_per_sec(),
        tenant_within_budget = tenant_ratio <= TENANT_OVERHEAD_BUDGET,
        carrivals = CHECKPOINT_ARRIVALS,
        boundaries = checkpoint.boundaries,
        cplain = checkpoint.plain_seconds,
        chashed = checkpoint.hashed_seconds,
        coverhead = checkpoint.overhead_percent(),
        csnap = checkpoint.snapshot_mean_seconds * 1e6,
        crestore = checkpoint.restore_mean_seconds * 1e6,
    );
    std::fs::write(&path, json).expect("write benchmark export");
    eprintln!("wrote {path}");
}
