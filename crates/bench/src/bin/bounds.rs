//! Worst-case latency bounds (Sections 4/5.1) vs simulated maxima: the
//! baseline Eq. 11/12 bound, the interposed Eq. 16/12 bound, and the
//! violating-arrivals fallback (Eq. 7 with Eq. 15).
//!
//! Usage: `cargo run --release -p rthv-experiments --bin bounds`

use rthv::scenarios::{run_bounds, BoundsConfig};
use rthv_experiments::us;

fn main() {
    let config = BoundsConfig::default();
    println!(
        "Worst-case IRQ latency: analysis vs simulation (d_min = {}, {} IRQs per run)\n",
        us(config.dmin),
        config.irqs
    );
    println!(
        "{:<38} {:>14} {:>14} {:>14} {:>7}",
        "scenario", "analytic", "simulated max", "simulated avg", "holds"
    );
    for row in run_bounds(&config) {
        println!(
            "{:<38} {:>14} {:>14} {:>14} {:>7}",
            row.name,
            us(row.analytic),
            us(row.simulated_max),
            us(row.simulated_mean),
            if row.holds { "yes" } else { "NO" },
        );
    }
    println!(
        "\nkey observation (paper Section 5.1): the interposed bound contains \
         no TDMA term at all — it is set by the handler and switch costs, \
         not by the cycle length."
    );
}
