//! Adversarial fault-injection campaign: seeded fault scenarios, each run
//! monitored and unmonitored under interposed IRQ handling, every run
//! replayed through the temporal-independence oracle, results written as a
//! deterministic JSON report.
//!
//! Usage: `cargo run --release -p rthv-experiments --bin campaign
//! [output-path] [scenario-count] [base-seed]` (defaults:
//! `CAMPAIGN_faults.json`, 21 scenarios, seed `0xFA2014`).
//!
//! Scenarios fan across host cores with [`SweepRunner`]; the assembled
//! report is verified byte-identical to a sequential pass before it is
//! written. The process exits non-zero if any *monitored* run trips the
//! oracle, or if the unmonitored baseline fails to demonstrate at least
//! one independence violation — both outcomes are the campaign's
//! acceptance criteria, persisted in the report.

use std::process::ExitCode;

use rthv_experiments::SweepRunner;
use rthv_faults::{
    idle_reference, run_scenario, standard_scenarios, CampaignConfig, CampaignReport,
};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .unwrap_or_else(|| "CAMPAIGN_faults.json".to_string());
    let count: usize = args
        .next()
        .map(|s| s.parse().expect("scenario count must be a number"))
        .unwrap_or(21);
    let base_seed: u64 = args
        .next()
        .map(|s| s.parse().expect("base seed must be a number"))
        .unwrap_or(0xFA_2014);

    let config = CampaignConfig {
        scenarios: standard_scenarios(count, base_seed),
        ..CampaignConfig::default()
    };
    let idle = idle_reference(&config);

    let runner = SweepRunner::available();
    let outcomes = runner.run(&config.scenarios, |_, scenario| {
        run_scenario(&config, &idle, scenario)
    });
    let report = CampaignReport::from_outcomes(&config, outcomes);

    let sequential = runner.threads() > 1 && count <= 8;
    if sequential {
        // Cheap campaigns double as a determinism self-check.
        let reference = SweepRunner::sequential().run(&config.scenarios, |_, scenario| {
            run_scenario(&config, &idle, scenario)
        });
        assert_eq!(
            CampaignReport::from_outcomes(&config, reference).to_json(),
            report.to_json(),
            "parallel campaign diverged from sequential"
        );
    }

    let json = report.to_json();
    std::fs::write(&path, &json).expect("write campaign report");

    eprintln!(
        "campaign: {} scenarios on {} thread(s) -> {path}",
        report.scenarios.len(),
        runner.threads(),
    );
    eprintln!(
        "  monitored violations:                 {}",
        report.monitored_violations()
    );
    eprintln!(
        "  unmonitored violations:               {}",
        report.unmonitored_violations()
    );
    eprintln!(
        "  unmonitored independence violations:  {}",
        report.unmonitored_independence_violations()
    );

    if report.monitored_violations() != 0 {
        eprintln!("FAIL: the monitored system tripped the oracle");
        return ExitCode::FAILURE;
    }
    if report.unmonitored_independence_violations() == 0 {
        eprintln!("FAIL: the unmonitored baseline never broke independence — campaign too tame");
        return ExitCode::FAILURE;
    }
    eprintln!("PASS: monitoring holds, baseline demonstrably does not");
    ExitCode::SUCCESS
}
