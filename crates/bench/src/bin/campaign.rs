//! Adversarial fault-injection campaign: seeded fault scenarios, each run
//! monitored and unmonitored under interposed IRQ handling, every run
//! replayed through the temporal-independence oracle, results written as a
//! deterministic JSON report.
//!
//! Usage: `cargo run --release -p rthv-experiments --bin campaign
//! [output-path] [scenario-count] [base-seed]
//! [--journal <jsonl>] [--resume <jsonl>] [--abort-after <n>]
//! [--metrics <json>]`
//! (defaults: `CAMPAIGN_faults.json`, 21 scenarios, seed `0xFA2014`).
//!
//! With `--journal`, each completed scenario is appended to a JSONL journal
//! the moment it finishes; with `--resume`, scenarios already present in a
//! journal (matched by label *and* seed) are loaded instead of re-executed.
//! Because every scenario is pure in `(config, seed)`, a resumed report is
//! byte-identical to an uninterrupted run — `--resume` can never change a
//! published number, only skip work. `--abort-after <n>` is the crash-test
//! hook: the process dies via `abort()` right after the n-th journal append
//! of this run is flushed.
//!
//! With `--metrics <json>`, the first scenario is re-run with the
//! flight-recorder observability layer enabled and its metrics snapshots
//! (monitored and unmonitored) are written to the given path. Metrics are
//! pure observation, so the campaign report itself is unchanged and the
//! snapshot file is deterministic — two runs with the same arguments
//! produce byte-identical files.
//!
//! Scenarios fan across host cores with [`SweepRunner`]; the assembled
//! report is verified byte-identical to a sequential re-execution (which
//! also cross-checks any resumed outcomes) before it is written. The
//! process exits non-zero if any *monitored* run trips the oracle, or if
//! the unmonitored baseline fails to demonstrate at least one independence
//! violation — both outcomes are the campaign's acceptance criteria,
//! persisted in the report.

use std::process::ExitCode;

use rthv_experiments::{
    parse_journal_flags, read_complete_lines, write_scenario_observation, Journal, SweepRunner,
};
use rthv_faults::{
    idle_reference, run_scenario, run_scenario_with_metrics, standard_scenarios, CampaignConfig,
    CampaignReport, ScenarioOutcome,
};

fn main() -> ExitCode {
    let (options, positional) = match parse_journal_flags(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("campaign: {message}");
            return ExitCode::FAILURE;
        }
    };
    let mut positional = positional.into_iter();
    let path = positional
        .next()
        .unwrap_or_else(|| "CAMPAIGN_faults.json".to_string());
    let count: usize = positional
        .next()
        .map(|s| s.parse().expect("scenario count must be a number"))
        .unwrap_or(21);
    let base_seed: u64 = positional
        .next()
        .map(|s| s.parse().expect("base seed must be a number"))
        .unwrap_or(0xFA_2014);

    let config = CampaignConfig {
        scenarios: standard_scenarios(count, base_seed),
        ..CampaignConfig::default()
    };
    let idle = match idle_reference(&config) {
        Ok(idle) => idle,
        Err(error) => {
            eprintln!("campaign: {error}");
            return ExitCode::FAILURE;
        }
    };

    // Completed outcomes from the resume journal, aligned to the scenario
    // list by (label, seed) so a journal from a different seed or count
    // silently resumes nothing rather than corrupting the report.
    let resumed: Vec<Option<ScenarioOutcome>> = match &options.resume {
        Some(journal_path) => {
            let lines = read_complete_lines(journal_path).expect("read resume journal");
            let mut completed = Vec::new();
            for line in &lines {
                match ScenarioOutcome::from_journal_json(line) {
                    Ok(outcome) => completed.push(outcome),
                    Err(error) => eprintln!("campaign: ignoring corrupt journal line: {error}"),
                }
            }
            config
                .scenarios
                .iter()
                .map(|scenario| {
                    completed
                        .iter()
                        .find(|o| o.label == scenario.label() && o.seed == scenario.seed)
                        .cloned()
                })
                .collect()
        }
        None => config.scenarios.iter().map(|_| None).collect(),
    };
    let journal = options
        .journal
        .as_deref()
        .map(|p| Journal::open_append(p).expect("open journal"));
    let abort_after = options.abort_after;

    let runner = SweepRunner::available();
    let outcomes = runner.run(&config.scenarios, |index, scenario| {
        if let Some(done) = &resumed[index] {
            return done.clone();
        }
        let outcome = run_scenario(&config, &idle, scenario).expect("validated campaign config");
        if let Some(journal) = &journal {
            let appended = journal
                .append(&outcome.to_journal_json())
                .expect("journal append");
            if abort_after.is_some_and(|limit| appended >= limit) {
                // Crash-test hook: die without unwinding or cleanup —
                // exactly the failure the resume path must survive.
                eprintln!("campaign: --abort-after {appended} reached, aborting");
                std::process::abort();
            }
        }
        outcome
    });
    let report = CampaignReport::from_outcomes(&config, outcomes);

    let resumed_any = resumed.iter().any(Option::is_some);
    if (runner.threads() > 1 || resumed_any) && count <= 8 {
        // Cheap campaigns double as a determinism self-check: a fresh
        // sequential re-execution must reproduce the assembled report,
        // including every outcome taken from the resume journal.
        let reference = SweepRunner::sequential().run(&config.scenarios, |_, scenario| {
            run_scenario(&config, &idle, scenario).expect("validated campaign config")
        });
        assert_eq!(
            CampaignReport::from_outcomes(&config, reference).to_json(),
            report.to_json(),
            "parallel/resumed campaign diverged from sequential re-execution"
        );
    }

    let json = report.to_json();
    std::fs::write(&path, &json).expect("write campaign report");

    if let Some(metrics_path) = &options.metrics {
        // Observability snapshot of the first scenario: re-run with the
        // flight recorder on. Metrics never change outcomes, so the report
        // above is untouched; the assert pins that.
        let scenario = &config.scenarios[0];
        let observation = run_scenario_with_metrics(&config, &idle, scenario, None)
            .expect("validated campaign config");
        assert_eq!(
            observation.outcome, report.scenarios[0],
            "metrics instrumentation changed a scenario outcome"
        );
        write_scenario_observation(metrics_path, &observation).expect("write metrics snapshot");
        eprintln!("campaign: metrics snapshot -> {}", metrics_path.display());
    }

    eprintln!(
        "campaign: {} scenarios ({} resumed) on {} thread(s) -> {path}",
        report.scenarios.len(),
        resumed.iter().filter(|r| r.is_some()).count(),
        runner.threads(),
    );
    eprintln!(
        "  monitored violations:                 {}",
        report.monitored_violations()
    );
    eprintln!(
        "  unmonitored violations:               {}",
        report.unmonitored_violations()
    );
    eprintln!(
        "  unmonitored independence violations:  {}",
        report.unmonitored_independence_violations()
    );

    if report.monitored_violations() != 0 {
        eprintln!("FAIL: the monitored system tripped the oracle");
        return ExitCode::FAILURE;
    }
    if report.unmonitored_independence_violations() == 0 {
        eprintln!("FAIL: the unmonitored baseline never broke independence — campaign too tame");
        return ExitCode::FAILURE;
    }
    eprintln!("PASS: monitoring holds, baseline demonstrably does not");
    ExitCode::SUCCESS
}
