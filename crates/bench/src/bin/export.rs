//! Exports the figure data as CSV files (for gnuplot/pandas replotting)
//! into `./artifacts/`.
//!
//! Usage: `cargo run --release -p rthv-experiments --bin export [out_dir]`

use std::fs;
use std::path::PathBuf;

use rthv::scenarios::{run_fig6, run_fig7, Fig6Config, Fig6Variant, Fig7Bound, Fig7Config};
use rthv::stats::{csv_row, histogram_to_csv, series_to_csv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = PathBuf::from(
        std::env::args()
            .nth(1)
            .unwrap_or_else(|| "artifacts".to_owned()),
    );
    fs::create_dir_all(&out_dir)?;

    // Figure 6: one histogram CSV per variant plus a summary CSV.
    let fig6_config = Fig6Config::default();
    let mut summary = csv_row([
        "variant",
        "mean_us",
        "max_us",
        "direct",
        "interposed",
        "delayed",
    ]);
    for (stem, variant) in [
        ("fig6a_unmonitored", Fig6Variant::Unmonitored),
        ("fig6b_monitored", Fig6Variant::Monitored),
        ("fig6c_conformant", Fig6Variant::MonitoredNoViolations),
    ] {
        let run = run_fig6(&fig6_config, variant);
        let path = out_dir.join(format!("{stem}.csv"));
        fs::write(&path, histogram_to_csv(&run.histogram))?;
        println!("wrote {}", path.display());
        summary.push_str(&csv_row([
            stem.to_owned(),
            run.mean_latency.as_micros().to_string(),
            run.max_latency.as_micros().to_string(),
            run.class_counts.0.to_string(),
            run.class_counts.1.to_string(),
            run.class_counts.2.to_string(),
        ]));
    }
    let path = out_dir.join("fig6_summary.csv");
    fs::write(&path, summary)?;
    println!("wrote {}", path.display());

    // Figure 7: the running-average series per bound.
    let fig7_config = Fig7Config::default();
    for (stem, bound) in [
        ("fig7a_unbounded", Fig7Bound::Unbounded),
        ("fig7b_load25", Fig7Bound::LoadFraction(0.25)),
        ("fig7c_load12_5", Fig7Bound::LoadFraction(0.125)),
        ("fig7d_load6_25", Fig7Bound::LoadFraction(0.0625)),
    ] {
        let curve = run_fig7(&fig7_config, bound);
        let path = out_dir.join(format!("{stem}.csv"));
        fs::write(&path, series_to_csv("avg_latency_us", &curve.running_avg))?;
        println!("wrote {}", path.display());
    }

    println!("\nreplot with e.g.:");
    println!("  gnuplot -e \"plot 'artifacts/fig6a_unmonitored.csv' skip 1 with boxes\"");
    Ok(())
}
