//! Regenerates Figure 6 of the paper: IRQ latency histograms for 15000
//! IRQs (5000 per load level of 1 %, 5 %, 10 %) in the three variants
//! (a: monitoring disabled, b: monitoring enabled, c: monitoring enabled
//! with d_min-conformant arrivals).
//!
//! Usage: `cargo run --release -p rthv-experiments --bin fig6`

use rthv::scenarios::{run_fig6, Fig6Config, Fig6Variant};
use rthv_experiments::{percent, rule, us};

fn main() {
    let config = Fig6Config::default();
    println!(
        "Figure 6 — latency histograms over {} IRQs (loads {:?}, C'_BH = {})",
        config.irqs_per_load * config.loads.len(),
        config.loads,
        us(config.setup.effective_bottom_cost()),
    );
    println!(
        "paper reference: 6a avg ~2500us (40% direct / 60% delayed); \
         6b avg ~1200us (40/40/20); 6c avg ~150us (40/60/0), ~16x vs 6a\n"
    );

    let mut means = Vec::new();
    for variant in [
        Fig6Variant::Unmonitored,
        Fig6Variant::Monitored,
        Fig6Variant::MonitoredNoViolations,
    ] {
        let run = run_fig6(&config, variant);
        let (direct, interposed, delayed) = run.class_fractions();
        let header = format!("=== {} ===", variant.label());
        println!("{header}");
        println!("{}", rule(&header));
        println!(
            "avg {:>10}   max {:>10}   direct {:>6}   interposed {:>6}   delayed {:>6}",
            us(run.mean_latency),
            us(run.max_latency),
            percent(direct),
            percent(interposed),
            percent(delayed),
        );
        for row in &run.per_load {
            println!(
                "  U = {:>4}  lambda = d_min = {:>10}  avg {:>10}  (d/i/d {:>4}/{:>4}/{:>4})",
                percent(row.load),
                us(row.lambda),
                us(row.mean_latency),
                row.class_counts.0,
                row.class_counts.1,
                row.class_counts.2,
            );
        }
        println!("histogram (bin_start_us count):");
        print!("{}", run.histogram);
        println!();
        means.push((variant, run.mean_latency));
    }

    let a = means[0].1.as_nanos() as f64;
    let c = means[2].1.as_nanos() as f64;
    println!("improvement 6c vs 6a: {:.1}x (paper: ~16x)", a / c.max(1.0));
}
