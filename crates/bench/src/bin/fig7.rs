//! Regenerates Figure 7 (Appendix A): running-average IRQ latency over a
//! bursty automotive activation trace. The first 10 % of the events learn a
//! δ⁻ function with l = 5 (Algorithm 1), the remainder runs monitored with
//! the learned function clamped (Algorithm 2) to bounds allowing
//! 100 % / 25 % / 12.5 % / 6.25 % of the recorded load (graphs a–d).
//!
//! Usage: `cargo run --release -p rthv-experiments --bin fig7`

use rthv::scenarios::{run_fig7, Fig7Bound, Fig7Config};
use rthv_experiments::us;

fn main() {
    let config = Fig7Config::default();
    println!(
        "Figure 7 — self-learning delta-minus over {} synthetic ECU activations \
         (learn = first {:.0} %, l = {})",
        config.events,
        config.learn_fraction * 100.0,
        config.l,
    );
    println!("paper reference: learn ~2200us; run a) ~120us b) ~300us c) ~900us d) ~1600us\n");

    let bounds = [
        ("a) unbounded", Fig7Bound::Unbounded),
        ("b) 25% load", Fig7Bound::LoadFraction(0.25)),
        ("c) 12.5% load", Fig7Bound::LoadFraction(0.125)),
        ("d) 6.25% load", Fig7Bound::LoadFraction(0.0625)),
    ];

    let mut curves = Vec::new();
    println!(
        "{:<16} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "graph", "learn avg", "run avg", "direct", "interposed", "delayed"
    );
    for (label, bound) in bounds {
        let curve = run_fig7(&config, bound);
        println!(
            "{:<16} {:>12} {:>12} {:>10} {:>10} {:>10}",
            label,
            us(curve.learn_avg),
            us(curve.run_avg),
            curve.run_class_counts.0,
            curve.run_class_counts.1,
            curve.run_class_counts.2,
        );
        curves.push((label, curve));
    }

    // The plotted series, decimated to every 250th event for readability.
    println!("\nrunning average series (event_index a_us b_us c_us d_us):");
    let len = curves[0].1.running_avg.len();
    for i in (0..len).step_by(250).chain(std::iter::once(len - 1)) {
        print!("{i:>8}");
        for (_, curve) in &curves {
            print!(" {:>10}", us(curve.running_avg[i]));
        }
        println!();
    }
    println!(
        "\nlearn phase ends at event {} (vertical line of the paper's plot)",
        curves[0].1.learn_events
    );
}
