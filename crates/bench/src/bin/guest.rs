//! Guest-task-level temporal independence: response times of a victim
//! partition's guest task set with and without a maximum-rate interposed
//! IRQ storm, against the hierarchical supply-bound analysis
//! (TDMA supply − Eq. 14 interference).
//!
//! Usage: `cargo run --release -p rthv-experiments --bin guest`

use rthv::scenarios::{run_guest_tasks, GuestTasksConfig};
use rthv_experiments::us;

fn main() {
    let config = GuestTasksConfig::default();
    let report = run_guest_tasks(&config);

    println!(
        "Guest tasks in victim partition {} under a d_min = {} storm over {}\n",
        config.victim,
        us(config.dmin),
        us(config.horizon)
    );
    println!(
        "{:<16} {:>12} {:>12} {:>14} {:>16}",
        "task", "idle wcrt", "storm wcrt", "TDMA bound", "monitored bound"
    );
    for (i, task) in config.tasks.tasks().iter().enumerate() {
        let fmt_opt = |d: Option<rthv::time::Duration>| d.map_or_else(|| "-".to_string(), us);
        println!(
            "{:<16} {:>12} {:>12} {:>14} {:>16}",
            task.name,
            fmt_opt(report.idle.tasks[i].observed_wcrt),
            fmt_opt(report.storm.tasks[i].observed_wcrt),
            fmt_opt(report.tdma_bounds[i]),
            fmt_opt(report.monitored_bounds[i]),
        );
    }
    println!(
        "\nall storm observations within the monitored bound: {}",
        if report.holds { "yes" } else { "NO" }
    );
    println!(
        "guest busy/idle inside supplied time — idle run: {}/{}, storm run: {}/{}",
        us(report.idle.busy_time),
        us(report.idle.idle_time),
        us(report.storm.busy_time),
        us(report.storm.idle_time),
    );
    println!(
        "\nThis is Eq. 2 made executable at the guest level: the storm can \
         only steal the Eq. 14 budget, so every guest deadline that holds \
         under 'TDMA minus budget' keeps holding no matter what the \
         IRQ-subscribing partition does."
    );
}
