//! Sufficient temporal independence, measured: the service a victim
//! partition loses to a maximum-rate conformant IRQ storm, against the
//! Eq. 14 interference bound.
//!
//! Usage: `cargo run --release -p rthv-experiments --bin independence`

use rthv::scenarios::{run_independence, IndependenceConfig};
use rthv::PartitionId;
use rthv_experiments::{percent, us};

fn main() {
    let base = IndependenceConfig::default();
    println!(
        "Temporal independence under a d_min = {} storm over {} (Eq. 2 / Eq. 14)\n",
        us(base.dmin),
        us(base.horizon)
    );
    println!(
        "{:<14} {:>14} {:>14} {:>12} {:>14} {:>7}",
        "victim", "idle service", "storm service", "lost", "bound", "holds"
    );
    for victim in [PartitionId::new(0), PartitionId::new(2)] {
        let report = run_independence(&IndependenceConfig {
            victim,
            ..base.clone()
        });
        let bound = report.interposed_bound + report.top_handler_bound;
        println!(
            "{:<14} {:>14} {:>14} {:>12} {:>14} {:>7}",
            victim.to_string(),
            us(report.idle_service),
            us(report.storm_service),
            us(report.lost),
            us(bound),
            if report.holds { "yes" } else { "NO" },
        );
    }

    let report = run_independence(&base);
    println!(
        "\n{} interposed windows opened; victim loss is {} of the bound — \
         interference is real but strictly capped by the hypervisor, \
         independent of how the IRQ-subscribing partition behaves.",
        report.interposed_windows,
        percent(
            report.lost.as_nanos() as f64
                / (report.interposed_bound + report.top_handler_bound).as_nanos() as f64
        ),
    );
}
