//! Multiple independently monitored IRQ sources: per-source latency
//! improvement and the aggregate interference budget.
//!
//! Usage: `cargo run --release -p rthv-experiments --bin multi_source`

use rthv::scenarios::{run_multi_source, MultiSourceConfig};
use rthv_experiments::us;

fn main() {
    let config = MultiSourceConfig::default();
    let report = run_multi_source(&config);

    println!(
        "Three IRQ sources over the paper's TDMA geometry ({} IRQs each)\n",
        config.irqs_per_source
    );
    println!(
        "{:<10} {:>14} {:>15} {:>8} {:>11} {:>8}",
        "source", "baseline mean", "monitored mean", "direct", "interposed", "delayed"
    );
    for row in &report.sources {
        println!(
            "{:<10} {:>14} {:>15} {:>8} {:>11} {:>8}",
            row.name,
            us(row.baseline_mean),
            us(row.monitored_mean),
            row.class_counts.0,
            row.class_counts.1,
            row.class_counts.2,
        );
    }
    println!(
        "\naggregate interference budget: {}   worst measured service loss: {}   holds: {}",
        us(report.aggregate_bound),
        us(report.worst_service_loss),
        if report.holds { "yes" } else { "NO" },
    );
    println!(
        "\nEach monitored source carries its own delta-minus condition; windows \
         are mutually exclusive, so simultaneous pressure degrades to delayed \
         handling instead of stacking interference — the per-victim budget is \
         simply the sum of the per-source Eq. 14 terms."
    );
}
