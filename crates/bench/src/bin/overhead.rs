//! Regenerates the Section 6.2 overhead numbers: the cost-model parameters
//! in cycles, the monitor state footprint, and the measured context-switch
//! increase of interposed handling.
//!
//! Usage: `cargo run --release -p rthv-experiments --bin overhead`

use rthv::scenarios::{run_overhead, OverheadConfig};
use rthv_experiments::{percent, us};

fn main() {
    let config = OverheadConfig::default();
    let report = run_overhead(&config);

    println!("Section 6.2 — memory and runtime overhead");
    println!(
        "scenario-2 run: U = {}, {} d_min-conformant IRQs\n",
        percent(config.load),
        config.irqs
    );

    println!("runtime parameters (paper, ARM926ej-s @ 200 MHz, gcc -O1):");
    println!(
        "  C_Mon   {:>6} cycles   (paper: 128 instructions)",
        report.monitor_cycles
    );
    println!(
        "  C_sched {:>6} cycles   (paper: 877 instructions)",
        report.sched_cycles
    );
    println!(
        "  C_ctx   {:>6} cycles   (paper: ~5000 instr invalidation + ~5000 cyc writeback)",
        report.context_switch_cycles
    );

    println!("\nmonitor data footprint (32-bit words, cf. paper's 28 B):");
    println!("  l = 1: {:>3} B", report.monitor_state_bytes_l1);
    println!("  l = 5: {:>3} B", report.monitor_state_bytes_l5);

    println!("\ncontext switches over the identical arrival trace:");
    println!("  baseline : {:>8}", report.baseline_context_switches);
    println!(
        "  monitored: {:>8}  ({} interposed windows x 2 switches)",
        report.monitored_context_switches, report.interposed_windows
    );
    println!(
        "  increase : {:>8}  (paper: ~10 %)",
        percent(report.context_switch_increase)
    );

    println!("\nhypervisor time over the run:");
    println!("  baseline : {:>12}", us(report.baseline_hypervisor_time));
    println!("  monitored: {:>12}", us(report.monitored_hypervisor_time));

    println!(
        "\nnote: the paper's code-size bytes (1120 B total) are artifacts of \
         its C implementation; the architectural claims checked here are the \
         cycle-level costs, the tens-of-bytes monitor state and the moderate \
         context-switch increase."
    );
}
