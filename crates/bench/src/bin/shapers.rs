//! Related-work comparison: the paper's δ⁻ activation monitor against
//! token-bucket interrupt throttling (Regehr & Duongsaa, the paper's
//! reference \[11\]) as the admission policy of the modified top handler,
//! over an identical bursty CAN-style workload.
//!
//! Usage: `cargo run --release -p rthv-experiments --bin shapers`

use rthv::scenarios::{run_shaper_comparison, ShaperComparisonConfig};
use rthv_experiments::{percent, us};

fn main() {
    let config = ShaperComparisonConfig::default();
    println!(
        "Shaper comparison over {} bursty IRQs (shaping interval {})\n",
        config.irqs,
        us(config.interval)
    );
    println!(
        "{:<36} {:>11} {:>9} {:>26}",
        "shaper", "mean", "delayed", "guaranteed interference"
    );
    for row in run_shaper_comparison(&config) {
        println!(
            "{:<36} {:>11} {:>9} {:>22}/cyc",
            row.name,
            us(row.mean_latency),
            percent(row.delayed_fraction),
            us(row.guaranteed_interference),
        );
    }
    println!(
        "\nBuckets absorb bursts (lower mean, fewer delayed) but every unit \
         of burst capacity adds a full C'_BH to the interference every other \
         partition must be certified against. The paper's δ⁻ monitor keeps \
         the guarantee minimal and spills burst tails into delayed handling \
         — the safety-first end of the trade-off."
    );
}
