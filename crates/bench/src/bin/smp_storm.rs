//! Multi-core platform storm campaign: seeded traffic/fault scenarios
//! driven through the [`MultiMachine`] platform across core counts
//! {1, 2, 4} and two placement arms — hierarchical affinity versus
//! round-robin routing — with the budgeted δ⁻-admitted failover path,
//! plus a failover-disabled ablation per scenario, every admitted stream
//! replayed through the per-victim-core Eq. 13–16 oracle and the result
//! written as a deterministic JSON report.
//!
//! Usage: `cargo run --release -p rthv-experiments --bin smp_storm
//! [output-path] [scenario-count] [base-seed] [--smoke]
//! [--journal <jsonl>] [--resume <jsonl>] [--abort-after <n>]
//! [--metrics <json>]`
//! (defaults: `STORM_smp.json`, 5 scenarios, seed `0x5317_2014`).
//!
//! `--smoke` swaps the 1 s horizon for the CI-sized 250 ms one; families
//! and verdict are unchanged. The event engine comes from `RTHV_ENGINE`
//! (`heap`, the default, or `wheel`) and the platform stepping mode from
//! `RTHV_PARALLEL` (`off`, the default sequential walk, or `on` for
//! scoped-thread parallel stepping); an unknown value of either is a
//! typed, loud failure before any scenario runs, and neither the engine
//! nor the stepping mode ever leaks into the report bytes — parallel
//! runs are byte-identical to sequential ones.
//!
//! With `--journal`, each completed scenario is appended to a JSONL
//! journal the moment it finishes; with `--resume`, scenarios already
//! present in a journal (matched by label *and* seed) are loaded instead
//! of re-executed. Every scenario is pure in `(config, seed)` and resumed
//! report fragments are spliced verbatim, so a resumed report is
//! byte-identical to an uninterrupted run. `--abort-after <n>` is the
//! crash-test hook: the process dies via `abort()` right after the n-th
//! journal append of this run is flushed.
//!
//! With `--metrics <json>`, the first scenario's first enabled case is
//! re-run with per-core flight recorders attached and the multi-core
//! snapshot (per-core gauges, IPI and failover counters) is written to
//! the given path. Metrics are pure observation, so the report is
//! unchanged — the binary asserts the observed record equals the
//! report's — and the snapshot file is deterministic.
//!
//! The process exits non-zero unless the report's three-part verdict
//! passes: zero monitored per-victim-core violations (with conservation),
//! victim streams byte-identical across core counts on crash-free
//! scenarios, and every storm-plus-crash ablation demonstrably broken.
//!
//! [`MultiMachine`]: rthv::MultiMachine

use std::process::ExitCode;

use rthv::obs::ObsConfig;
use rthv::{EngineChoice, MultiMachine, StepChoice};
use rthv_experiments::{parse_journal_flags, read_complete_lines, Journal, SweepRunner};
use rthv_faults::{
    assemble_smp_report, build_platform, run_smp_scenario, smp_report_passes, smp_scenarios,
    SmpArm, SmpConfig, SmpRecord,
};

fn main() -> ExitCode {
    let (options, positional) = match parse_journal_flags(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("smp_storm: {message}");
            return ExitCode::FAILURE;
        }
    };
    let mut smoke = false;
    let positional: Vec<String> = positional
        .into_iter()
        .filter(|arg| {
            let is_smoke = arg == "--smoke";
            smoke |= is_smoke;
            !is_smoke
        })
        .collect();
    let mut positional = positional.into_iter();
    let path = positional
        .next()
        .unwrap_or_else(|| "STORM_smp.json".to_string());
    let count: u32 = positional
        .next()
        .map(|s| s.parse().expect("scenario count must be a number"))
        .unwrap_or(5);
    let base_seed: u64 = positional
        .next()
        .map(|s| s.parse().expect("base seed must be a number"))
        .unwrap_or(0x5317_2014);

    // Fail loudly on a bad engine, stepping mode or platform before any
    // scenario burns cycles: resolve RTHV_ENGINE and RTHV_PARALLEL and
    // validate the largest platform.
    let engine = match EngineChoice::Auto.try_resolve() {
        Ok(kind) => format!("{kind:?}").to_lowercase(),
        Err(error) => {
            eprintln!("smp_storm: {error}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(error) = StepChoice::Auto.try_resolve() {
        eprintln!("smp_storm: {error}");
        return ExitCode::FAILURE;
    }
    let config = if smoke {
        SmpConfig::smoke()
    } else {
        SmpConfig::standard()
    };
    let probe = build_platform(&config, SmpArm::HierAffinity, config.max_cores(), true)
        .and_then(|platform| MultiMachine::new(platform, &[]).map_err(Into::into));
    if let Err(error) = probe {
        eprintln!("smp_storm: {error}");
        return ExitCode::FAILURE;
    }
    let scenarios = smp_scenarios(count, base_seed, config.horizon);

    // Completed records from the resume journal, aligned to the scenario
    // list by (label, seed) so a journal from a different seed or count
    // silently resumes nothing rather than corrupting the report.
    let resumed: Vec<Option<SmpRecord>> = match &options.resume {
        Some(journal_path) => {
            let lines = read_complete_lines(journal_path).expect("read resume journal");
            let mut completed = Vec::new();
            for line in &lines {
                match SmpRecord::parse_journal_line(line) {
                    Some(record) => completed.push(record),
                    None => eprintln!("smp_storm: ignoring corrupt journal line"),
                }
            }
            scenarios
                .iter()
                .map(|scenario| {
                    completed
                        .iter()
                        .find(|r| r.label == scenario.label() && r.seed == scenario.fault.seed)
                        .cloned()
                })
                .collect()
        }
        None => scenarios.iter().map(|_| None).collect(),
    };
    let journal = options
        .journal
        .as_deref()
        .map(|p| Journal::open_append(p).expect("open journal"));
    let abort_after = options.abort_after;

    let runner = SweepRunner::available();
    let records = runner.run(&scenarios, |index, scenario| {
        if let Some(done) = &resumed[index] {
            return done.clone();
        }
        let outcome = run_smp_scenario(&config, scenario, None)
            .expect("platform was validated before the sweep");
        let record = outcome.record();
        if let Some(journal) = &journal {
            let appended = journal
                .append(&record.to_journal_line())
                .expect("journal append");
            if abort_after.is_some_and(|limit| appended >= limit) {
                // Crash-test hook: die without unwinding or cleanup —
                // exactly the failure the resume path must survive.
                eprintln!("smp_storm: --abort-after {appended} reached, aborting");
                std::process::abort();
            }
        }
        record
    });
    let report = assemble_smp_report(&config, base_seed, &records);

    let resumed_count = resumed.iter().filter(|r| r.is_some()).count();
    if (runner.threads() > 1 || resumed_count > 0) && count <= 8 {
        // Cheap campaigns double as a determinism self-check: a fresh
        // sequential re-execution must reproduce the assembled report,
        // including every record taken from the resume journal.
        let reference = SweepRunner::sequential().run(&scenarios, |_, scenario| {
            run_smp_scenario(&config, scenario, None)
                .expect("platform was validated before the sweep")
                .record()
        });
        assert_eq!(
            assemble_smp_report(&config, base_seed, &reference),
            report,
            "parallel/resumed smp report diverged from sequential re-execution"
        );
    }

    std::fs::write(&path, &report).expect("write smp report");

    if let Some(metrics_path) = &options.metrics {
        // Observability snapshot of the first scenario's first enabled
        // case: re-run with per-core hubs attached. Metrics never change
        // outcomes, so the report above is untouched; the assert pins it.
        let observed = run_smp_scenario(&config, &scenarios[0], Some(ObsConfig::default()))
            .expect("platform was validated before the sweep");
        assert_eq!(
            observed.record(),
            records[0],
            "metrics instrumentation changed a scenario outcome"
        );
        let snapshot = observed
            .snapshot
            .expect("metrics were requested, a snapshot must exist");
        std::fs::write(metrics_path, snapshot).expect("write metrics snapshot");
        eprintln!("smp_storm: metrics snapshot -> {}", metrics_path.display());
    }

    let enabled_violations: u64 = records.iter().map(|r| r.enabled_violations).sum();
    let identity = records.iter().filter(|r| r.identity_family).count();
    let identity_held = records
        .iter()
        .filter(|r| r.identity_family && r.identity_ok)
        .count();
    let breakage = records.iter().filter(|r| r.breakage_family).count();
    let broken = records
        .iter()
        .filter(|r| r.breakage_family && r.ablation_violations > 0)
        .count();
    let sheds: u64 = records.iter().map(|r| r.sheds).sum();
    let lost: u64 = records.iter().map(|r| r.lost).sum();
    eprintln!(
        "smp_storm: {} scenarios ({} resumed) on {} thread(s), engine {engine} -> {path}",
        records.len(),
        resumed_count,
        runner.threads(),
    );
    eprintln!("  monitored violations:       {enabled_violations}");
    eprintln!("  victim identity held:       {identity_held}/{identity} crash-free scenarios");
    eprintln!("  ablation broken:            {broken}/{breakage} storm+crash scenarios");
    eprintln!("  typed sheds / lost:         {sheds} / {lost}");

    if smp_report_passes(&report) {
        eprintln!(
            "PASS: budgeted failover holds every per-core bound, the unbudgeted ablation \
             demonstrably does not"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("FAIL: see the verdict block in {path}");
        ExitCode::FAILURE
    }
}
