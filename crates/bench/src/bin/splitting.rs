//! The Section-1 motivation, quantified: shrinking TDMA latencies by
//! splitting the subscriber's slot across the frame costs context-switch
//! overhead; interposition beats even fine splits on both axes.
//!
//! Usage: `cargo run --release -p rthv-experiments --bin splitting`

use rthv::scenarios::{run_splitting, SplittingConfig};
use rthv_experiments::{percent, us};

fn main() {
    let config = SplittingConfig::default();
    println!(
        "Slot splitting vs interposition ({} conformant IRQs, lambda = {})\n",
        config.irqs,
        us(config.lambda)
    );
    println!(
        "{:<36} {:>11} {:>11} {:>10} {:>12}",
        "configuration", "mean", "max", "switches", "hv overhead"
    );
    for row in run_splitting(&config) {
        println!(
            "{:<36} {:>11} {:>11} {:>10} {:>12}",
            row.name,
            us(row.mean_latency),
            us(row.max_latency),
            row.context_switches,
            percent(row.hypervisor_fraction),
        );
    }
    println!(
        "\nThis is the paper's Section-1 argument as numbers: splitting the \
         slot buys latency linearly but pays context switches linearly too, \
         while monitored interposition reaches a lower latency than any \
         practical split at a fraction of the overhead."
    );
}
