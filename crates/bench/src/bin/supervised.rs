//! Supervised fault-injection campaign: every fault family on a composite
//! fault-then-calm plan, run monitored-only and monitored + runtime health
//! supervision, every run replayed through the temporal-independence oracle
//! and the supervised arm additionally through the quarantine-soundness
//! oracle, results written as a deterministic JSON report.
//!
//! Usage: `cargo run --release -p rthv-experiments --bin supervised
//! [output-path] [base-seed]
//! [--journal <jsonl>] [--resume <jsonl>] [--abort-after <n>]
//! [--metrics <json>]`
//! (defaults: `CAMPAIGN_supervised.json`, seed `0xFA2014`).
//!
//! With `--metrics <json>`, the first scenario is re-run with health
//! supervision *and* the flight-recorder observability layer enabled, and
//! its deterministic metrics snapshots (monitored and unmonitored) —
//! including the recorded health transitions — are written to the given
//! path. Metrics are pure observation; the campaign report is unchanged.
//!
//! With `--journal`, each completed scenario is appended to a JSONL journal
//! the moment it finishes; with `--resume`, scenarios already present in a
//! journal (matched by label *and* seed) are loaded instead of re-executed
//! — byte-identical to an uninterrupted run, since every scenario is pure
//! in `(config, seed)`. `--abort-after <n>` aborts the process right after
//! the n-th journal append of this run is flushed (crash-test hook).
//!
//! Scenarios fan across host cores with [`SweepRunner`]; the assembled
//! report is verified byte-identical to a sequential re-execution (which
//! also cross-checks any resumed outcomes) before it is written. The
//! process exits non-zero on any acceptance failure: an oracle violation
//! in either arm, a quarantine on the nominal ablation, a storm/flood
//! scenario that never quarantines or never recovers, or a storm/flood
//! scenario where supervision fails to *strictly* reduce the well-behaved
//! victims' worst-case service loss.

use std::process::ExitCode;

use rthv_experiments::{
    parse_journal_flags, read_complete_lines, write_scenario_observation, Journal, SweepRunner,
};
use rthv_faults::{
    idle_reference, run_scenario_with_metrics, run_supervised_scenario, supervised_scenarios,
    SupervisedCampaignConfig, SupervisedCampaignReport, SupervisedScenarioOutcome,
};

fn main() -> ExitCode {
    let (options, positional) = match parse_journal_flags(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("supervised: {message}");
            return ExitCode::FAILURE;
        }
    };
    let mut positional = positional.into_iter();
    let path = positional
        .next()
        .unwrap_or_else(|| "CAMPAIGN_supervised.json".to_string());
    let base_seed: u64 = positional
        .next()
        .map(|s| s.parse().expect("base seed must be a number"))
        .unwrap_or(0xFA_2014);

    let mut config = SupervisedCampaignConfig::default();
    config.base.scenarios = supervised_scenarios(base_seed);
    let idle = match idle_reference(&config.base) {
        Ok(idle) => idle,
        Err(error) => {
            eprintln!("supervised: {error}");
            return ExitCode::FAILURE;
        }
    };

    // Completed outcomes from the resume journal, aligned by (label, seed).
    let resumed: Vec<Option<SupervisedScenarioOutcome>> = match &options.resume {
        Some(journal_path) => {
            let lines = read_complete_lines(journal_path).expect("read resume journal");
            let mut completed = Vec::new();
            for line in &lines {
                match SupervisedScenarioOutcome::from_journal_json(line) {
                    Ok(outcome) => completed.push(outcome),
                    Err(error) => eprintln!("supervised: ignoring corrupt journal line: {error}"),
                }
            }
            config
                .base
                .scenarios
                .iter()
                .map(|scenario| {
                    completed
                        .iter()
                        .find(|o| o.label == scenario.label() && o.seed == scenario.seed)
                        .cloned()
                })
                .collect()
        }
        None => config.base.scenarios.iter().map(|_| None).collect(),
    };
    let journal = options
        .journal
        .as_deref()
        .map(|p| Journal::open_append(p).expect("open journal"));
    let abort_after = options.abort_after;

    let runner = SweepRunner::available();
    let outcomes = runner.run(&config.base.scenarios, |index, scenario| {
        if let Some(done) = &resumed[index] {
            return done.clone();
        }
        let outcome =
            run_supervised_scenario(&config, &idle, scenario).expect("validated campaign config");
        if let Some(journal) = &journal {
            let appended = journal
                .append(&outcome.to_journal_json())
                .expect("journal append");
            if abort_after.is_some_and(|limit| appended >= limit) {
                eprintln!("supervised: --abort-after {appended} reached, aborting");
                std::process::abort();
            }
        }
        outcome
    });
    let report = SupervisedCampaignReport::from_outcomes(&config, outcomes);

    if runner.threads() > 1 || resumed.iter().any(Option::is_some) {
        // The campaign is small enough that a sequential re-execution is
        // cheap — it doubles as the cross-thread determinism self-check and
        // cross-checks every outcome taken from the resume journal.
        let reference = SweepRunner::sequential().run(&config.base.scenarios, |_, scenario| {
            run_supervised_scenario(&config, &idle, scenario).expect("validated campaign config")
        });
        assert_eq!(
            SupervisedCampaignReport::from_outcomes(&config, reference).to_json(),
            report.to_json(),
            "parallel/resumed supervised campaign diverged from sequential re-execution"
        );
    }

    let json = report.to_json();
    std::fs::write(&path, &json).expect("write supervised campaign report");

    if let Some(metrics_path) = &options.metrics {
        // Observability snapshot of the first scenario under supervision:
        // the recorder picks up quarantine/recovery health transitions
        // alongside the admission stream.
        let scenario = &config.base.scenarios[0];
        let observation =
            run_scenario_with_metrics(&config.base, &idle, scenario, Some(config.policy))
                .expect("validated campaign config");
        write_scenario_observation(metrics_path, &observation).expect("write metrics snapshot");
        eprintln!("supervised: metrics snapshot -> {}", metrics_path.display());
    }

    eprintln!(
        "supervised campaign: {} scenarios ({} resumed) on {} thread(s) -> {path}",
        report.scenarios.len(),
        resumed.iter().filter(|r| r.is_some()).count(),
        runner.threads(),
    );
    eprintln!("  total violations:     {}", report.total_violations());
    eprintln!("  nominal quarantines:  {}", report.nominal_quarantines());
    for s in &report.scenarios {
        eprintln!(
            "  {:<22} quarantines {:>2}  recoveries {:>2}  demoted {:>5}  loss {:>9} ns (baseline {:>9} ns)",
            s.label,
            s.supervised.quarantines,
            s.supervised.recoveries,
            s.supervised.demoted_arrivals,
            s.supervised.mode.worst_victim_loss.as_nanos(),
            s.baseline.worst_victim_loss.as_nanos(),
        );
    }

    let failures = report.acceptance_failures();
    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        return ExitCode::FAILURE;
    }
    eprintln!("PASS: supervision quarantines faults, recovers, and strictly improves victims");
    ExitCode::SUCCESS
}
