//! Supervised fault-injection campaign: every fault family on a composite
//! fault-then-calm plan, run monitored-only and monitored + runtime health
//! supervision, every run replayed through the temporal-independence oracle
//! and the supervised arm additionally through the quarantine-soundness
//! oracle, results written as a deterministic JSON report.
//!
//! Usage: `cargo run --release -p rthv-experiments --bin supervised
//! [output-path] [base-seed]` (defaults: `CAMPAIGN_supervised.json`,
//! seed `0xFA2014`).
//!
//! Scenarios fan across host cores with [`SweepRunner`]; the assembled
//! report is verified byte-identical to a sequential pass before it is
//! written. The process exits non-zero on any acceptance failure: an
//! oracle violation in either arm, a quarantine on the nominal ablation, a
//! storm/flood scenario that never quarantines or never recovers, or a
//! storm/flood scenario where supervision fails to *strictly* reduce the
//! well-behaved victims' worst-case service loss.

use std::process::ExitCode;

use rthv_experiments::SweepRunner;
use rthv_faults::{
    idle_reference, run_supervised_scenario, supervised_scenarios, SupervisedCampaignConfig,
    SupervisedCampaignReport,
};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .unwrap_or_else(|| "CAMPAIGN_supervised.json".to_string());
    let base_seed: u64 = args
        .next()
        .map(|s| s.parse().expect("base seed must be a number"))
        .unwrap_or(0xFA_2014);

    let mut config = SupervisedCampaignConfig::default();
    config.base.scenarios = supervised_scenarios(base_seed);
    let idle = idle_reference(&config.base);

    let runner = SweepRunner::available();
    let outcomes = runner.run(&config.base.scenarios, |_, scenario| {
        run_supervised_scenario(&config, &idle, scenario)
    });
    let report = SupervisedCampaignReport::from_outcomes(&config, outcomes);

    if runner.threads() > 1 {
        // The campaign is small enough that a sequential replay is cheap —
        // it doubles as the cross-thread determinism self-check.
        let reference = SweepRunner::sequential().run(&config.base.scenarios, |_, scenario| {
            run_supervised_scenario(&config, &idle, scenario)
        });
        assert_eq!(
            SupervisedCampaignReport::from_outcomes(&config, reference).to_json(),
            report.to_json(),
            "parallel supervised campaign diverged from sequential"
        );
    }

    let json = report.to_json();
    std::fs::write(&path, &json).expect("write supervised campaign report");

    eprintln!(
        "supervised campaign: {} scenarios on {} thread(s) -> {path}",
        report.scenarios.len(),
        runner.threads(),
    );
    eprintln!("  total violations:     {}", report.total_violations());
    eprintln!("  nominal quarantines:  {}", report.nominal_quarantines());
    for s in &report.scenarios {
        eprintln!(
            "  {:<22} quarantines {:>2}  recoveries {:>2}  demoted {:>5}  loss {:>9} ns (baseline {:>9} ns)",
            s.label,
            s.supervised.quarantines,
            s.supervised.recoveries,
            s.supervised.demoted_arrivals,
            s.supervised.mode.worst_victim_loss.as_nanos(),
            s.baseline.worst_victim_loss.as_nanos(),
        );
    }

    let failures = report.acceptance_failures();
    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        return ExitCode::FAILURE;
    }
    eprintln!("PASS: supervision quarantines faults, recovers, and strictly improves victims");
    ExitCode::SUCCESS
}
