//! d_min sensitivity sweep: for a range of monitoring distances, the
//! analytic latency bounds, the simulated averages, the context-switch
//! overhead, and the guaranteed victim interference — the design-space
//! table an integrator would consult when picking d_min.
//!
//! Usage: `cargo run --release -p rthv-experiments --bin sweep [--csv]`

use rthv::analysis::{
    baseline_irq_wcrt, interposed_irq_wcrt, EventModel, IrqTask, TdmaSlot,
};
use rthv::monitor::{interference_bound_dmin, DeltaFunction};
use rthv::stats::csv_row;
use rthv::time::{Duration, Instant};
use rthv::workload::ExponentialArrivals;
use rthv::{IrqHandlingMode, IrqSourceId, Machine, PaperSetup};
use rthv_experiments::{percent, us};

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let setup = PaperSetup::default();
    let costs = setup.costs;
    let tdma = TdmaSlot {
        cycle: setup.tdma_cycle(),
        slot: setup.app_slot - costs.context_switch,
    };
    let irqs = 2_000;

    if csv {
        print!(
            "{}",
            csv_row([
                "dmin_us",
                "baseline_bound_us",
                "interposed_bound_us",
                "sim_mean_us",
                "sim_max_us",
                "ctx_increase_pct",
                "victim_interference_pct",
            ])
        );
    } else {
        println!("d_min design-space sweep ({irqs} conformant IRQs per point)\n");
        println!(
            "{:>10} {:>15} {:>17} {:>11} {:>11} {:>9} {:>13}",
            "d_min", "baseline bound", "interposed bound", "sim mean", "sim max",
            "ctx +", "victim load"
        );
    }

    for dmin_us in [500u64, 1_000, 2_000, 3_000, 5_000, 8_000, 13_000] {
        let dmin = Duration::from_micros(dmin_us);
        let task = IrqTask {
            model: EventModel::sporadic(dmin),
            top_cost: costs.top_handler,
            bottom_cost: setup.bottom_cost,
        };
        let baseline_bound = baseline_irq_wcrt(&task, tdma, &[])
            .expect("paper setup converges")
            .wcrt;
        let interposed_bound = interposed_irq_wcrt(
            &task.with_effective_costs(
                costs.monitor_check,
                costs.sched_manip,
                costs.context_switch,
            ),
            &[],
        )
        .expect("paper setup converges")
        .wcrt;

        // Simulation at this d_min.
        let run = |mode: IrqHandlingMode, monitored: bool| {
            let monitor =
                monitored.then(|| DeltaFunction::from_dmin(dmin).expect("positive"));
            let mut machine =
                Machine::new(setup.config(mode, monitor)).expect("valid setup");
            let trace = ExponentialArrivals::new(dmin, 77)
                .with_min_distance(dmin)
                .generate(irqs, Instant::ZERO);
            machine
                .schedule_irq_trace(IrqSourceId::new(0), trace.as_slice())
                .expect("future");
            let last = *trace.as_slice().last().expect("non-empty");
            assert!(machine.run_until_complete(last + setup.tdma_cycle() * 100));
            machine.finish()
        };
        let baseline_run = run(IrqHandlingMode::Baseline, false);
        let monitored_run = run(IrqHandlingMode::Interposed, true);
        let sim_mean = monitored_run.recorder.mean_latency().expect("completions");
        let sim_max = monitored_run.recorder.max_latency().expect("completions");
        let ctx_increase = (monitored_run.counters.context_switches as f64
            - baseline_run.counters.context_switches as f64)
            / baseline_run.counters.context_switches as f64;

        // Guaranteed long-term interference on any victim.
        let window = Duration::from_secs(1);
        let victim = interference_bound_dmin(
            window,
            dmin,
            costs.effective_bottom_cost(setup.bottom_cost),
        );
        let victim_load = victim.as_nanos() as f64 / window.as_nanos() as f64;

        if csv {
            print!(
                "{}",
                csv_row([
                    dmin_us.to_string(),
                    baseline_bound.as_micros().to_string(),
                    interposed_bound.as_micros().to_string(),
                    sim_mean.as_micros().to_string(),
                    sim_max.as_micros().to_string(),
                    format!("{:.2}", ctx_increase * 100.0),
                    format!("{:.2}", victim_load * 100.0),
                ])
            );
        } else {
            println!(
                "{:>10} {:>15} {:>17} {:>11} {:>11} {:>9} {:>13}",
                us(dmin),
                us(baseline_bound),
                us(interposed_bound),
                us(sim_mean),
                us(sim_max),
                percent(ctx_increase),
                percent(victim_load),
            );
        }
    }

    if !csv {
        println!(
            "\nShrinking d_min buys nothing in worst-case latency (the \
             interposed bound is cost-dominated) but inflates both the \
             context-switch overhead and the guaranteed victim interference \
             linearly — pick the largest d_min the IRQ source tolerates."
        );
    }
}
