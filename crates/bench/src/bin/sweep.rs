//! d_min sensitivity sweep: for a range of monitoring distances, the
//! analytic latency bounds, the simulated averages, the context-switch
//! overhead, and the guaranteed victim interference — the design-space
//! table an integrator would consult when picking d_min.
//!
//! Usage: `cargo run --release -p rthv-experiments --bin sweep
//! [--csv] [--threads N]`
//!
//! `--threads N` fans the sweep points over N worker threads (default: one
//! per core). The output is bit-identical for every thread count — each
//! point owns its seed and rows are emitted in point order.

use rthv_experiments::sweep::{compute_rows, render_csv, render_table, SweepConfig};
use rthv_experiments::SweepRunner;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = args.iter().any(|a| a == "--csv");
    let runner = match args.iter().position(|a| a == "--threads") {
        Some(i) => SweepRunner::new(
            args.get(i + 1)
                .and_then(|n| n.parse().ok())
                .expect("--threads takes a positive integer"),
        ),
        None => SweepRunner::available(),
    };

    let config = SweepConfig::default();
    let rows = compute_rows(&config, &runner);
    if csv {
        print!("{}", render_csv(&rows));
    } else {
        print!("{}", render_table(&rows, config.irqs));
    }
}
