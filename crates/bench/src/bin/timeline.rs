//! Prints ASCII execution timelines of the paper's setup — baseline vs
//! interposed, same arrivals — so the mechanism is visible at a glance.
//!
//! Usage: `cargo run --release -p rthv-experiments --bin timeline`

use rthv::monitor::DeltaFunction;
use rthv::time::{Duration, Instant};
use rthv::{render_timeline, IrqHandlingMode, IrqSourceId, Machine, PaperSetup};

fn main() {
    let setup = PaperSetup::default();
    let arrivals = [500u64, 3_700, 8_200, 13_100, 17_800];

    for mode in [IrqHandlingMode::Baseline, IrqHandlingMode::Interposed] {
        let monitor = (mode == IrqHandlingMode::Interposed)
            .then(|| DeltaFunction::from_dmin(Duration::from_millis(3)).expect("valid"));
        let mut machine = Machine::new(setup.config(mode, monitor)).expect("valid setup");
        machine.enable_service_trace();
        for &at in &arrivals {
            machine
                .schedule_irq(IrqSourceId::new(0), Instant::from_micros(at))
                .expect("future");
        }
        assert!(machine.run_until_complete(Instant::from_micros(100_000)));
        machine.run_until(Instant::from_micros(28_000));
        let schedule = machine.schedule().clone();
        let report = machine.finish();

        println!("=== {mode} ===");
        print!(
            "{}",
            render_timeline(
                &report,
                &schedule,
                Instant::ZERO,
                Instant::from_micros(28_000),
                Duration::from_micros(200),
            )
        );
        println!(
            "mean latency {}\n",
            report.recorder.mean_latency().expect("completions")
        );
    }
    println!(
        "legend: A/B/C partition user code, a/b/c bottom handlers, # hypervisor,\n\
         ~ interposed window, ^ IRQ arrival, v completion (x = both in one tick)"
    );
}
