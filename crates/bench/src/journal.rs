//! Crash-safe scenario journals for resumable campaign runs.
//!
//! A journal is a JSONL file with one line per completed scenario, appended
//! atomically (single `write` + flush under a mutex) as each scenario
//! finishes. If the process dies mid-campaign — panic, OOM kill, power cut
//! — the journal holds every scenario completed so far, with at most one
//! torn trailing line. A later run started with `--resume <journal>` loads
//! the completed outcomes and re-executes only the missing scenarios;
//! because every scenario is pure in `(config, seed)`, the resumed report
//! is byte-identical to an uninterrupted run.
//!
//! Line payloads are the lossless journal codecs from `rthv-faults`
//! (`ScenarioOutcome::to_journal_json` and friends); this module only deals
//! in whole lines and stays generic over what they encode.

use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// An append-only journal file shared by the sweep's worker threads.
#[derive(Debug)]
pub struct Journal {
    inner: Mutex<JournalInner>,
}

#[derive(Debug)]
struct JournalInner {
    file: File,
    appended: u64,
}

impl Journal {
    /// Opens `path` for appending, creating it (and its parent directory)
    /// if missing. Existing content is preserved so a resumed run can keep
    /// journaling into the same file.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating the directory or opening the file.
    pub fn open_append(path: &Path) -> io::Result<Journal> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            inner: Mutex::new(JournalInner { file, appended: 0 }),
        })
    }

    /// Appends one journal line (a newline is added) and flushes it, then
    /// returns how many lines **this process** has appended so far. The
    /// payload and its newline go down in a single `write` call, so a crash
    /// can tear at most the line being written — never reorder or
    /// interleave lines.
    ///
    /// # Errors
    ///
    /// Any I/O error from the write or flush.
    pub fn append(&self, line: &str) -> io::Result<u64> {
        let mut buffer = String::with_capacity(line.len() + 1);
        buffer.push_str(line);
        buffer.push('\n');
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.file.write_all(buffer.as_bytes())?;
        inner.file.flush()?;
        inner.appended += 1;
        Ok(inner.appended)
    }
}

/// Reads every *complete* line of a journal, in order. A torn trailing
/// line — the mark of a crash mid-append — is silently dropped: it belongs
/// to a scenario that never finished, so the resume path re-runs it.
/// Interior lines are returned verbatim; validating their payloads is the
/// caller's (typed, per-line) job.
///
/// # Errors
///
/// Any I/O error from reading the file, including it not existing — a
/// missing resume journal is a user error, not an empty campaign.
pub fn read_complete_lines(path: &Path) -> io::Result<Vec<String>> {
    let mut text = String::new();
    File::open(path)?.read_to_string(&mut text)?;
    let mut lines: Vec<String> = Vec::new();
    let mut rest = text.as_str();
    while let Some(newline) = rest.find('\n') {
        lines.push(rest[..newline].to_string());
        rest = &rest[newline + 1..];
    }
    // `rest` now holds any unterminated tail: drop it.
    Ok(lines)
}

/// Journal-related command-line options shared by the campaign binaries.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct JournalOptions {
    /// `--journal <path>`: append each completed scenario to this file.
    pub journal: Option<PathBuf>,
    /// `--resume <path>`: load completed scenarios from this journal and
    /// skip re-running them.
    pub resume: Option<PathBuf>,
    /// `--abort-after <n>`: crash-test hook — abort the process right after
    /// the n-th journal append of this run has been flushed.
    pub abort_after: Option<u64>,
    /// `--metrics <path>`: run with the flight-recorder observability layer
    /// enabled and write the deterministic metrics snapshot JSON here.
    pub metrics: Option<PathBuf>,
}

/// Splits `--journal`, `--resume`, `--abort-after` and `--metrics` (each
/// taking one value) out of an argument list, returning the options and the
/// remaining positional arguments in their original order.
///
/// # Errors
///
/// A human-readable message when a flag is missing its value, repeated, or
/// `--abort-after` is not a number.
pub fn parse_journal_flags(
    args: impl Iterator<Item = String>,
) -> Result<(JournalOptions, Vec<String>), String> {
    let mut options = JournalOptions::default();
    let mut positional = Vec::new();
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--journal" | "--resume" | "--abort-after" | "--metrics" => {
                let value = args
                    .next()
                    .ok_or_else(|| format!("{arg} requires a value"))?;
                let slot_taken = match arg.as_str() {
                    "--journal" => options.journal.replace(PathBuf::from(value)).is_some(),
                    "--resume" => options.resume.replace(PathBuf::from(value)).is_some(),
                    "--metrics" => options.metrics.replace(PathBuf::from(value)).is_some(),
                    _ => {
                        let n = value
                            .parse::<u64>()
                            .map_err(|e| format!("--abort-after expects a number: {e}"))?;
                        options.abort_after.replace(n).is_some()
                    }
                };
                if slot_taken {
                    return Err(format!("{arg} given twice"));
                }
            }
            _ => positional.push(arg),
        }
    }
    Ok((options, positional))
}

/// Writes a [`ScenarioObservation`] — one scenario's monitored and
/// unmonitored metrics snapshots — as a single deterministic JSON file. The
/// embedded snapshots come out of the observability hub byte-identical
/// across runs, so two invocations with the same campaign arguments produce
/// byte-identical files; the `check.sh` smoke pins this with `cmp`.
///
/// # Errors
///
/// Any I/O error from writing the file.
pub fn write_scenario_observation(
    path: &Path,
    observation: &rthv_faults::ScenarioObservation,
) -> io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"scenario\": \"{}\",\n",
        observation.outcome.label
    ));
    out.push_str(&format!("  \"seed\": {},\n", observation.outcome.seed));
    out.push_str("  \"monitored\": ");
    out.push_str(observation.monitored_obs.trim_end());
    out.push_str(",\n  \"unmonitored\": ");
    out.push_str(observation.unmonitored_obs.trim_end());
    out.push_str("\n}\n");
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("rthv-journal-test-{}-{name}", std::process::id()));
        path
    }

    #[test]
    fn append_then_read_round_trips_in_order() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::open_append(&path).expect("open");
        assert_eq!(journal.append("{\"a\":1}").expect("append"), 1);
        assert_eq!(journal.append("{\"b\":2}").expect("append"), 2);
        drop(journal);
        assert_eq!(
            read_complete_lines(&path).expect("read"),
            vec!["{\"a\":1}".to_string(), "{\"b\":2}".to_string()]
        );
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn torn_trailing_line_is_dropped_but_interior_lines_survive() {
        let path = temp_path("torn");
        std::fs::write(&path, "{\"a\":1}\n{\"b\":2}\n{\"torn\":").expect("write");
        assert_eq!(
            read_complete_lines(&path).expect("read"),
            vec!["{\"a\":1}".to_string(), "{\"b\":2}".to_string()]
        );
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn reopening_appends_after_existing_lines() {
        let path = temp_path("reopen");
        let _ = std::fs::remove_file(&path);
        Journal::open_append(&path)
            .expect("open")
            .append("first")
            .expect("append");
        let second = Journal::open_append(&path).expect("reopen");
        // Per-process count restarts; file content accumulates.
        assert_eq!(second.append("second").expect("append"), 1);
        assert_eq!(
            read_complete_lines(&path).expect("read"),
            vec!["first".to_string(), "second".to_string()]
        );
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn missing_journal_is_an_error() {
        assert!(read_complete_lines(&temp_path("missing-never-created")).is_err());
    }

    #[test]
    fn flag_parsing_extracts_options_and_keeps_positionals() {
        let args = [
            "out.json",
            "--journal",
            "j.jsonl",
            "7",
            "--resume",
            "old.jsonl",
            "--abort-after",
            "3",
            "42",
            "--metrics",
            "obs.json",
        ]
        .into_iter()
        .map(String::from);
        let (options, positional) = parse_journal_flags(args).expect("valid");
        assert_eq!(options.journal, Some(PathBuf::from("j.jsonl")));
        assert_eq!(options.resume, Some(PathBuf::from("old.jsonl")));
        assert_eq!(options.abort_after, Some(3));
        assert_eq!(options.metrics, Some(PathBuf::from("obs.json")));
        assert_eq!(positional, vec!["out.json", "7", "42"]);
    }

    #[test]
    fn flag_parsing_rejects_malformed_input() {
        for bad in [
            vec!["--journal"],
            vec!["--abort-after", "three"],
            vec!["--resume", "a", "--resume", "b"],
            vec!["--metrics"],
            vec!["--metrics", "a.json", "--metrics", "b.json"],
        ] {
            let args = bad.iter().map(|s| (*s).to_string());
            assert!(parse_journal_flags(args).is_err(), "accepted {bad:?}");
        }
    }
}
