//! Shared table-rendering helpers for the experiment binaries.
//!
//! The binaries in `src/bin/` regenerate the paper's tables and figures as
//! plain-text rows (gnuplot-friendly); this tiny library keeps their
//! formatting consistent and testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rthv::time::Duration;

/// Formats a duration as microseconds with a fixed `us` suffix, the unit of
/// every figure in the paper.
///
/// # Examples
///
/// ```
/// use rthv_experiments::us;
/// use rthv::time::Duration;
///
/// assert_eq!(us(Duration::from_micros(2_500)), "2500.0us");
/// assert_eq!(us(Duration::from_nanos(640)), "0.6us");
/// ```
#[must_use]
pub fn us(duration: Duration) -> String {
    format!("{:.1}us", duration.as_nanos() as f64 / 1_000.0)
}

/// Formats a fraction as a percentage with one decimal.
///
/// # Examples
///
/// ```
/// use rthv_experiments::percent;
///
/// assert_eq!(percent(0.399), "39.9%");
/// ```
#[must_use]
pub fn percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Renders a horizontal rule sized to a header line.
#[must_use]
pub fn rule(header: &str) -> String {
    "-".repeat(header.chars().count())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn us_rounds_to_tenths() {
        assert_eq!(us(Duration::from_nanos(87_025)), "87.0us");
        assert_eq!(us(Duration::from_micros(8_000)), "8000.0us");
        assert_eq!(us(Duration::ZERO), "0.0us");
    }

    #[test]
    fn percent_scales() {
        assert_eq!(percent(1.0), "100.0%");
        assert_eq!(percent(0.0), "0.0%");
    }

    #[test]
    fn rule_matches_length() {
        assert_eq!(rule("abc"), "---");
    }
}
