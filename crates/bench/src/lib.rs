//! Shared infrastructure for the experiment binaries.
//!
//! The binaries in `src/bin/` regenerate the paper's tables and figures as
//! plain-text rows (gnuplot-friendly). This library keeps their formatting
//! consistent and testable, holds the paper-setup simulation scaffolding
//! they previously each copy-pasted, and provides the [`SweepRunner`] that
//! fans independent sweep scenarios across host cores without changing any
//! result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod runner;
pub mod sweep;

pub use journal::{
    parse_journal_flags, read_complete_lines, write_scenario_observation, Journal, JournalOptions,
};
pub use runner::{merge_histograms, ScenarioOutcome, SweepError, SweepRunner};

use rthv::monitor::DeltaFunction;
use rthv::time::{Duration, Instant};
use rthv::{IrqHandlingMode, IrqSourceId, Machine, PaperSetup, RunReport};

/// The paper's TDMA supply as seen by the analysis layer: one application
/// slot per cycle, shortened by the context switch that opens it.
#[must_use]
pub fn paper_tdma_slot(setup: &PaperSetup) -> rthv::analysis::TdmaSlot {
    rthv::analysis::TdmaSlot {
        cycle: setup.tdma_cycle(),
        slot: setup.app_slot - setup.costs.context_switch,
    }
}

/// Builds a paper-setup [`Machine`], schedules `trace` on IRQ source 0,
/// runs it to completion and returns the report — the experiment loop every
/// binary used to inline.
///
/// The completion deadline is `last arrival + 100 TDMA cycles`; failing it
/// means the configuration is overloaded, which no paper experiment is.
///
/// # Panics
///
/// Panics if the setup is invalid, the trace is empty or non-monotonic, or
/// the run misses the deadline.
#[must_use]
pub fn run_paper_machine(
    setup: &PaperSetup,
    mode: IrqHandlingMode,
    monitor: Option<DeltaFunction>,
    trace: &[Instant],
) -> RunReport {
    let mut machine = Machine::new(setup.config(mode, monitor)).expect("valid paper setup");
    machine
        .schedule_irq_trace(IrqSourceId::new(0), trace)
        .expect("trace lies in the future");
    let last = *trace.last().expect("non-empty trace");
    assert!(
        machine.run_until_complete(last + setup.tdma_cycle() * 100),
        "paper-setup run did not complete — configuration overloaded?"
    );
    machine.finish()
}

/// Formats a duration as microseconds with a fixed `us` suffix, the unit of
/// every figure in the paper.
///
/// # Examples
///
/// ```
/// use rthv_experiments::us;
/// use rthv::time::Duration;
///
/// assert_eq!(us(Duration::from_micros(2_500)), "2500.0us");
/// assert_eq!(us(Duration::from_nanos(640)), "0.6us");
/// ```
#[must_use]
pub fn us(duration: Duration) -> String {
    format!("{:.1}us", duration.as_nanos() as f64 / 1_000.0)
}

/// Formats a fraction as a percentage with one decimal.
///
/// # Examples
///
/// ```
/// use rthv_experiments::percent;
///
/// assert_eq!(percent(0.399), "39.9%");
/// ```
#[must_use]
pub fn percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Renders a horizontal rule sized to a header line.
#[must_use]
pub fn rule(header: &str) -> String {
    "-".repeat(header.chars().count())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn us_rounds_to_tenths() {
        assert_eq!(us(Duration::from_nanos(87_025)), "87.0us");
        assert_eq!(us(Duration::from_micros(8_000)), "8000.0us");
        assert_eq!(us(Duration::ZERO), "0.0us");
    }

    #[test]
    fn percent_scales() {
        assert_eq!(percent(1.0), "100.0%");
        assert_eq!(percent(0.0), "0.0%");
    }

    #[test]
    fn rule_matches_length() {
        assert_eq!(rule("abc"), "---");
    }
}
