//! Parallel scenario fan-out with sequential-identical results and
//! panic-isolated workers.
//!
//! Every experiment in this crate is a *sweep*: a list of independent
//! scenarios (d_min points, load levels, policy combinations), each fully
//! determined by its own parameters and RNG seed. [`SweepRunner`] fans such
//! a list across OS threads with [`std::thread::scope`] — no external
//! dependencies, the CI container has no route to the crates registry — and
//! returns the results **in scenario order**, so the output is bit-identical
//! to the sequential path no matter how many threads ran or how the OS
//! scheduled them.
//!
//! Two ingredients make that guarantee hold:
//!
//! 1. every scenario owns its seed — no RNG state is shared across
//!    scenarios, so execution order cannot perturb any draw;
//! 2. results are written into a per-scenario slot and read back in index
//!    order — merge order is fixed even though completion order is not.
//!
//! Crash safety: every scenario closure runs under
//! [`std::panic::catch_unwind`], so a panicking scenario never unwinds
//! through a worker thread — the remaining scenarios still run, result
//! locks are never poisoned, and the failure surfaces as a typed
//! [`SweepError`] ([`SweepRunner::try_run`]) or a per-scenario
//! [`ScenarioOutcome::Crashed`] with deterministic bounded retry
//! ([`SweepRunner::run_isolated`]).
//!
//! Aggregations over the ordered results (histogram merges via
//! [`LatencyHistogram::merge`], latency sums, maxima) are then plain folds
//! of per-scenario values and reproduce a single-accumulator sequential run
//! exactly.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::thread;

use rthv::stats::LatencyHistogram;

/// Why a sweep could not produce a full result vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// A scenario closure panicked; the payload is preserved. When several
    /// scenarios panic, the one with the lowest index is reported
    /// (deterministic regardless of thread interleaving).
    ScenarioPanicked {
        /// Index of the panicking scenario.
        index: usize,
        /// The panic payload, stringified.
        panic_msg: String,
    },
    /// A scenario slot was never filled — a worker died without writing a
    /// result or a panic record. Should be unreachable; kept as a typed
    /// error instead of an `unwrap` so a harness bug degrades into data.
    MissingResult {
        /// Index of the unfilled slot.
        index: usize,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::ScenarioPanicked { index, panic_msg } => {
                write!(f, "scenario {index} panicked: {panic_msg}")
            }
            SweepError::MissingResult { index } => {
                write!(f, "scenario {index} produced no result")
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// The fate of one scenario under [`SweepRunner::run_isolated`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioOutcome<R> {
    /// The scenario completed (possibly after retries).
    Completed(R),
    /// Every attempt panicked; the sweep carried on without it.
    Crashed {
        /// The last attempt's panic payload, stringified.
        panic_msg: String,
        /// How many attempts were made (= the configured maximum).
        attempts: u32,
    },
}

impl<R> ScenarioOutcome<R> {
    /// The completed result, if any.
    pub fn completed(self) -> Option<R> {
        match self {
            ScenarioOutcome::Completed(r) => Some(r),
            ScenarioOutcome::Crashed { .. } => None,
        }
    }
}

/// Stringifies a panic payload (`&str` and `String` payloads verbatim,
/// anything else a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A thread-pool-free parallel sweep executor.
///
/// # Examples
///
/// ```
/// use rthv_experiments::SweepRunner;
///
/// let inputs = [1u64, 2, 3, 4, 5];
/// let sequential = SweepRunner::sequential().run(&inputs, |_, &x| x * x);
/// let parallel = SweepRunner::new(4).run(&inputs, |_, &x| x * x);
/// assert_eq!(sequential, parallel);
/// assert_eq!(parallel, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
}

impl SweepRunner {
    /// A runner that executes scenarios one after another on the calling
    /// thread (the reference path).
    #[must_use]
    pub fn sequential() -> Self {
        SweepRunner { threads: 1 }
    }

    /// A runner using up to `threads` worker threads (clamped to at least
    /// one). `SweepRunner::new(1)` is exactly [`sequential`](Self::sequential).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        SweepRunner {
            threads: threads.max(1),
        }
    }

    /// A runner sized to the host: one worker per available core.
    #[must_use]
    pub fn available() -> Self {
        SweepRunner::new(
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The worker count that actually runs for `scenario_count` scenarios:
    /// no more threads than scenarios are spawned, so a 3-point sweep on a
    /// 16-core host uses 3 workers. Exported with per-point timings so a
    /// reported "parallel" number says how parallel it really was.
    #[must_use]
    pub fn effective_threads(&self, scenario_count: usize) -> usize {
        self.threads.min(scenario_count).max(1)
    }

    /// Runs `scenario(index, &scenarios[index])` for every scenario and
    /// returns the results in scenario order.
    ///
    /// Scenarios are claimed from a shared atomic cursor, so threads stay
    /// busy even when per-scenario run times differ widely (the largest
    /// d_min points of a sweep can run an order of magnitude longer than
    /// the smallest).
    ///
    /// # Panics
    ///
    /// Panics (on the calling thread, after every worker finished) if any
    /// scenario closure panicked — the typed-error path is
    /// [`try_run`](Self::try_run).
    pub fn run<S, R, F>(&self, scenarios: &[S], scenario: F) -> Vec<R>
    where
        S: Sync,
        R: Send,
        F: Fn(usize, &S) -> R + Sync,
    {
        match self.try_run(scenarios, scenario) {
            Ok(results) => results,
            Err(error) => panic!("{error}"),
        }
    }

    /// Like [`run`](Self::run), but a panicking scenario becomes a typed
    /// [`SweepError`] instead of unwinding: the panic is caught inside the
    /// worker, every other scenario still executes, and no lock is
    /// poisoned. When several scenarios panic, the lowest index wins —
    /// deterministically, whatever the thread interleaving.
    ///
    /// # Errors
    ///
    /// [`SweepError::ScenarioPanicked`] for the first (by index) panicking
    /// scenario; [`SweepError::MissingResult`] if a result slot was never
    /// filled.
    pub fn try_run<S, R, F>(&self, scenarios: &[S], scenario: F) -> Result<Vec<R>, SweepError>
    where
        S: Sync,
        R: Send,
        F: Fn(usize, &S) -> R + Sync,
    {
        let execute = |index: usize, s: &S| -> Result<R, SweepError> {
            catch_unwind(AssertUnwindSafe(|| scenario(index, s))).map_err(|payload| {
                SweepError::ScenarioPanicked {
                    index,
                    panic_msg: panic_message(payload.as_ref()),
                }
            })
        };

        if self.threads == 1 || scenarios.len() <= 1 {
            return scenarios
                .iter()
                .enumerate()
                .map(|(index, s)| execute(index, s))
                .collect();
        }

        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<R, SweepError>>>> =
            scenarios.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(scenarios.len());
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(s) = scenarios.get(index) else {
                        break;
                    };
                    let result = execute(index, s);
                    // catch_unwind above means no worker unwinds holding
                    // this lock, but a poisoned lock still must not take
                    // down the sweep: the data underneath is a plain
                    // `Option` write, valid regardless.
                    *slots[index].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                });
            }
        });
        let mut results = Vec::with_capacity(slots.len());
        for (index, slot) in slots.into_iter().enumerate() {
            match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
                Some(Ok(result)) => results.push(result),
                Some(Err(error)) => return Err(error),
                None => return Err(SweepError::MissingResult { index }),
            }
        }
        Ok(results)
    }

    /// Runs every scenario in crash isolation with deterministic bounded
    /// retry: `scenario(attempt, index, &scenarios[index])` is called with
    /// `attempt` counting from 1; a panicking attempt is retried
    /// immediately (no wall-clock backoff — determinism over politeness)
    /// up to `max_attempts` times, and a scenario whose every attempt
    /// panicked becomes [`ScenarioOutcome::Crashed`] without affecting any
    /// other scenario. Results come back in scenario order.
    pub fn run_isolated<S, R, F>(
        &self,
        scenarios: &[S],
        max_attempts: u32,
        scenario: F,
    ) -> Vec<ScenarioOutcome<R>>
    where
        S: Sync,
        R: Send,
        F: Fn(u32, usize, &S) -> R + Sync,
    {
        let max_attempts = max_attempts.max(1);
        let isolated = |index: usize, s: &S| -> ScenarioOutcome<R> {
            let mut last_msg = String::new();
            for attempt in 1..=max_attempts {
                match catch_unwind(AssertUnwindSafe(|| scenario(attempt, index, s))) {
                    Ok(result) => return ScenarioOutcome::Completed(result),
                    Err(payload) => last_msg = panic_message(payload.as_ref()),
                }
            }
            ScenarioOutcome::Crashed {
                panic_msg: last_msg,
                attempts: max_attempts,
            }
        };
        // The isolated closure never panics, so `try_run` cannot fail with
        // `ScenarioPanicked`; `MissingResult` degrades into `Crashed`.
        self.try_run(scenarios, isolated)
            .unwrap_or_else(|error| panic!("isolated sweep failed: {error}"))
    }
}

impl Default for SweepRunner {
    /// Defaults to [`SweepRunner::available`].
    fn default() -> Self {
        SweepRunner::available()
    }
}

/// Folds per-scenario histograms — in iteration order — into one, via
/// [`LatencyHistogram::merge`]. Returns `None` for an empty iterator.
///
/// Fed with a [`SweepRunner::run`] result this reproduces, bin for bin, the
/// histogram a sequential loop filling a single accumulator would build.
///
/// # Panics
///
/// Panics if the histograms disagree on geometry.
#[must_use]
pub fn merge_histograms(
    parts: impl IntoIterator<Item = LatencyHistogram>,
) -> Option<LatencyHistogram> {
    let mut parts = parts.into_iter();
    let mut merged = parts.next()?;
    for part in parts {
        merged.merge(&part);
    }
    Some(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rthv::time::Duration;

    #[test]
    fn results_come_back_in_scenario_order() {
        let inputs: Vec<usize> = (0..32).collect();
        // Skew the per-scenario run time so completion order differs from
        // scenario order.
        let out = SweepRunner::new(8).run(&inputs, |index, &x| {
            let spins = (32 - index) * 1_000;
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(i as u64);
            }
            std::hint::black_box(acc);
            x * 2
        });
        assert_eq!(out, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential() {
        let inputs: Vec<u64> = (0..17).collect();
        let f = |index: usize, x: &u64| (index as u64) * 1_000 + x * x;
        assert_eq!(
            SweepRunner::sequential().run(&inputs, f),
            SweepRunner::new(5).run(&inputs, f),
        );
    }

    #[test]
    fn thread_count_is_clamped() {
        assert_eq!(SweepRunner::new(0).threads(), 1);
        assert!(SweepRunner::available().threads() >= 1);
    }

    #[test]
    fn empty_and_singleton_sweeps() {
        let empty: Vec<u8> = Vec::new();
        assert!(SweepRunner::new(4).run(&empty, |_, &x| x).is_empty());
        assert_eq!(SweepRunner::new(4).run(&[7u8], |_, &x| x), vec![7]);
    }

    #[test]
    fn a_panicking_scenario_is_a_typed_error_not_a_poisoned_sweep() {
        for runner in [SweepRunner::sequential(), SweepRunner::new(4)] {
            let inputs: Vec<u64> = (0..9).collect();
            let verdict = runner.try_run(&inputs, |_, &x| {
                assert!(x != 4, "scenario four is cursed");
                x * 10
            });
            match verdict {
                Err(SweepError::ScenarioPanicked { index, panic_msg }) => {
                    assert_eq!(index, 4);
                    assert!(panic_msg.contains("cursed"), "got: {panic_msg}");
                }
                other => panic!("expected a typed panic error, got {other:?}"),
            }
            // The same runner still works afterwards — nothing poisoned.
            assert_eq!(
                runner.try_run(&inputs, |_, &x| x + 1),
                Ok((1..=9).collect::<Vec<u64>>())
            );
        }
    }

    #[test]
    fn lowest_index_wins_when_several_scenarios_panic() {
        let inputs: Vec<u64> = (0..16).collect();
        let verdict = SweepRunner::new(8).try_run(&inputs, |_, &x| {
            assert!(x % 3 != 2, "boom {x}");
            x
        });
        assert!(
            matches!(verdict, Err(SweepError::ScenarioPanicked { index: 2, .. })),
            "got {verdict:?}"
        );
    }

    #[test]
    fn run_isolated_retries_deterministically_and_quarantines_crashes() {
        use std::sync::atomic::AtomicU32;
        // Scenario value = number of leading attempts that panic.
        let crashes: Vec<u32> = vec![0, 1, 2, 0, 3];
        let calls: Vec<AtomicU32> = crashes.iter().map(|_| AtomicU32::new(0)).collect();
        let outcomes = SweepRunner::new(4).run_isolated(&crashes, 2, |attempt, index, &n| {
            calls[index].fetch_add(1, Ordering::Relaxed);
            assert!(attempt > n, "attempt {attempt} of scenario {index} crashed");
            index as u64
        });
        assert_eq!(outcomes.len(), 5);
        assert_eq!(outcomes[0], ScenarioOutcome::Completed(0));
        assert_eq!(outcomes[1], ScenarioOutcome::Completed(1));
        assert_eq!(outcomes[3], ScenarioOutcome::Completed(3));
        for crashed_index in [2usize, 4] {
            match &outcomes[crashed_index] {
                ScenarioOutcome::Crashed {
                    panic_msg,
                    attempts,
                } => {
                    assert_eq!(*attempts, 2);
                    assert!(panic_msg.contains("crashed"), "got: {panic_msg}");
                }
                other => panic!("scenario {crashed_index} should crash, got {other:?}"),
            }
        }
        // Attempt accounting: retried exactly up to the bound, no more.
        let attempt_counts: Vec<u32> = calls.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        assert_eq!(attempt_counts, vec![1, 2, 2, 1, 2]);
    }

    #[test]
    fn merge_histograms_matches_single_accumulator() {
        let bin = Duration::from_micros(100);
        let range = Duration::from_micros(1_000);
        let samples: Vec<Duration> = (0..50u64)
            .map(|i| Duration::from_micros(i * 37 % 1_200))
            .collect();

        let mut sequential = LatencyHistogram::new(bin, range).expect("valid");
        for &s in &samples {
            sequential.add(s);
        }

        let parts: Vec<LatencyHistogram> = samples
            .chunks(7)
            .map(|chunk| {
                let mut h = LatencyHistogram::new(bin, range).expect("valid");
                for &s in chunk {
                    h.add(s);
                }
                h
            })
            .collect();
        let merged = merge_histograms(parts).expect("non-empty");
        assert_eq!(merged.count(), sequential.count());
        assert_eq!(merged.overflow(), sequential.overflow());
        assert!(merged.iter().eq(sequential.iter()));
    }

    #[test]
    fn merge_histograms_empty_is_none() {
        assert!(merge_histograms(Vec::new()).is_none());
    }
}
