//! Parallel scenario fan-out with sequential-identical results.
//!
//! Every experiment in this crate is a *sweep*: a list of independent
//! scenarios (d_min points, load levels, policy combinations), each fully
//! determined by its own parameters and RNG seed. [`SweepRunner`] fans such
//! a list across OS threads with [`std::thread::scope`] — no external
//! dependencies, the CI container has no route to the crates registry — and
//! returns the results **in scenario order**, so the output is bit-identical
//! to the sequential path no matter how many threads ran or how the OS
//! scheduled them.
//!
//! Two ingredients make that guarantee hold:
//!
//! 1. every scenario owns its seed — no RNG state is shared across
//!    scenarios, so execution order cannot perturb any draw;
//! 2. results are written into a per-scenario slot and read back in index
//!    order — merge order is fixed even though completion order is not.
//!
//! Aggregations over the ordered results (histogram merges via
//! [`LatencyHistogram::merge`], latency sums, maxima) are then plain folds
//! of per-scenario values and reproduce a single-accumulator sequential run
//! exactly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use rthv::stats::LatencyHistogram;

/// A thread-pool-free parallel sweep executor.
///
/// # Examples
///
/// ```
/// use rthv_experiments::SweepRunner;
///
/// let inputs = [1u64, 2, 3, 4, 5];
/// let sequential = SweepRunner::sequential().run(&inputs, |_, &x| x * x);
/// let parallel = SweepRunner::new(4).run(&inputs, |_, &x| x * x);
/// assert_eq!(sequential, parallel);
/// assert_eq!(parallel, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
}

impl SweepRunner {
    /// A runner that executes scenarios one after another on the calling
    /// thread (the reference path).
    #[must_use]
    pub fn sequential() -> Self {
        SweepRunner { threads: 1 }
    }

    /// A runner using up to `threads` worker threads (clamped to at least
    /// one). `SweepRunner::new(1)` is exactly [`sequential`](Self::sequential).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        SweepRunner {
            threads: threads.max(1),
        }
    }

    /// A runner sized to the host: one worker per available core.
    #[must_use]
    pub fn available() -> Self {
        SweepRunner::new(
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `scenario(index, &scenarios[index])` for every scenario and
    /// returns the results in scenario order.
    ///
    /// Scenarios are claimed from a shared atomic cursor, so threads stay
    /// busy even when per-scenario run times differ widely (the largest
    /// d_min points of a sweep can run an order of magnitude longer than
    /// the smallest).
    ///
    /// # Panics
    ///
    /// Propagates a panic from any scenario closure after all worker
    /// threads have stopped.
    pub fn run<S, R, F>(&self, scenarios: &[S], scenario: F) -> Vec<R>
    where
        S: Sync,
        R: Send,
        F: Fn(usize, &S) -> R + Sync,
    {
        if self.threads == 1 || scenarios.len() <= 1 {
            return scenarios
                .iter()
                .enumerate()
                .map(|(index, s)| scenario(index, s))
                .collect();
        }

        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = scenarios.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(scenarios.len());
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(s) = scenarios.get(index) else {
                        break;
                    };
                    let result = scenario(index, s);
                    *slots[index].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every scenario index was claimed exactly once")
            })
            .collect()
    }
}

impl Default for SweepRunner {
    /// Defaults to [`SweepRunner::available`].
    fn default() -> Self {
        SweepRunner::available()
    }
}

/// Folds per-scenario histograms — in iteration order — into one, via
/// [`LatencyHistogram::merge`]. Returns `None` for an empty iterator.
///
/// Fed with a [`SweepRunner::run`] result this reproduces, bin for bin, the
/// histogram a sequential loop filling a single accumulator would build.
///
/// # Panics
///
/// Panics if the histograms disagree on geometry.
#[must_use]
pub fn merge_histograms(
    parts: impl IntoIterator<Item = LatencyHistogram>,
) -> Option<LatencyHistogram> {
    let mut parts = parts.into_iter();
    let mut merged = parts.next()?;
    for part in parts {
        merged.merge(&part);
    }
    Some(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rthv::time::Duration;

    #[test]
    fn results_come_back_in_scenario_order() {
        let inputs: Vec<usize> = (0..32).collect();
        // Skew the per-scenario run time so completion order differs from
        // scenario order.
        let out = SweepRunner::new(8).run(&inputs, |index, &x| {
            let spins = (32 - index) * 1_000;
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(i as u64);
            }
            std::hint::black_box(acc);
            x * 2
        });
        assert_eq!(out, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential() {
        let inputs: Vec<u64> = (0..17).collect();
        let f = |index: usize, x: &u64| (index as u64) * 1_000 + x * x;
        assert_eq!(
            SweepRunner::sequential().run(&inputs, f),
            SweepRunner::new(5).run(&inputs, f),
        );
    }

    #[test]
    fn thread_count_is_clamped() {
        assert_eq!(SweepRunner::new(0).threads(), 1);
        assert!(SweepRunner::available().threads() >= 1);
    }

    #[test]
    fn empty_and_singleton_sweeps() {
        let empty: Vec<u8> = Vec::new();
        assert!(SweepRunner::new(4).run(&empty, |_, &x| x).is_empty());
        assert_eq!(SweepRunner::new(4).run(&[7u8], |_, &x| x), vec![7]);
    }

    #[test]
    fn merge_histograms_matches_single_accumulator() {
        let bin = Duration::from_micros(100);
        let range = Duration::from_micros(1_000);
        let samples: Vec<Duration> = (0..50u64)
            .map(|i| Duration::from_micros(i * 37 % 1_200))
            .collect();

        let mut sequential = LatencyHistogram::new(bin, range).expect("valid");
        for &s in &samples {
            sequential.add(s);
        }

        let parts: Vec<LatencyHistogram> = samples
            .chunks(7)
            .map(|chunk| {
                let mut h = LatencyHistogram::new(bin, range).expect("valid");
                for &s in chunk {
                    h.add(s);
                }
                h
            })
            .collect();
        let merged = merge_histograms(parts).expect("non-empty");
        assert_eq!(merged.count(), sequential.count());
        assert_eq!(merged.overflow(), sequential.overflow());
        assert!(merged.iter().eq(sequential.iter()));
    }

    #[test]
    fn merge_histograms_empty_is_none() {
        assert!(merge_histograms(Vec::new()).is_none());
    }
}
