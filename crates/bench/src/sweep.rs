//! The d_min design-space sweep, as data: computing the rows here (instead
//! of inline in the `sweep` binary) lets the binary, the determinism tests
//! and the perf exporter share one implementation — and lets a
//! [`SweepRunner`] fan the independent d_min points across cores.

use rthv::analysis::{baseline_irq_wcrt, interposed_irq_wcrt, EventModel, IrqTask};
use rthv::monitor::{interference_bound_dmin, DeltaFunction};
use rthv::stats::csv_row;
use rthv::time::{Duration, Instant};
use rthv::workload::ExponentialArrivals;
use rthv::{IrqHandlingMode, PaperSetup};

use crate::{paper_tdma_slot, percent, run_paper_machine, us, SweepRunner};

/// Parameters of the d_min sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Platform setup (defaults to the paper's).
    pub setup: PaperSetup,
    /// The swept monitoring distances, in microseconds.
    pub dmin_points_us: Vec<u64>,
    /// Conformant IRQs simulated per point.
    pub irqs: usize,
    /// Arrival-trace RNG seed (each point derives its own stream from the
    /// same seed, so points are independent of execution order).
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            setup: PaperSetup::default(),
            dmin_points_us: vec![500, 1_000, 2_000, 3_000, 5_000, 8_000, 13_000],
            irqs: 2_000,
            seed: 77,
        }
    }
}

/// One computed sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// The monitoring distance of this point.
    pub dmin: Duration,
    /// Analytic worst-case latency without monitoring.
    pub baseline_bound: Duration,
    /// Analytic worst-case latency with interposition.
    pub interposed_bound: Duration,
    /// Simulated mean latency (monitored run).
    pub sim_mean: Duration,
    /// Simulated maximum latency (monitored run).
    pub sim_max: Duration,
    /// Relative context-switch increase of the monitored run over baseline.
    pub ctx_increase: f64,
    /// Guaranteed long-term victim interference as a load fraction.
    pub victim_load: f64,
}

/// Computes all sweep rows, fanning the points over `runner`.
///
/// Each point owns its arrival trace (derived from [`SweepConfig::seed`]
/// and the point's d_min), so any thread count returns the same rows in the
/// same order.
///
/// # Panics
///
/// Panics if the paper-setup analysis fails to converge or a simulation
/// overruns its deadline — neither happens for the default configuration.
#[must_use]
pub fn compute_rows(config: &SweepConfig, runner: &SweepRunner) -> Vec<SweepRow> {
    let setup = config.setup.clone();
    let costs = setup.costs;
    let tdma = paper_tdma_slot(&setup);
    runner.run(&config.dmin_points_us, |_, &dmin_us| {
        let dmin = Duration::from_micros(dmin_us);
        let task = IrqTask {
            model: EventModel::sporadic(dmin),
            top_cost: costs.top_handler,
            bottom_cost: setup.bottom_cost,
        };
        let baseline_bound = baseline_irq_wcrt(&task, tdma, &[])
            .expect("paper setup converges")
            .wcrt;
        let interposed_bound = interposed_irq_wcrt(
            &task.with_effective_costs(
                costs.monitor_check,
                costs.sched_manip,
                costs.context_switch,
            ),
            &[],
        )
        .expect("paper setup converges")
        .wcrt;

        let trace = ExponentialArrivals::new(dmin, config.seed)
            .with_min_distance(dmin)
            .generate(config.irqs, Instant::ZERO);
        let baseline_run =
            run_paper_machine(&setup, IrqHandlingMode::Baseline, None, trace.as_slice());
        let monitored_run = run_paper_machine(
            &setup,
            IrqHandlingMode::Interposed,
            Some(DeltaFunction::from_dmin(dmin).expect("positive")),
            trace.as_slice(),
        );
        let ctx_increase = (monitored_run.counters.context_switches as f64
            - baseline_run.counters.context_switches as f64)
            / baseline_run.counters.context_switches as f64;

        // Guaranteed long-term interference on any victim.
        let window = Duration::from_secs(1);
        let victim =
            interference_bound_dmin(window, dmin, costs.effective_bottom_cost(setup.bottom_cost));

        SweepRow {
            dmin,
            baseline_bound,
            interposed_bound,
            sim_mean: monitored_run.recorder.mean_latency().expect("completions"),
            sim_max: monitored_run.recorder.max_latency().expect("completions"),
            ctx_increase,
            victim_load: victim.as_nanos() as f64 / window.as_nanos() as f64,
        }
    })
}

/// Renders the rows as the sweep's CSV document (header + one line per
/// point).
#[must_use]
pub fn render_csv(rows: &[SweepRow]) -> String {
    let mut out = csv_row([
        "dmin_us",
        "baseline_bound_us",
        "interposed_bound_us",
        "sim_mean_us",
        "sim_max_us",
        "ctx_increase_pct",
        "victim_interference_pct",
    ]);
    for row in rows {
        out.push_str(&csv_row([
            row.dmin.as_micros().to_string(),
            row.baseline_bound.as_micros().to_string(),
            row.interposed_bound.as_micros().to_string(),
            row.sim_mean.as_micros().to_string(),
            row.sim_max.as_micros().to_string(),
            format!("{:.2}", row.ctx_increase * 100.0),
            format!("{:.2}", row.victim_load * 100.0),
        ]));
    }
    out
}

/// Renders the rows as the human-readable design-space table.
#[must_use]
pub fn render_table(rows: &[SweepRow], irqs: usize) -> String {
    use std::fmt::Write as _;

    let mut out = format!("d_min design-space sweep ({irqs} conformant IRQs per point)\n\n");
    let _ = writeln!(
        out,
        "{:>10} {:>15} {:>17} {:>11} {:>11} {:>9} {:>13}",
        "d_min",
        "baseline bound",
        "interposed bound",
        "sim mean",
        "sim max",
        "ctx +",
        "victim load"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:>10} {:>15} {:>17} {:>11} {:>11} {:>9} {:>13}",
            us(row.dmin),
            us(row.baseline_bound),
            us(row.interposed_bound),
            us(row.sim_mean),
            us(row.sim_max),
            percent(row.ctx_increase),
            percent(row.victim_load),
        );
    }
    out.push_str(
        "\nShrinking d_min buys nothing in worst-case latency (the \
         interposed bound is cost-dominated) but inflates both the \
         context-switch overhead and the guaranteed victim interference \
         linearly — pick the largest d_min the IRQ source tolerates.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_all_points_in_order() {
        let config = SweepConfig {
            dmin_points_us: vec![3_000, 5_000],
            irqs: 150,
            ..SweepConfig::default()
        };
        let rows = compute_rows(&config, &SweepRunner::sequential());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].dmin, Duration::from_micros(3_000));
        assert_eq!(rows[1].dmin, Duration::from_micros(5_000));
        // Victim interference shrinks as d_min grows.
        assert!(rows[0].victim_load > rows[1].victim_load);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let config = SweepConfig {
            dmin_points_us: vec![3_000],
            irqs: 100,
            ..SweepConfig::default()
        };
        let rows = compute_rows(&config, &SweepRunner::sequential());
        let csv = render_csv(&rows);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("dmin_us,"));
        assert!(csv.lines().nth(1).expect("row").starts_with("3000,"));
    }
}
