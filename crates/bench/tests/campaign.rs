//! Acceptance tests of the fault-injection campaign: the full standard
//! campaign (≥ 20 seeded scenarios) must leave the monitored system
//! violation-free, must demonstrate at least one independence violation in
//! the unmonitored baseline under an IRQ storm, and must serialize
//! byte-identically regardless of thread count or run repetition.

use rthv_experiments::SweepRunner;
use rthv_faults::{
    idle_reference, run_campaign, run_scenario, CampaignConfig, CampaignReport, Violation,
};

/// The real campaign at a test-friendly horizon. Scenario structure,
/// families and seeds are the standard ones; only the horizon shrinks.
fn campaign() -> CampaignConfig {
    CampaignConfig {
        horizon: rthv::time::Duration::from_millis(300),
        ..CampaignConfig::default()
    }
}

fn fan_out(config: &CampaignConfig, threads: usize) -> CampaignReport {
    let idle = idle_reference(config).expect("valid config");
    let outcomes = SweepRunner::new(threads).run(&config.scenarios, |_, scenario| {
        run_scenario(config, &idle, scenario).expect("valid config")
    });
    CampaignReport::from_outcomes(config, outcomes)
}

#[test]
fn standard_campaign_upholds_the_papers_claims() {
    let config = campaign();
    assert!(
        config.scenarios.len() >= 20,
        "acceptance requires at least 20 scenarios"
    );
    let report = run_campaign(&config).expect("valid config");

    // Every monitored run passes the oracle: δ⁻ conformance, η⁺ window
    // counts, window budgets, IRQ conservation, no defects, and the
    // Eq. 13–16 independence bound on every victim.
    let monitored_failures: Vec<String> = report
        .scenarios
        .iter()
        .flat_map(|s| {
            s.monitored
                .violations
                .iter()
                .map(move |v| format!("{}: {v}", s.label))
        })
        .collect();
    assert!(
        monitored_failures.is_empty(),
        "monitored oracle violations:\n{}",
        monitored_failures.join("\n")
    );

    // The unmonitored baseline demonstrably breaks independence under the
    // storm scenarios — the contrast that motivates the paper's monitor.
    assert!(
        report.unmonitored_independence_violations() >= 1,
        "the unmonitored baseline never violated independence"
    );
    let storm = report
        .scenarios
        .iter()
        .find(|s| s.label.ends_with("irq-storm"))
        .expect("standard campaign contains a storm");
    assert!(
        storm
            .unmonitored
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Independence { .. })),
        "the IRQ storm did not break the unmonitored baseline"
    );
    assert!(storm.unmonitored.worst_victim_loss > storm.unmonitored.independence_bound);
    assert!(storm.monitored.worst_victim_loss <= storm.monitored.independence_bound);

    // Both demonstrations are persisted in the JSON report.
    let json = report.to_json();
    assert!(json.contains(r#""monitored_violations": 0"#));
    assert!(json.contains(r#""kind":"independence""#));
}

#[test]
fn graceful_degradation_paths_engage_without_losing_accounting() {
    let report = run_campaign(&campaign()).expect("valid config");
    // Somewhere in the campaign the bounded subscriber queue overflowed —
    // the degradation path is actually exercised, not just available.
    let rejected: u64 = report
        .scenarios
        .iter()
        .map(|s| s.monitored.overflow_rejected + s.unmonitored.overflow_rejected)
        .sum();
    assert!(rejected > 0, "no scenario exercised the bounded queue");
    // A budget-overrun scenario had its window clipped.
    let clipped: u64 = report
        .scenarios
        .iter()
        .filter(|s| s.label.ends_with("budget-overrun"))
        .map(|s| s.monitored.expired_windows)
        .sum();
    assert!(clipped > 0, "budget overruns were never clipped");
    // And despite all of it, the conservation ledger held everywhere:
    // monitored_violations == 0 covers the monitored half; the unmonitored
    // half must have no irq-lost or defect findings either.
    assert_eq!(report.monitored_violations(), 0);
    for s in &report.scenarios {
        for v in &s.unmonitored.violations {
            assert!(
                matches!(v, Violation::Independence { .. }),
                "{}: unexpected non-independence violation {v}",
                s.label
            );
        }
    }
}

#[test]
fn campaign_report_is_byte_identical_across_threads_and_repetition() {
    let config = campaign();
    let sequential = run_campaign(&config).expect("valid config").to_json();
    assert_eq!(
        sequential,
        run_campaign(&config).expect("valid config").to_json(),
        "repetition diverged"
    );
    for threads in [2, 8] {
        assert_eq!(
            sequential,
            fan_out(&config, threads).to_json(),
            "campaign diverged at {threads} threads"
        );
    }
}
