//! Determinism guarantees of the parallel sweep engine: any thread count
//! must produce byte-identical output to the sequential reference, and the
//! per-load Figure-6 fan-out must merge into exactly the sequential run.

use rthv::scenarios::{merge_fig6_loads, run_fig6, run_fig6_load, Fig6Config, Fig6Variant};
use rthv_experiments::sweep::{compute_rows, render_csv, render_table, SweepConfig};
use rthv_experiments::SweepRunner;

/// A scaled-down sweep so the test stays fast; the determinism argument is
/// independent of the point count and IRQ volume.
fn small_sweep() -> SweepConfig {
    SweepConfig {
        dmin_points_us: vec![1_000, 3_000, 5_000, 8_000],
        irqs: 200,
        ..SweepConfig::default()
    }
}

#[test]
fn parallel_sweep_csv_is_byte_identical_to_sequential() {
    let config = small_sweep();
    let sequential = compute_rows(&config, &SweepRunner::sequential());
    for threads in [2, 4, 8] {
        let parallel = compute_rows(&config, &SweepRunner::new(threads));
        assert_eq!(
            render_csv(&sequential),
            render_csv(&parallel),
            "CSV diverged at {threads} threads"
        );
        assert_eq!(
            render_table(&sequential, config.irqs),
            render_table(&parallel, config.irqs),
            "table diverged at {threads} threads"
        );
    }
}

#[test]
fn parallel_fig6_loads_merge_into_the_sequential_run() {
    let config = Fig6Config {
        irqs_per_load: 400,
        ..Fig6Config::default()
    };
    for variant in [
        Fig6Variant::Unmonitored,
        Fig6Variant::Monitored,
        Fig6Variant::MonitoredNoViolations,
    ] {
        let sequential = run_fig6(&config, variant);

        let indices: Vec<usize> = (0..config.loads.len()).collect();
        let outcomes =
            SweepRunner::new(3).run(&indices, |_, &index| run_fig6_load(&config, variant, index));
        let parallel = merge_fig6_loads(variant, outcomes);

        assert_eq!(sequential.mean_latency, parallel.mean_latency);
        assert_eq!(sequential.max_latency, parallel.max_latency);
        assert_eq!(sequential.class_counts, parallel.class_counts);
        assert_eq!(sequential.histogram.count(), parallel.histogram.count());
        assert_eq!(
            sequential.histogram.overflow(),
            parallel.histogram.overflow()
        );
        assert!(
            sequential.histogram.iter().eq(parallel.histogram.iter()),
            "histogram bins diverged for {variant:?}"
        );
        assert_eq!(sequential.per_load.len(), parallel.per_load.len());
        for (s, p) in sequential.per_load.iter().zip(&parallel.per_load) {
            assert_eq!(s.load, p.load);
            assert_eq!(s.mean_latency, p.mean_latency);
            assert_eq!(s.max_latency, p.max_latency);
            assert_eq!(s.class_counts, p.class_counts);
            assert_eq!(s.context_switches, p.context_switches);
        }
    }
}
