//! Resume-equivalence tests: a campaign killed at any scenario and resumed
//! from its journal must produce a byte-identical report — first at the
//! library level (every cut point, torn trailing line included), then at
//! the process level (a real `abort()` mid-run, then `--resume`).

use std::path::PathBuf;
use std::process::Command;

use rthv::time::Duration;
use rthv_experiments::{read_complete_lines, Journal};
use rthv_faults::{
    idle_reference, run_scenario, standard_scenarios, CampaignConfig, CampaignReport,
    ScenarioOutcome,
};

fn temp_path(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("rthv-resume-test-{}-{name}", std::process::id()));
    path
}

fn small_campaign() -> CampaignConfig {
    CampaignConfig {
        horizon: Duration::from_millis(120),
        scenarios: standard_scenarios(5, 0x00C0_FFEE),
        ..CampaignConfig::default()
    }
}

/// Kill-at-every-scenario: journal the first `k` outcomes (plus a torn
/// trailing line, as a real crash would leave), resume from that journal,
/// and require the assembled report to match the uninterrupted one byte
/// for byte — for every cut point `k`.
#[test]
fn journal_cut_at_every_scenario_resumes_byte_identical() {
    let config = small_campaign();
    let idle = idle_reference(&config).expect("valid config");
    let outcomes: Vec<ScenarioOutcome> = config
        .scenarios
        .iter()
        .map(|scenario| run_scenario(&config, &idle, scenario).expect("valid config"))
        .collect();
    let uninterrupted = CampaignReport::from_outcomes(&config, outcomes.clone()).to_json();

    for cut in 0..=outcomes.len() {
        let path = temp_path(&format!("cut-{cut}.jsonl"));
        let _ = std::fs::remove_file(&path);
        let journal = Journal::open_append(&path).expect("open journal");
        for outcome in &outcomes[..cut] {
            journal.append(&outcome.to_journal_json()).expect("append");
        }
        drop(journal);
        // A crash mid-append leaves a torn tail; the loader must shrug.
        let mut raw = std::fs::read(&path).expect("read back");
        raw.extend_from_slice(b"{\"label\":\"torn");
        std::fs::write(&path, raw).expect("re-write with torn tail");

        // The resume path, exactly as the binaries implement it: completed
        // outcomes from the journal by (label, seed), the rest re-run.
        let completed: Vec<ScenarioOutcome> = read_complete_lines(&path)
            .expect("read journal")
            .iter()
            .filter_map(|line| ScenarioOutcome::from_journal_json(line).ok())
            .collect();
        assert_eq!(completed.len(), cut, "torn tail must not hide a line");
        let resumed: Vec<ScenarioOutcome> = config
            .scenarios
            .iter()
            .map(|scenario| {
                completed
                    .iter()
                    .find(|o| o.label == scenario.label() && o.seed == scenario.seed)
                    .cloned()
                    .unwrap_or_else(|| {
                        run_scenario(&config, &idle, scenario).expect("valid config")
                    })
            })
            .collect();
        let report = CampaignReport::from_outcomes(&config, resumed).to_json();
        assert_eq!(
            report, uninterrupted,
            "resume from cut {cut} changed the report"
        );
        std::fs::remove_file(&path).expect("cleanup");
    }
}

/// A journal written against one seed must resume nothing under another:
/// the (label, seed) key protects the report from stale journals.
#[test]
fn journal_from_a_different_seed_resumes_nothing() {
    let config = small_campaign();
    let idle = idle_reference(&config).expect("valid config");
    let outcome = run_scenario(&config, &idle, &config.scenarios[0]).expect("valid config");
    let line = outcome.to_journal_json();
    let reparsed = ScenarioOutcome::from_journal_json(&line).expect("parse");

    let other_scenarios = standard_scenarios(5, 0xBAD_5EED);
    assert!(
        !other_scenarios
            .iter()
            .any(|s| reparsed.label == s.label() && reparsed.seed == s.seed),
        "a journal keyed to one seed must not match another campaign's scenarios"
    );
}

/// The real thing: run the campaign binary with `--abort-after 2` so it
/// dies mid-sweep via `abort()`, resume it from the journal, and compare
/// the resumed report byte-for-byte against an uninterrupted run.
#[test]
fn killed_campaign_process_resumes_byte_identical() {
    let bin = env!("CARGO_BIN_EXE_campaign");
    let clean_report = temp_path("proc-clean.json");
    let resumed_report = temp_path("proc-resumed.json");
    let journal = temp_path("proc-journal.jsonl");
    for p in [&clean_report, &resumed_report, &journal] {
        let _ = std::fs::remove_file(p);
    }
    let count = "4";
    let seed = "16392212";

    let clean = Command::new(bin)
        .args([clean_report.to_str().expect("utf-8 path"), count, seed])
        .output()
        .expect("run clean campaign");
    assert!(
        clean_report.exists(),
        "clean campaign wrote no report; stderr:\n{}",
        String::from_utf8_lossy(&clean.stderr)
    );

    let aborted = Command::new(bin)
        .args([
            resumed_report.to_str().expect("utf-8 path"),
            count,
            seed,
            "--journal",
            journal.to_str().expect("utf-8 path"),
            "--abort-after",
            "2",
        ])
        .output()
        .expect("run aborting campaign");
    assert!(
        !aborted.status.success(),
        "--abort-after 2 should have killed the process"
    );
    assert!(
        !resumed_report.exists(),
        "the aborted run must die before writing a report"
    );
    let journaled = read_complete_lines(&journal).expect("journal survives the abort");
    assert!(
        journaled.len() >= 2,
        "at least two scenarios were journaled before the abort"
    );

    let resumed = Command::new(bin)
        .args([
            resumed_report.to_str().expect("utf-8 path"),
            count,
            seed,
            "--resume",
            journal.to_str().expect("utf-8 path"),
            "--journal",
            journal.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("run resumed campaign");
    assert_eq!(
        clean.status.code(),
        resumed.status.code(),
        "clean and resumed runs must agree on the verdict; resumed stderr:\n{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        std::fs::read(&clean_report).expect("clean report"),
        std::fs::read(&resumed_report).expect("resumed report"),
        "resumed report differs from the uninterrupted one"
    );

    for p in [&clean_report, &resumed_report, &journal] {
        let _ = std::fs::remove_file(p);
    }
}
