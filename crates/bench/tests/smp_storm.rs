//! Process-level acceptance tests of the `smp_storm` campaign binary:
//! byte-identical reports across reruns and engines, a real `abort()`
//! mid-sweep resumed byte-identically from its journal, deterministic
//! multi-core metrics snapshots, and a typed loud failure on an unknown
//! `RTHV_ENGINE` value.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use rthv_experiments::read_complete_lines;

fn temp_path(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("rthv-smp-storm-test-{}-{name}", std::process::id()));
    path
}

/// Runs the binary with the smoke geometry, a fixed seed and the given
/// engine, returning the process output. `extra` is appended verbatim.
fn run_storm(engine: &str, report: &Path, extra: &[&str]) -> Output {
    let bin = env!("CARGO_BIN_EXE_smp_storm");
    let mut args = vec![
        report.to_str().expect("utf-8 path").to_string(),
        "5".to_string(),
        "73183".to_string(),
        "--smoke".to_string(),
    ];
    args.extend(extra.iter().map(|s| (*s).to_string()));
    Command::new(bin)
        .args(&args)
        .env("RTHV_ENGINE", engine)
        .output()
        .expect("run smp_storm")
}

#[test]
fn smoke_report_is_byte_identical_across_reruns_and_engines() {
    let heap_a = temp_path("heap-a.json");
    let heap_b = temp_path("heap-b.json");
    let wheel = temp_path("wheel.json");
    for p in [&heap_a, &heap_b, &wheel] {
        let _ = std::fs::remove_file(p);
    }

    let first = run_storm("heap", &heap_a, &[]);
    assert!(
        first.status.success(),
        "smoke campaign failed; stderr:\n{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let second = run_storm("heap", &heap_b, &[]);
    assert!(second.status.success());
    let third = run_storm("wheel", &wheel, &[]);
    assert!(
        third.status.success(),
        "wheel-engine campaign failed; stderr:\n{}",
        String::from_utf8_lossy(&third.stderr)
    );

    let a = std::fs::read(&heap_a).expect("heap report a");
    let b = std::fs::read(&heap_b).expect("heap report b");
    let w = std::fs::read(&wheel).expect("wheel report");
    assert_eq!(a, b, "rerun changed the report");
    assert_eq!(a, w, "the event engine leaked into the report");
    assert!(
        String::from_utf8_lossy(&a).contains("\"pass\":true"),
        "smoke verdict did not pass:\n{}",
        String::from_utf8_lossy(&a)
    );

    for p in [&heap_a, &heap_b, &wheel] {
        let _ = std::fs::remove_file(p);
    }
}

/// The real crash-resume drill: `--abort-after 2` kills the process via
/// `abort()` mid-sweep; a `--resume` run from the surviving journal must
/// reproduce the uninterrupted report byte for byte, verdict included.
#[test]
fn killed_smp_process_resumes_byte_identical() {
    let clean_report = temp_path("proc-clean.json");
    let resumed_report = temp_path("proc-resumed.json");
    let journal = temp_path("proc-journal.jsonl");
    for p in [&clean_report, &resumed_report, &journal] {
        let _ = std::fs::remove_file(p);
    }

    let clean = run_storm("heap", &clean_report, &[]);
    assert!(
        clean_report.exists(),
        "clean campaign wrote no report; stderr:\n{}",
        String::from_utf8_lossy(&clean.stderr)
    );

    let journal_arg = journal.to_str().expect("utf-8 path");
    let aborted = run_storm(
        "heap",
        &resumed_report,
        &["--journal", journal_arg, "--abort-after", "2"],
    );
    assert!(
        !aborted.status.success(),
        "--abort-after 2 should have killed the process"
    );
    assert!(
        !resumed_report.exists(),
        "the aborted run must die before writing a report"
    );
    let journaled = read_complete_lines(&journal).expect("journal survives the abort");
    assert!(
        journaled.len() >= 2,
        "at least two scenarios were journaled before the abort"
    );

    let resumed = run_storm(
        "heap",
        &resumed_report,
        &["--resume", journal_arg, "--journal", journal_arg],
    );
    assert_eq!(
        clean.status.code(),
        resumed.status.code(),
        "clean and resumed runs must agree on the verdict; resumed stderr:\n{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        std::fs::read(&clean_report).expect("clean report"),
        std::fs::read(&resumed_report).expect("resumed report"),
        "resumed report differs from the uninterrupted one"
    );

    for p in [&clean_report, &resumed_report, &journal] {
        let _ = std::fs::remove_file(p);
    }
}

/// Metrics are pure observation: two `--metrics` runs produce
/// byte-identical multi-core snapshots, and attaching the per-core hubs
/// leaves the campaign report untouched.
#[test]
fn metrics_snapshot_is_deterministic_and_pure() {
    let bare_report = temp_path("metrics-bare.json");
    let report_a = temp_path("metrics-a-report.json");
    let report_b = temp_path("metrics-b-report.json");
    let snap_a = temp_path("metrics-a-snap.json");
    let snap_b = temp_path("metrics-b-snap.json");
    for p in [&bare_report, &report_a, &report_b, &snap_a, &snap_b] {
        let _ = std::fs::remove_file(p);
    }

    let bare = run_storm("heap", &bare_report, &[]);
    assert!(bare.status.success());
    let a = run_storm(
        "heap",
        &report_a,
        &["--metrics", snap_a.to_str().expect("utf-8 path")],
    );
    assert!(
        a.status.success(),
        "metrics run failed; stderr:\n{}",
        String::from_utf8_lossy(&a.stderr)
    );
    let b = run_storm(
        "heap",
        &report_b,
        &["--metrics", snap_b.to_str().expect("utf-8 path")],
    );
    assert!(b.status.success());

    assert_eq!(
        std::fs::read(&bare_report).expect("bare report"),
        std::fs::read(&report_a).expect("metrics report"),
        "attaching the metrics hub changed the campaign report"
    );
    let snapshot = std::fs::read(&snap_a).expect("metrics snapshot");
    assert_eq!(
        snapshot,
        std::fs::read(&snap_b).expect("metrics snapshot b"),
        "metrics snapshot is not deterministic"
    );
    let text = String::from_utf8_lossy(&snapshot);
    assert!(
        text.contains("\"obs\": \"multi-core\""),
        "snapshot must be the multi-core hub export:\n{text}"
    );

    for p in [&bare_report, &report_a, &report_b, &snap_a, &snap_b] {
        let _ = std::fs::remove_file(p);
    }
}

/// The end-to-end face of the typed engine-selection error: an unknown
/// `RTHV_ENGINE` value fails loudly, names the offender, and writes no
/// report — never a silent fallback to a default engine.
#[test]
fn unknown_engine_is_a_typed_loud_failure() {
    let report = temp_path("bogus-engine.json");
    let _ = std::fs::remove_file(&report);

    let output = run_storm("bogus", &report, &[]);
    assert!(
        !output.status.success(),
        "an unknown engine must fail the process"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("\"bogus\"") && stderr.contains("event engine"),
        "the failure must name the rejected engine; stderr:\n{stderr}"
    );
    assert!(
        !report.exists(),
        "no report may be written on a config error"
    );
}
