//! Acceptance tests of the supervised campaign: the full standard
//! supervised campaign (nominal ablation + seven tier-1 fault families on
//! composite fault-then-calm plans) must satisfy every acceptance
//! criterion of the supervision subsystem and serialize byte-identically
//! regardless of thread count or run repetition.

use rthv_experiments::SweepRunner;
use rthv_faults::{
    idle_reference, run_supervised_campaign, run_supervised_scenario, SupervisedCampaignConfig,
    SupervisedCampaignReport,
};

/// The real supervised campaign at a test-friendly horizon. Scenario
/// structure, families and seeds are the standard ones; only the horizon
/// shrinks.
fn campaign() -> SupervisedCampaignConfig {
    let mut config = SupervisedCampaignConfig::default();
    config.base.horizon = rthv::time::Duration::from_millis(300);
    config
}

fn fan_out(config: &SupervisedCampaignConfig, threads: usize) -> SupervisedCampaignReport {
    let idle = idle_reference(&config.base).expect("valid config");
    let outcomes = SweepRunner::new(threads).run(&config.base.scenarios, |_, scenario| {
        run_supervised_scenario(config, &idle, scenario).expect("valid config")
    });
    SupervisedCampaignReport::from_outcomes(config, outcomes)
}

#[test]
fn standard_supervised_campaign_meets_every_acceptance_criterion() {
    let config = campaign();
    let report = run_supervised_campaign(&config).expect("valid config");

    // One check to rule them all: zero oracle violations in both arms
    // (independence and quarantine soundness included), no quarantine on
    // the nominal ablation, at least one justified quarantine with a
    // subsequent recovery under storm and flood, and strictly lower
    // well-behaved-victim service loss than monitored-only there.
    let failures = report.acceptance_failures();
    assert!(
        failures.is_empty(),
        "supervised campaign acceptance failed:\n{}",
        failures.join("\n")
    );

    // The decisive contrast is also visible scenario by scenario.
    for s in &report.scenarios {
        if s.label.ends_with("irq-storm") || s.label.ends_with("bursty-flood") {
            assert!(s.supervised.quarantines >= 1, "{}: no quarantine", s.label);
            assert!(s.supervised.recoveries >= 1, "{}: no recovery", s.label);
            assert!(
                s.supervised.mode.worst_victim_loss < s.baseline.worst_victim_loss,
                "{}: supervision did not strictly improve the victims",
                s.label
            );
        }
    }
    let nominal = &report.scenarios[0];
    assert!(nominal.label.ends_with("nominal"));
    assert_eq!(nominal.supervised.quarantines, 0);
    assert_eq!(nominal.supervised.demoted_arrivals, 0);
    assert_eq!(
        nominal.supervised.mode.worst_victim_loss, nominal.baseline.worst_victim_loss,
        "supervision must be inert on a conformant stream"
    );
}

#[test]
fn supervised_report_is_byte_identical_across_threads_and_repetition() {
    let config = campaign();
    let sequential = run_supervised_campaign(&config)
        .expect("valid config")
        .to_json();
    assert_eq!(
        sequential,
        run_supervised_campaign(&config)
            .expect("valid config")
            .to_json(),
        "repetition diverged"
    );
    for threads in [2, 8] {
        assert_eq!(
            sequential,
            fan_out(&config, threads).to_json(),
            "{threads}-thread fan-out diverged from sequential"
        );
    }
}
