//! Ergonomic construction of a simulated platform.

use std::fmt;

use rthv_hypervisor::{
    ConfigError, CostModel, HypervisorConfig, IrqHandlingMode, IrqSourceSpec, Machine, PartitionId,
    PartitionSpec, PolicyOptions, SlotSpec,
};
use rthv_monitor::DeltaFunction;
use rthv_time::Duration;

/// Builder for a [`Machine`] ([C-BUILDER]).
///
/// Partitions are added in TDMA slot order; IRQ sources reference them by
/// index. See the [crate-level quickstart](crate) for a complete example.
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    partitions: Vec<PartitionSpec>,
    sources: Vec<IrqSourceSpec>,
    costs: Option<CostModel>,
    mode: IrqHandlingMode,
    policies: PolicyOptions,
    windows: Option<Vec<SlotSpec>>,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder::new()
    }
}

/// Error returned by [`SystemBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The underlying configuration failed validation.
    Config(ConfigError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Config(err) => write!(f, "invalid system configuration: {err}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Config(err) => Some(err),
        }
    }
}

impl From<ConfigError> for BuildError {
    fn from(err: ConfigError) -> Self {
        BuildError::Config(err)
    }
}

impl SystemBuilder {
    /// Creates an empty builder (baseline mode, paper cost model).
    #[must_use]
    pub fn new() -> Self {
        SystemBuilder {
            partitions: Vec::new(),
            sources: Vec::new(),
            costs: None,
            mode: IrqHandlingMode::Baseline,
            policies: PolicyOptions::default(),
            windows: None,
        }
    }

    /// Appends a TDMA partition with the given slot length.
    #[must_use]
    pub fn partition(mut self, name: impl Into<String>, slot: Duration) -> Self {
        self.partitions.push(PartitionSpec::new(name, slot));
        self
    }

    /// Appends an unmonitored IRQ source subscribed by partition index
    /// `subscriber`.
    #[must_use]
    pub fn irq_source(
        mut self,
        name: impl Into<String>,
        subscriber: u32,
        bottom_cost: Duration,
    ) -> Self {
        self.sources.push(IrqSourceSpec::new(
            name,
            PartitionId::new(subscriber),
            bottom_cost,
        ));
        self
    }

    /// Appends a monitored IRQ source that may be interposed under the
    /// given δ⁻ condition (effective in [`IrqHandlingMode::Interposed`]).
    #[must_use]
    pub fn monitored_irq_source(
        mut self,
        name: impl Into<String>,
        subscriber: u32,
        bottom_cost: Duration,
        delta: DeltaFunction,
    ) -> Self {
        self.sources.push(
            IrqSourceSpec::new(name, PartitionId::new(subscriber), bottom_cost).with_monitor(delta),
        );
        self
    }

    /// Overrides the cost model (defaults to
    /// [`CostModel::paper_arm926ejs`]).
    #[must_use]
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.costs = Some(costs);
        self
    }

    /// Selects the top-handler variant (defaults to baseline).
    #[must_use]
    pub fn mode(mut self, mode: IrqHandlingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the semantic policy options (defaults reproduce the
    /// paper's measured behaviour; alternatives exist for ablation).
    #[must_use]
    pub fn policies(mut self, policies: PolicyOptions) -> Self {
        self.policies = policies;
        self
    }

    /// Appends one window of an explicit ARINC653-style slot layout
    /// (builder style). Once any window is given, the per-partition slot
    /// lengths are ignored in favour of the window list.
    #[must_use]
    pub fn window(mut self, owner: u32, length: Duration) -> Self {
        self.windows
            .get_or_insert_with(Vec::new)
            .push(SlotSpec::new(PartitionId::new(owner), length));
        self
    }

    /// Finalizes the configuration without constructing a machine.
    #[must_use]
    pub fn to_config(&self) -> HypervisorConfig {
        HypervisorConfig {
            partitions: self.partitions.clone(),
            sources: self.sources.clone(),
            costs: self.costs.unwrap_or_default(),
            mode: self.mode,
            policies: self.policies,
            windows: self.windows.clone(),
        }
    }

    /// Builds the machine.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Config`] when the assembled configuration is
    /// invalid (no partitions, zero slots, unknown subscribers, …).
    pub fn build(self) -> Result<Machine, BuildError> {
        Ok(Machine::new(self.to_config())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_valid_machine() {
        let machine = SystemBuilder::new()
            .partition("a", Duration::from_micros(100))
            .partition("b", Duration::from_micros(100))
            .irq_source("irq", 1, Duration::from_micros(5))
            .build()
            .expect("valid");
        assert_eq!(machine.config().partitions.len(), 2);
        assert_eq!(machine.config().mode, IrqHandlingMode::Baseline);
        assert_eq!(machine.config().costs, CostModel::paper_arm926ejs());
    }

    #[test]
    fn empty_builder_fails_validation() {
        let err = SystemBuilder::new().build().unwrap_err();
        assert_eq!(err, BuildError::Config(ConfigError::NoPartitions));
        assert!(err.to_string().contains("no partitions"));
    }

    #[test]
    fn bad_subscriber_fails_validation() {
        let err = SystemBuilder::new()
            .partition("a", Duration::from_micros(100))
            .irq_source("irq", 7, Duration::from_micros(5))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            BuildError::Config(ConfigError::UnknownSubscriber { .. })
        ));
    }

    #[test]
    fn monitored_source_carries_delta() {
        let delta = DeltaFunction::from_dmin(Duration::from_micros(10)).expect("valid");
        let config = SystemBuilder::new()
            .partition("a", Duration::from_micros(100))
            .monitored_irq_source("irq", 0, Duration::from_micros(5), delta.clone())
            .mode(IrqHandlingMode::Interposed)
            .to_config();
        assert_eq!(
            config.sources[0].monitor,
            Some(rthv_monitor::ShaperConfig::Delta(delta))
        );
        assert_eq!(config.mode, IrqHandlingMode::Interposed);
    }

    #[test]
    fn custom_costs_are_applied() {
        let config = SystemBuilder::new()
            .partition("a", Duration::from_micros(100))
            .costs(CostModel::zero())
            .to_config();
        assert_eq!(config.costs, CostModel::zero());
    }
}
