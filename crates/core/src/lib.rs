//! # rthv — sufficient temporal independence and improved interrupt
//! latencies in a real-time hypervisor
//!
//! A from-scratch Rust reproduction of *Beckert, Neukirchner, Ernst,
//! Petters: "Sufficient Temporal Independence and Improved Interrupt
//! Latencies in a Real-Time Hypervisor"* (DAC 2014).
//!
//! TDMA-scheduled hypervisors isolate partitions completely — at the cost
//! of interrupt latencies governed by the TDMA cycle: an IRQ arriving right
//! after its subscriber's slot waits almost a full cycle for its bottom
//! handler. The paper relaxes complete isolation to **sufficient temporal
//! independence**: bottom handlers may run inside *foreign* slots
//! (*interposed* handling) as long as a δ⁻ activation monitor bounds how
//! often, which bounds the interference on every other partition
//! (`⌈Δt/d_min⌉ · C'_BH`, Eq. 14).
//!
//! This facade crate re-exports the whole stack and adds:
//!
//! * [`SystemBuilder`] — ergonomic construction of a simulated platform;
//! * [`PaperSetup`] — the Section-6 evaluation configuration in one value;
//! * [`scenarios`] — one runner per table/figure of the paper's evaluation
//!   (Figure 6a–c, Figure 7, the Section-6.2 overhead numbers, the
//!   analysis-vs-simulation bound check, and a temporal-independence
//!   experiment).
//!
//! # Quickstart
//!
//! ```
//! use rthv::{SystemBuilder, IrqHandlingMode};
//! use rthv::monitor::DeltaFunction;
//! use rthv::time::{Duration, Instant};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two 6 ms application slots and a 2 ms housekeeping slot; one timer
//! // IRQ with a 30 µs bottom handler subscribed by partition 1,
//! // interposable with d_min = 3 ms.
//! let mut machine = SystemBuilder::new()
//!     .partition("app1", Duration::from_micros(6_000))
//!     .partition("app2", Duration::from_micros(6_000))
//!     .partition("housekeeping", Duration::from_micros(2_000))
//!     .monitored_irq_source(
//!         "timer",
//!         1,
//!         Duration::from_micros(30),
//!         DeltaFunction::from_dmin(Duration::from_millis(3))?,
//!     )
//!     .mode(IrqHandlingMode::Interposed)
//!     .build()?;
//!
//! // An IRQ in a foreign slot gets interposed: latency ≪ TDMA cycle.
//! machine.schedule_irq(rthv::IrqSourceId::new(0), Instant::from_micros(100))?;
//! machine.run_until_complete(Instant::from_micros(1_000_000));
//! let report = machine.finish();
//! assert!(report.recorder.max_latency().expect("one IRQ") < Duration::from_micros(200));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod paper;
pub mod scenarios;

pub use builder::{BuildError, SystemBuilder};
pub use paper::PaperSetup;

// The platform types most users need, at the crate root.
pub use rthv_hypervisor::{
    render_timeline, AdmissionClock, AdmissionRecord, BoundaryPolicy, ConfigError, CoreCounters,
    CoreFault, CostModel, Counters, EngineChoice, EngineKind, EngineSelectError, EngineStats,
    FailoverPolicy, FallbackRoute, HandlingClass, HealthSignal, HealthState, HealthTracker,
    HealthTransition, HypervisorConfig, IrqCompletion, IrqFlagSemantics, IrqHandlingMode,
    IrqSourceId, IrqSourceSpec, Machine, MachineError, MachineSnapshot, MultiMachine,
    MultiRunReport, MultiSnapshot, OverflowPolicy, PartitionId, PartitionService, PartitionSpec,
    Platform, PlatformError, PlatformScheduleError, PlatformSource, PolicyOptions, RerouteBudget,
    RunReport, ScheduleIrqError, ServiceInterval, ServiceKind, ShedReason, ShedRecord, SlotSpec,
    Span, StepChoice, StepKind, StepSelectError, SupervisionEvent, SupervisionEventKind,
    SupervisionPolicy, SupervisionReport, Supervisor, TdmaSchedule, TraceRecorder, TransitionCause,
};

/// Virtual-time primitives ([`rthv_time`]).
pub mod time {
    pub use rthv_time::{ClockModel, Duration, Instant, InvalidFrequencyError};
}

/// δ⁻ activation monitoring ([`rthv_monitor`]).
pub mod monitor {
    pub use rthv_monitor::{
        interference_bound, interference_bound_dmin, token_bucket_interference, ActivationMonitor,
        Admission, DeltaFunction, DeltaFunctionError, DeltaLearner, MonitorStats, Shaper,
        ShaperConfig, TokenBucket,
    };
}

/// Worst-case latency analysis ([`rthv_analysis`]).
pub mod analysis {
    pub use rthv_analysis::{
        baseline_irq_wcrt, busy_window, chain_latency, guest_task_wcrt, interposed_irq_wcrt,
        irq_best_case, output_event_model, propagate_chain, tdma_interference, violating_irq_wcrt,
        AnalysisError, EventModel, GuestTaskSpec, Interferer, IrqTask, MonitoredSupply,
        PatternLayoutError, PatternSupply, ResponseRange, SupplyBound, TdmaSlot, TdmaSupply,
        WcrtResult,
    };
}

/// Guest-OS task layer ([`rthv_guest`]).
pub mod guest {
    pub use rthv_guest::{
        replay, replay_events, EventTask, GuestReport, GuestTask, GuestTaskSet, TaskReport,
        TaskSetError,
    };
}

/// Arrival-trace generators ([`rthv_workload`]).
pub mod workload {
    pub use rthv_workload::{
        read_trace, write_trace, ArrivalTrace, AutomotiveTraceBuilder, BurstSpec,
        ExponentialArrivals, PeriodicJitterArrivals, PeriodicTaskSpec, ReadTraceError, TraceError,
    };
}

/// Flight-recorder observability: metrics hub, counters, latency
/// histograms, and bound-headroom gauges ([`rthv_obs`]).
pub mod obs {
    pub use rthv_obs::{
        EngineObs, FlightRecorder, HeadroomGauge, MetricsHub, ObsConfig, ObsCounters, ObsEvent,
        ObsEventKind, SourceObs,
    };
}

/// Latency statistics ([`rthv_stats`]).
pub mod stats {
    pub use rthv_stats::{
        csv_field, csv_row, histogram_to_csv, running_average, series_to_csv, HistogramError,
        LatencyHistogram, Summary,
    };
}

/// The deterministic event engines ([`rthv_sim`]).
pub mod sim {
    pub use rthv_sim::{
        Engine, EngineKind, EngineQueue, EngineStats, EventId, EventQueue, SchedulePastError,
        WheelEngine,
    };
}
