//! The paper's Section-6 evaluation setup as one configurable value.

use serde::{Deserialize, Serialize};

use rthv_hypervisor::{
    CostModel, HypervisorConfig, IrqHandlingMode, IrqSourceSpec, PartitionId, PartitionSpec,
};
use rthv_monitor::DeltaFunction;
use rthv_time::Duration;

/// The evaluation platform of Section 6: two 6000 µs application partitions
/// plus a 2000 µs housekeeping partition (`T_TDMA = 14000 µs`), one
/// monitored timer IRQ subscribed by application partition 2, and the
/// ARM926ej-s cost model.
///
/// The paper does not state `C_BH` explicitly; 30 µs places direct
/// latencies in the paper's "up to 50 µs" bin (see DESIGN.md).
///
/// # Examples
///
/// ```
/// use rthv::PaperSetup;
/// use rthv::time::Duration;
///
/// let setup = PaperSetup::default();
/// assert_eq!(setup.tdma_cycle(), Duration::from_millis(14));
/// // C'_BH = 30 + 4.385 + 2·50 µs (Eq. 13):
/// assert_eq!(setup.effective_bottom_cost(), Duration::from_nanos(134_385));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperSetup {
    /// Slot length of each application partition (paper: 6000 µs).
    pub app_slot: Duration,
    /// Slot length of the housekeeping partition (paper: 2000 µs).
    pub housekeeping_slot: Duration,
    /// Bottom-handler WCET `C_BH` of the monitored IRQ source.
    pub bottom_cost: Duration,
    /// Hypervisor primitive costs.
    pub costs: CostModel,
}

impl Default for PaperSetup {
    fn default() -> Self {
        PaperSetup {
            app_slot: Duration::from_micros(6_000),
            housekeeping_slot: Duration::from_micros(2_000),
            bottom_cost: Duration::from_micros(30),
            costs: CostModel::paper_arm926ejs(),
        }
    }
}

impl PaperSetup {
    /// The subscriber of the monitored IRQ source: application partition 2
    /// (index 1).
    #[must_use]
    pub fn subscriber(&self) -> PartitionId {
        PartitionId::new(1)
    }

    /// `T_TDMA`: two application slots plus housekeeping.
    #[must_use]
    pub fn tdma_cycle(&self) -> Duration {
        self.app_slot * 2 + self.housekeeping_slot
    }

    /// `C'_BH` (Eq. 13) for the monitored source.
    #[must_use]
    pub fn effective_bottom_cost(&self) -> Duration {
        self.costs.effective_bottom_cost(self.bottom_cost)
    }

    /// Mean interarrival time `λ = C'_BH / U` for a target long-term
    /// bottom-handler load `U` (Eq. 17).
    ///
    /// # Panics
    ///
    /// Panics if `load` is not in `(0, 1)`.
    #[must_use]
    pub fn mean_interarrival(&self, load: f64) -> Duration {
        assert!(
            load > 0.0 && load < 1.0,
            "IRQ load must be within (0, 1), got {load}"
        );
        let nanos = self.effective_bottom_cost().as_nanos() as f64 / load;
        Duration::from_nanos(nanos.round() as u64)
    }

    /// Builds the hypervisor configuration for a given mode and (optional)
    /// monitoring condition on the timer source.
    #[must_use]
    pub fn config(
        &self,
        mode: IrqHandlingMode,
        monitor: Option<DeltaFunction>,
    ) -> HypervisorConfig {
        let mut source = IrqSourceSpec::new("timer", self.subscriber(), self.bottom_cost);
        source.monitor = monitor.map(rthv_monitor::ShaperConfig::Delta);
        HypervisorConfig {
            partitions: vec![
                PartitionSpec::new("app1", self.app_slot),
                PartitionSpec::new("app2", self.app_slot),
                PartitionSpec::new("housekeeping", self.housekeeping_slot),
            ],
            sources: vec![source],
            costs: self.costs,
            mode,
            policies: Default::default(),
            windows: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_geometry() {
        let setup = PaperSetup::default();
        assert_eq!(setup.tdma_cycle(), Duration::from_micros(14_000));
        assert_eq!(setup.subscriber().index(), 1);
        let config = setup.config(IrqHandlingMode::Baseline, None);
        assert!(config.validate().is_ok());
        assert_eq!(config.partitions.len(), 3);
        assert_eq!(config.tdma_cycle(), Duration::from_micros(14_000));
    }

    #[test]
    fn mean_interarrival_follows_eq17() {
        let setup = PaperSetup::default();
        // U = 10 %: λ = 134.385 µs / 0.1 ≈ 1.344 ms.
        let lambda = setup.mean_interarrival(0.10);
        assert_eq!(lambda, Duration::from_nanos(1_343_850));
        // U = 1 %: ten times longer.
        assert_eq!(
            setup.mean_interarrival(0.01),
            Duration::from_nanos(13_438_500)
        );
    }

    #[test]
    #[should_panic(expected = "IRQ load")]
    fn mean_interarrival_rejects_silly_loads() {
        let _ = PaperSetup::default().mean_interarrival(1.5);
    }

    #[test]
    fn config_carries_monitor() {
        let setup = PaperSetup::default();
        let delta = DeltaFunction::from_dmin(Duration::from_millis(3)).expect("valid");
        let config = setup.config(IrqHandlingMode::Interposed, Some(delta.clone()));
        assert_eq!(
            config.sources[0].monitor,
            Some(rthv_monitor::ShaperConfig::Delta(delta))
        );
    }
}
