//! Ablation of the two semantic choices the paper leaves implicit.
//!
//! The paper's prose does not fix (1) what happens when a TDMA boundary
//! hits an open interposed window, nor (2) which timestamp the monitoring
//! condition reads. Its *measured* Figure 6c ("no IRQ is delayed" for
//! `d_min`-conformant arrivals) is only reproducible with
//! [`BoundaryPolicy::DeferToWindow`] and [`AdmissionClock::IrqTimestamp`];
//! this experiment quantifies how far the alternatives deviate.

use rthv_hypervisor::{
    AdmissionClock, BoundaryPolicy, HandlingClass, IrqHandlingMode, IrqSourceId, Machine,
    PolicyOptions,
};
use rthv_monitor::DeltaFunction;
use rthv_time::{Duration, Instant};
use rthv_workload::ExponentialArrivals;

use crate::PaperSetup;

/// Parameters of the ablation experiment.
#[derive(Debug, Clone)]
pub struct AblationConfig {
    /// Platform setup (defaults to the paper's).
    pub setup: PaperSetup,
    /// Monitoring distance; arrivals are clamped to it (scenario 2).
    pub dmin: Duration,
    /// Number of IRQs.
    pub irqs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            setup: PaperSetup::default(),
            dmin: Duration::from_millis(3),
            irqs: 5_000,
            seed: 0xAB1_2014,
        }
    }
}

/// One policy combination's outcome.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// The policy combination.
    pub policies: PolicyOptions,
    /// Fraction of IRQs that ended up delayed (paper's 6c: none).
    pub delayed_fraction: f64,
    /// Mean latency.
    pub mean_latency: Duration,
    /// Maximum latency.
    pub max_latency: Duration,
    /// Monitor denials (spurious ones under the processing-time clock).
    pub monitor_denied: u64,
    /// Windows terminated by boundaries (abort policy only).
    pub aborted_windows: u64,
    /// Boundaries deferred behind windows (defer policy only).
    pub deferred_boundaries: u64,
}

/// Runs all four policy combinations over the identical
/// `d_min`-conformant arrival trace.
///
/// # Panics
///
/// Panics if a run fails to complete within a generous deadline.
#[must_use]
pub fn run_ablation(config: &AblationConfig) -> Vec<AblationRow> {
    let setup = &config.setup;
    let trace = ExponentialArrivals::new(config.dmin, config.seed)
        .with_min_distance(config.dmin)
        .generate(config.irqs, Instant::ZERO);
    let last = *trace.as_slice().last().expect("non-empty trace");
    let deadline = last + setup.tdma_cycle() * 100;

    let combos = [
        (BoundaryPolicy::DeferToWindow, AdmissionClock::IrqTimestamp),
        (
            BoundaryPolicy::DeferToWindow,
            AdmissionClock::ProcessingTime,
        ),
        (BoundaryPolicy::AbortWindow, AdmissionClock::IrqTimestamp),
        (BoundaryPolicy::AbortWindow, AdmissionClock::ProcessingTime),
    ];

    combos
        .into_iter()
        .map(|(boundary, admission_clock)| {
            let policies = PolicyOptions {
                boundary,
                admission_clock,
                ..PolicyOptions::default()
            };
            let mut cfg = setup.config(
                IrqHandlingMode::Interposed,
                Some(DeltaFunction::from_dmin(config.dmin).expect("positive d_min")),
            );
            cfg.policies = policies;
            let mut machine = Machine::new(cfg).expect("paper setup is valid");
            machine
                .schedule_irq_trace(IrqSourceId::new(0), trace.as_slice())
                .expect("trace lies in the future");
            assert!(
                machine.run_until_complete(deadline),
                "ablation run did not complete"
            );
            let report = machine.finish();
            AblationRow {
                policies,
                delayed_fraction: report.recorder.fraction_class(HandlingClass::Delayed),
                mean_latency: report.recorder.mean_latency().expect("completions"),
                max_latency: report.recorder.max_latency().expect("completions"),
                monitor_denied: report.counters.monitor_denied,
                aborted_windows: report.counters.aborted_windows,
                deferred_boundaries: report.counters.deferred_boundaries,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AblationConfig {
        AblationConfig {
            irqs: 1_200,
            ..AblationConfig::default()
        }
    }

    #[test]
    fn paper_policies_reproduce_fig6c() {
        let rows = run_ablation(&small());
        let paper = &rows[0];
        assert_eq!(paper.policies.boundary, BoundaryPolicy::DeferToWindow);
        assert_eq!(paper.policies.admission_clock, AdmissionClock::IrqTimestamp);
        assert!(
            paper.delayed_fraction < 0.005,
            "paper policies delayed {}",
            paper.delayed_fraction
        );
        assert_eq!(paper.aborted_windows, 0);
        assert_eq!(paper.monitor_denied, 0);
    }

    #[test]
    fn processing_time_clock_spuriously_denies() {
        let rows = run_ablation(&small());
        let processing = &rows[1];
        assert!(processing.monitor_denied > 0);
        assert!(processing.delayed_fraction > rows[0].delayed_fraction);
    }

    #[test]
    fn abort_policy_demotes_straddling_windows() {
        let rows = run_ablation(&small());
        let abort = &rows[2];
        assert!(abort.aborted_windows > 0);
        assert_eq!(abort.deferred_boundaries, 0);
        assert!(abort.delayed_fraction > rows[0].delayed_fraction);
        assert!(abort.mean_latency >= rows[0].mean_latency);
    }

    #[test]
    fn all_variants_complete_and_stay_safe() {
        // Whatever the policy, every IRQ completes and the machine stays
        // consistent — the ablations only trade latency, never lose IRQs.
        for row in run_ablation(&small()) {
            assert!(row.mean_latency < Duration::from_millis(3), "{row:?}");
        }
    }
}
