//! Analytic worst-case latency bounds (Section 4/5.1) checked against
//! simulated maxima.
//!
//! Three rows, matching the paper's three analysis cases:
//!
//! * **baseline** — Eq. 11/12, delayed handling only;
//! * **interposed (conformant)** — Eq. 16/12, all arrivals satisfy `d_min`;
//! * **violating** — Eq. 7 with `C'_TH`: delayed handling plus monitoring
//!   overhead in the top handler.
//!
//! Two refinements over the paper's Eq. 8, both required because this
//! simulator models effects the paper's formulas idealize away:
//!
//! 1. the TDMA context switch is charged explicitly at slot entry, so the
//!    *usable* slot is `T_i − C_ctx`;
//! 2. in monitored mode a slot start can additionally be deferred behind
//!    one in-flight interposed window (≤ `C'_BH`), so the violating-case
//!    bound uses `T_i − C_ctx − C'_BH`.
//!
//! The conformant workload is guard-banded away from the last
//! `C_TH + C_BH` of the subscriber's own slot: a bottom handler straddling
//! its *own* slot end is re-queued to the next opportunity, a corner case
//! outside the paper's Eq. 16 model (and statistically invisible in its
//! Figure 6c); EXPERIMENTS.md discusses it.

use rthv_analysis::{
    baseline_irq_wcrt, interposed_irq_wcrt, violating_irq_wcrt, EventModel, IrqTask, TdmaSlot,
};
use rthv_hypervisor::{IrqHandlingMode, IrqSourceId, Machine};
use rthv_monitor::DeltaFunction;
use rthv_time::{Duration, Instant};
use rthv_workload::ExponentialArrivals;

use crate::PaperSetup;

/// Parameters of the bound-vs-simulation experiment.
#[derive(Debug, Clone)]
pub struct BoundsConfig {
    /// Platform setup (defaults to the paper's).
    pub setup: PaperSetup,
    /// Monitoring distance `d_min` (also the conformant arrival distance).
    pub dmin: Duration,
    /// IRQs per simulated scenario.
    pub irqs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BoundsConfig {
    fn default() -> Self {
        BoundsConfig {
            setup: PaperSetup::default(),
            dmin: Duration::from_millis(3),
            irqs: 4_000,
            seed: 0xB0D_2014,
        }
    }
}

/// One analytic-vs-simulated row.
#[derive(Debug, Clone)]
pub struct BoundsRow {
    /// Scenario name.
    pub name: &'static str,
    /// Analytic worst-case latency.
    pub analytic: Duration,
    /// Worst latency observed in the simulation.
    pub simulated_max: Duration,
    /// Mean latency observed in the simulation.
    pub simulated_mean: Duration,
    /// `true` when the analytic bound dominates the observation.
    pub holds: bool,
}

/// Runs the three analyses and their matching simulations.
///
/// # Panics
///
/// Panics if an analysis diverges (mis-parameterized experiment) or a
/// simulation fails to complete.
#[must_use]
pub fn run_bounds(config: &BoundsConfig) -> Vec<BoundsRow> {
    let setup = &config.setup;
    let costs = setup.costs;
    let task = IrqTask {
        model: EventModel::sporadic(config.dmin),
        top_cost: costs.top_handler,
        bottom_cost: setup.bottom_cost,
    };
    // Usable slot: the entry context switch eats into the slot.
    let tdma = TdmaSlot {
        cycle: setup.tdma_cycle(),
        slot: setup.app_slot - costs.context_switch,
    };

    let analytic_baseline = baseline_irq_wcrt(&task, tdma, &[]).expect("paper setup converges");
    let effective =
        task.with_effective_costs(costs.monitor_check, costs.sched_manip, costs.context_switch);
    let analytic_interposed = interposed_irq_wcrt(&effective, &[]).expect("paper setup converges");
    // The violating case runs in monitored mode, where slot starts can be
    // deferred behind an in-flight window (≤ C'_BH each).
    let tdma_monitored = TdmaSlot {
        cycle: tdma.cycle,
        slot: tdma.slot - setup.effective_bottom_cost(),
    };
    let analytic_violating = violating_irq_wcrt(&task, costs.monitor_check, tdma_monitored, &[])
        .expect("paper setup converges");

    // Guard band for the conformant workload: an arrival within the last
    // C_TH + C_BH (plus latching slack) of the subscriber's own slot would
    // straddle the slot end — outside the Eq. 16 model.
    let guard = costs.monitored_top_cost() + setup.bottom_cost + costs.context_switch;
    let own_slot_end = setup.app_slot * 2; // partition 1 owns [T_0, 2·T_0).
    let cycle = setup.tdma_cycle();
    let straddles_own_slot_end = move |t: Instant| {
        let offset = t.cycle_offset(cycle);
        offset >= own_slot_end - guard && offset < own_slot_end
    };

    let simulate = |mode: IrqHandlingMode, monitored: bool, clamp: bool, guard_band: bool| {
        let monitor =
            monitored.then(|| DeltaFunction::from_dmin(config.dmin).expect("positive d_min"));
        let mut machine = Machine::new(setup.config(mode, monitor)).expect("paper setup is valid");
        let mut generator = ExponentialArrivals::new(config.dmin, config.seed);
        if clamp {
            generator = generator.with_min_distance(config.dmin);
        }
        let trace = generator.generate(config.irqs, Instant::ZERO);
        let arrivals: Vec<Instant> = trace
            .iter()
            .copied()
            .filter(|&t| !(guard_band && straddles_own_slot_end(t)))
            .collect();
        machine
            .schedule_irq_trace(IrqSourceId::new(0), &arrivals)
            .expect("trace lies in the future");
        let last = *arrivals.last().expect("non-empty trace");
        assert!(
            machine.run_until_complete(last + setup.tdma_cycle() * 100),
            "bounds simulation did not complete"
        );
        let report = machine.finish();
        (
            report.recorder.max_latency().expect("completions exist"),
            report.recorder.mean_latency().expect("completions exist"),
        )
    };

    let (base_max, base_mean) = simulate(IrqHandlingMode::Baseline, false, true, false);
    let (inter_max, inter_mean) = simulate(IrqHandlingMode::Interposed, true, true, true);
    let (viol_max, viol_mean) = simulate(IrqHandlingMode::Interposed, true, false, true);

    // Violating arrivals mix conformant (interposed) and violating
    // (delayed) IRQs; the applicable bound is the max of both analyses.
    let violating_bound = analytic_violating.wcrt.max(analytic_interposed.wcrt);

    vec![
        BoundsRow {
            name: "baseline (Eq. 11/12)",
            analytic: analytic_baseline.wcrt,
            simulated_max: base_max,
            simulated_mean: base_mean,
            holds: analytic_baseline.wcrt >= base_max,
        },
        BoundsRow {
            name: "interposed, conformant (Eq. 16/12)",
            analytic: analytic_interposed.wcrt,
            simulated_max: inter_max,
            simulated_mean: inter_mean,
            holds: analytic_interposed.wcrt >= inter_max,
        },
        BoundsRow {
            name: "violating d_min (Eq. 7 + Eq. 15)",
            analytic: violating_bound,
            simulated_max: viol_max,
            simulated_mean: viol_mean,
            holds: violating_bound >= viol_max,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BoundsConfig {
        BoundsConfig {
            irqs: 800,
            ..BoundsConfig::default()
        }
    }

    #[test]
    fn all_bounds_dominate_simulation() {
        for row in run_bounds(&small()) {
            assert!(
                row.holds,
                "{}: analytic {} < simulated {}",
                row.name, row.analytic, row.simulated_max
            );
        }
    }

    #[test]
    fn interposed_bound_is_decoupled_from_tdma() {
        let rows = run_bounds(&small());
        let baseline = &rows[0];
        let interposed = &rows[1];
        // The headline claim: worst case drops from the TDMA scale to the
        // handler scale.
        assert!(baseline.analytic > Duration::from_millis(8));
        assert!(interposed.analytic < Duration::from_micros(500));
    }

    #[test]
    fn bounds_are_not_vacuously_loose() {
        // The baseline simulation should approach its bound within ~15 %
        // (the sweep hits arrivals right after the subscriber's slot).
        let rows = run_bounds(&BoundsConfig {
            irqs: 4_000,
            ..small()
        });
        let baseline = &rows[0];
        let ratio = baseline.simulated_max.as_nanos() as f64 / baseline.analytic.as_nanos() as f64;
        assert!(ratio > 0.85, "baseline bound too loose: ratio {ratio}");
    }

    #[test]
    fn violating_mean_exceeds_conformant_mean() {
        let rows = run_bounds(&small());
        assert!(rows[2].simulated_mean > rows[1].simulated_mean);
    }
}
