//! Figure 6: IRQ latency histograms for 15000 IRQs (Section 6.1).
//!
//! Three variants over the same arrival statistics:
//!
//! * **6a** — monitoring disabled: ~40 % direct (≤ 50 µs), ~60 % delayed,
//!   roughly uniform up to `T_TDMA − T_i = 8000 µs`; average ≈ 2500 µs.
//! * **6b** — monitoring enabled, arrivals may violate `d_min`: roughly
//!   40/40/20 direct/interposed/delayed; average ≈ 1200 µs.
//! * **6c** — monitoring enabled, interarrivals clamped to `d_min`: no
//!   delayed IRQs at all; average ≈ 150 µs (~16× better than 6a) and the
//!   worst case decoupled from the TDMA cycle.

use rthv_hypervisor::{EngineChoice, HandlingClass, IrqHandlingMode, IrqSourceId, Machine};
use rthv_monitor::DeltaFunction;
use rthv_stats::LatencyHistogram;
use rthv_time::{Duration, Instant};
use rthv_workload::ExponentialArrivals;

use crate::PaperSetup;

/// Which Figure-6 panel to reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fig6Variant {
    /// Figure 6a: monitoring disabled (baseline top handler).
    Unmonitored,
    /// Figure 6b: monitoring enabled, arrivals unconstrained (`λ = d_min`
    /// but exponential gaps may undercut it).
    Monitored,
    /// Figure 6c: monitoring enabled and every interarrival ≥ `d_min`.
    MonitoredNoViolations,
}

impl Fig6Variant {
    /// Short label matching the paper's sub-figure.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Fig6Variant::Unmonitored => "6a monitoring disabled",
            Fig6Variant::Monitored => "6b monitoring enabled",
            Fig6Variant::MonitoredNoViolations => "6c monitoring enabled, no violations",
        }
    }
}

/// Parameters of the Figure-6 experiment.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// Platform setup (defaults to the paper's).
    pub setup: PaperSetup,
    /// Long-term bottom-handler loads `U_IRQ` (paper: 1 %, 5 %, 10 %).
    pub loads: Vec<f64>,
    /// IRQs generated per load (paper: 15000 cumulative over three loads).
    pub irqs_per_load: usize,
    /// Histogram bin width.
    pub bin_width: Duration,
    /// Histogram range (overflow beyond).
    pub range: Duration,
    /// Base RNG seed; each load perturbs it.
    pub seed: u64,
    /// Event engine backing every load's machine. Perf-only: the run's
    /// outputs are engine-invariant, so benchmarks flip this to compare
    /// engines within one process.
    pub engine: EngineChoice,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            setup: PaperSetup::default(),
            loads: vec![0.01, 0.05, 0.10],
            irqs_per_load: 5_000,
            bin_width: Duration::from_micros(250),
            range: Duration::from_micros(8_500),
            seed: 0xD4C_2014,
            engine: EngineChoice::Auto,
        }
    }
}

/// Result of one load level within a variant.
#[derive(Debug, Clone)]
pub struct LoadRun {
    /// The long-term bottom-handler load `U_IRQ`.
    pub load: f64,
    /// Mean interarrival time `λ = C'_BH / U` (also `d_min`).
    pub lambda: Duration,
    /// Mean latency at this load.
    pub mean_latency: Duration,
    /// Maximum latency at this load.
    pub max_latency: Duration,
    /// Completions per handling class: (direct, interposed, delayed).
    pub class_counts: (usize, usize, usize),
    /// Total partition context switches in this run.
    pub context_switches: u64,
    /// Context switches caused by TDMA rotation alone.
    pub slot_switches: u64,
}

/// Cumulative result of one Figure-6 variant over all loads.
#[derive(Debug, Clone)]
pub struct Fig6Run {
    /// The reproduced panel.
    pub variant: Fig6Variant,
    /// Latency histogram cumulative over all loads (the plotted data).
    pub histogram: LatencyHistogram,
    /// Mean latency over all IRQs (the vertical line in the plots).
    pub mean_latency: Duration,
    /// Maximum observed latency.
    pub max_latency: Duration,
    /// Cumulative class counts: (direct, interposed, delayed).
    pub class_counts: (usize, usize, usize),
    /// Per-load breakdown.
    pub per_load: Vec<LoadRun>,
}

impl Fig6Run {
    /// Total number of completed IRQs.
    #[must_use]
    pub fn total(&self) -> usize {
        self.class_counts.0 + self.class_counts.1 + self.class_counts.2
    }

    /// Fractions (direct, interposed, delayed) of all completions.
    #[must_use]
    pub fn class_fractions(&self) -> (f64, f64, f64) {
        let n = self.total().max(1) as f64;
        (
            self.class_counts.0 as f64 / n,
            self.class_counts.1 as f64 / n,
            self.class_counts.2 as f64 / n,
        )
    }
}

/// Completed simulation of a single load level — the unit a parallel sweep
/// fans out. [`merge_fig6_loads`] folds outcomes (in load order) into the
/// exact [`Fig6Run`] the sequential loop produces: histogram bins, class
/// counts and latency sums are all plain additions, so the merge is
/// bit-identical regardless of which thread ran which load.
#[derive(Debug, Clone)]
pub struct Fig6LoadOutcome {
    /// This load's latency histogram (the configured geometry).
    pub histogram: LatencyHistogram,
    /// The per-load summary row.
    pub run: LoadRun,
    /// Sum of all latencies at this load, for the exact cumulative mean.
    pub total_latency_nanos: u128,
    /// Simulation events the machine processed for this load.
    pub events_processed: u64,
}

/// Runs a single load level of a Figure-6 variant (`index` into
/// [`Fig6Config::loads`]). Each load owns its RNG seed, so loads can run
/// concurrently and still reproduce the sequential experiment exactly.
///
/// # Panics
///
/// Panics if `index` is out of range, the configuration is structurally
/// invalid, or the run fails to complete within a generous deadline (which
/// would indicate overload and a mis-parameterized experiment).
#[must_use]
pub fn run_fig6_load(config: &Fig6Config, variant: Fig6Variant, index: usize) -> Fig6LoadOutcome {
    let load = config.loads[index];
    let lambda = config.setup.mean_interarrival(load);
    let seed = config
        .seed
        .wrapping_add(index as u64)
        .wrapping_mul(0x9E37_79B9);
    let mut generator = ExponentialArrivals::new(lambda, seed);
    if variant == Fig6Variant::MonitoredNoViolations {
        generator = generator.with_min_distance(lambda);
    }
    let trace = generator.generate(config.irqs_per_load, Instant::ZERO);

    let (mode, monitor) = match variant {
        Fig6Variant::Unmonitored => (IrqHandlingMode::Baseline, None),
        Fig6Variant::Monitored | Fig6Variant::MonitoredNoViolations => (
            IrqHandlingMode::Interposed,
            Some(DeltaFunction::from_dmin(lambda).expect("positive d_min")),
        ),
    };
    let mut hv = config.setup.config(mode, monitor);
    hv.policies.engine = config.engine;
    let mut machine = Machine::new(hv).expect("paper setup is a valid configuration");
    machine
        .schedule_irq_trace(IrqSourceId::new(0), trace.as_slice())
        .expect("trace lies in the future");
    let last = *trace.as_slice().last().expect("non-empty trace");
    let deadline = last + config.setup.tdma_cycle() * 100;
    assert!(
        machine.run_until_complete(deadline),
        "figure-6 run did not complete — configuration overloaded?"
    );
    let report = machine.finish();

    let mut histogram = LatencyHistogram::new(config.bin_width, config.range)
        .expect("experiment histogram geometry is valid");
    let mut load_hist_count = 0u64;
    let mut load_total: u128 = 0;
    let mut load_max = Duration::ZERO;
    let mut load_classes = (0usize, 0usize, 0usize);
    for completion in report.recorder.completions() {
        let latency = completion.latency();
        histogram.add(latency);
        load_total += u128::from(latency.as_nanos());
        load_hist_count += 1;
        load_max = load_max.max(latency);
        match completion.class {
            HandlingClass::Direct => load_classes.0 += 1,
            HandlingClass::Interposed => load_classes.1 += 1,
            HandlingClass::Delayed => load_classes.2 += 1,
        }
    }
    Fig6LoadOutcome {
        histogram,
        run: LoadRun {
            load,
            lambda,
            mean_latency: Duration::from_nanos(
                u64::try_from(load_total / u128::from(load_hist_count.max(1))).unwrap_or(u64::MAX),
            ),
            max_latency: load_max,
            class_counts: load_classes,
            context_switches: report.counters.context_switches,
            slot_switches: report.counters.slot_switches,
        },
        total_latency_nanos: load_total,
        events_processed: report.counters.events_processed,
    }
}

/// Folds per-load outcomes — **in load order** — into the cumulative
/// [`Fig6Run`]. Every aggregate is a sum or max of per-load values, so the
/// result is identical to running the loads sequentially into one
/// accumulator.
///
/// # Panics
///
/// Panics if `outcomes` is empty or the histograms disagree on geometry
/// (they cannot, when produced by [`run_fig6_load`] from one config).
#[must_use]
pub fn merge_fig6_loads(variant: Fig6Variant, outcomes: Vec<Fig6LoadOutcome>) -> Fig6Run {
    let mut outcomes = outcomes.into_iter();
    let first = outcomes.next().expect("at least one load outcome");
    let mut histogram = first.histogram;
    let mut total_nanos = first.total_latency_nanos;
    let mut max_latency = first.run.max_latency;
    let mut class_counts = first.run.class_counts;
    let mut per_load = vec![first.run];
    for outcome in outcomes {
        histogram.merge(&outcome.histogram);
        total_nanos += outcome.total_latency_nanos;
        max_latency = max_latency.max(outcome.run.max_latency);
        class_counts.0 += outcome.run.class_counts.0;
        class_counts.1 += outcome.run.class_counts.1;
        class_counts.2 += outcome.run.class_counts.2;
        per_load.push(outcome.run);
    }
    let total_count = (class_counts.0 + class_counts.1 + class_counts.2) as u128;
    Fig6Run {
        variant,
        histogram,
        mean_latency: Duration::from_nanos(
            u64::try_from(total_nanos / total_count.max(1)).unwrap_or(u64::MAX),
        ),
        max_latency,
        class_counts,
        per_load,
    }
}

/// Runs one Figure-6 variant (all loads, sequentially).
///
/// # Panics
///
/// Panics if the configuration is structurally invalid or a run fails to
/// complete within a generous deadline (which would indicate overload and a
/// mis-parameterized experiment).
#[must_use]
pub fn run_fig6(config: &Fig6Config, variant: Fig6Variant) -> Fig6Run {
    let outcomes = (0..config.loads.len())
        .map(|index| run_fig6_load(config, variant, index))
        .collect();
    merge_fig6_loads(variant, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down config so the test suite stays fast; statistics over
    /// 600 IRQs per load are stable enough for the shape assertions.
    fn small() -> Fig6Config {
        Fig6Config {
            irqs_per_load: 600,
            ..Fig6Config::default()
        }
    }

    #[test]
    fn unmonitored_shape_matches_fig6a() {
        let run = run_fig6(&small(), Fig6Variant::Unmonitored);
        let (direct, interposed, delayed) = run.class_fractions();
        // Paper: ~40 % direct, ~60 % delayed, nothing interposed.
        assert!((0.32..0.54).contains(&direct), "direct fraction {direct}");
        assert_eq!(interposed, 0.0);
        assert!(
            (0.46..0.68).contains(&delayed),
            "delayed fraction {delayed}"
        );
        // Average ≈ 2500 µs; worst ≈ T_TDMA − T_i.
        assert!(
            (1_900..3_100).contains(&run.mean_latency.as_micros()),
            "mean {}",
            run.mean_latency
        );
        assert!(run.max_latency > Duration::from_micros(7_000));
        assert_eq!(run.total(), 1_800);
    }

    #[test]
    fn monitored_shape_matches_fig6b() {
        let run = run_fig6(&small(), Fig6Variant::Monitored);
        let (direct, interposed, delayed) = run.class_fractions();
        // Paper: ~40/40/20.
        assert!((0.30..0.55).contains(&direct), "direct {direct}");
        assert!(
            (0.25..0.55).contains(&interposed),
            "interposed {interposed}"
        );
        assert!((0.05..0.35).contains(&delayed), "delayed {delayed}");
        // Average roughly halves; worst case still TDMA-bound.
        assert!(
            run.mean_latency < Duration::from_micros(1_900),
            "mean {}",
            run.mean_latency
        );
        assert!(run.max_latency > Duration::from_micros(6_000));
    }

    #[test]
    fn clamped_shape_matches_fig6c() {
        let run = run_fig6(&small(), Fig6Variant::MonitoredNoViolations);
        let (direct, interposed, delayed) = run.class_fractions();
        // Paper: "no IRQ is delayed (direct 40 %, interposed 60 %)". The
        // only delayed events left are the FIFO shadow of bottom handlers
        // that straddled their own slot end (≈ C_BH/T_TDMA ≈ 0.2 % of all
        // IRQs) — invisible in the paper's rounded percentages.
        assert!(
            delayed < 0.005,
            "delayed fraction {delayed} too high for 6c"
        );
        assert!(direct > 0.2 && interposed > 0.4, "{direct}/{interposed}");
        // Average collapses by an order of magnitude.
        assert!(
            run.mean_latency < Duration::from_micros(300),
            "mean {}",
            run.mean_latency
        );
        // Worst case is decoupled from the TDMA cycle for all but the rare
        // bottom handlers that straddle their own slot end (≈ C_BH/T_TDMA
        // of all IRQs): at least 99 % of latencies stay below 1 ms.
        let above_1ms: u64 = run
            .histogram
            .iter()
            .filter(|(start, _)| *start >= Duration::from_millis(1))
            .map(|(_, count)| count)
            .sum::<u64>()
            + run.histogram.overflow();
        assert!(
            (above_1ms as f64) < 0.01 * run.total() as f64,
            "{above_1ms} of {} latencies above 1 ms",
            run.total()
        );
    }

    #[test]
    fn histogram_covers_all_completions() {
        let run = run_fig6(&small(), Fig6Variant::Unmonitored);
        assert_eq!(run.histogram.count() as usize, run.total());
    }

    #[test]
    fn per_load_rows_are_reported() {
        let run = run_fig6(&small(), Fig6Variant::Monitored);
        assert_eq!(run.per_load.len(), 3);
        for row in &run.per_load {
            let n = row.class_counts.0 + row.class_counts.1 + row.class_counts.2;
            assert_eq!(n, 600);
            assert!(row.lambda >= Duration::from_micros(1_000));
        }
        // Higher load → shorter λ.
        assert!(run.per_load[0].lambda > run.per_load[2].lambda);
    }

    #[test]
    fn variant_labels() {
        assert!(Fig6Variant::Unmonitored.label().contains("disabled"));
        assert!(Fig6Variant::MonitoredNoViolations
            .label()
            .contains("no violations"));
    }
}
