//! Figure 7 (Appendix A): self-learning δ⁻ on an automotive activation
//! trace, with the run phase bounded to a fraction of the recorded load.
//!
//! The paper replays a measured ECU trace (~11000 activations): the first
//! 10 % learn a δ⁻ function with `l = 5` (Algorithm 1) while only delayed
//! and direct handling is active; the learned function is then clamped to a
//! predefined bound δ⁻_b (Algorithm 2) and the remaining 90 % run in
//! monitored mode. Bounds allowing 100 % / 25 % / 12.5 % / 6.25 % of the
//! recorded load yield average run-phase latencies of roughly
//! 120 / 300 / 900 / 1600 µs (graphs a–d).
//!
//! This reproduction substitutes a synthetic ECU trace (see
//! [`AutomotiveTraceBuilder`]); the learn → bound → run pipeline is
//! identical.

use rthv_hypervisor::{HandlingClass, IrqHandlingMode, IrqSourceId, Machine};
use rthv_monitor::{DeltaFunction, DeltaLearner};
use rthv_stats::running_average;
use rthv_time::{Duration, Instant};
use rthv_workload::AutomotiveTraceBuilder;

use crate::PaperSetup;

/// The predefined upper bound δ⁻_b applied by Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fig7Bound {
    /// Graph a: δ⁻_b does not bound the recorded δ⁻ — the learned function
    /// is used as-is and (in the paper) no IRQ is delayed.
    Unbounded,
    /// Graphs b–d: admit only this fraction of the recorded load (0.25,
    /// 0.125, 0.0625 in the paper) by stretching the learned distances.
    LoadFraction(f64),
}

impl Fig7Bound {
    /// The allowed load fraction (1.0 for [`Fig7Bound::Unbounded`]).
    #[must_use]
    pub fn fraction(self) -> f64 {
        match self {
            Fig7Bound::Unbounded => 1.0,
            Fig7Bound::LoadFraction(f) => f,
        }
    }
}

/// Parameters of the Figure-7 experiment.
#[derive(Debug, Clone)]
pub struct Fig7Config {
    /// Platform setup (defaults to the paper's).
    pub setup: PaperSetup,
    /// Total activations in the trace (paper: ~11000).
    pub events: usize,
    /// Fraction of events used for learning (paper: 10 %).
    pub learn_fraction: f64,
    /// Length `l` of the learned δ⁻ (paper: 5).
    pub l: usize,
    /// RNG seed for the synthetic ECU trace.
    pub seed: u64,
}

impl Default for Fig7Config {
    fn default() -> Self {
        Fig7Config {
            setup: PaperSetup::default(),
            events: 11_000,
            learn_fraction: 0.10,
            l: 5,
            seed: 0xECD_2014,
        }
    }
}

/// One curve of Figure 7.
#[derive(Debug, Clone)]
pub struct Fig7Curve {
    /// The applied bound.
    pub bound: Fig7Bound,
    /// Running average latency after each IRQ event (the plotted series).
    pub running_avg: Vec<Duration>,
    /// Number of learn-phase events.
    pub learn_events: usize,
    /// Mean latency over the learn phase (monitoring inactive).
    pub learn_avg: Duration,
    /// Mean latency over the monitored run phase.
    pub run_avg: Duration,
    /// Run-phase completions per class: (direct, interposed, delayed).
    pub run_class_counts: (usize, usize, usize),
    /// The δ⁻ actually enforced during the run phase (learned, bounded).
    pub enforced_delta: DeltaFunction,
}

/// Runs one Figure-7 curve.
///
/// # Panics
///
/// Panics on structurally invalid configuration or if the run does not
/// complete within a generous deadline.
#[must_use]
pub fn run_fig7(config: &Fig7Config, bound: Fig7Bound) -> Fig7Curve {
    let trace = AutomotiveTraceBuilder::typical_ecu(config.seed).build(config.events);
    let (learn, _) = trace.split_at_fraction(config.learn_fraction);
    let learn_events = learn.len();

    // Algorithm 1 over the learn prefix. Running it offline over the same
    // timestamps is equivalent to the paper's in-top-handler execution.
    let mut learner = DeltaLearner::new(config.l);
    for &arrival in learn.as_slice() {
        learner.observe(arrival);
    }
    // Algorithm 2: clamp to δ⁻_b.
    let enforced = match bound {
        Fig7Bound::Unbounded => learner.learned_delta().expect("time-ordered trace"),
        Fig7Bound::LoadFraction(fraction) => {
            let learned = learner.learned_delta().expect("time-ordered trace");
            let delta_b = learned.scale_load(fraction);
            learner.finish(&delta_b).expect("time-ordered trace")
        }
    };

    // Learn phase runs with only direct/delayed handling active; the
    // placeholder δ⁻ is irrelevant in baseline mode.
    let placeholder = DeltaFunction::from_dmin(Duration::MAX).expect("valid");
    let mut machine = Machine::new(
        config
            .setup
            .config(IrqHandlingMode::Baseline, Some(placeholder)),
    )
    .expect("paper setup is a valid configuration");
    machine
        .schedule_irq_trace(IrqSourceId::new(0), trace.as_slice())
        .expect("trace lies in the future");

    // Drive through the learn phase, then flip to monitored run mode.
    let switch_at = if learn_events == 0 {
        Instant::ZERO
    } else {
        trace.as_slice()[learn_events - 1]
    };
    machine.run_until(switch_at);
    machine.set_mode(IrqHandlingMode::Interposed);
    machine.set_monitor_delta(IrqSourceId::new(0), enforced.clone());

    let last = *trace.as_slice().last().expect("non-empty trace");
    let deadline = last + config.setup.tdma_cycle() * 1_000;
    assert!(
        machine.run_until_complete(deadline),
        "figure-7 run did not complete — configuration overloaded?"
    );
    let report = machine.finish();

    // Order completions by arrival (IRQ event index) for the x-axis.
    let mut completions = report.recorder.completions().to_vec();
    completions.sort_by_key(|c| c.seq);
    let latencies: Vec<Duration> = completions.iter().map(|c| c.latency()).collect();
    let running_avg = running_average(latencies.iter().copied());

    let mean_over = |slice: &[Duration]| -> Duration {
        if slice.is_empty() {
            return Duration::ZERO;
        }
        let total: u128 = slice.iter().map(|d| u128::from(d.as_nanos())).sum();
        Duration::from_nanos(u64::try_from(total / slice.len() as u128).unwrap_or(u64::MAX))
    };
    let learn_avg = mean_over(&latencies[..learn_events.min(latencies.len())]);
    let run_avg = mean_over(&latencies[learn_events.min(latencies.len())..]);

    let mut run_class_counts = (0usize, 0usize, 0usize);
    for completion in &completions[learn_events.min(completions.len())..] {
        match completion.class {
            HandlingClass::Direct => run_class_counts.0 += 1,
            HandlingClass::Interposed => run_class_counts.1 += 1,
            HandlingClass::Delayed => run_class_counts.2 += 1,
        }
    }

    Fig7Curve {
        bound,
        running_avg,
        learn_events,
        learn_avg,
        run_avg,
        run_class_counts,
        enforced_delta: enforced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scaled-down trace for test speed; shapes remain stable.
    fn small() -> Fig7Config {
        Fig7Config {
            events: 2_200,
            ..Fig7Config::default()
        }
    }

    #[test]
    fn unbounded_run_phase_drops_latency() {
        let curve = run_fig7(&small(), Fig7Bound::Unbounded);
        assert_eq!(curve.learn_events, 220);
        // Learn phase behaves like the unmonitored scenario (~2-3 ms);
        // the monitored run phase collapses the average.
        assert!(
            curve.learn_avg > Duration::from_micros(1_500),
            "learn avg {}",
            curve.learn_avg
        );
        assert!(
            curve.run_avg < Duration::from_micros(600),
            "run avg {}",
            curve.run_avg
        );
        // The running average visibly decays after the learning phase.
        let end = *curve.running_avg.last().expect("events");
        let at_switch = curve.running_avg[curve.learn_events - 1];
        assert!(end < at_switch / 2, "no visible drop: {at_switch} → {end}");
    }

    #[test]
    fn tighter_bounds_increase_latency_monotonically() {
        let config = small();
        let a = run_fig7(&config, Fig7Bound::Unbounded);
        let b = run_fig7(&config, Fig7Bound::LoadFraction(0.25));
        let d = run_fig7(&config, Fig7Bound::LoadFraction(0.0625));
        assert!(
            a.run_avg < b.run_avg && b.run_avg < d.run_avg,
            "expected {} < {} < {}",
            a.run_avg,
            b.run_avg,
            d.run_avg
        );
        // Tighter bounds delay more IRQs.
        assert!(a.run_class_counts.2 <= b.run_class_counts.2);
        assert!(b.run_class_counts.2 < d.run_class_counts.2);
    }

    #[test]
    fn enforced_delta_reflects_the_bound() {
        let config = small();
        let a = run_fig7(&config, Fig7Bound::Unbounded);
        let b = run_fig7(&config, Fig7Bound::LoadFraction(0.25));
        // A 25 % bound stretches every distance 4×.
        assert_eq!(b.enforced_delta.dmin(), a.enforced_delta.dmin() * 4);
    }

    #[test]
    fn running_average_covers_every_event() {
        let config = small();
        let curve = run_fig7(&config, Fig7Bound::LoadFraction(0.25));
        assert_eq!(curve.running_avg.len(), config.events);
    }

    #[test]
    fn bound_fraction_accessor() {
        assert_eq!(Fig7Bound::Unbounded.fraction(), 1.0);
        assert_eq!(Fig7Bound::LoadFraction(0.125).fraction(), 0.125);
    }
}
