//! Guest-task-level temporal independence: a guest task set inside a
//! *victim* partition, simulated with and without a maximum-rate interposed
//! IRQ storm against another partition, checked against the hierarchical
//! supply-bound analysis.
//!
//! This closes the loop on the paper's Eq. 2: the victim's guest tasks keep
//! meeting the response times computed from the TDMA supply minus the
//! enforced Eq. 14 interference — regardless of how the IRQ-subscribing
//! partition behaves.

use rthv_analysis::{guest_task_wcrt, GuestTaskSpec, MonitoredSupply, TdmaSupply};
use rthv_guest::{replay, GuestReport, GuestTask, GuestTaskSet};
use rthv_hypervisor::{IrqHandlingMode, IrqSourceId, Machine, PartitionId};
use rthv_monitor::DeltaFunction;
use rthv_time::{Duration, Instant};
use rthv_workload::ArrivalTrace;

use crate::PaperSetup;

/// Parameters of the guest-task experiment.
#[derive(Debug, Clone)]
pub struct GuestTasksConfig {
    /// Platform setup (defaults to the paper's).
    pub setup: PaperSetup,
    /// Monitoring distance; the storm fires exactly this often.
    pub dmin: Duration,
    /// Measurement horizon.
    pub horizon: Duration,
    /// The victim partition hosting the guest tasks (not the subscriber).
    pub victim: PartitionId,
    /// The guest task set (priority-ordered).
    pub tasks: GuestTaskSet,
}

impl Default for GuestTasksConfig {
    fn default() -> Self {
        let ms = Duration::from_millis;
        GuestTasksConfig {
            setup: PaperSetup::default(),
            dmin: ms(3),
            horizon: Duration::from_secs(2),
            victim: PartitionId::new(0),
            tasks: GuestTaskSet::new(vec![
                GuestTask::new("control", ms(28), ms(2)),
                GuestTask::new("sensor-fusion", ms(56), ms(4)),
                GuestTask::new("logger", ms(112), ms(6)),
            ])
            .expect("default guest set is valid"),
        }
    }
}

/// Result of the guest-task experiment.
#[derive(Debug, Clone)]
pub struct GuestTasksReport {
    /// Guest replay without any IRQ load.
    pub idle: GuestReport,
    /// Guest replay under the maximum-rate conformant storm.
    pub storm: GuestReport,
    /// Hierarchical WCRT bounds from the plain TDMA supply (per task).
    pub tdma_bounds: Vec<Option<Duration>>,
    /// Hierarchical WCRT bounds from the monitored supply (TDMA − Eq. 14).
    pub monitored_bounds: Vec<Option<Duration>>,
    /// `true` when every observed response time under the storm stays
    /// within the monitored-supply bound.
    pub holds: bool,
}

/// Runs the guest-task experiment.
///
/// # Panics
///
/// Panics if `victim` is the IRQ subscriber or the configuration is
/// structurally invalid.
#[must_use]
pub fn run_guest_tasks(config: &GuestTasksConfig) -> GuestTasksReport {
    let setup = &config.setup;
    assert_ne!(
        config.victim,
        setup.subscriber(),
        "the victim must not be the IRQ subscriber"
    );

    let run = |with_storm: bool| -> GuestReport {
        let monitor = DeltaFunction::from_dmin(config.dmin).expect("positive d_min");
        let mut machine = Machine::new(setup.config(IrqHandlingMode::Interposed, Some(monitor)))
            .expect("paper setup is valid");
        machine.enable_service_trace();
        if with_storm {
            let count = (config.horizon.as_nanos() / config.dmin.as_nanos()) as usize;
            let arrivals = ArrivalTrace::from_distances(
                Instant::ZERO + config.dmin,
                &vec![config.dmin; count.saturating_sub(1)],
            );
            machine
                .schedule_irq_trace(IrqSourceId::new(0), arrivals.as_slice())
                .expect("trace lies in the future");
        }
        machine.run_until(Instant::ZERO + config.horizon);
        let report = machine.finish();
        let intervals = report
            .service_intervals
            .expect("service tracing was enabled");
        replay(
            &config.tasks,
            &intervals[config.victim.index()],
            Instant::ZERO + config.horizon,
        )
    };

    let idle = run(false);
    let storm = run(true);

    // Analytic bounds. The victim's usable slot loses the entry context
    // switch; the monitored supply additionally loses the Eq. 14 budget.
    let tdma = TdmaSupply::new(
        setup.tdma_cycle(),
        setup.app_slot - setup.costs.context_switch,
    );
    let monitored = MonitoredSupply::new(
        tdma,
        config.dmin,
        setup.effective_bottom_cost(),
        setup.costs.monitored_top_cost(),
    );
    let specs: Vec<GuestTaskSpec> = config
        .tasks
        .tasks()
        .iter()
        .map(|t| GuestTaskSpec {
            wcet: t.wcet,
            period: t.period,
        })
        .collect();
    let analysis_horizon = Duration::from_secs(30);
    let tdma_bounds: Vec<Option<Duration>> = guest_task_wcrt(&specs, &tdma, analysis_horizon)
        .into_iter()
        .map(Result::ok)
        .collect();
    let monitored_bounds: Vec<Option<Duration>> =
        guest_task_wcrt(&specs, &monitored, analysis_horizon)
            .into_iter()
            .map(Result::ok)
            .collect();

    let holds = storm
        .tasks
        .iter()
        .zip(&monitored_bounds)
        .all(|(task, bound)| match (task.observed_wcrt, bound) {
            (Some(observed), Some(bound)) => observed <= *bound,
            (None, _) => false,
            (_, None) => false,
        });

    GuestTasksReport {
        idle,
        storm,
        tdma_bounds,
        monitored_bounds,
        holds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GuestTasksConfig {
        GuestTasksConfig {
            horizon: Duration::from_millis(800),
            ..GuestTasksConfig::default()
        }
    }

    #[test]
    fn storm_respects_monitored_bounds() {
        let report = run_guest_tasks(&small());
        assert!(report.holds, "guest WCRT exceeded the monitored bound");
        // All jobs complete in both runs, except possibly the final release
        // whose response window is cut by the measurement horizon.
        for task in report.idle.tasks.iter().chain(&report.storm.tasks) {
            assert!(task.released - task.completed <= 1, "{}", task.name);
            assert_eq!(task.deadline_misses, 0);
        }
    }

    #[test]
    fn monitored_bounds_dominate_tdma_bounds() {
        let report = run_guest_tasks(&small());
        for (tdma, monitored) in report.tdma_bounds.iter().zip(&report.monitored_bounds) {
            let tdma = tdma.expect("feasible under TDMA");
            let monitored = monitored.expect("feasible under monitored supply");
            assert!(monitored >= tdma);
        }
    }

    #[test]
    fn storm_inflates_observed_responses() {
        let report = run_guest_tasks(&small());
        // The lowest-priority task feels the interference most; at minimum
        // the storm must not *reduce* any response.
        let idle_worst = report.idle.tasks[2].observed_wcrt.expect("completed");
        let storm_worst = report.storm.tasks[2].observed_wcrt.expect("completed");
        assert!(storm_worst >= idle_worst);
    }

    #[test]
    fn idle_observations_respect_plain_tdma_bounds() {
        let report = run_guest_tasks(&small());
        for (task, bound) in report.idle.tasks.iter().zip(&report.tdma_bounds) {
            let observed = task.observed_wcrt.expect("completed");
            let bound = bound.expect("feasible");
            assert!(
                observed <= bound,
                "{}: observed {} exceeds TDMA bound {}",
                task.name,
                observed,
                bound
            );
        }
    }

    #[test]
    #[should_panic(expected = "must not be the IRQ subscriber")]
    fn subscriber_cannot_host_the_victim_tasks() {
        let _ = run_guest_tasks(&GuestTasksConfig {
            victim: PartitionId::new(1),
            ..small()
        });
    }
}
