//! Sufficient temporal independence (Eq. 2 / Eq. 14), measured.
//!
//! The safety argument of the paper: a victim partition loses at most
//! `⌈Δt/d_min⌉ · C'_BH` of service to interposed bottom handlers in any
//! window `Δt`, no matter how the IRQ-subscribing partition behaves. This
//! experiment runs a victim partition with and without a maximum-rate
//! conformant IRQ storm against the subscriber, and compares the measured
//! service loss to the bound (plus the top-handler overhead, which the
//! paper accounts separately via Eq. 9/15 and tolerates for the baseline
//! system too).

use rthv_hypervisor::{IrqHandlingMode, IrqSourceId, Machine, PartitionId};
use rthv_monitor::{interference_bound_dmin, DeltaFunction};
use rthv_time::{Duration, Instant};
use rthv_workload::ArrivalTrace;

use crate::PaperSetup;

/// Parameters of the independence experiment.
#[derive(Debug, Clone)]
pub struct IndependenceConfig {
    /// Platform setup (defaults to the paper's).
    pub setup: PaperSetup,
    /// Monitoring distance `d_min`; the storm fires exactly this often.
    pub dmin: Duration,
    /// Measurement horizon.
    pub horizon: Duration,
    /// The victim partition to account (must not be the subscriber).
    pub victim: PartitionId,
}

impl Default for IndependenceConfig {
    fn default() -> Self {
        IndependenceConfig {
            setup: PaperSetup::default(),
            dmin: Duration::from_millis(3),
            horizon: Duration::from_secs(2),
            victim: PartitionId::new(0),
        }
    }
}

/// Measured interference vs the Eq. 14 bound.
#[derive(Debug, Clone)]
pub struct IndependenceReport {
    /// The measurement horizon.
    pub horizon: Duration,
    /// Victim service with no IRQs at all.
    pub idle_service: Duration,
    /// Victim service under the maximum-rate conformant storm.
    pub storm_service: Duration,
    /// Measured loss (`idle − storm`).
    pub lost: Duration,
    /// Eq. 14 interference bound over the horizon.
    pub interposed_bound: Duration,
    /// Top-handler overhead bound over the horizon
    /// (`⌈Δt/d_min⌉ · C'_TH`, the Eq. 9/15 term).
    pub top_handler_bound: Duration,
    /// Number of interposed windows that actually opened.
    pub interposed_windows: u64,
    /// `true` when `lost ≤ interposed_bound + top_handler_bound`.
    pub holds: bool,
}

/// Runs the independence experiment.
///
/// # Panics
///
/// Panics if `victim` is the IRQ subscriber (its service is *supposed* to
/// change) or the configuration is invalid.
#[must_use]
pub fn run_independence(config: &IndependenceConfig) -> IndependenceReport {
    let setup = &config.setup;
    assert_ne!(
        config.victim,
        setup.subscriber(),
        "the victim must not be the IRQ subscriber"
    );

    let service = |with_storm: bool| {
        let monitor = DeltaFunction::from_dmin(config.dmin).expect("positive d_min");
        let mut machine = Machine::new(setup.config(IrqHandlingMode::Interposed, Some(monitor)))
            .expect("paper setup is valid");
        if with_storm {
            // Periodic at exactly d_min: every activation conformant, the
            // densest stream the monitor ever admits.
            let count = (config.horizon.as_nanos() / config.dmin.as_nanos()) as usize;
            let arrivals = ArrivalTrace::from_distances(
                Instant::ZERO + config.dmin,
                &vec![config.dmin; count.saturating_sub(1)],
            );
            machine
                .schedule_irq_trace(IrqSourceId::new(0), arrivals.as_slice())
                .expect("trace lies in the future");
        }
        machine.run_until(Instant::ZERO + config.horizon);
        let report = machine.finish();
        (
            report.counters.service_of(config.victim).total(),
            report.counters.interposed_windows,
        )
    };

    let (idle_service, _) = service(false);
    let (storm_service, interposed_windows) = service(true);
    let lost = idle_service.saturating_sub(storm_service);

    let effective = setup.effective_bottom_cost();
    let interposed_bound = interference_bound_dmin(config.horizon, config.dmin, effective);
    let top_handler_bound = setup
        .costs
        .monitored_top_cost()
        .saturating_mul(config.horizon.div_ceil(config.dmin));

    IndependenceReport {
        horizon: config.horizon,
        idle_service,
        storm_service,
        lost,
        interposed_bound,
        top_handler_bound,
        interposed_windows,
        holds: lost <= interposed_bound + top_handler_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> IndependenceConfig {
        IndependenceConfig {
            horizon: Duration::from_millis(500),
            ..IndependenceConfig::default()
        }
    }

    #[test]
    fn interference_is_bounded() {
        let report = run_independence(&small());
        assert!(
            report.holds,
            "lost {} exceeds bound {} + {}",
            report.lost, report.interposed_bound, report.top_handler_bound
        );
        assert!(report.interposed_windows > 0, "the storm must interpose");
        assert!(report.lost > Duration::ZERO, "a storm must cost something");
    }

    #[test]
    fn bound_is_not_vacuous() {
        // The measured loss should be a sizable fraction of the bound —
        // the storm is the densest admissible stream.
        let report = run_independence(&small());
        let ratio = report.lost.as_nanos() as f64
            / (report.interposed_bound + report.top_handler_bound).as_nanos() as f64;
        assert!(ratio > 0.15, "bound vacuously loose: ratio {ratio}");
    }

    #[test]
    fn housekeeping_partition_is_also_protected() {
        let report = run_independence(&IndependenceConfig {
            victim: PartitionId::new(2),
            ..small()
        });
        assert!(report.holds);
    }

    #[test]
    #[should_panic(expected = "must not be the IRQ subscriber")]
    fn subscriber_cannot_be_the_victim() {
        let _ = run_independence(&IndependenceConfig {
            victim: PartitionId::new(1),
            ..small()
        });
    }
}
