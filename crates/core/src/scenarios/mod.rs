//! Experiment runners — one per table/figure of the paper's evaluation.
//!
//! | Runner | Reproduces |
//! |---|---|
//! | [`fig6`] | Figure 6a/6b/6c — latency histograms for 15000 IRQs under 1/5/10 % load |
//! | [`fig7`] | Figure 7 (Appendix A) — self-learning δ⁻ on an automotive trace, load-bounded run phase |
//! | [`overhead`] | Section 6.2 — monitor/scheduler/context-switch overhead and the context-switch increase |
//! | [`bounds`] | Section 4/5.1 — analytic worst-case latency vs simulated maximum |
//! | [`independence`] | Eq. 2/14 — measured victim-partition interference vs the sufficient-independence bound |
//! | [`guest_tasks`] | guest-level independence — a victim partition's task set under an interposed-IRQ storm vs the hierarchical supply-bound analysis |
//! | [`ablation`] | design-decision ablation — boundary deferral vs abort, arrival-time vs processing-time admission |
//! | [`multi_source`] | multiple IRQ sources — Eq. 9 top-handler interference, mutual window exclusion, aggregate Eq. 14 budgets |
//! | [`shapers`] | related-work comparison — the δ⁻ monitor vs token-bucket throttling (Regehr & Duongsaa, ref. \[11\]) under bursty load |
//! | [`splitting`] | the Section-1 motivation — slot splitting vs interposition: latency vs context-switch overhead |
//!
//! Each runner returns a plain-data result; the row-printing binaries live
//! in the `rthv-experiments` crate.

pub mod ablation;
pub mod bounds;
pub mod fig6;
pub mod fig7;
pub mod guest_tasks;
pub mod independence;
pub mod multi_source;
pub mod overhead;
pub mod shapers;
pub mod splitting;

pub use ablation::{run_ablation, AblationConfig, AblationRow};
pub use bounds::{run_bounds, BoundsConfig, BoundsRow};
pub use fig6::{
    merge_fig6_loads, run_fig6, run_fig6_load, Fig6Config, Fig6LoadOutcome, Fig6Run, Fig6Variant,
    LoadRun,
};
pub use fig7::{run_fig7, Fig7Bound, Fig7Config, Fig7Curve};
pub use guest_tasks::{run_guest_tasks, GuestTasksConfig, GuestTasksReport};
pub use independence::{run_independence, IndependenceConfig, IndependenceReport};
pub use multi_source::{
    run_multi_source, MultiSourceConfig, MultiSourceReport, SourceRow, SourceSpec,
};
pub use overhead::{run_overhead, OverheadConfig, OverheadReport};
pub use shapers::{run_shaper_comparison, ShaperComparisonConfig, ShaperRow};
pub use splitting::{run_splitting, SplittingConfig, SplittingRow};
