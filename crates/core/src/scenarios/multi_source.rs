//! Multiple IRQ sources: top-handler interference (Eq. 9) and aggregate
//! interposition interference across independently monitored sources.
//!
//! The paper's evaluation monitors a single source; its analysis
//! (Eq. 9/11/16) already handles arbitrary interferer sets, and its
//! machinery generalizes: every monitored source gets its own δ⁻ monitor,
//! interposed windows are mutually exclusive (an IRQ arriving while another
//! source's window is open falls back to delayed handling), and the
//! aggregate interference on any victim partition is the **sum** of the
//! per-source Eq. 14 budgets.

use rthv_hypervisor::{
    HandlingClass, HypervisorConfig, IrqHandlingMode, IrqSourceId, IrqSourceSpec, Machine,
    PartitionId, RunReport,
};
use rthv_monitor::DeltaFunction;
use rthv_time::{Duration, Instant};
use rthv_workload::ExponentialArrivals;

use crate::PaperSetup;

/// One IRQ source in the multi-source experiment.
#[derive(Debug, Clone)]
pub struct SourceSpec {
    /// Name used in reports.
    pub name: &'static str,
    /// Subscriber partition.
    pub subscriber: PartitionId,
    /// Bottom-handler WCET.
    pub bottom_cost: Duration,
    /// Monitoring distance (`None` = never interposed).
    pub dmin: Option<Duration>,
}

/// Parameters of the multi-source experiment.
#[derive(Debug, Clone)]
pub struct MultiSourceConfig {
    /// Platform setup (defaults to the paper's geometry and costs).
    pub setup: PaperSetup,
    /// The IRQ sources.
    pub sources: Vec<SourceSpec>,
    /// IRQs per source.
    pub irqs_per_source: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MultiSourceConfig {
    fn default() -> Self {
        let ms = Duration::from_millis;
        let us = Duration::from_micros;
        MultiSourceConfig {
            setup: PaperSetup::default(),
            sources: vec![
                SourceSpec {
                    name: "timer",
                    subscriber: PartitionId::new(1),
                    bottom_cost: us(30),
                    dmin: Some(ms(3)),
                },
                SourceSpec {
                    name: "can",
                    subscriber: PartitionId::new(0),
                    bottom_cost: us(20),
                    dmin: Some(ms(5)),
                },
                SourceSpec {
                    name: "ethernet",
                    subscriber: PartitionId::new(2),
                    bottom_cost: us(50),
                    dmin: None,
                },
            ],
            irqs_per_source: 2_000,
            seed: 0x3517_2014,
        }
    }
}

/// Per-source outcome.
#[derive(Debug, Clone)]
pub struct SourceRow {
    /// Source name.
    pub name: &'static str,
    /// Mean latency in baseline mode.
    pub baseline_mean: Duration,
    /// Mean latency in interposed mode.
    pub monitored_mean: Duration,
    /// Completions per class in interposed mode: (direct, interposed,
    /// delayed).
    pub class_counts: (usize, usize, usize),
}

/// Result of the multi-source experiment.
#[derive(Debug, Clone)]
pub struct MultiSourceReport {
    /// Per-source latency comparison.
    pub sources: Vec<SourceRow>,
    /// Aggregate interference bound over the run horizon:
    /// `Σ_s (⌈H/d_min_s⌉ · C'_BH_s + ⌈H/d_min_s⌉ · C'_TH)`.
    pub aggregate_bound: Duration,
    /// Largest measured per-partition service loss (vs the baseline run).
    pub worst_service_loss: Duration,
    /// `true` when the loss stays within the aggregate bound.
    pub holds: bool,
}

fn build_config(config: &MultiSourceConfig, mode: IrqHandlingMode) -> HypervisorConfig {
    let mut hv = config.setup.config(mode, None);
    hv.sources = config
        .sources
        .iter()
        .map(|s| {
            let mut spec = IrqSourceSpec::new(s.name, s.subscriber, s.bottom_cost);
            spec.monitor = s.dmin.map(|d| {
                rthv_monitor::ShaperConfig::Delta(
                    DeltaFunction::from_dmin(d).expect("positive d_min"),
                )
            });
            spec
        })
        .collect();
    hv
}

/// Runs the multi-source experiment: the identical per-source traces on the
/// baseline and the monitored hypervisor.
///
/// # Panics
///
/// Panics if a run fails to complete within a generous deadline.
#[must_use]
pub fn run_multi_source(config: &MultiSourceConfig) -> MultiSourceReport {
    let setup = &config.setup;
    // Per-source clamped exponential traces (the clamp keeps monitored
    // sources conformant and bounds the unmonitored one's burstiness).
    let traces: Vec<Vec<Instant>> = config
        .sources
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let gap = s.dmin.unwrap_or(Duration::from_millis(4));
            ExponentialArrivals::new(gap, config.seed.wrapping_add(i as u64 * 7919))
                .with_min_distance(gap)
                .generate(config.irqs_per_source, Instant::ZERO)
                .as_slice()
                .to_vec()
        })
        .collect();
    let last = traces
        .iter()
        .filter_map(|t| t.last())
        .max()
        .copied()
        .expect("sources exist");
    let deadline = last + setup.tdma_cycle() * 200;

    let run = |mode: IrqHandlingMode| -> RunReport {
        let mut machine = Machine::new(build_config(config, mode)).expect("valid config");
        for (i, trace) in traces.iter().enumerate() {
            machine
                .schedule_irq_trace(IrqSourceId::new(i as u32), trace)
                .expect("trace lies in the future");
        }
        assert!(
            machine.run_until_complete(deadline),
            "multi-source run did not complete"
        );
        machine.finish()
    };

    let baseline = run(IrqHandlingMode::Baseline);
    let monitored = run(IrqHandlingMode::Interposed);

    let per_source = |report: &RunReport, source: usize| -> Vec<Duration> {
        report
            .recorder
            .completions()
            .iter()
            .filter(|c| c.source.index() == source)
            .map(|c| c.latency())
            .collect()
    };
    let mean = |latencies: &[Duration]| -> Duration {
        let total: u128 = latencies.iter().map(|d| u128::from(d.as_nanos())).sum();
        Duration::from_nanos(
            u64::try_from(total / latencies.len().max(1) as u128).unwrap_or(u64::MAX),
        )
    };

    let sources = config
        .sources
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let base = per_source(&baseline, i);
            let moni = per_source(&monitored, i);
            let mut class_counts = (0usize, 0usize, 0usize);
            for c in monitored
                .recorder
                .completions()
                .iter()
                .filter(|c| c.source.index() == i)
            {
                match c.class {
                    HandlingClass::Direct => class_counts.0 += 1,
                    HandlingClass::Interposed => class_counts.1 += 1,
                    HandlingClass::Delayed => class_counts.2 += 1,
                }
            }
            SourceRow {
                name: s.name,
                baseline_mean: mean(&base),
                monitored_mean: mean(&moni),
                class_counts,
            }
        })
        .collect();

    // Aggregate interference budget over the (shorter) run horizon.
    let horizon = baseline
        .end
        .min(monitored.end)
        .duration_since(Instant::ZERO);
    let mut aggregate_bound = Duration::ZERO;
    for s in &config.sources {
        if let Some(dmin) = s.dmin {
            let events = horizon.div_ceil(dmin);
            let per_event =
                setup.costs.effective_bottom_cost(s.bottom_cost) + setup.costs.monitored_top_cost();
            aggregate_bound = aggregate_bound.saturating_add(per_event * events);
        }
    }

    // Worst measured service loss across partitions, compared over the
    // common horizon (approximated by the counters of the two runs).
    let mut worst_service_loss = Duration::ZERO;
    for p in 0..3usize {
        let base = baseline.counters.service[p].user;
        let moni = monitored.counters.service[p].user;
        worst_service_loss = worst_service_loss.max(base.saturating_sub(moni));
    }

    MultiSourceReport {
        sources,
        aggregate_bound,
        worst_service_loss,
        holds: worst_service_loss <= aggregate_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MultiSourceConfig {
        MultiSourceConfig {
            irqs_per_source: 400,
            ..MultiSourceConfig::default()
        }
    }

    #[test]
    fn monitored_sources_improve_unmonitored_do_not_interpose() {
        let report = run_multi_source(&small());
        let timer = &report.sources[0];
        let can = &report.sources[1];
        let eth = &report.sources[2];
        assert!(timer.monitored_mean < timer.baseline_mean / 4);
        assert!(can.monitored_mean < can.baseline_mean / 4);
        // The unmonitored source never interposes.
        assert_eq!(eth.class_counts.1, 0);
    }

    #[test]
    fn aggregate_interference_is_bounded() {
        let report = run_multi_source(&small());
        assert!(
            report.holds,
            "service loss {} exceeds aggregate bound {}",
            report.worst_service_loss, report.aggregate_bound
        );
    }

    #[test]
    fn window_exclusivity_keeps_collisions_delayed_not_lost() {
        // All IRQs complete even when two monitored sources compete for
        // interposition windows.
        let report = run_multi_source(&small());
        for row in &report.sources {
            let total = row.class_counts.0 + row.class_counts.1 + row.class_counts.2;
            assert_eq!(total, 400, "{} lost IRQs", row.name);
        }
    }
}
