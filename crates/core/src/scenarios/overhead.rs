//! Section 6.2: memory and runtime overhead of interposed handling.
//!
//! The paper reports (ARM926ej-s, `gcc -O1`):
//!
//! * 1120 B of hypervisor code (392 B scheduler changes, 456 B modified top
//!   handler, 272 B monitoring function) and 28 B of monitor data;
//! * `C_Mon` ≈ 128 instructions, `C_sched` ≈ 877 instructions, ~10000
//!   cycles per context switch;
//! * ~10 % more context switches in scenario 2 with `d_min = λ`.
//!
//! Code-size bytes are compiler artifacts of the original C implementation;
//! this reproduction reports the architecturally meaningful counterparts:
//! the cost-model parameters in cycles, the monitor state footprint, and
//! the measured context-switch increase of the simulation.

use rthv_hypervisor::{IrqHandlingMode, IrqSourceId, Machine};
use rthv_monitor::DeltaFunction;
use rthv_time::{ClockModel, Duration, Instant};
use rthv_workload::ExponentialArrivals;

use crate::PaperSetup;

/// Parameters of the overhead experiment.
#[derive(Debug, Clone)]
pub struct OverheadConfig {
    /// Platform setup (defaults to the paper's).
    pub setup: PaperSetup,
    /// Long-term bottom-handler load (scenario 2 uses `d_min = λ`).
    pub load: f64,
    /// Number of IRQs to run.
    pub irqs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OverheadConfig {
    fn default() -> Self {
        OverheadConfig {
            setup: PaperSetup::default(),
            load: 0.01,
            irqs: 5_000,
            seed: 0x0EA_2014,
        }
    }
}

/// Measured and modeled overheads.
#[derive(Debug, Clone)]
pub struct OverheadReport {
    /// `C_Mon` in processor cycles (paper: 128 instructions).
    pub monitor_cycles: u64,
    /// `C_sched` in processor cycles (paper: 877 instructions).
    pub sched_cycles: u64,
    /// `C_ctx` in processor cycles (paper: ~10000).
    pub context_switch_cycles: u64,
    /// Monitor state footprint for `l = 1` on a 32-bit target (paper: 28 B
    /// for its whole monitoring scheme).
    pub monitor_state_bytes_l1: usize,
    /// Monitor state footprint for the Appendix-A `l = 5` monitor.
    pub monitor_state_bytes_l5: usize,
    /// Context switches of the baseline run.
    pub baseline_context_switches: u64,
    /// Context switches of the monitored run over the same arrivals.
    pub monitored_context_switches: u64,
    /// Relative increase (paper: ~10 % for scenario 2).
    pub context_switch_increase: f64,
    /// Interposed windows opened in the monitored run.
    pub interposed_windows: u64,
    /// Hypervisor time of the baseline run.
    pub baseline_hypervisor_time: Duration,
    /// Hypervisor time of the monitored run.
    pub monitored_hypervisor_time: Duration,
}

/// Runs the overhead experiment: the same `d_min`-conformant arrival trace
/// on the baseline and the monitored hypervisor.
///
/// # Panics
///
/// Panics if either run fails to complete in a generous deadline.
#[must_use]
pub fn run_overhead(config: &OverheadConfig) -> OverheadReport {
    let setup = &config.setup;
    let lambda = setup.mean_interarrival(config.load);
    let trace = ExponentialArrivals::new(lambda, config.seed)
        .with_min_distance(lambda)
        .generate(config.irqs, Instant::ZERO);
    let last = *trace.as_slice().last().expect("non-empty trace");
    let deadline = last + setup.tdma_cycle() * 100;

    let run = |mode: IrqHandlingMode, monitor: Option<DeltaFunction>| {
        let mut machine = Machine::new(setup.config(mode, monitor)).expect("paper setup is valid");
        machine
            .schedule_irq_trace(IrqSourceId::new(0), trace.as_slice())
            .expect("trace lies in the future");
        assert!(
            machine.run_until_complete(deadline),
            "overhead run did not complete"
        );
        machine.finish()
    };

    let baseline = run(IrqHandlingMode::Baseline, None);
    let monitored = run(
        IrqHandlingMode::Interposed,
        Some(DeltaFunction::from_dmin(lambda).expect("positive d_min")),
    );

    let clock = ClockModel::ARM926EJS_200MHZ;
    let increase = (monitored.counters.context_switches as f64
        - baseline.counters.context_switches as f64)
        / baseline.counters.context_switches as f64;

    OverheadReport {
        monitor_cycles: clock.duration_to_cycles(setup.costs.monitor_check),
        sched_cycles: clock.duration_to_cycles(setup.costs.sched_manip),
        context_switch_cycles: clock.duration_to_cycles(setup.costs.context_switch),
        monitor_state_bytes_l1: DeltaFunction::from_dmin(lambda)
            .expect("positive d_min")
            .state_bytes_arm32(),
        monitor_state_bytes_l5: DeltaFunction::new(vec![lambda; 5])
            .expect("constant entries are monotonic")
            .state_bytes_arm32(),
        baseline_context_switches: baseline.counters.context_switches,
        monitored_context_switches: monitored.counters.context_switches,
        context_switch_increase: increase,
        interposed_windows: monitored.counters.interposed_windows,
        baseline_hypervisor_time: baseline.counters.hypervisor_time,
        monitored_hypervisor_time: monitored.counters.hypervisor_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> OverheadConfig {
        OverheadConfig {
            irqs: 400,
            ..OverheadConfig::default()
        }
    }

    #[test]
    fn cost_parameters_match_section_6_2() {
        let report = run_overhead(&small());
        assert_eq!(report.monitor_cycles, 128);
        assert_eq!(report.sched_cycles, 877);
        assert_eq!(report.context_switch_cycles, 10_000);
    }

    #[test]
    fn monitor_state_is_tens_of_bytes() {
        let report = run_overhead(&small());
        assert_eq!(report.monitor_state_bytes_l1, 12);
        assert_eq!(report.monitor_state_bytes_l5, 44);
        // Same order of magnitude as the paper's 28 B.
        assert!(report.monitor_state_bytes_l1 < 64);
    }

    #[test]
    fn interpositions_add_two_switches_each() {
        // The two runs end at slightly different virtual times, so the TDMA
        // rotation counts may differ by one; everything beyond that is the
        // two switches per interposed window.
        let report = run_overhead(&small());
        let extra = report.monitored_context_switches - report.baseline_context_switches;
        assert!(
            extra.abs_diff(2 * report.interposed_windows) <= 1,
            "extra {extra} vs 2x{}",
            report.interposed_windows
        );
        assert!(report.interposed_windows > 0);
    }

    #[test]
    fn context_switch_increase_is_moderate_at_one_percent_load() {
        // At U = 1 % and d_min = λ ≈ 13.4 ms, interpositions are about as
        // frequent as TDMA slots are in one direction — the paper reports
        // ~10 %; accept the same order of magnitude.
        let report = run_overhead(&small());
        assert!(
            (0.01..0.60).contains(&report.context_switch_increase),
            "increase {}",
            report.context_switch_increase
        );
    }

    #[test]
    fn monitored_run_spends_more_hypervisor_time() {
        let report = run_overhead(&small());
        assert!(report.monitored_hypervisor_time > report.baseline_hypervisor_time);
    }
}
