//! δ⁻ monitoring vs token-bucket throttling (the related-work comparison).
//!
//! Regehr & Duongsaa's interrupt-overload throttling (the paper's
//! reference \[11\]) shapes at the *source* with a rate limiter; the paper's
//! δ⁻ monitor shapes the *interposition* stream. Run both as the admission
//! policy of the modified top handler over an identical bursty workload and
//! the trade-off appears directly: a bucket with burst capacity `b` serves
//! bursts with low latency, but its guaranteed interference on every other
//! partition grows by `b · C'_BH` (it can release `b` back-to-back
//! interpositions), while the δ⁻ monitor pins the worst case at
//! `⌈Δt/d_min⌉ · C'_BH` and pushes burst tails into delayed handling.

use rthv_hypervisor::{HandlingClass, IrqHandlingMode, IrqSourceId, Machine};
use rthv_monitor::{
    interference_bound_dmin, token_bucket_interference, DeltaFunction, ShaperConfig,
};
use rthv_time::Duration;
use rthv_workload::{AutomotiveTraceBuilder, BurstSpec};

use crate::PaperSetup;

/// Parameters of the shaper comparison.
#[derive(Debug, Clone)]
pub struct ShaperComparisonConfig {
    /// Platform setup (defaults to the paper's).
    pub setup: PaperSetup,
    /// Long-term shaping interval (δ⁻ `d_min` = bucket refill interval).
    pub interval: Duration,
    /// Bucket burst capacities to compare (capacity 1 ≙ the δ⁻ monitor).
    pub capacities: Vec<u32>,
    /// Number of bursty IRQs.
    pub irqs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ShaperComparisonConfig {
    fn default() -> Self {
        ShaperComparisonConfig {
            setup: PaperSetup::default(),
            interval: Duration::from_millis(3),
            capacities: vec![2, 4, 8],
            irqs: 4_000,
            seed: 0x5A9_2014,
        }
    }
}

/// One shaper's outcome.
#[derive(Debug, Clone)]
pub struct ShaperRow {
    /// Shaper description.
    pub name: String,
    /// Mean latency over all IRQs.
    pub mean_latency: Duration,
    /// 95th-percentile-style proxy: fraction of IRQs delayed.
    pub delayed_fraction: f64,
    /// Guaranteed interference on any victim partition per TDMA cycle.
    pub guaranteed_interference: Duration,
}

/// Runs the identical bursty trace under each shaper.
///
/// # Panics
///
/// Panics if a run fails to complete within a generous deadline.
#[must_use]
pub fn run_shaper_comparison(config: &ShaperComparisonConfig) -> Vec<ShaperRow> {
    let setup = &config.setup;
    // CAN-style bursts: 4 events 400 µs apart, bursts ~18 ms apart — the
    // long-term rate matches the 3 ms shaping interval but arrivals are
    // strongly clumped.
    let trace = AutomotiveTraceBuilder::new(config.seed)
        .burst(BurstSpec {
            mean_gap: Duration::from_millis(18),
            events_per_burst: 4,
            intra_gap: Duration::from_micros(400),
        })
        .build(config.irqs);
    let last = *trace.as_slice().last().expect("non-empty trace");
    let deadline = last + setup.tdma_cycle() * 200;
    let effective = setup.effective_bottom_cost();
    let cycle = setup.tdma_cycle();

    let run = |shaper: ShaperConfig, name: String, interference: Duration| -> ShaperRow {
        let mut cfg = setup.config(IrqHandlingMode::Interposed, None);
        cfg.sources[0].monitor = Some(shaper);
        let mut machine = Machine::new(cfg).expect("paper setup is valid");
        machine
            .schedule_irq_trace(IrqSourceId::new(0), trace.as_slice())
            .expect("trace lies in the future");
        assert!(
            machine.run_until_complete(deadline),
            "shaper run did not complete"
        );
        let report = machine.finish();
        ShaperRow {
            name,
            mean_latency: report.recorder.mean_latency().expect("completions"),
            delayed_fraction: report.recorder.fraction_class(HandlingClass::Delayed),
            guaranteed_interference: interference,
        }
    };

    let mut rows = Vec::new();
    rows.push(run(
        ShaperConfig::Delta(DeltaFunction::from_dmin(config.interval).expect("positive")),
        format!("delta-minus d_min={}", config.interval),
        interference_bound_dmin(cycle, config.interval, effective),
    ));
    for &capacity in &config.capacities {
        rows.push(run(
            ShaperConfig::TokenBucket {
                capacity,
                refill_interval: config.interval,
            },
            format!("token-bucket cap={capacity} refill={}", config.interval),
            token_bucket_interference(cycle, capacity, config.interval, effective),
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ShaperComparisonConfig {
        ShaperComparisonConfig {
            irqs: 800,
            ..ShaperComparisonConfig::default()
        }
    }

    #[test]
    fn buckets_trade_interference_for_burst_latency() {
        let rows = run_shaper_comparison(&small());
        let delta = &rows[0];
        let big_bucket = rows.last().expect("capacities configured");
        // The bucket absorbs bursts: fewer delayed IRQs and a lower mean.
        assert!(big_bucket.delayed_fraction < delta.delayed_fraction);
        assert!(big_bucket.mean_latency < delta.mean_latency);
        // The price: a strictly worse guaranteed interference bound.
        assert!(big_bucket.guaranteed_interference > delta.guaranteed_interference);
    }

    #[test]
    fn guaranteed_interference_grows_with_capacity() {
        let rows = run_shaper_comparison(&small());
        for pair in rows[1..].windows(2) {
            assert!(pair[1].guaranteed_interference > pair[0].guaranteed_interference);
        }
    }

    #[test]
    fn every_irq_completes_under_every_shaper() {
        for row in run_shaper_comparison(&small()) {
            // Mean latency exists implies completions; delayed fraction is
            // a probability.
            assert!((0.0..=1.0).contains(&row.delayed_fraction), "{}", row.name);
        }
    }
}
