//! Slot splitting vs interposition — the paper's motivating trade-off.
//!
//! Section 1: "Reduction of the TDMA cycle length to reduce interrupt
//! latencies is not always an option as this requires frequent partition
//! switches, which may significantly increase overhead." This experiment
//! quantifies exactly that: the subscriber's 6 ms slot is split into
//! 1/2/4/8 interleaved windows (ARINC653-style layouts with the same
//! per-cycle share), all under *baseline* handling, and compared against
//! interposition on the unsplit layout.

use rthv_hypervisor::{IrqHandlingMode, IrqSourceId, Machine, PartitionId, SlotSpec};
use rthv_monitor::DeltaFunction;
use rthv_time::{Duration, Instant};
use rthv_workload::ExponentialArrivals;

use crate::PaperSetup;

/// Parameters of the splitting experiment.
#[derive(Debug, Clone)]
pub struct SplittingConfig {
    /// Platform setup (defaults to the paper's).
    pub setup: PaperSetup,
    /// Split factors to evaluate (1 = the paper's single-slot layout).
    pub splits: Vec<u32>,
    /// Mean interarrival time (also `d_min` for the interposed row).
    pub lambda: Duration,
    /// Number of IRQs.
    pub irqs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SplittingConfig {
    fn default() -> Self {
        SplittingConfig {
            setup: PaperSetup::default(),
            splits: vec![1, 2, 4, 8],
            lambda: Duration::from_millis(3),
            irqs: 4_000,
            seed: 0x5B1_2014,
        }
    }
}

/// One latency-cure configuration's outcome.
#[derive(Debug, Clone)]
pub struct SplittingRow {
    /// Configuration name.
    pub name: String,
    /// Mean IRQ latency.
    pub mean_latency: Duration,
    /// Maximum IRQ latency.
    pub max_latency: Duration,
    /// Total context switches over the run.
    pub context_switches: u64,
    /// Fraction of processor time spent in the hypervisor.
    pub hypervisor_fraction: f64,
}

/// The interleaved layout for split factor `k`: `k` alternating P0/P1
/// windows of `6000/k µs` each, then the 2 ms housekeeping window.
fn split_layout(setup: &PaperSetup, k: u32) -> Vec<SlotSpec> {
    let slice = setup.app_slot / u64::from(k);
    let mut windows = Vec::new();
    for _ in 0..k {
        windows.push(SlotSpec::new(PartitionId::new(0), slice));
        windows.push(SlotSpec::new(PartitionId::new(1), slice));
    }
    windows.push(SlotSpec::new(PartitionId::new(2), setup.housekeeping_slot));
    windows
}

/// Runs the identical arrival trace under every split factor (baseline
/// handling) and under interposition on the unsplit layout.
///
/// # Panics
///
/// Panics if a run fails to complete within a generous deadline.
#[must_use]
pub fn run_splitting(config: &SplittingConfig) -> Vec<SplittingRow> {
    let setup = &config.setup;
    let trace = ExponentialArrivals::new(config.lambda, config.seed)
        .with_min_distance(config.lambda)
        .generate(config.irqs, Instant::ZERO);
    let last = *trace.as_slice().last().expect("non-empty trace");
    let deadline = last + setup.tdma_cycle() * 200;

    let run = |name: String,
               mode: IrqHandlingMode,
               monitor: Option<DeltaFunction>,
               windows: Option<Vec<SlotSpec>>| {
        let mut cfg = setup.config(mode, monitor);
        cfg.windows = windows;
        let mut machine = Machine::new(cfg).expect("valid layout");
        machine
            .schedule_irq_trace(IrqSourceId::new(0), trace.as_slice())
            .expect("trace lies in the future");
        assert!(
            machine.run_until_complete(deadline),
            "splitting run did not complete"
        );
        let report = machine.finish();
        let elapsed = report.end.duration_since(Instant::ZERO);
        SplittingRow {
            name,
            mean_latency: report.recorder.mean_latency().expect("completions"),
            max_latency: report.recorder.max_latency().expect("completions"),
            context_switches: report.counters.context_switches,
            hypervisor_fraction: report.counters.hypervisor_time.as_nanos() as f64
                / elapsed.as_nanos() as f64,
        }
    };

    let mut rows: Vec<SplittingRow> = config
        .splits
        .iter()
        .map(|&k| {
            let windows = (k > 1).then(|| split_layout(setup, k));
            run(
                format!("baseline, slot split x{k}"),
                IrqHandlingMode::Baseline,
                None,
                windows,
            )
        })
        .collect();
    rows.push(run(
        format!("interposed, unsplit (d_min = {})", config.lambda),
        IrqHandlingMode::Interposed,
        Some(DeltaFunction::from_dmin(config.lambda).expect("positive d_min")),
        None,
    ));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SplittingConfig {
        SplittingConfig {
            irqs: 800,
            ..SplittingConfig::default()
        }
    }

    #[test]
    fn splitting_trades_latency_for_switch_overhead() {
        let rows = run_splitting(&small());
        // Finer splits: strictly lower mean latency…
        for pair in rows[..rows.len() - 1].windows(2) {
            assert!(
                pair[1].mean_latency < pair[0].mean_latency,
                "{} vs {}",
                pair[0].name,
                pair[1].name
            );
        }
        // …and strictly higher hypervisor overhead.
        for pair in rows[..rows.len() - 1].windows(2) {
            assert!(pair[1].hypervisor_fraction > pair[0].hypervisor_fraction);
            assert!(pair[1].context_switches > pair[0].context_switches);
        }
    }

    #[test]
    fn interposition_beats_even_the_finest_split() {
        let rows = run_splitting(&small());
        let finest_split = &rows[rows.len() - 2];
        let interposed = rows.last().expect("interposed row");
        assert!(
            interposed.mean_latency < finest_split.mean_latency,
            "interposed {} vs x8 split {}",
            interposed.mean_latency,
            finest_split.mean_latency
        );
        assert!(
            interposed.hypervisor_fraction < finest_split.hypervisor_fraction,
            "interposed overhead {} vs split overhead {}",
            interposed.hypervisor_fraction,
            finest_split.hypervisor_fraction
        );
    }

    #[test]
    fn split_layouts_preserve_the_cycle_and_share() {
        let setup = PaperSetup::default();
        for k in [2u32, 4, 8] {
            let windows = split_layout(&setup, k);
            let cycle: Duration = windows.iter().map(|w| w.length).sum();
            assert_eq!(cycle, setup.tdma_cycle());
            let p1: Duration = windows
                .iter()
                .filter(|w| w.owner == PartitionId::new(1))
                .map(|w| w.length)
                .sum();
            assert_eq!(p1, setup.app_slot);
        }
    }
}
