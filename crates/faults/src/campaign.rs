//! The fault-injection campaign: every scenario run monitored and
//! unmonitored, checked by the oracle, summarized in a deterministic
//! JSON report.
//!
//! Each scenario runs twice under [`IrqHandlingMode::Interposed`]:
//!
//! * **monitored** — the real δ⁻ monitor at the campaign's `d_min`; the
//!   oracle must find nothing, including the independence check against
//!   the Eq. 13–16 bound;
//! * **unmonitored** — an admit-everything shaper (`δ⁻` with a 1 ns
//!   distance), i.e. interposition with the paper's safety mechanism
//!   switched off. Under an IRQ storm this baseline *must* violate the
//!   independence bound — that contrast is the campaign's point, and the
//!   report records it.
//!
//! Scenario outcomes are pure functions of `(config, scenario)`;
//! [`CampaignReport::from_outcomes`] assembles them in scenario order, so a
//! parallel fan-out (the `campaign` binary uses the bench crate's
//! `SweepRunner`) yields a byte-identical report to [`run_campaign`]'s
//! sequential loop.
//!
//! [`IrqHandlingMode::Interposed`]: rthv::IrqHandlingMode::Interposed

use std::fmt::Write as _;

use rthv::monitor::{interference_bound_dmin, DeltaFunction};
use rthv::time::{Duration, Instant};
use rthv::{
    ConfigError, EngineChoice, IrqHandlingMode, IrqSourceId, Machine, OverflowPolicy, PaperSetup,
    PartitionId, RunReport, ScheduleIrqError, SupervisionPolicy,
};

use crate::inject::{standard_scenarios, FaultPlan, FaultScenario};
use crate::oracle::{check_report, OracleConfig, Violation};

/// Campaign-wide parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Platform setup (defaults to the paper's Section-6 platform).
    pub setup: PaperSetup,
    /// Monitoring distance `d_min` enforced in the monitored runs.
    pub dmin: Duration,
    /// Simulation horizon per run.
    pub horizon: Duration,
    /// Bound on the subscriber's IRQ queue (`None` = unbounded); bounded
    /// queues exercise the graceful-degradation overflow paths.
    pub queue_capacity: Option<usize>,
    /// What a full bounded queue does with the excess.
    pub overflow: OverflowPolicy,
    /// Event engine backing every campaign machine. [`EngineChoice::Auto`]
    /// honours `RTHV_ENGINE`; pin [`EngineChoice::Heap`] /
    /// [`EngineChoice::Wheel`] for cross-engine differential runs. The
    /// choice never changes any outcome — that invariant *is* the
    /// cross-engine oracle.
    pub engine: EngineChoice,
    /// The scenarios to run.
    pub scenarios: Vec<FaultScenario>,
}

impl Default for CampaignConfig {
    /// The standard campaign: the paper platform, `d_min = 3 ms`, a 500 ms
    /// horizon, a 16-deep subscriber queue, and 21 scenarios (three tiers
    /// of all seven fault families).
    fn default() -> Self {
        CampaignConfig {
            setup: PaperSetup::default(),
            dmin: Duration::from_millis(3),
            horizon: Duration::from_millis(500),
            queue_capacity: Some(16),
            overflow: OverflowPolicy::RejectNewest,
            engine: EngineChoice::Auto,
            scenarios: standard_scenarios(21, 0xFA_2014),
        }
    }
}

impl CampaignConfig {
    /// The victim partitions: everyone but the IRQ subscriber.
    fn victims(&self) -> Vec<PartitionId> {
        let subscriber = self.setup.subscriber();
        (0..3)
            .map(PartitionId::new)
            .filter(|p| *p != subscriber)
            .collect()
    }
}

/// Why a campaign could not be set up: the user-supplied configuration is
/// invalid. Typed so the campaign binaries report the exact defect and
/// exit cleanly instead of panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignConfigError {
    /// `dmin` cannot parameterize a δ⁻ function (it must be positive).
    InvalidDmin {
        /// The rejected monitoring distance.
        dmin: Duration,
    },
    /// The platform configuration the campaign builds is invalid.
    Platform(ConfigError),
    /// A plan arrival could not be scheduled into the campaign machine.
    Arrival(ScheduleIrqError),
    /// The replay configuration's checkpoint period is zero.
    ZeroCheckpointPeriod,
}

impl std::fmt::Display for CampaignConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignConfigError::InvalidDmin { dmin } => {
                write!(f, "d_min {dmin} cannot parameterize a δ⁻ function")
            }
            CampaignConfigError::Platform(error) => {
                write!(f, "invalid campaign platform: {error}")
            }
            CampaignConfigError::Arrival(error) => {
                write!(f, "unschedulable plan arrival: {error}")
            }
            CampaignConfigError::ZeroCheckpointPeriod => {
                write!(f, "replay checkpoint period must be non-zero")
            }
        }
    }
}

impl std::error::Error for CampaignConfigError {}

impl From<ConfigError> for CampaignConfigError {
    fn from(error: ConfigError) -> Self {
        CampaignConfigError::Platform(error)
    }
}

/// Per-partition service totals of a run with no IRQs at all — the
/// reference the independence check measures loss against. Depends only on
/// the platform geometry and horizon, so it is computed once per campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdleReference {
    service: Vec<Duration>,
}

/// Runs the no-IRQ reference once.
///
/// # Errors
///
/// [`CampaignConfigError`] if the campaign's platform configuration is
/// invalid.
pub fn idle_reference(config: &CampaignConfig) -> Result<IdleReference, CampaignConfigError> {
    let delta = campaign_delta(config.dmin)?;
    let mut hv = config
        .setup
        .config(IrqHandlingMode::Interposed, Some(delta));
    hv.policies.engine = config.engine;
    let mut machine = Machine::new(hv)?;
    machine.run_until(Instant::ZERO + config.horizon);
    let report = machine.finish();
    Ok(IdleReference {
        service: report
            .counters
            .service
            .iter()
            .map(rthv::PartitionService::total)
            .collect(),
    })
}

/// One mode's outcome (monitored or unmonitored) for one scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeOutcome {
    /// Whether the real δ⁻ monitor was enforced.
    pub monitored: bool,
    /// Bottom-handler completions.
    pub completions: u64,
    /// Interposed windows opened.
    pub interposed_windows: u64,
    /// Monitor denials.
    pub monitor_denied: u64,
    /// Arrivals refused by the bounded queue.
    pub overflow_rejected: u64,
    /// Queued events discarded for newer ones.
    pub overflow_dropped: u64,
    /// Arrivals coalesced into an already-pending flag.
    pub coalesced: u64,
    /// Work still queued at the horizon.
    pub outstanding: u64,
    /// Windows clipped at their budget.
    pub expired_windows: u64,
    /// Worst victim service loss vs the idle reference.
    pub worst_victim_loss: Duration,
    /// The Eq. 13–16 independence bound this run was held against.
    pub independence_bound: Duration,
    /// Everything the oracle found (including independence violations).
    pub violations: Vec<Violation>,
}

/// Both modes of one scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// Stable scenario label (`id-slug`).
    pub label: String,
    /// The scenario's seed.
    pub seed: u64,
    /// Arrivals scheduled (identical in both modes).
    pub scheduled: u64,
    /// Outcome with the real δ⁻ monitor.
    pub monitored: ModeOutcome,
    /// Outcome with the admit-everything shaper.
    pub unmonitored: ModeOutcome,
}

/// Builds the campaign's δ⁻ function, rejecting distances that cannot
/// shape any stream (zero, or structurally invalid).
fn campaign_delta(dmin: Duration) -> Result<DeltaFunction, CampaignConfigError> {
    if dmin.is_zero() {
        return Err(CampaignConfigError::InvalidDmin { dmin });
    }
    DeltaFunction::from_dmin(dmin).map_err(|_| CampaignConfigError::InvalidDmin { dmin })
}

pub(crate) fn run_mode(
    config: &CampaignConfig,
    idle: &IdleReference,
    plan: &FaultPlan,
    monitored: bool,
) -> Result<ModeOutcome, CampaignConfigError> {
    Ok(run_mode_report(config, idle, plan, monitored, None)?.0)
}

/// Like [`run_mode`], but optionally enables runtime health supervision and
/// also hands back the full [`RunReport`], so the supervised campaign can
/// inspect supervision counters and run the quarantine-soundness oracle.
/// Builds the campaign machine for one mode of one scenario plan, with
/// every arrival already scheduled — exactly the machine
/// [`run_mode_report`] drives to the horizon. Exposed so the
/// [`replay`](crate::replay) oracle re-executes the *same* machine, not a
/// reimplementation of it.
///
/// # Errors
///
/// [`CampaignConfigError`] if the campaign platform configuration is
/// invalid or a plan arrival cannot be scheduled.
pub fn scenario_machine(
    config: &CampaignConfig,
    plan: &FaultPlan,
    monitored: bool,
    supervision: Option<SupervisionPolicy>,
) -> Result<Machine, CampaignConfigError> {
    // The unmonitored baseline still runs interposed, but its "monitor"
    // admits any stream with 1 ns spacing — the safety mechanism is off.
    let dmin = if monitored {
        config.dmin
    } else {
        Duration::from_nanos(1)
    };
    let delta = campaign_delta(dmin)?;
    let mut hv = config
        .setup
        .config(IrqHandlingMode::Interposed, Some(delta));
    hv.policies.admission_clock = plan.admission_clock;
    hv.policies.overflow = config.overflow;
    hv.policies.supervision = supervision;
    hv.policies.engine = config.engine;
    hv.partitions[config.setup.subscriber().index()].queue_capacity = config.queue_capacity;

    let mut machine = Machine::new(hv)?;
    machine.enable_service_trace();
    for arrival in &plan.arrivals {
        machine
            .schedule_irq_with_work(IrqSourceId::new(0), arrival.at, arrival.work)
            .map_err(CampaignConfigError::Arrival)?;
    }
    Ok(machine)
}

pub(crate) fn run_mode_report(
    config: &CampaignConfig,
    idle: &IdleReference,
    plan: &FaultPlan,
    monitored: bool,
    supervision: Option<SupervisionPolicy>,
) -> Result<(ModeOutcome, RunReport), CampaignConfigError> {
    let (outcome, report, _) =
        run_mode_observed(config, idle, plan, monitored, supervision, false)?;
    Ok((outcome, report))
}

/// Like [`run_mode_report`], but when `metrics` is set the machine runs with
/// the flight-recorder observability layer enabled and the third element of
/// the return value carries the deterministic metrics snapshot JSON.
/// Metrics are pure observation: the [`ModeOutcome`] is byte-identical to a
/// bare run's, which the determinism tests assert.
pub(crate) fn run_mode_observed(
    config: &CampaignConfig,
    idle: &IdleReference,
    plan: &FaultPlan,
    monitored: bool,
    supervision: Option<SupervisionPolicy>,
    metrics: bool,
) -> Result<(ModeOutcome, RunReport, Option<String>), CampaignConfigError> {
    let mut machine = scenario_machine(config, plan, monitored, supervision)?;
    if metrics {
        let obs_config = machine.default_obs_config();
        machine.enable_metrics(obs_config);
    }
    machine.run_until(Instant::ZERO + config.horizon);
    let obs = machine.metrics_snapshot_json();
    let report = machine.finish();

    let scheduled = plan.arrivals.len() as u64;
    let delta = if monitored {
        Some(
            DeltaFunction::from_dmin(config.dmin)
                .map_err(|_| CampaignConfigError::InvalidDmin { dmin: config.dmin })?,
        )
    } else {
        None
    };
    let oracle = OracleConfig {
        delta,
        budget: config.setup.bottom_cost,
        scheduled,
    };
    let mut violations = check_report(&report, &oracle);

    // Independence (Eq. 14 plus the per-arrival top-handler term, Eq. 15):
    // measured against the idle reference for every victim. The bound is
    // the *monitored* system's guarantee; the unmonitored baseline is held
    // to the same bound to demonstrate where it breaks.
    let bound = interference_bound_dmin(
        config.horizon,
        config.dmin,
        config.setup.effective_bottom_cost(),
    ) + config
        .setup
        .costs
        .monitored_top_cost()
        .saturating_mul(scheduled);
    let mut worst_loss = Duration::ZERO;
    for victim in config.victims() {
        let lost =
            idle.service[victim.index()].saturating_sub(report.counters.service_of(victim).total());
        worst_loss = worst_loss.max(lost);
        if lost > bound {
            violations.push(Violation::Independence {
                core: 0,
                victim: victim.index(),
                lost,
                bound,
            });
        }
    }

    let outcome = mode_outcome(monitored, &report, worst_loss, bound, violations);
    Ok((outcome, report, obs))
}

fn mode_outcome(
    monitored: bool,
    report: &RunReport,
    worst_victim_loss: Duration,
    independence_bound: Duration,
    violations: Vec<Violation>,
) -> ModeOutcome {
    ModeOutcome {
        monitored,
        completions: report.recorder.len() as u64,
        interposed_windows: report.counters.interposed_windows,
        monitor_denied: report.counters.monitor_denied,
        overflow_rejected: report.counters.overflow_rejected,
        overflow_dropped: report.counters.overflow_dropped,
        coalesced: report.counters.coalesced_irqs,
        outstanding: report.outstanding,
        expired_windows: report.counters.expired_windows,
        worst_victim_loss,
        independence_bound,
        violations,
    }
}

/// Runs one scenario in both modes. Pure in `(config, idle, scenario)` and
/// `Sync`-friendly, so campaign binaries can fan scenarios across threads
/// and still assemble a byte-identical report.
///
/// # Errors
///
/// [`CampaignConfigError`] if the campaign configuration is invalid.
pub fn run_scenario(
    config: &CampaignConfig,
    idle: &IdleReference,
    scenario: &FaultScenario,
) -> Result<ScenarioOutcome, CampaignConfigError> {
    let plan = scenario.plan(config.horizon, config.setup.bottom_cost);
    Ok(ScenarioOutcome {
        label: scenario.label(),
        seed: scenario.seed,
        scheduled: plan.arrivals.len() as u64,
        monitored: run_mode(config, idle, &plan, true)?,
        unmonitored: run_mode(config, idle, &plan, false)?,
    })
}

/// One scenario's outcome together with the observability snapshots of both
/// runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioObservation {
    /// The scenario outcome — byte-identical to [`run_scenario`]'s.
    pub outcome: ScenarioOutcome,
    /// Metrics snapshot JSON of the monitored run.
    pub monitored_obs: String,
    /// Metrics snapshot JSON of the unmonitored run.
    pub unmonitored_obs: String,
}

/// Runs one scenario in both modes with the flight-recorder observability
/// layer enabled, returning the outcome plus both metrics snapshots.
///
/// Metrics are pure observation: the returned [`ScenarioOutcome`] is
/// identical to what [`run_scenario`] produces without them (given the same
/// `supervision`), and two calls with the same inputs yield byte-identical
/// snapshot JSON — both properties are pinned by tests.
///
/// # Errors
///
/// [`CampaignConfigError`] if the campaign configuration is invalid.
pub fn run_scenario_with_metrics(
    config: &CampaignConfig,
    idle: &IdleReference,
    scenario: &FaultScenario,
    supervision: Option<SupervisionPolicy>,
) -> Result<ScenarioObservation, CampaignConfigError> {
    let plan = scenario.plan(config.horizon, config.setup.bottom_cost);
    let (monitored, _, monitored_obs) =
        run_mode_observed(config, idle, &plan, true, supervision, true)?;
    let (unmonitored, _, unmonitored_obs) =
        run_mode_observed(config, idle, &plan, false, supervision, true)?;
    Ok(ScenarioObservation {
        outcome: ScenarioOutcome {
            label: scenario.label(),
            seed: scenario.seed,
            scheduled: plan.arrivals.len() as u64,
            monitored,
            unmonitored,
        },
        monitored_obs: monitored_obs.expect("metrics were enabled"),
        unmonitored_obs: unmonitored_obs.expect("metrics were enabled"),
    })
}

/// The whole campaign's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// Monitoring distance of the monitored runs.
    pub dmin: Duration,
    /// Horizon per run.
    pub horizon: Duration,
    /// Subscriber queue bound (0 encodes unbounded in the JSON).
    pub queue_capacity: Option<usize>,
    /// Per-scenario outcomes, in scenario order.
    pub scenarios: Vec<ScenarioOutcome>,
}

impl CampaignReport {
    /// Assembles a report from per-scenario outcomes **in scenario order**.
    /// The sequential [`run_campaign`] and any parallel fan-out that
    /// preserves input order produce identical reports.
    #[must_use]
    pub fn from_outcomes(config: &CampaignConfig, outcomes: Vec<ScenarioOutcome>) -> Self {
        CampaignReport {
            dmin: config.dmin,
            horizon: config.horizon,
            queue_capacity: config.queue_capacity,
            scenarios: outcomes,
        }
    }

    /// Oracle violations across all monitored runs (must be zero).
    #[must_use]
    pub fn monitored_violations(&self) -> u64 {
        self.scenarios
            .iter()
            .map(|s| s.monitored.violations.len() as u64)
            .sum()
    }

    /// Oracle violations across all unmonitored baseline runs.
    #[must_use]
    pub fn unmonitored_violations(&self) -> u64 {
        self.scenarios
            .iter()
            .map(|s| s.unmonitored.violations.len() as u64)
            .sum()
    }

    /// Independence violations of the unmonitored baseline (the campaign
    /// must demonstrate at least one, under the IRQ storm).
    #[must_use]
    pub fn unmonitored_independence_violations(&self) -> u64 {
        self.scenarios
            .iter()
            .flat_map(|s| &s.unmonitored.violations)
            .filter(|v| matches!(v, Violation::Independence { .. }))
            .count() as u64
    }

    /// Serializes the report as JSON. Every numeric field is an integer
    /// (nanoseconds or counts) and nothing reads the wall clock, so equal
    /// campaigns serialize byte-identically on any host.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, r#"  "campaign": "fault-injection","#);
        let _ = writeln!(out, r#"  "dmin_ns": {},"#, self.dmin.as_nanos());
        let _ = writeln!(out, r#"  "horizon_ns": {},"#, self.horizon.as_nanos());
        let _ = writeln!(
            out,
            r#"  "queue_capacity": {},"#,
            self.queue_capacity.unwrap_or(0)
        );
        let _ = writeln!(out, r#"  "scenario_count": {},"#, self.scenarios.len());
        let _ = writeln!(
            out,
            r#"  "monitored_violations": {},"#,
            self.monitored_violations()
        );
        let _ = writeln!(
            out,
            r#"  "unmonitored_violations": {},"#,
            self.unmonitored_violations()
        );
        let _ = writeln!(
            out,
            r#"  "unmonitored_independence_violations": {},"#,
            self.unmonitored_independence_violations()
        );
        let _ = writeln!(out, r#"  "scenarios": ["#);
        for (i, s) in self.scenarios.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, r#"      "label": "{}","#, s.label);
            let _ = writeln!(out, r#"      "seed": {},"#, s.seed);
            let _ = writeln!(out, r#"      "scheduled": {},"#, s.scheduled);
            write_mode(&mut out, "monitored", &s.monitored, ",");
            write_mode(&mut out, "unmonitored", &s.unmonitored, "");
            let comma = if i + 1 < self.scenarios.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(out, "    }}{comma}");
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

pub(crate) fn write_mode(out: &mut String, key: &str, mode: &ModeOutcome, trailer: &str) {
    let _ = writeln!(out, r#"      "{key}": {{"#);
    let _ = writeln!(out, r#"        "completions": {},"#, mode.completions);
    let _ = writeln!(
        out,
        r#"        "interposed_windows": {},"#,
        mode.interposed_windows
    );
    let _ = writeln!(out, r#"        "monitor_denied": {},"#, mode.monitor_denied);
    let _ = writeln!(
        out,
        r#"        "overflow_rejected": {},"#,
        mode.overflow_rejected
    );
    let _ = writeln!(
        out,
        r#"        "overflow_dropped": {},"#,
        mode.overflow_dropped
    );
    let _ = writeln!(out, r#"        "coalesced": {},"#, mode.coalesced);
    let _ = writeln!(out, r#"        "outstanding": {},"#, mode.outstanding);
    let _ = writeln!(
        out,
        r#"        "expired_windows": {},"#,
        mode.expired_windows
    );
    let _ = writeln!(
        out,
        r#"        "worst_victim_loss_ns": {},"#,
        mode.worst_victim_loss.as_nanos()
    );
    let _ = writeln!(
        out,
        r#"        "independence_bound_ns": {},"#,
        mode.independence_bound.as_nanos()
    );
    let violations: Vec<String> = mode.violations.iter().map(Violation::to_json).collect();
    if violations.is_empty() {
        let _ = writeln!(out, r#"        "violations": []"#);
    } else {
        let _ = writeln!(out, r#"        "violations": ["#);
        for (i, v) in violations.iter().enumerate() {
            let comma = if i + 1 < violations.len() { "," } else { "" };
            let _ = writeln!(out, "          {v}{comma}");
        }
        let _ = writeln!(out, "        ]");
    }
    let _ = writeln!(out, "      }}{trailer}");
}

/// Runs the whole campaign sequentially (the reference path; the `campaign`
/// binary fans [`run_scenario`] over threads instead and must produce a
/// byte-identical report).
///
/// # Errors
///
/// [`CampaignConfigError`] if the campaign configuration is invalid.
pub fn run_campaign(config: &CampaignConfig) -> Result<CampaignReport, CampaignConfigError> {
    let idle = idle_reference(config)?;
    let outcomes = config
        .scenarios
        .iter()
        .map(|s| run_scenario(config, &idle, s))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CampaignReport::from_outcomes(config, outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::FaultKind;

    /// A short campaign that still contains the decisive storm scenario.
    fn small() -> CampaignConfig {
        CampaignConfig {
            horizon: Duration::from_millis(200),
            scenarios: vec![
                FaultScenario {
                    id: 0,
                    kind: FaultKind::IrqStorm {
                        period: Duration::from_micros(300),
                    },
                    seed: 0xFA,
                },
                FaultScenario {
                    id: 1,
                    kind: FaultKind::BudgetOverrun {
                        period: Duration::from_millis(1),
                        factor: 4,
                    },
                    seed: 0xFB,
                },
            ],
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn monitored_runs_are_violation_free() {
        let report = run_campaign(&small()).expect("valid config");
        assert_eq!(
            report.monitored_violations(),
            0,
            "monitored violations: {:?}",
            report
                .scenarios
                .iter()
                .flat_map(|s| &s.monitored.violations)
                .map(ToString::to_string)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn unmonitored_storm_breaks_independence() {
        let report = run_campaign(&small()).expect("valid config");
        assert!(report.unmonitored_independence_violations() >= 1);
        let storm = &report.scenarios[0];
        assert!(storm
            .unmonitored
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Independence { .. })));
        assert!(storm.unmonitored.worst_victim_loss > storm.unmonitored.independence_bound);
        assert!(storm.monitored.worst_victim_loss <= storm.monitored.independence_bound);
    }

    #[test]
    fn bounded_queue_degrades_gracefully_under_storm() {
        let report = run_campaign(&small()).expect("valid config");
        let storm = &report.scenarios[0];
        // The monitored storm overwhelms the 16-deep queue: the overflow
        // path engages, yet the oracle's conservation ledger stays exact.
        assert!(storm.monitored.overflow_rejected > 0);
        assert_eq!(report.monitored_violations(), 0);
    }

    #[test]
    fn budget_overrun_is_clipped_not_fatal() {
        let report = run_campaign(&small()).expect("valid config");
        let overrun = &report.scenarios[1];
        assert!(overrun.monitored.expired_windows > 0);
        assert!(overrun.monitored.violations.is_empty());
    }

    #[test]
    fn sequential_and_manual_fanout_reports_are_byte_identical() {
        let config = small();
        let sequential = run_campaign(&config).expect("valid config").to_json();
        // Simulate the parallel path: compute outcomes independently (in
        // reverse), then assemble in scenario order.
        let idle = idle_reference(&config).expect("valid config");
        let mut outcomes: Vec<ScenarioOutcome> = config
            .scenarios
            .iter()
            .rev()
            .map(|s| run_scenario(&config, &idle, s).expect("valid config"))
            .collect();
        outcomes.reverse();
        let assembled = CampaignReport::from_outcomes(&config, outcomes).to_json();
        assert_eq!(sequential, assembled);
    }

    #[test]
    fn json_shape_is_stable() {
        let report = run_campaign(&small()).expect("valid config");
        let json = report.to_json();
        assert!(json.contains(r#""campaign": "fault-injection""#));
        assert!(json.contains(r#""label": "00-irq-storm""#));
        assert!(json.contains(r#""monitored_violations": 0"#));
        assert!(json.contains(r#""kind":"independence""#));
        // Integer-only: no floating-point fields anywhere.
        assert!(!json.contains('.'));
    }

    #[test]
    fn idle_reference_is_deterministic() {
        let config = small();
        assert_eq!(idle_reference(&config), idle_reference(&config));
        assert!(idle_reference(&CampaignConfig {
            dmin: Duration::ZERO,
            ..small()
        })
        .is_err());
    }

    #[test]
    fn metrics_never_change_a_scenario_outcome() {
        let config = small();
        let idle = idle_reference(&config).expect("valid config");
        for scenario in &config.scenarios {
            let bare = run_scenario(&config, &idle, scenario).expect("valid config");
            let observed =
                run_scenario_with_metrics(&config, &idle, scenario, None).expect("valid config");
            assert_eq!(
                observed.outcome,
                bare,
                "{}: instrumentation changed the outcome",
                scenario.label()
            );
        }
    }

    #[test]
    fn metrics_snapshots_are_byte_identical_across_runs() {
        let config = small();
        let idle = idle_reference(&config).expect("valid config");
        let scenario = &config.scenarios[0];
        let first =
            run_scenario_with_metrics(&config, &idle, scenario, None).expect("valid config");
        let second =
            run_scenario_with_metrics(&config, &idle, scenario, None).expect("valid config");
        assert_eq!(first, second);
        // The storm scenario must leave real marks in both snapshots.
        assert!(first.monitored_obs.contains("\"obs\": \"flight-recorder\""));
        assert!(!first.monitored_obs.contains("\"raised\": 0,"));
        assert!(!first.unmonitored_obs.contains("\"raised\": 0,"));
    }
}
