//! Seeded, reproducible fault-injection plans.
//!
//! A [`FaultScenario`] is `(kind, seed)`; [`FaultScenario::plan`] expands it
//! into a concrete arrival schedule — a pure function of its inputs, so the
//! same scenario replays byte-identically on any host or thread count. All
//! randomness is drawn from one [`StdRng`] seeded per scenario; nothing
//! reads the wall clock.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use rthv::time::{Duration, Instant};
use rthv::AdmissionClock;

/// One adversity class to subject the platform to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Periodic storm far above the admissible rate (`period ≪ d_min`),
    /// with seeded phase jitter below `period / 8`.
    IrqStorm {
        /// Storm period (jittered per arrival).
        period: Duration,
    },
    /// `burst` back-to-back arrivals spaced `spacing`, repeating `every`.
    BurstyFlood {
        /// Arrivals per burst.
        burst: usize,
        /// Intra-burst spacing.
        spacing: Duration,
        /// Burst repetition period (must exceed `burst · spacing`).
        every: Duration,
    },
    /// A well-behaved periodic stream interleaved with seeded zero-work
    /// arrivals — the line glitches, the top handler runs, no bottom work
    /// follows.
    SpuriousIrqs {
        /// Period of the real (working) arrivals.
        period: Duration,
        /// Spurious zero-work arrivals injected per real one.
        spurious_per_real: u32,
    },
    /// A periodic stream whose arrivals are silently lost at the interrupt
    /// line with seeded probability — the machine must account for every
    /// arrival that *did* fire.
    DroppedIrqs {
        /// Period of the underlying stream.
        period: Duration,
        /// Per-arrival loss probability in per mille (0..=1000).
        drop_permille: u32,
    },
    /// A `d_min`-conformant stream admission-checked on the jittery
    /// processing-time clock instead of the hardware timestamp (the
    /// deny-only-safe ablation clock).
    AdmissionClockJitter {
        /// Arrival period (pick `≥ d_min` so denials are purely spurious).
        period: Duration,
    },
    /// Bottom handlers that try to run `factor ×` their declared budget;
    /// the enforced interposition window must clip them.
    BudgetOverrun {
        /// Arrival period.
        period: Duration,
        /// Work multiplier over the declared `C_BH`.
        factor: u32,
    },
    /// Sparse handlers sized like an entire application slot — a guest
    /// handler that refuses to yield.
    NonYieldingGuest {
        /// Work demanded per arrival (e.g. one full slot length).
        work: Duration,
        /// Arrival period.
        every: Duration,
    },
    /// A perfectly well-behaved periodic stream (`period ≥ d_min`,
    /// declared work) — the no-fault control the supervised campaign uses
    /// to assert that supervision never quarantines a nominal source.
    Nominal {
        /// Arrival period (pick `≥ d_min`).
        period: Duration,
    },
    /// A nominal stream whose *harness* — not the simulated machine — is
    /// declared crash-prone: the sweep runner's panic-isolation path is
    /// expected to see the worker panic on the first `crashes` attempts
    /// and succeed on attempt `crashes + 1`. The simulated plan itself is
    /// identical to [`FaultKind::Nominal`]; the fault lives one layer up,
    /// which is exactly what the resumable runner must survive.
    HarnessCrash {
        /// Arrival period of the underlying nominal stream.
        period: Duration,
        /// How many leading attempts the harness aborts.
        crashes: u32,
    },
    /// A nominal periodic stream whose *admission fleet* — not the
    /// simulated machine — loses shards: `crashes` seeded shard crashes
    /// spaced roughly `period` apart wipe a shard's monitor arena and its
    /// in-flight queue. Like [`FaultKind::HarnessCrash`], the plan itself
    /// is nominal; `rthv-admit` derives crash times and targets from the
    /// scenario seed one layer up, then must restore each crashed shard
    /// from its last checkpoint plus journal tail.
    ShardCrash {
        /// Spacing between consecutive shard crashes.
        period: Duration,
        /// Number of shard crashes over the horizon.
        crashes: u32,
    },
    /// A nominal periodic stream whose admission fleet suffers shard
    /// *stalls*: every `period` a seeded shard stops answering for `stall`.
    /// The fleet's fail-closed policy must retry with bounded backoff and
    /// then shed — typed, never silently dropped, never blindly admitted.
    ShardStall {
        /// Spacing between consecutive stall onsets.
        period: Duration,
        /// Length of each stall.
        stall: Duration,
    },
    /// Correlated failure: `k` distinct shards crash inside one `window`
    /// (seeded pick of the crash instants and targets). The single-crash
    /// family exercises failover; this one exercises failover *capacity* —
    /// most of the fleet's monitor state disappears at once.
    CorrelatedCrash {
        /// Window inside which all `k` crashes land.
        window: Duration,
        /// Number of distinct shards crashed within the window.
        k: u32,
    },
    /// A shard crash whose recovery is immediately hit by a stall on the
    /// *same* shard — checkpoint restore followed by unresponsiveness, the
    /// worst ordering for the retry ladder.
    FailoverStall {
        /// Spacing between consecutive crash-then-stall episodes.
        period: Duration,
        /// Stall length applied right after each crash's failover.
        stall: Duration,
    },
    /// Shard crashes timed to land while an aggressor tenant floods — the
    /// fleet must absorb the flood *and* the failover without moving a
    /// conformant victim tenant's admitted stream.
    RecoveryFlood {
        /// Spacing between consecutive crashes under flood.
        period: Duration,
        /// Number of crashes over the horizon.
        crashes: u32,
    },
    /// A nominal periodic stream on a *multi-core platform* that loses
    /// physical cores: `crashes` seeded core failures spaced roughly
    /// `period` apart freeze whole per-core machines, and the platform
    /// must fail the victims over to their fallback cores under the
    /// destination δ⁻ budget. Like the shard families, the plan itself is
    /// nominal — `rthv-faults::smp` derives crash times and victim cores
    /// from the scenario seed one layer up.
    CoreCrash {
        /// Spacing between consecutive core crashes.
        period: Duration,
        /// Number of core crashes over the horizon.
        crashes: u32,
    },
    /// A nominal periodic stream on a multi-core platform whose cross-core
    /// routing *stalls*: every `period` a seeded IPI edge stops delivering
    /// for `stall`. Plain IPIs must wait the stall out; failover reroutes
    /// must walk the bounded retry ladder and then shed — typed.
    RouteStall {
        /// Spacing between consecutive stall onsets.
        period: Duration,
        /// Length of each stall.
        stall: Duration,
    },
}

impl FaultKind {
    /// Short kebab-case identifier used in scenario labels and reports.
    #[must_use]
    pub fn slug(&self) -> &'static str {
        match self {
            FaultKind::IrqStorm { .. } => "irq-storm",
            FaultKind::BurstyFlood { .. } => "bursty-flood",
            FaultKind::SpuriousIrqs { .. } => "spurious-irqs",
            FaultKind::DroppedIrqs { .. } => "dropped-irqs",
            FaultKind::AdmissionClockJitter { .. } => "admission-clock-jitter",
            FaultKind::BudgetOverrun { .. } => "budget-overrun",
            FaultKind::NonYieldingGuest { .. } => "non-yielding-guest",
            FaultKind::Nominal { .. } => "nominal",
            FaultKind::HarnessCrash { .. } => "harness-crash",
            FaultKind::ShardCrash { .. } => "shard-crash",
            FaultKind::ShardStall { .. } => "shard-stall",
            FaultKind::CorrelatedCrash { .. } => "correlated-crash",
            FaultKind::FailoverStall { .. } => "failover-stall",
            FaultKind::RecoveryFlood { .. } => "recovery-flood",
            FaultKind::CoreCrash { .. } => "core-crash",
            FaultKind::RouteStall { .. } => "route-stall",
        }
    }
}

/// One IRQ arrival of a fault plan: when it fires and how much bottom-
/// handler work it actually demands (which may differ from the declared
/// `C_BH` — that is the point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedArrival {
    /// Hardware interrupt time.
    pub at: Instant,
    /// Actual bottom-handler demand (zero for spurious arrivals).
    pub work: Duration,
}

/// A fully expanded, schedulable fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Arrivals in strictly increasing time order, all inside the horizon.
    pub arrivals: Vec<InjectedArrival>,
    /// The admission clock the scenario runs under.
    pub admission_clock: AdmissionClock,
}

/// One campaign entry: an adversity plus the seed that pins every draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultScenario {
    /// Position in the campaign (stable across runs; part of the label).
    pub id: u32,
    /// The adversity.
    pub kind: FaultKind,
    /// RNG seed; the plan is a pure function of `(kind, seed, horizon)`.
    pub seed: u64,
}

impl FaultScenario {
    /// Stable scenario label, e.g. `03-dropped-irqs`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{:02}-{}", self.id, self.kind.slug())
    }

    /// Expands the scenario into a concrete arrival schedule over
    /// `[0, horizon)`. `bottom_cost` is the declared `C_BH` of the
    /// monitored source (the work a well-behaved arrival demands).
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (zero periods, bursts longer than
    /// their repetition period).
    #[must_use]
    pub fn plan(&self, horizon: Duration, bottom_cost: Duration) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut arrivals = Vec::new();
        let mut admission_clock = AdmissionClock::IrqTimestamp;
        let horizon_ns = horizon.as_nanos();

        match self.kind {
            FaultKind::IrqStorm { period } => {
                let period_ns = period.as_nanos();
                assert!(period_ns > 0, "storm period must be positive");
                let jitter_ns = (period_ns / 8).max(1);
                let mut t = period_ns;
                while t < horizon_ns {
                    let at = t + rng.gen_range(0..jitter_ns);
                    if at < horizon_ns {
                        arrivals.push(InjectedArrival {
                            at: Instant::from_nanos(at),
                            work: bottom_cost,
                        });
                    }
                    t += period_ns;
                }
            }
            FaultKind::BurstyFlood {
                burst,
                spacing,
                every,
            } => {
                let every_ns = every.as_nanos();
                let spacing_ns = spacing.as_nanos();
                assert!(every_ns > 0 && spacing_ns > 0, "degenerate burst geometry");
                assert!(
                    (burst as u64) * spacing_ns < every_ns,
                    "burst must fit inside its repetition period"
                );
                let mut base = every_ns / 2;
                while base < horizon_ns {
                    for b in 0..burst as u64 {
                        let at = base + b * spacing_ns;
                        if at < horizon_ns {
                            arrivals.push(InjectedArrival {
                                at: Instant::from_nanos(at),
                                work: bottom_cost,
                            });
                        }
                    }
                    base += every_ns;
                }
            }
            FaultKind::SpuriousIrqs {
                period,
                spurious_per_real,
            } => {
                let period_ns = period.as_nanos();
                assert!(period_ns > 1, "spurious-irq period too small");
                let mut t = period_ns;
                while t < horizon_ns {
                    arrivals.push(InjectedArrival {
                        at: Instant::from_nanos(t),
                        work: bottom_cost,
                    });
                    for _ in 0..spurious_per_real {
                        let at = t + rng.gen_range(1..period_ns);
                        if at < horizon_ns {
                            arrivals.push(InjectedArrival {
                                at: Instant::from_nanos(at),
                                work: Duration::ZERO,
                            });
                        }
                    }
                    t += period_ns;
                }
            }
            FaultKind::DroppedIrqs {
                period,
                drop_permille,
            } => {
                let period_ns = period.as_nanos();
                assert!(period_ns > 0, "dropped-irq period must be positive");
                assert!(drop_permille <= 1000, "loss probability above 1000‰");
                let mut t = period_ns;
                while t < horizon_ns {
                    // The draw happens for every arrival, dropped or not, so
                    // the surviving schedule is still a pure seed function.
                    let dropped = rng.gen_range(0..1000u32) < drop_permille;
                    if !dropped {
                        arrivals.push(InjectedArrival {
                            at: Instant::from_nanos(t),
                            work: bottom_cost,
                        });
                    }
                    t += period_ns;
                }
            }
            FaultKind::AdmissionClockJitter { period } => {
                admission_clock = AdmissionClock::ProcessingTime;
                let period_ns = period.as_nanos();
                assert!(period_ns > 0, "jitter-clock period must be positive");
                let mut t = period_ns;
                while t < horizon_ns {
                    arrivals.push(InjectedArrival {
                        at: Instant::from_nanos(t),
                        work: bottom_cost,
                    });
                    t += period_ns;
                }
            }
            FaultKind::BudgetOverrun { period, factor } => {
                let period_ns = period.as_nanos();
                assert!(period_ns > 0, "overrun period must be positive");
                let work = bottom_cost.saturating_mul(u64::from(factor.max(1)));
                let mut t = period_ns;
                while t < horizon_ns {
                    arrivals.push(InjectedArrival {
                        at: Instant::from_nanos(t),
                        work,
                    });
                    t += period_ns;
                }
            }
            FaultKind::NonYieldingGuest { work, every } => {
                let every_ns = every.as_nanos();
                assert!(every_ns > 0, "non-yielding period must be positive");
                let mut t = every_ns / 3;
                while t < horizon_ns {
                    arrivals.push(InjectedArrival {
                        at: Instant::from_nanos(t),
                        work,
                    });
                    t += every_ns;
                }
            }
            // The shard- and core-fault families plan nominally too: the
            // adversity lives in the admission fleet or the multi-core
            // platform above the machine, exactly like the harness-crash
            // family's fault lives in the sweep runner.
            FaultKind::Nominal { period }
            | FaultKind::HarnessCrash { period, .. }
            | FaultKind::ShardCrash { period, .. }
            | FaultKind::ShardStall { period, .. }
            | FaultKind::CorrelatedCrash { window: period, .. }
            | FaultKind::FailoverStall { period, .. }
            | FaultKind::RecoveryFlood { period, .. }
            | FaultKind::CoreCrash { period, .. }
            | FaultKind::RouteStall { period, .. } => {
                let period_ns = period.as_nanos();
                assert!(period_ns > 0, "nominal period must be positive");
                let mut t = period_ns;
                while t < horizon_ns {
                    arrivals.push(InjectedArrival {
                        at: Instant::from_nanos(t),
                        work: bottom_cost,
                    });
                    t += period_ns;
                }
            }
        }

        finalize(&mut arrivals);
        FaultPlan {
            arrivals,
            admission_clock,
        }
    }
}

/// Sorts the arrivals and nudges duplicates apart by one nanosecond, so
/// every timestamp is strictly increasing (distinct check timestamps keep
/// the oracle's replay unambiguous).
fn finalize(arrivals: &mut [InjectedArrival]) {
    arrivals.sort_by_key(|a| a.at);
    for i in 1..arrivals.len() {
        if arrivals[i].at <= arrivals[i - 1].at {
            arrivals[i].at = arrivals[i - 1].at + Duration::from_nanos(1);
        }
    }
}

/// The standard campaign: `n` scenarios cycling through all seven fault
/// families, parameters hardened one notch per completed cycle, each seeded
/// from `base_seed` by position. Geometry assumes the paper setup
/// (`d_min = 3 ms`, 6 ms application slots).
#[must_use]
pub fn standard_scenarios(n: usize, base_seed: u64) -> Vec<FaultScenario> {
    (0..n)
        .map(|i| {
            let tier = (i / 7) as u64 + 1;
            let kind = match i % 7 {
                0 => FaultKind::IrqStorm {
                    period: Duration::from_micros(300 / tier.min(3)),
                },
                1 => FaultKind::BurstyFlood {
                    burst: 6 + 2 * tier as usize,
                    spacing: Duration::from_micros(20),
                    every: Duration::from_millis(2),
                },
                2 => FaultKind::SpuriousIrqs {
                    period: Duration::from_millis(1),
                    spurious_per_real: 2 + tier as u32,
                },
                3 => FaultKind::DroppedIrqs {
                    period: Duration::from_micros(500),
                    drop_permille: (150 * tier as u32).min(900),
                },
                4 => FaultKind::AdmissionClockJitter {
                    period: Duration::from_millis(3),
                },
                5 => FaultKind::BudgetOverrun {
                    period: Duration::from_millis(1),
                    factor: 2 + 2 * tier as u32,
                },
                _ => FaultKind::NonYieldingGuest {
                    work: Duration::from_millis(6),
                    every: Duration::from_millis(42),
                },
            };
            FaultScenario {
                id: i as u32,
                kind,
                seed: base_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const HORIZON: Duration = Duration::from_millis(200);
    const C_BH: Duration = Duration::from_micros(30);

    fn scenario(kind: FaultKind, seed: u64) -> FaultScenario {
        FaultScenario { id: 0, kind, seed }
    }

    #[test]
    fn plans_are_pure_seed_functions() {
        for kind in [
            FaultKind::IrqStorm {
                period: Duration::from_micros(300),
            },
            FaultKind::SpuriousIrqs {
                period: Duration::from_millis(1),
                spurious_per_real: 3,
            },
            FaultKind::DroppedIrqs {
                period: Duration::from_micros(500),
                drop_permille: 250,
            },
        ] {
            let a = scenario(kind, 7).plan(HORIZON, C_BH);
            let b = scenario(kind, 7).plan(HORIZON, C_BH);
            let c = scenario(kind, 8).plan(HORIZON, C_BH);
            assert_eq!(a, b, "{kind:?} not deterministic");
            assert_ne!(a, c, "{kind:?} ignores its seed");
        }
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_inside_horizon() {
        for s in standard_scenarios(14, 0xFA) {
            let plan = s.plan(HORIZON, C_BH);
            assert!(!plan.arrivals.is_empty(), "{} produced nothing", s.label());
            for pair in plan.arrivals.windows(2) {
                assert!(pair[0].at < pair[1].at, "{} not increasing", s.label());
            }
            let last = plan.arrivals.last().unwrap().at;
            // Duplicate nudging moves timestamps by single nanoseconds, far
            // below any generator period, so the horizon still holds.
            assert!(last < Instant::ZERO + HORIZON, "{} overflows", s.label());
            assert!(plan.arrivals[0].at > Instant::ZERO);
        }
    }

    #[test]
    fn storm_rate_matches_its_period() {
        let plan = scenario(
            FaultKind::IrqStorm {
                period: Duration::from_micros(400),
            },
            3,
        )
        .plan(HORIZON, C_BH);
        // 200 ms / 400 µs = 500 slots, first at t = period.
        assert_eq!(plan.arrivals.len(), 499);
        assert!(plan.arrivals.iter().all(|a| a.work == C_BH));
    }

    #[test]
    fn dropping_removes_roughly_the_requested_fraction() {
        let full = scenario(
            FaultKind::DroppedIrqs {
                period: Duration::from_micros(500),
                drop_permille: 0,
            },
            11,
        )
        .plan(HORIZON, C_BH);
        let lossy = scenario(
            FaultKind::DroppedIrqs {
                period: Duration::from_micros(500),
                drop_permille: 400,
            },
            11,
        )
        .plan(HORIZON, C_BH);
        let kept = lossy.arrivals.len() as f64 / full.arrivals.len() as f64;
        assert!((0.45..0.75).contains(&kept), "kept fraction {kept}");
    }

    #[test]
    fn spurious_arrivals_demand_no_work() {
        let plan = scenario(
            FaultKind::SpuriousIrqs {
                period: Duration::from_millis(1),
                spurious_per_real: 3,
            },
            5,
        )
        .plan(HORIZON, C_BH);
        let spurious = plan.arrivals.iter().filter(|a| a.work.is_zero()).count();
        let real = plan.arrivals.len() - spurious;
        assert!(spurious > 2 * real, "spurious {spurious} vs real {real}");
    }

    #[test]
    fn only_the_jitter_scenario_switches_the_admission_clock() {
        for s in standard_scenarios(7, 1) {
            let plan = s.plan(HORIZON, C_BH);
            let expect = matches!(s.kind, FaultKind::AdmissionClockJitter { .. });
            assert_eq!(
                plan.admission_clock == AdmissionClock::ProcessingTime,
                expect,
                "{}",
                s.label()
            );
        }
    }

    #[test]
    fn shard_fault_kinds_plan_nominally() {
        // Like harness-crash, the shard families' adversity lives one layer
        // up (in the admission fleet): the simulated plan is the nominal
        // periodic stream, byte for byte.
        let period = Duration::from_millis(20);
        let nominal = scenario(FaultKind::Nominal { period }, 9).plan(HORIZON, C_BH);
        let crash = scenario(FaultKind::ShardCrash { period, crashes: 4 }, 9).plan(HORIZON, C_BH);
        let stall = scenario(
            FaultKind::ShardStall {
                period,
                stall: Duration::from_millis(5),
            },
            9,
        )
        .plan(HORIZON, C_BH);
        assert_eq!(crash, nominal);
        assert_eq!(stall, nominal);
        assert_eq!(crash.admission_clock, AdmissionClock::IrqTimestamp);
        assert_eq!(
            FaultKind::ShardCrash { period, crashes: 4 }.slug(),
            "shard-crash"
        );
        assert_eq!(
            FaultKind::ShardStall {
                period,
                stall: Duration::from_millis(5)
            }
            .slug(),
            "shard-stall"
        );
    }

    #[test]
    fn core_fault_kinds_plan_nominally() {
        // The multi-core families follow the same convention: the platform
        // derives crash times and stalled edges from the seed one layer up,
        // so the simulated plan stays the nominal periodic stream.
        let period = Duration::from_millis(20);
        let nominal = scenario(FaultKind::Nominal { period }, 9).plan(HORIZON, C_BH);
        let crash = scenario(FaultKind::CoreCrash { period, crashes: 2 }, 9).plan(HORIZON, C_BH);
        let stall = scenario(
            FaultKind::RouteStall {
                period,
                stall: Duration::from_millis(5),
            },
            9,
        )
        .plan(HORIZON, C_BH);
        assert_eq!(crash, nominal);
        assert_eq!(stall, nominal);
        assert_eq!(
            FaultKind::CoreCrash { period, crashes: 2 }.slug(),
            "core-crash"
        );
        assert_eq!(
            FaultKind::RouteStall {
                period,
                stall: Duration::from_millis(5)
            }
            .slug(),
            "route-stall"
        );
    }

    #[test]
    fn standard_scenarios_cover_every_family() {
        let scenarios = standard_scenarios(20, 0xFA01);
        assert_eq!(scenarios.len(), 20);
        for slug in [
            "irq-storm",
            "bursty-flood",
            "spurious-irqs",
            "dropped-irqs",
            "admission-clock-jitter",
            "budget-overrun",
            "non-yielding-guest",
        ] {
            assert!(
                scenarios.iter().any(|s| s.kind.slug() == slug),
                "family {slug} missing"
            );
        }
        // Labels are unique and stable.
        let labels: Vec<String> = scenarios.iter().map(FaultScenario::label).collect();
        assert_eq!(labels[0], "00-irq-storm");
        assert_eq!(labels[8], "08-bursty-flood");
    }
}
