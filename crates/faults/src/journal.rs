//! Complete one-line JSON round-trips for campaign scenario outcomes.
//!
//! The campaign reports ([`CampaignReport::to_json`]) summarize some
//! fields (e.g. the supervised report emits only a *count* of supervision
//! violations), so they cannot reconstruct an outcome. The journal format
//! here is lossless: every field of [`ScenarioOutcome`] and
//! [`SupervisedScenarioOutcome`] — including full violation lists — is
//! emitted on one line and parsed back bit-identically. A resumable sweep
//! runner appends one journal line per finished scenario; on `--resume`
//! the parsed outcomes replace re-execution and the assembled report is
//! byte-identical to an uninterrupted run.
//!
//! [`CampaignReport::to_json`]: crate::campaign::CampaignReport::to_json

use std::fmt;
use std::fmt::Write as _;

use rthv::time::{Duration, Instant};

use crate::campaign::{ModeOutcome, ScenarioOutcome};
use crate::json::Json;
use crate::oracle::Violation;
use crate::supervised::{SupervisedModeOutcome, SupervisedScenarioOutcome};

/// Why a journal line could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The line is not syntactically valid JSON (typically torn by a
    /// crash mid-append).
    Parse(String),
    /// The line parsed but a required field is missing or has the wrong
    /// type.
    Field(&'static str),
    /// A violation object carries an unknown `kind`.
    UnknownViolation(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Parse(detail) => write!(f, "journal line is not valid JSON: {detail}"),
            JournalError::Field(field) => {
                write!(f, "journal line misses or mistypes field '{field}'")
            }
            JournalError::UnknownViolation(kind) => {
                write!(f, "journal line has unknown violation kind '{kind}'")
            }
        }
    }
}

impl std::error::Error for JournalError {}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn field<'a>(v: &'a Json, key: &'static str) -> Result<&'a Json, JournalError> {
    v.get(key).ok_or(JournalError::Field(key))
}

fn num(v: &Json, key: &'static str) -> Result<u64, JournalError> {
    field(v, key)?.as_u64().ok_or(JournalError::Field(key))
}

fn duration(v: &Json, key: &'static str) -> Result<Duration, JournalError> {
    Ok(Duration::from_nanos(num(v, key)?))
}

fn instant(v: &Json, key: &'static str) -> Result<Instant, JournalError> {
    Ok(Instant::from_nanos(num(v, key)?))
}

fn string(v: &Json, key: &'static str) -> Result<String, JournalError> {
    Ok(field(v, key)?
        .as_str()
        .ok_or(JournalError::Field(key))?
        .to_string())
}

fn violations(v: &Json, key: &'static str) -> Result<Vec<Violation>, JournalError> {
    field(v, key)?
        .as_array()
        .ok_or(JournalError::Field(key))?
        .iter()
        .map(violation_from_json)
        .collect()
}

/// Decodes one violation object ([`Violation::to_json`] is the encoder).
fn violation_from_json(v: &Json) -> Result<Violation, JournalError> {
    let kind = string(v, "kind")?;
    Ok(match kind.as_str() {
        "delta-distance" => Violation::DeltaDistance {
            index: num(v, "index")? as usize,
            at: instant(v, "at_ns")?,
            violated_distance: num(v, "violated_distance")? as usize,
        },
        "window-count" => Violation::WindowCount {
            width: duration(v, "width_ns")?,
            start: instant(v, "start_ns")?,
            observed: num(v, "observed")?,
            allowed: num(v, "allowed")?,
        },
        "window-overrun" => Violation::WindowOverrun {
            start: instant(v, "start_ns")?,
            length: duration(v, "length_ns")?,
            allowed: duration(v, "allowed_ns")?,
        },
        "irq-lost" => Violation::IrqLost {
            scheduled: num(v, "scheduled")?,
            accounted: num(v, "accounted")?,
        },
        "defect" => Violation::Defect {
            context: string(v, "context")?,
        },
        "independence" => Violation::Independence {
            core: num(v, "core")? as usize,
            victim: num(v, "victim")? as usize,
            lost: duration(v, "lost_ns")?,
            bound: duration(v, "bound_ns")?,
        },
        "quarantine-on-nominal" => Violation::QuarantineOnNominal {
            source: num(v, "source")? as usize,
            at: instant(v, "at_ns")?,
        },
        "unjustified-quarantine" => Violation::UnjustifiedQuarantine {
            source: num(v, "source")? as usize,
            at: instant(v, "at_ns")?,
        },
        "premature-recovery" => Violation::PrematureRecovery {
            source: num(v, "source")? as usize,
            at: instant(v, "at_ns")?,
            elapsed: duration(v, "elapsed_ns")?,
            window: duration(v, "window_ns")?,
        },
        "replay-divergence" => Violation::ReplayDivergence {
            slot: num(v, "slot")?,
            expected: num(v, "expected")?,
            actual: num(v, "actual")?,
            seed: num(v, "seed")?,
        },
        "tenant-conservation" => Violation::TenantConservation {
            tenant: num(v, "tenant")? as usize,
            expected: num(v, "expected")?,
            accounted: num(v, "accounted")?,
        },
        "group-budget" => Violation::GroupBudget {
            tenant: num(v, "tenant")? as usize,
            start: instant(v, "start_ns")?,
            observed: num(v, "observed")?,
            allowed: num(v, "allowed")?,
        },
        "global-budget" => Violation::GlobalBudget {
            start: instant(v, "start_ns")?,
            observed: num(v, "observed")?,
            allowed: num(v, "allowed")?,
        },
        _ => return Err(JournalError::UnknownViolation(kind)),
    })
}

fn mode_to_json(mode: &ModeOutcome) -> String {
    let violations: Vec<String> = mode.violations.iter().map(Violation::to_json).collect();
    format!(
        concat!(
            r#"{{"monitored":{},"completions":{},"interposed_windows":{},"#,
            r#""monitor_denied":{},"overflow_rejected":{},"overflow_dropped":{},"#,
            r#""coalesced":{},"outstanding":{},"expired_windows":{},"#,
            r#""worst_victim_loss_ns":{},"independence_bound_ns":{},"violations":[{}]}}"#
        ),
        u64::from(mode.monitored),
        mode.completions,
        mode.interposed_windows,
        mode.monitor_denied,
        mode.overflow_rejected,
        mode.overflow_dropped,
        mode.coalesced,
        mode.outstanding,
        mode.expired_windows,
        mode.worst_victim_loss.as_nanos(),
        mode.independence_bound.as_nanos(),
        violations.join(",")
    )
}

fn mode_from_json(v: &Json) -> Result<ModeOutcome, JournalError> {
    Ok(ModeOutcome {
        monitored: num(v, "monitored")? != 0,
        completions: num(v, "completions")?,
        interposed_windows: num(v, "interposed_windows")?,
        monitor_denied: num(v, "monitor_denied")?,
        overflow_rejected: num(v, "overflow_rejected")?,
        overflow_dropped: num(v, "overflow_dropped")?,
        coalesced: num(v, "coalesced")?,
        outstanding: num(v, "outstanding")?,
        expired_windows: num(v, "expired_windows")?,
        worst_victim_loss: duration(v, "worst_victim_loss_ns")?,
        independence_bound: duration(v, "independence_bound_ns")?,
        violations: violations(v, "violations")?,
    })
}

impl ScenarioOutcome {
    /// Encodes the complete outcome as one JSON line (no trailing
    /// newline). Integer-only, deterministic, lossless.
    #[must_use]
    pub fn to_journal_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            r#"{{"label":"{}","seed":{},"scheduled":{},"monitored":{},"unmonitored":{}}}"#,
            escape(&self.label),
            self.seed,
            self.scheduled,
            mode_to_json(&self.monitored),
            mode_to_json(&self.unmonitored),
        );
        out
    }

    /// Decodes a [`to_journal_json`](ScenarioOutcome::to_journal_json)
    /// line.
    ///
    /// # Errors
    ///
    /// [`JournalError`] on torn lines, missing fields, or unknown
    /// violation kinds.
    pub fn from_journal_json(line: &str) -> Result<Self, JournalError> {
        let v = Json::parse(line).map_err(JournalError::Parse)?;
        Ok(ScenarioOutcome {
            label: string(&v, "label")?,
            seed: num(&v, "seed")?,
            scheduled: num(&v, "scheduled")?,
            monitored: mode_from_json(field(&v, "monitored")?)?,
            unmonitored: mode_from_json(field(&v, "unmonitored")?)?,
        })
    }
}

impl SupervisedScenarioOutcome {
    /// Encodes the complete outcome as one JSON line (no trailing
    /// newline). Unlike the campaign report — which collapses supervision
    /// violations to a count — this keeps the full lists.
    #[must_use]
    pub fn to_journal_json(&self) -> String {
        let supervision_violations: Vec<String> = self
            .supervised
            .supervision_violations
            .iter()
            .map(Violation::to_json)
            .collect();
        format!(
            concat!(
                r#"{{"label":"{}","seed":{},"scheduled":{},"baseline":{},"#,
                r#""supervised_mode":{},"quarantines":{},"recoveries":{},"#,
                r#""demoted_arrivals":{},"shrunk_windows":{},"supervision_violations":[{}]}}"#
            ),
            escape(&self.label),
            self.seed,
            self.scheduled,
            mode_to_json(&self.baseline),
            mode_to_json(&self.supervised.mode),
            self.supervised.quarantines,
            self.supervised.recoveries,
            self.supervised.demoted_arrivals,
            self.supervised.shrunk_windows,
            supervision_violations.join(",")
        )
    }

    /// Decodes a
    /// [`to_journal_json`](SupervisedScenarioOutcome::to_journal_json)
    /// line.
    ///
    /// # Errors
    ///
    /// [`JournalError`] on torn lines, missing fields, or unknown
    /// violation kinds.
    pub fn from_journal_json(line: &str) -> Result<Self, JournalError> {
        let v = Json::parse(line).map_err(JournalError::Parse)?;
        Ok(SupervisedScenarioOutcome {
            label: string(&v, "label")?,
            seed: num(&v, "seed")?,
            scheduled: num(&v, "scheduled")?,
            baseline: mode_from_json(field(&v, "baseline")?)?,
            supervised: SupervisedModeOutcome {
                mode: mode_from_json(field(&v, "supervised_mode")?)?,
                quarantines: num(&v, "quarantines")?,
                recoveries: num(&v, "recoveries")?,
                demoted_arrivals: num(&v, "demoted_arrivals")?,
                shrunk_windows: num(&v, "shrunk_windows")?,
                supervision_violations: violations(&v, "supervision_violations")?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{idle_reference, run_scenario, CampaignConfig};
    use crate::inject::{FaultKind, FaultScenario};
    use crate::supervised::{
        run_supervised_scenario, supervised_scenarios, SupervisedCampaignConfig,
    };

    fn campaign() -> CampaignConfig {
        CampaignConfig {
            horizon: Duration::from_millis(200),
            scenarios: vec![
                FaultScenario {
                    id: 0,
                    kind: FaultKind::IrqStorm {
                        period: Duration::from_micros(300),
                    },
                    seed: 0xFA,
                },
                FaultScenario {
                    id: 1,
                    kind: FaultKind::BudgetOverrun {
                        period: Duration::from_millis(1),
                        factor: 4,
                    },
                    seed: 0xFB,
                },
            ],
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn scenario_outcomes_round_trip_losslessly() {
        let config = campaign();
        let idle = idle_reference(&config).expect("valid config");
        for scenario in &config.scenarios {
            let outcome = run_scenario(&config, &idle, scenario).expect("valid config");
            let line = outcome.to_journal_json();
            assert!(!line.contains('\n'), "journal lines must be single-line");
            assert!(!line.contains('.'), "journal lines must be integer-only");
            let parsed = ScenarioOutcome::from_journal_json(&line).expect("round-trip");
            assert_eq!(parsed, outcome);
            // And the re-encoding is byte-identical, so resumed reports
            // cannot drift.
            assert_eq!(parsed.to_journal_json(), line);
        }
    }

    #[test]
    fn supervised_outcomes_round_trip_losslessly() {
        let mut config = SupervisedCampaignConfig::default();
        config.base.horizon = Duration::from_millis(250);
        config.base.scenarios = supervised_scenarios(0xFA_2014)
            .into_iter()
            .filter(|s| s.id <= 2)
            .collect();
        let idle = idle_reference(&config.base).expect("valid config");
        for scenario in &config.base.scenarios {
            let outcome = run_supervised_scenario(&config, &idle, scenario).expect("valid config");
            let line = outcome.to_journal_json();
            let parsed = SupervisedScenarioOutcome::from_journal_json(&line).expect("round-trip");
            assert_eq!(parsed, outcome);
            assert_eq!(parsed.to_journal_json(), line);
        }
    }

    #[test]
    fn every_violation_kind_round_trips() {
        let all = vec![
            Violation::DeltaDistance {
                index: 3,
                at: Instant::from_nanos(17),
                violated_distance: 1,
            },
            Violation::WindowCount {
                width: Duration::from_nanos(5),
                start: Instant::from_nanos(9),
                observed: 4,
                allowed: 2,
            },
            Violation::WindowOverrun {
                start: Instant::from_nanos(11),
                length: Duration::from_nanos(50),
                allowed: Duration::from_nanos(30),
            },
            Violation::IrqLost {
                scheduled: 10,
                accounted: 9,
            },
            Violation::Defect {
                context: r#"invariant "window\budget" broke"#.to_string(),
            },
            Violation::Independence {
                core: 1,
                victim: 2,
                lost: Duration::from_nanos(100),
                bound: Duration::from_nanos(90),
            },
            Violation::QuarantineOnNominal {
                source: 0,
                at: Instant::from_nanos(33),
            },
            Violation::UnjustifiedQuarantine {
                source: 1,
                at: Instant::from_nanos(44),
            },
            Violation::PrematureRecovery {
                source: 0,
                at: Instant::from_nanos(55),
                elapsed: Duration::from_nanos(5),
                window: Duration::from_nanos(12),
            },
            Violation::ReplayDivergence {
                slot: 11,
                expected: 1,
                actual: 2,
                seed: 7,
            },
            Violation::TenantConservation {
                tenant: 1,
                expected: 64,
                accounted: 63,
            },
            Violation::GroupBudget {
                tenant: 2,
                start: Instant::from_nanos(66),
                observed: 9,
                allowed: 8,
            },
            Violation::GlobalBudget {
                start: Instant::from_nanos(77),
                observed: 33,
                allowed: 32,
            },
        ];
        for violation in all {
            let json = Json::parse(&violation.to_json()).expect("violation JSON parses");
            assert_eq!(
                violation_from_json(&json).expect("round-trip"),
                violation,
                "{}",
                violation.slug()
            );
        }
    }

    #[test]
    fn torn_and_mistyped_lines_are_typed_errors() {
        assert!(matches!(
            ScenarioOutcome::from_journal_json(r#"{"label":"x","seed":1,"sched"#),
            Err(JournalError::Parse(_))
        ));
        assert!(matches!(
            ScenarioOutcome::from_journal_json(r#"{"label":"x","seed":1}"#),
            Err(JournalError::Field("scheduled"))
        ));
        assert!(matches!(
            violation_from_json(&Json::parse(r#"{"kind":"no-such-kind"}"#).unwrap()),
            Err(JournalError::UnknownViolation(_))
        ));
    }
}
