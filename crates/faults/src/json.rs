//! A minimal hand-rolled JSON reader for journal lines.
//!
//! The workspace's serde is a no-op shim, so the journal's writer *and*
//! reader are both ours: the grammar is exactly what [`crate::journal`]
//! emits — objects, arrays, strings with `\\` and `\"` escapes, and
//! unsigned integers. Anything else is a parse error, which the journal
//! loader treats as a torn line.

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Json {
    /// Key/value pairs in document order.
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    Str(String),
    Num(u64),
}

impl Json {
    /// Parses one complete JSON document; trailing garbage is an error.
    pub(crate) fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Object member lookup.
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at offset {pos}",
            char::from(byte),
            pos = *pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(other) => Err(format!(
            "unexpected byte '{}' at offset {pos}",
            char::from(*other),
            pos = *pos
        )),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| format!("invalid UTF-8: {e}"));
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    // The writer only escapes backslash and quote; pass the
                    // escaped byte through verbatim.
                    Some(&escaped) => {
                        out.push(escaped);
                        *pos += 1;
                    }
                    None => return Err("dangling escape at end of input".to_string()),
                }
            }
            Some(&byte) => {
                out.push(byte);
                *pos += 1;
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    text.parse::<u64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number '{text}': {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": 1, "b": [2, {"c": "x\"y\\z"}], "d": []}"#;
        let v = Json::parse(doc).expect("valid document");
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        let b = v.get("b").and_then(Json::as_array).expect("array");
        assert_eq!(b[0].as_u64(), Some(2));
        assert_eq!(
            b[1].get("c").and_then(Json::as_str),
            Some(r#"x"y\z"#),
            "escapes must round-trip"
        );
        assert_eq!(v.get("d").and_then(Json::as_array), Some(&[][..]));
    }

    #[test]
    fn torn_documents_are_errors_not_panics() {
        for torn in [
            "",
            "{",
            r#"{"a""#,
            r#"{"a": 1"#,
            r#"{"a": 1}}"#,
            r#"{"a": "unterminated"#,
            r#"[1, 2"#,
            r#"{"a": 18446744073709551616}"#, // u64 overflow
            r#"{"a": -3}"#,                   // journal never emits negatives
        ] {
            assert!(Json::parse(torn).is_err(), "accepted torn input {torn:?}");
        }
    }
}
