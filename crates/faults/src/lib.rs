//! Adversarial fault injection and a post-hoc temporal-independence oracle.
//!
//! The paper's safety argument (sufficient temporal independence, Eq. 14)
//! is a *claim about every possible run*: no matter how an IRQ-subscribing
//! partition misbehaves, a victim partition loses at most
//! `⌈Δt/d_min⌉ · C'_BH` of service in any window `Δt`. The rest of this
//! workspace demonstrates the claim on well-behaved workloads; this crate
//! attacks it.
//!
//! Three layers:
//!
//! * [`inject`] — seeded, reproducible adversities ([`FaultKind`]): IRQ
//!   storms far above the admissible rate, bursty floods, spurious
//!   zero-work interrupts, silently dropped interrupt lines, admission
//!   checks on the jittery processing-time clock, bottom handlers that try
//!   to overrun their declared budget, and guest handlers that refuse to
//!   yield. Every scenario is a pure function of its seed.
//! * [`oracle`] — a replay oracle over the [`RunReport`] a run leaves
//!   behind. It independently re-verifies, record by record, that the
//!   admitted activation stream conforms to δ⁻ (Eq. 6), that sliding-window
//!   activation counts stay under η⁺, that no interposed window exceeded
//!   its enforced budget, that every scheduled IRQ is accounted for
//!   (completed, coalesced, rejected, dropped or still queued — never
//!   silently lost), and that the machine detected no internal defect.
//! * [`campaign`] — runs every scenario twice under
//!   [`IrqHandlingMode::Interposed`]: once with the real δ⁻ monitor and
//!   once with an admit-everything shaper (the unmonitored baseline), then
//!   compares each victim partition's measured service loss against the
//!   Eq. 13–16 bound. The monitored runs must be violation-free; the
//!   unmonitored baseline must demonstrably break independence under an
//!   IRQ storm — both outcomes are persisted in a deterministic JSON
//!   report ([`CampaignReport::to_json`]).
//! * [`supervised`] — the runtime-health-supervision campaign: every fault
//!   family runs on a composite fault-then-calm plan, once monitored-only
//!   and once monitored + supervised. The supervised arm must quarantine
//!   misbehaving sources (each quarantine justified by a recorded signal,
//!   never on the nominal ablation — [`oracle::check_supervision`]),
//!   recover them during the calm tail, and *strictly* reduce well-behaved
//!   victims' worst-case service loss under the storm and flood families.
//! * [`replay`] — the divergence-detecting checkpoint replay: any campaign
//!   scenario can be recorded with per-slot-boundary state hashes plus
//!   periodic [`MachineSnapshot`] checkpoints, then re-executed from the
//!   nearest checkpoint; the first boundary whose hash mismatches becomes
//!   a [`Violation::ReplayDivergence`] with a repro seed.
//! * [`journal`] — complete, hand-rolled JSON round-trips for scenario
//!   outcomes, so a killed campaign's journal reloads bit-identically and
//!   a `--resume` run assembles the same report as an uninterrupted one.
//! * [`smp`] — the multi-core platform campaign: both placement arms
//!   across core counts {1, 2, 4}, seeded core-crash/route-stall plans,
//!   the per-victim-core oracle sweep, victim-stream identity digests and
//!   the failover-disabled ablation that must demonstrably break.
//!
//! [`RunReport`]: rthv::RunReport
//! [`IrqHandlingMode::Interposed`]: rthv::IrqHandlingMode::Interposed
//! [`MachineSnapshot`]: rthv::MachineSnapshot

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod inject;
pub mod journal;
mod json;
pub mod oracle;
pub mod replay;
pub mod smp;
pub mod supervised;

pub use campaign::{
    idle_reference, run_campaign, run_scenario, run_scenario_with_metrics, scenario_machine,
    CampaignConfig, CampaignConfigError, CampaignReport, IdleReference, ModeOutcome,
    ScenarioObservation, ScenarioOutcome,
};
pub use inject::{standard_scenarios, FaultKind, FaultPlan, FaultScenario, InjectedArrival};
pub use journal::JournalError;
pub use oracle::{
    check_admitted_stream, check_global_budget, check_group_budget, check_report,
    check_supervision, OracleConfig, Violation,
};
pub use replay::{
    record_scenario, verify, verify_cross_engine, verify_from, ReplayConfig, ReplayError,
    ReplayTrace,
};
pub use smp::{
    assemble_smp_report, build_platform, core_faults, line_arrivals, run_smp_case,
    run_smp_case_stepped, run_smp_scenario, smp_report_passes, smp_scenarios, SmpArm, SmpCase,
    SmpConfig, SmpError, SmpOutcome, SmpRecord, SmpScenario, SmpTraffic,
};
pub use supervised::{
    composite_plan, run_supervised_campaign, run_supervised_scenario, supervised_scenarios,
    SupervisedCampaignConfig, SupervisedCampaignReport, SupervisedModeOutcome,
    SupervisedScenarioOutcome,
};
