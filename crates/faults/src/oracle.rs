//! Post-hoc temporal-independence oracle over a [`RunReport`].
//!
//! The machine already *enforces* the paper's mechanisms online; this
//! module re-verifies them offline, from the records a run leaves behind,
//! with independent implementations — a distance-based δ⁻ replay
//! ([`ActivationMonitor`]) *and* a count-based η⁺ sliding-window check, an
//! interposed-window budget audit against the traced spans, and an IRQ
//! conservation ledger. A mechanism bug that slipped past the online
//! enforcement shows up here as a [`Violation`].
//!
//! [`RunReport`]: rthv::RunReport

use std::fmt;

use rthv::monitor::{interference_bound, ActivationMonitor, Admission, DeltaFunction};
use rthv::time::{Duration, Instant};
use rthv::{HealthState, RunReport, Span, SupervisionEventKind, SupervisionReport};

/// What the oracle holds a run against.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// The δ⁻ condition the run claimed to enforce; `None` for the
    /// unmonitored baseline (conformance checks are skipped, conservation
    /// and budget checks still apply).
    pub delta: Option<DeltaFunction>,
    /// The enforced interposition budget (`C_BH` of the monitored source).
    pub budget: Duration,
    /// IRQ arrivals actually scheduled into the machine.
    pub scheduled: u64,
}

/// One oracle finding. Also covers the campaign-level independence check
/// (emitted by [`crate::campaign`], counted uniformly in the report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An *admitted* activation violates δ⁻ against an earlier admitted one.
    DeltaDistance {
        /// Index of the offending record in the admitted sub-stream.
        index: usize,
        /// Its admission-check timestamp.
        at: Instant,
        /// δ⁻ entry index of the first violated constraint.
        violated_distance: usize,
    },
    /// A sliding window holds more admitted activations than η⁺ allows.
    WindowCount {
        /// Window width `Δt`.
        width: Duration,
        /// Start of the offending window (an admitted activation).
        start: Instant,
        /// Activations observed in `[start, start + width)`.
        observed: u64,
        /// `η⁺(Δt)` for the configured δ⁻.
        allowed: u64,
    },
    /// An interposed window span exceeds the enforced budget plus the
    /// hypervisor blocks that preempted it.
    WindowOverrun {
        /// Window opening time.
        start: Instant,
        /// Measured span length.
        length: Duration,
        /// Budget plus overlapping hypervisor time.
        allowed: Duration,
    },
    /// The run's ledger does not cover every scheduled IRQ: completions,
    /// coalesced, overflow-rejected, overflow-dropped and still-queued
    /// events must sum to the number scheduled.
    IrqLost {
        /// Arrivals scheduled into the machine.
        scheduled: u64,
        /// Arrivals the ledger accounts for.
        accounted: u64,
    },
    /// The machine halted on an internal invariant violation.
    Defect {
        /// The machine's description of the defect.
        context: String,
    },
    /// A victim partition lost more service than the Eq. 13–16 bound.
    Independence {
        /// Physical core hosting the victim (0 on single-core platforms).
        core: usize,
        /// Victim partition index.
        victim: usize,
        /// Measured service loss vs the idle reference.
        lost: Duration,
        /// Interference bound (Eq. 14 plus the top-handler term).
        bound: Duration,
    },
    /// Supervision quarantined a source on a scenario declared nominal —
    /// a well-behaved stream must never be demoted.
    QuarantineOnNominal {
        /// The quarantined source index.
        source: usize,
        /// Time of the quarantine entry.
        at: Instant,
    },
    /// A quarantine entry is not justified by a recorded penalty signal of
    /// the same source at the same instant.
    UnjustifiedQuarantine {
        /// The quarantined source index.
        source: usize,
        /// Time of the quarantine entry.
        at: Instant,
    },
    /// A checkpoint replay diverged from the recorded run: at slot boundary
    /// `slot` the re-executed machine's state hash differs from the hash the
    /// original run recorded. Either the simulation is not a pure function
    /// of its inputs, or the recorded state was corrupted in flight.
    ReplayDivergence {
        /// First slot boundary whose state hash mismatched.
        slot: u64,
        /// The hash the original run recorded at that boundary.
        expected: u64,
        /// The hash the replayed machine produced.
        actual: u64,
        /// The scenario seed that reproduces the divergence.
        seed: u64,
    },
    /// A supervision upgrade (towards Healthy) happened before a full
    /// probation window elapsed since the source's previous transition or
    /// last penalty signal — the hysteresis the policy promises.
    PrematureRecovery {
        /// The upgraded source index.
        source: usize,
        /// Time of the upgrade.
        at: Instant,
        /// Time observed since the latest transition/signal of the source.
        elapsed: Duration,
        /// The policy's probation window.
        window: Duration,
    },
    /// A tenant's ledger does not cover every arrival scheduled for it:
    /// admitted, denied (any level), shed (any reason), lost-in-flight must
    /// partition the tenant's scheduled count. A mismatch names the tenant.
    TenantConservation {
        /// The tenant whose ledger failed to balance.
        tenant: usize,
        /// Arrivals scheduled for the tenant's sources.
        expected: u64,
        /// Arrivals the tenant's ledger accounts for.
        accounted: u64,
    },
    /// A tenant's merged admitted stream packs more activations into a
    /// sliding group-budget window than its δ⁻ group budget allows.
    GroupBudget {
        /// The offending tenant.
        tenant: usize,
        /// Start of the offending window (an admitted activation).
        start: Instant,
        /// Activations observed in `[start, start + window)`.
        observed: u64,
        /// The tenant's group budget for that window.
        allowed: u64,
    },
    /// The union of all tenants' admitted streams exceeds the global
    /// interference budget in a sliding window.
    GlobalBudget {
        /// Start of the offending window (an admitted activation).
        start: Instant,
        /// Activations observed in `[start, start + window)`.
        observed: u64,
        /// The global budget for that window.
        allowed: u64,
    },
}

impl Violation {
    /// Short kebab-case identifier for reports.
    #[must_use]
    pub fn slug(&self) -> &'static str {
        match self {
            Violation::DeltaDistance { .. } => "delta-distance",
            Violation::WindowCount { .. } => "window-count",
            Violation::WindowOverrun { .. } => "window-overrun",
            Violation::IrqLost { .. } => "irq-lost",
            Violation::Defect { .. } => "defect",
            Violation::Independence { .. } => "independence",
            Violation::QuarantineOnNominal { .. } => "quarantine-on-nominal",
            Violation::UnjustifiedQuarantine { .. } => "unjustified-quarantine",
            Violation::ReplayDivergence { .. } => "replay-divergence",
            Violation::PrematureRecovery { .. } => "premature-recovery",
            Violation::TenantConservation { .. } => "tenant-conservation",
            Violation::GroupBudget { .. } => "group-budget",
            Violation::GlobalBudget { .. } => "global-budget",
        }
    }

    /// One-line JSON object with integer-only numeric fields (deterministic
    /// across hosts — no floats, no wall-clock).
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            Violation::DeltaDistance {
                index,
                at,
                violated_distance,
            } => format!(
                r#"{{"kind":"delta-distance","index":{index},"at_ns":{},"violated_distance":{violated_distance}}}"#,
                at.as_nanos()
            ),
            Violation::WindowCount {
                width,
                start,
                observed,
                allowed,
            } => format!(
                r#"{{"kind":"window-count","width_ns":{},"start_ns":{},"observed":{observed},"allowed":{allowed}}}"#,
                width.as_nanos(),
                start.as_nanos()
            ),
            Violation::WindowOverrun {
                start,
                length,
                allowed,
            } => format!(
                r#"{{"kind":"window-overrun","start_ns":{},"length_ns":{},"allowed_ns":{}}}"#,
                start.as_nanos(),
                length.as_nanos(),
                allowed.as_nanos()
            ),
            Violation::IrqLost {
                scheduled,
                accounted,
            } => {
                format!(r#"{{"kind":"irq-lost","scheduled":{scheduled},"accounted":{accounted}}}"#)
            }
            Violation::Defect { context } => {
                format!(r#"{{"kind":"defect","context":"{}"}}"#, escape(context))
            }
            Violation::Independence {
                core,
                victim,
                lost,
                bound,
            } => format!(
                r#"{{"kind":"independence","core":{core},"victim":{victim},"lost_ns":{},"bound_ns":{}}}"#,
                lost.as_nanos(),
                bound.as_nanos()
            ),
            Violation::QuarantineOnNominal { source, at } => format!(
                r#"{{"kind":"quarantine-on-nominal","source":{source},"at_ns":{}}}"#,
                at.as_nanos()
            ),
            Violation::UnjustifiedQuarantine { source, at } => format!(
                r#"{{"kind":"unjustified-quarantine","source":{source},"at_ns":{}}}"#,
                at.as_nanos()
            ),
            Violation::PrematureRecovery {
                source,
                at,
                elapsed,
                window,
            } => format!(
                r#"{{"kind":"premature-recovery","source":{source},"at_ns":{},"elapsed_ns":{},"window_ns":{}}}"#,
                at.as_nanos(),
                elapsed.as_nanos(),
                window.as_nanos()
            ),
            Violation::ReplayDivergence {
                slot,
                expected,
                actual,
                seed,
            } => format!(
                r#"{{"kind":"replay-divergence","slot":{slot},"expected":{expected},"actual":{actual},"seed":{seed}}}"#
            ),
            Violation::TenantConservation {
                tenant,
                expected,
                accounted,
            } => format!(
                r#"{{"kind":"tenant-conservation","tenant":{tenant},"expected":{expected},"accounted":{accounted}}}"#
            ),
            Violation::GroupBudget {
                tenant,
                start,
                observed,
                allowed,
            } => format!(
                r#"{{"kind":"group-budget","tenant":{tenant},"start_ns":{},"observed":{observed},"allowed":{allowed}}}"#,
                start.as_nanos()
            ),
            Violation::GlobalBudget {
                start,
                observed,
                allowed,
            } => format!(
                r#"{{"kind":"global-budget","start_ns":{},"observed":{observed},"allowed":{allowed}}}"#,
                start.as_nanos()
            ),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DeltaDistance {
                index,
                at,
                violated_distance,
            } => write!(
                f,
                "admitted activation #{index} at {at} violates δ⁻ entry {violated_distance}"
            ),
            Violation::WindowCount {
                width,
                start,
                observed,
                allowed,
            } => write!(
                f,
                "{observed} admitted activations in [{start}, +{width}) exceed η⁺ = {allowed}"
            ),
            Violation::WindowOverrun {
                start,
                length,
                allowed,
            } => write!(
                f,
                "interposed window at {start} ran {length}, allowed {allowed}"
            ),
            Violation::IrqLost {
                scheduled,
                accounted,
            } => write!(
                f,
                "IRQ ledger covers {accounted} of {scheduled} scheduled arrivals"
            ),
            Violation::Defect { context } => write!(f, "machine defect: {context}"),
            Violation::Independence {
                core,
                victim,
                lost,
                bound,
            } => write!(
                f,
                "core {core} partition {victim} lost {lost}, independence bound {bound}"
            ),
            Violation::QuarantineOnNominal { source, at } => {
                write!(f, "source {source} quarantined at {at} on a nominal run")
            }
            Violation::UnjustifiedQuarantine { source, at } => write!(
                f,
                "source {source} quarantined at {at} without a recorded signal"
            ),
            Violation::PrematureRecovery {
                source,
                at,
                elapsed,
                window,
            } => write!(
                f,
                "source {source} upgraded at {at} after only {elapsed} (window {window})"
            ),
            Violation::ReplayDivergence {
                slot,
                expected,
                actual,
                seed,
            } => write!(
                f,
                "replay diverged at slot boundary {slot}: recorded hash \
                 {expected:#018x}, replayed {actual:#018x} (repro seed {seed})"
            ),
            Violation::TenantConservation {
                tenant,
                expected,
                accounted,
            } => write!(
                f,
                "tenant {tenant} ledger covers {accounted} of {expected} scheduled arrivals"
            ),
            Violation::GroupBudget {
                tenant,
                start,
                observed,
                allowed,
            } => write!(
                f,
                "tenant {tenant} admitted {observed} in a group-budget window at {start}, allowed {allowed}"
            ),
            Violation::GlobalBudget {
                start,
                observed,
                allowed,
            } => write!(
                f,
                "global stream admitted {observed} in a budget window at {start}, allowed {allowed}"
            ),
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Replays a [`RunReport`] against the oracle's invariants and returns
/// every violation found (empty = the run upheld the paper's claims).
///
/// Assumes a single-subscriber source set (each arrival yields at most one
/// completion), which is what the fault campaign runs.
#[must_use]
pub fn check_report(report: &RunReport, oracle: &OracleConfig) -> Vec<Violation> {
    let mut violations = Vec::new();

    if let Some(delta) = &oracle.delta {
        let admitted: Vec<Instant> = report
            .admissions
            .iter()
            .filter(|r| r.admitted)
            .map(|r| r.check_at)
            .collect();
        check_delta_replay(&admitted, delta, &mut violations);
        check_window_counts(&admitted, delta, &mut violations);
    }

    if let (Some(windows), Some(hv)) = (&report.window_spans, &report.hv_spans) {
        check_window_budgets(windows, hv, oracle.budget, &mut violations);
    }

    check_conservation(report, oracle.scheduled, &mut violations);

    if let Some(defect) = &report.defect {
        violations.push(Violation::Defect {
            context: defect.to_string(),
        });
    }

    violations
}

/// Invariant A — distance check: feed the admitted activation stream back
/// through a fresh [`ActivationMonitor`]; every record must be admitted
/// again. Offenders are still recorded so later distances reflect the
/// stream that actually ran.
fn check_delta_replay(admitted: &[Instant], delta: &DeltaFunction, out: &mut Vec<Violation>) {
    let mut monitor = ActivationMonitor::new(delta.clone());
    for (index, &at) in admitted.iter().enumerate() {
        if let Admission::Denied { violated_distance } = monitor.check(at) {
            out.push(Violation::DeltaDistance {
                index,
                at,
                violated_distance,
            });
        }
        monitor.record_admitted(at);
    }
}

/// Invariant B — count check, independent of A's implementation: in any
/// half-open window `[t, t + Δt)` anchored at an admitted activation, the
/// number of admitted activations must not exceed `η⁺(Δt)`. Probes the
/// paper-relevant widths (1×, 2× and 5× `d_min`). Reports at most one
/// offending window per width (the first).
fn check_window_counts(admitted: &[Instant], delta: &DeltaFunction, out: &mut Vec<Violation>) {
    if delta.dmin().is_zero() {
        return;
    }
    for factor in [1u64, 2, 5] {
        let width = delta.dmin().saturating_mul(factor);
        let allowed = delta.eta_plus(width);
        let mut hi = 0usize;
        for lo in 0..admitted.len() {
            let end = admitted[lo] + width;
            hi = hi.max(lo);
            while hi < admitted.len() && admitted[hi] < end {
                hi += 1;
            }
            let observed = (hi - lo) as u64;
            if observed > allowed {
                out.push(Violation::WindowCount {
                    width,
                    start: admitted[lo],
                    observed,
                    allowed,
                });
                break;
            }
        }
    }
}

/// The fleet-wide per-victim oracle: holds one victim's *merged* admitted
/// activation stream — the union of every admission any shard granted the
/// victim's source, across crash/failover cuts — to the Eq. 13–16
/// independence bound.
///
/// Three independent checks per victim:
///
/// * the δ⁻ distance replay (invariant A) over the merged stream — a shard
///   restored from a stale or empty checkpoint admits too densely right at
///   the crash cut, and the first post-crash admission lands here;
/// * the η⁺ sliding-window count check (invariant B) at 1×, 2× and 5×
///   `d_min`;
/// * the interference bound itself: the worst observed window charge
///   `count · C'_BH` must stay within `η⁺(Δt) · C'_BH` (Eq. 14 via
///   [`interference_bound`]), reported as [`Violation::Independence`] with
///   the victim's source index.
///
/// `admitted` must be in non-decreasing time order (merge the per-shard
/// streams before calling). A δ⁻ with `d_min = 0` bounds nothing and
/// returns no violations, matching [`check_report`].
///
/// `core` is the physical core hosting the victim's stream — multi-core
/// platforms check each `(core, admitted-on-that-core)` substream
/// separately (a failed-over stream restarts on a fresh monitor, so
/// merging across the crash cut would manufacture false positives) and
/// the reported [`Violation::Independence`] names the core. Single-core
/// callers pass `0`.
#[must_use]
pub fn check_admitted_stream(
    core: usize,
    victim: usize,
    admitted: &[Instant],
    delta: &DeltaFunction,
    effective_cost: Duration,
) -> Vec<Violation> {
    let mut out = Vec::new();
    check_delta_replay(admitted, delta, &mut out);
    check_window_counts(admitted, delta, &mut out);
    if delta.dmin().is_zero() {
        return out;
    }
    for factor in [1u64, 2, 5] {
        let width = delta.dmin().saturating_mul(factor);
        let bound = interference_bound(width, delta, effective_cost);
        let mut hi = 0usize;
        let mut worst = 0u64;
        for lo in 0..admitted.len() {
            let end = admitted[lo] + width;
            hi = hi.max(lo);
            while hi < admitted.len() && admitted[hi] < end {
                hi += 1;
            }
            worst = worst.max((hi - lo) as u64);
        }
        let lost = effective_cost.saturating_mul(worst);
        if lost > bound {
            out.push(Violation::Independence {
                core,
                victim,
                lost,
                bound,
            });
        }
    }
    out
}

/// Sliding-count check of one tenant's merged admitted stream against its
/// δ⁻ group budget: no window `[t, t + window)` anchored at an admission
/// may hold more than `budget` admissions. η⁺ cannot express this bound
/// (a group δ⁻ has `d_min = 0`), so the count is checked directly with a
/// two-pointer sweep. `admitted` must be in non-decreasing time order.
/// Only the first offending window is reported.
#[must_use]
pub fn check_group_budget(
    tenant: usize,
    admitted: &[Instant],
    budget: u64,
    window: Duration,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if let Some((start, observed)) = first_window_overflow(admitted, budget, window) {
        out.push(Violation::GroupBudget {
            tenant,
            start,
            observed,
            allowed: budget,
        });
    }
    out
}

/// Sliding-count check of the union of all tenants' admitted streams
/// against the global interference budget (same sweep as
/// [`check_group_budget`], fleet-wide). `admitted` must be in
/// non-decreasing time order. Only the first offending window is reported.
#[must_use]
pub fn check_global_budget(admitted: &[Instant], budget: u64, window: Duration) -> Vec<Violation> {
    let mut out = Vec::new();
    if let Some((start, observed)) = first_window_overflow(admitted, budget, window) {
        out.push(Violation::GlobalBudget {
            start,
            observed,
            allowed: budget,
        });
    }
    out
}

/// First window `[admitted[lo], +window)` holding more than `budget`
/// admissions, with its count, if any.
fn first_window_overflow(
    admitted: &[Instant],
    budget: u64,
    window: Duration,
) -> Option<(Instant, u64)> {
    let mut hi = 0usize;
    for lo in 0..admitted.len() {
        let end = admitted[lo] + window;
        hi = hi.max(lo);
        while hi < admitted.len() && admitted[hi] < end {
            hi += 1;
        }
        let observed = (hi - lo) as u64;
        if observed > budget {
            return Some((admitted[lo], observed));
        }
    }
    None
}

/// Invariant C — budget check: each traced interposed window may span its
/// enforced budget plus whatever hypervisor blocks (new arrivals latching)
/// preempted it while open. Both span lists are in increasing start order.
fn check_window_budgets(windows: &[Span], hv: &[Span], budget: Duration, out: &mut Vec<Violation>) {
    let mut first_hv = 0usize;
    for w in windows {
        while first_hv < hv.len() && hv[first_hv].end <= w.start {
            first_hv += 1;
        }
        let mut nested = Duration::ZERO;
        for block in &hv[first_hv..] {
            if block.start >= w.end {
                break;
            }
            let overlap_start = block.start.max(w.start);
            let overlap_end = block.end.min(w.end);
            nested += overlap_end.saturating_duration_since(overlap_start);
        }
        let allowed = budget + nested;
        let length = w.length();
        if length > allowed {
            out.push(Violation::WindowOverrun {
                start: w.start,
                length,
                allowed,
            });
        }
    }
}

/// Invariant D — conservation: every scheduled arrival is either completed,
/// coalesced into a pending flag, refused or dropped by a bounded queue, or
/// still outstanding at the end of the run. Anything else means the machine
/// silently lost an IRQ.
fn check_conservation(report: &RunReport, scheduled: u64, out: &mut Vec<Violation>) {
    let accounted = report.recorder.len() as u64
        + report.counters.coalesced_irqs
        + report.counters.overflow_rejected
        + report.counters.overflow_dropped
        + report.outstanding;
    if accounted != scheduled {
        out.push(Violation::IrqLost {
            scheduled,
            accounted,
        });
    }
}

/// Invariant S — quarantine soundness over the supervision event log:
///
/// * on a scenario declared nominal, no quarantine may ever trigger;
/// * every quarantine entry must be justified by a penalty signal of the
///   same source recorded at the same instant (demotions are never
///   spontaneous);
/// * every upgrade towards Healthy must respect hysteresis — at least one
///   full probation window since the source's previous transition *and*
///   since its latest penalty signal.
///
/// Returns nothing for runs without supervision enabled.
#[must_use]
pub fn check_supervision(report: &RunReport, expect_nominal: bool) -> Vec<Violation> {
    let mut violations = Vec::new();
    let Some(supervision) = &report.supervision else {
        return violations;
    };
    check_supervision_log(supervision, expect_nominal, &mut violations);
    violations
}

fn check_supervision_log(
    supervision: &SupervisionReport,
    expect_nominal: bool,
    out: &mut Vec<Violation>,
) {
    let window = supervision.policy.probation_window;
    let n_sources = supervision.final_states.len();
    // Latest penalty signal and latest transition per source, scanned in
    // log order (the log is chronological by construction).
    let mut last_signal: Vec<Option<Instant>> = vec![None; n_sources];
    let mut last_transition: Vec<Option<Instant>> = vec![None; n_sources];
    for event in &supervision.events {
        let source = event.source;
        match event.kind {
            SupervisionEventKind::Signal(_) => {
                last_signal[source] = Some(event.at);
            }
            SupervisionEventKind::Transition(transition) => {
                if transition.to == HealthState::Quarantined {
                    if expect_nominal {
                        out.push(Violation::QuarantineOnNominal {
                            source,
                            at: event.at,
                        });
                    }
                    // A demotion into quarantine must coincide with a
                    // recorded penalty signal of the same source.
                    if last_signal[source] != Some(event.at) {
                        out.push(Violation::UnjustifiedQuarantine {
                            source,
                            at: event.at,
                        });
                    }
                }
                let upgrade = matches!(
                    (transition.from, transition.to),
                    (HealthState::Probation, HealthState::Healthy)
                        | (HealthState::Quarantined, HealthState::Recovering)
                        | (HealthState::Recovering, HealthState::Healthy)
                );
                if upgrade {
                    let anchors = [last_transition[source], last_signal[source]];
                    let elapsed = anchors
                        .iter()
                        .flatten()
                        .map(|&anchor| event.at.saturating_duration_since(anchor))
                        .min();
                    if let Some(elapsed) = elapsed {
                        if elapsed < window {
                            out.push(Violation::PrematureRecovery {
                                source,
                                at: event.at,
                                elapsed,
                                window,
                            });
                        }
                    }
                }
                last_transition[source] = Some(event.at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rthv::{
        AdmissionRecord, Counters, HandlingClass, IrqCompletion, IrqSourceId, PartitionId,
        TraceRecorder,
    };

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    fn at_us(n: u64) -> Instant {
        Instant::from_micros(n)
    }

    fn admission(seq: u64, check_us: u64, admitted: bool) -> AdmissionRecord {
        AdmissionRecord {
            source: IrqSourceId::new(0),
            seq,
            check_at: at_us(check_us),
            admitted,
        }
    }

    fn completion(seq: u64) -> IrqCompletion {
        IrqCompletion {
            source: IrqSourceId::new(0),
            seq,
            partition: PartitionId::new(1),
            arrival: at_us(10 * seq),
            completed: at_us(10 * seq + 5),
            class: HandlingClass::Direct,
        }
    }

    fn empty_report() -> RunReport {
        RunReport {
            recorder: TraceRecorder::new(),
            counters: Counters::new(3),
            end: at_us(1_000),
            monitor_stats: vec![None],
            window_openings: Vec::new(),
            admissions: Vec::new(),
            outstanding: 0,
            defect: None,
            service_intervals: None,
            hv_spans: None,
            window_spans: None,
            supervision: None,
        }
    }

    fn oracle(delta_us: Option<u64>, scheduled: u64) -> OracleConfig {
        OracleConfig {
            delta: delta_us.map(|d| DeltaFunction::from_dmin(us(d)).expect("positive d_min")),
            budget: us(30),
            scheduled,
        }
    }

    #[test]
    fn clean_report_passes() {
        let mut report = empty_report();
        report.admissions = vec![
            admission(0, 100, true),
            admission(1, 150, false),
            admission(2, 400, true),
        ];
        report
            .recorder
            .extend([completion(0), completion(1), completion(2)]);
        assert!(check_report(&report, &oracle(Some(300), 3)).is_empty());
    }

    #[test]
    fn non_conformant_admitted_stream_is_caught_twice() {
        // Three admitted activations 50 µs apart under d_min = 300 µs: the
        // distance replay and the independent window count both fire.
        let mut report = empty_report();
        report.admissions = vec![
            admission(0, 100, true),
            admission(1, 150, true),
            admission(2, 200, true),
        ];
        report.recorder.extend((0..3).map(completion));
        let violations = check_report(&report, &oracle(Some(300), 3));
        assert!(violations.iter().any(|v| matches!(
            v,
            Violation::DeltaDistance {
                index: 1,
                violated_distance: 0,
                ..
            }
        )));
        assert!(violations.iter().any(|v| matches!(
            v,
            Violation::WindowCount {
                observed: 3,
                allowed: 2,
                ..
            }
        )));
    }

    #[test]
    fn denied_records_do_not_trip_the_replay() {
        let mut report = empty_report();
        report.admissions = vec![
            admission(0, 100, true),
            admission(1, 120, false),
            admission(2, 140, false),
            admission(3, 500, true),
        ];
        report.recorder.extend((0..4).map(completion));
        assert!(check_report(&report, &oracle(Some(300), 4)).is_empty());
    }

    #[test]
    fn unmonitored_oracle_skips_conformance() {
        let mut report = empty_report();
        report.admissions = vec![admission(0, 100, true), admission(1, 101, true)];
        report.recorder.extend([completion(0), completion(1)]);
        assert!(check_report(&report, &oracle(None, 2)).is_empty());
    }

    #[test]
    fn lost_irq_is_caught() {
        let mut report = empty_report();
        report.recorder.extend([completion(0)]);
        let violations = check_report(&report, &oracle(None, 3));
        assert_eq!(
            violations,
            vec![Violation::IrqLost {
                scheduled: 3,
                accounted: 1
            }]
        );
    }

    #[test]
    fn ledger_counts_every_degradation_path() {
        let mut report = empty_report();
        report.recorder.extend([completion(0)]);
        report.counters.coalesced_irqs = 1;
        report.counters.overflow_rejected = 2;
        report.counters.overflow_dropped = 1;
        report.outstanding = 1;
        assert!(check_report(&report, &oracle(None, 6)).is_empty());
    }

    #[test]
    fn overrunning_window_is_caught_but_nested_hv_time_is_excused() {
        let mut report = empty_report();
        report.window_spans = Some(vec![
            // 30 µs budget, no preemption: fine.
            Span {
                start: at_us(100),
                end: at_us(130),
            },
            // 40 µs span, 10 µs hv block inside: exactly allowed.
            Span {
                start: at_us(200),
                end: at_us(240),
            },
            // 50 µs span, nothing to excuse it.
            Span {
                start: at_us(300),
                end: at_us(350),
            },
        ]);
        report.hv_spans = Some(vec![Span {
            start: at_us(210),
            end: at_us(220),
        }]);
        let violations = check_report(&report, &oracle(None, 0));
        assert_eq!(
            violations,
            vec![Violation::WindowOverrun {
                start: at_us(300),
                length: us(50),
                allowed: us(30),
            }]
        );
    }

    #[test]
    fn defect_surfaces_as_violation() {
        let mut report = empty_report();
        report.defect = Some(rthv::MachineError::InvariantViolated {
            context: "test defect",
            at: at_us(42),
        });
        let violations = check_report(&report, &oracle(None, 0));
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].slug(), "defect");
        assert!(violations[0].to_json().contains("test defect"));
    }

    #[test]
    fn violation_json_is_integer_only() {
        let v = Violation::Independence {
            core: 0,
            victim: 0,
            lost: Duration::from_nanos(223_000_001),
            bound: Duration::from_nanos(26_800_000),
        };
        assert_eq!(
            v.to_json(),
            r#"{"kind":"independence","core":0,"victim":0,"lost_ns":223000001,"bound_ns":26800000}"#
        );
        assert_eq!(v.slug(), "independence");
    }
}
