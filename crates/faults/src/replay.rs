//! Divergence-detecting checkpoint replay.
//!
//! [`record_scenario`] drives one campaign machine to the horizon slot
//! boundary by slot boundary, recording the machine's
//! [`state_hash`](rthv::Machine::state_hash) at every boundary and a full
//! [`MachineSnapshot`] every [`ReplayConfig::checkpoint_every`] boundaries.
//! [`verify_from`] then re-executes the run from the nearest checkpoint at
//! or before a chosen slot and compares hashes boundary by boundary: the
//! first mismatch is reported as
//! [`Violation::ReplayDivergence`] carrying the diverging slot, both
//! hashes, and the scenario seed that reproduces the run.
//!
//! Because scenario plans are pure seed functions and the machine is a
//! pure function of `(config, plan)`, a clean replay proves the recorded
//! `RunReport` is reproducible from its inputs; a divergence pinpoints
//! *when* the re-execution first went off the recorded trajectory — at
//! slot granularity, not merely "the final report differs".

use rthv::time::Instant;
use rthv::{EngineChoice, Machine, MachineSnapshot, RunReport, SupervisionPolicy, TdmaSchedule};

use crate::campaign::{scenario_machine, CampaignConfig, CampaignConfigError};
use crate::inject::FaultScenario;
use crate::oracle::Violation;

/// Why a replay verification failed: the campaign configuration is
/// invalid, or the re-execution diverged from the recording.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The campaign configuration could not build a machine at all.
    Config(CampaignConfigError),
    /// The re-execution went off the recorded trajectory; always a
    /// [`Violation::ReplayDivergence`].
    Divergence(Violation),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Config(error) => write!(f, "{error}"),
            ReplayError::Divergence(violation) => write!(f, "replay diverged: {violation}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<CampaignConfigError> for ReplayError {
    fn from(error: CampaignConfigError) -> Self {
        ReplayError::Config(error)
    }
}

/// How a scenario is recorded and replayed.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Run with the real δ⁻ monitor (`true`) or the admit-everything
    /// baseline shaper (`false`).
    pub monitored: bool,
    /// Runtime health supervision for the run, if any.
    pub supervision: Option<SupervisionPolicy>,
    /// Keep a full machine snapshot every this many slot boundaries (the
    /// initial state is always checkpoint 0). Must be non-zero.
    pub checkpoint_every: u64,
}

impl Default for ReplayConfig {
    /// Monitored, unsupervised, a checkpoint every 8 slot boundaries.
    fn default() -> Self {
        ReplayConfig {
            monitored: true,
            supervision: None,
            checkpoint_every: 8,
        }
    }
}

/// The recording of one scenario run: per-boundary state hashes, periodic
/// checkpoints, and the finished [`RunReport`].
#[derive(Debug, Clone)]
pub struct ReplayTrace {
    seed: u64,
    /// `boundary_hashes[k - 1]` is the state hash after processing every
    /// event up to and including slot boundary `k`.
    boundary_hashes: Vec<u64>,
    /// Snapshots keyed by the boundary index they were taken at; always
    /// starts with `(0, <initial state>)`.
    checkpoints: Vec<(u64, MachineSnapshot)>,
    /// FNV-1a digest of the final report's canonical rendering — covers
    /// the record buffers in full, beyond the per-boundary length+last
    /// summary inside `state_hash`.
    report_digest: u64,
    report: RunReport,
}

impl ReplayTrace {
    /// The scenario seed that reproduces this run.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Slot boundaries recorded before the horizon.
    #[must_use]
    pub fn boundaries(&self) -> u64 {
        self.boundary_hashes.len() as u64
    }

    /// Full checkpoints kept (including the initial state).
    #[must_use]
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.len() as u64
    }

    /// The finished run's report.
    #[must_use]
    pub fn report(&self) -> &RunReport {
        &self.report
    }
}

/// Runs one scenario to the horizon, recording boundary hashes and
/// periodic checkpoints.
///
/// # Errors
///
/// [`CampaignConfigError`] if `replay.checkpoint_every` is zero or the
/// campaign platform configuration is invalid.
pub fn record_scenario(
    config: &CampaignConfig,
    scenario: &FaultScenario,
    replay: &ReplayConfig,
) -> Result<ReplayTrace, CampaignConfigError> {
    if replay.checkpoint_every == 0 {
        return Err(CampaignConfigError::ZeroCheckpointPeriod);
    }
    let plan = scenario.plan(config.horizon, config.setup.bottom_cost);
    let mut machine = scenario_machine(config, &plan, replay.monitored, replay.supervision)?;
    let schedule = machine.schedule().clone();
    let horizon = Instant::ZERO + config.horizon;

    let mut checkpoints = vec![(0, machine.snapshot())];
    let mut boundary_hashes = Vec::new();
    let mut k = 1u64;
    while schedule.boundary_time(k) <= horizon {
        machine.run_until(schedule.boundary_time(k));
        boundary_hashes.push(machine.state_hash());
        if k.is_multiple_of(replay.checkpoint_every) {
            checkpoints.push((k, machine.snapshot()));
        }
        k += 1;
    }
    machine.run_until(horizon);
    let report = machine.finish();
    Ok(ReplayTrace {
        seed: scenario.seed,
        boundary_hashes,
        checkpoints,
        report_digest: fnv1a(format!("{report:?}").as_bytes()),
        report,
    })
}

/// Re-executes the recorded run from its initial state and checks every
/// slot boundary. Equivalent to [`verify_from`] with `from_slot = 0`.
///
/// # Errors
///
/// The first diverging boundary, as
/// [`ReplayError::Divergence`], or [`ReplayError::Config`] if the
/// configuration cannot build a machine.
pub fn verify(
    config: &CampaignConfig,
    scenario: &FaultScenario,
    replay: &ReplayConfig,
    trace: &ReplayTrace,
) -> Result<(), ReplayError> {
    verify_from(config, scenario, replay, trace, 0)
}

/// Re-executes the recorded run from the nearest checkpoint at or before
/// slot boundary `from_slot`, comparing the machine's state hash against
/// the recording at every subsequent boundary and the final report digest
/// at the horizon.
///
/// # Errors
///
/// The first diverging boundary, as [`ReplayError::Divergence`] carrying
/// a [`Violation::ReplayDivergence`] with `(slot, expected hash, actual
/// hash, scenario seed)`; [`ReplayError::Config`] if the configuration
/// cannot build a machine.
pub fn verify_from(
    config: &CampaignConfig,
    scenario: &FaultScenario,
    replay: &ReplayConfig,
    trace: &ReplayTrace,
    from_slot: u64,
) -> Result<(), ReplayError> {
    verify_from_with(config, scenario, replay, trace, from_slot, |_, _| {})
}

/// [`verify_from`] with a state-mutation hook, called as `mutate(k,
/// &mut machine)` right before the replay executes the segment ending at
/// boundary `k`. The no-op hook is the production path; tests inject
/// mid-run corruption through it and assert the oracle pins the first
/// diverging slot.
///
/// # Errors
///
/// See [`verify_from`].
pub fn verify_from_with(
    config: &CampaignConfig,
    scenario: &FaultScenario,
    replay: &ReplayConfig,
    trace: &ReplayTrace,
    from_slot: u64,
    mut mutate: impl FnMut(u64, &mut Machine),
) -> Result<(), ReplayError> {
    let (start, snapshot) = trace
        .checkpoints
        .iter()
        .rev()
        .find(|(k, _)| *k <= from_slot)
        .expect("checkpoint 0 always exists");

    let plan = scenario.plan(config.horizon, config.setup.bottom_cost);
    let mut machine = scenario_machine(config, &plan, replay.monitored, replay.supervision)?;
    machine.restore(snapshot);
    let schedule: TdmaSchedule = machine.schedule().clone();
    let horizon = Instant::ZERO + config.horizon;

    for k in (start + 1)..=trace.boundaries() {
        mutate(k, &mut machine);
        machine.run_until(schedule.boundary_time(k));
        let actual = machine.state_hash();
        let expected = trace.boundary_hashes[(k - 1) as usize];
        if actual != expected {
            return Err(ReplayError::Divergence(Violation::ReplayDivergence {
                slot: k,
                expected,
                actual,
                seed: trace.seed,
            }));
        }
    }

    // Past the last boundary: the report digest covers the full record
    // buffers (completions, admissions, spans), catching any tail-only
    // divergence the length+last boundary hash could miss.
    let end_slot = trace.boundaries() + 1;
    mutate(end_slot, &mut machine);
    machine.run_until(horizon);
    let report = machine.finish();
    let actual = fnv1a(format!("{report:?}").as_bytes());
    if actual != trace.report_digest {
        return Err(ReplayError::Divergence(Violation::ReplayDivergence {
            slot: end_slot,
            expected: trace.report_digest,
            actual,
            seed: trace.seed,
        }));
    }
    Ok(())
}

/// Records the scenario under the [`EngineChoice::Heap`] reference engine,
/// then re-executes it from scratch on the [`EngineChoice::Wheel`] timing
/// wheel, comparing [`state_hash`](Machine::state_hash) at **every** slot
/// boundary and the full report digest at the horizon. The wheel run
/// additionally crosses a snapshot/restore cut at every
/// [`ReplayConfig::checkpoint_every`] boundaries — the continuation machine
/// is a fresh build restored from the snapshot — so hash identity is also
/// proven across serialization cuts.
///
/// This turns the checkpoint/replay oracle into a cross-engine
/// differential test: the engines share no stepping code beyond the
/// [`Engine`](rthv::sim::Engine) contract, so any ordering or
/// accounting discrepancy between them surfaces as a pinned
/// [`Violation::ReplayDivergence`].
///
/// # Errors
///
/// The first diverging boundary (or the horizon, for a report-only
/// divergence), as [`ReplayError::Divergence`]; [`ReplayError::Config`]
/// if `replay.checkpoint_every` is zero or the campaign platform
/// configuration is invalid.
pub fn verify_cross_engine(
    config: &CampaignConfig,
    scenario: &FaultScenario,
    replay: &ReplayConfig,
) -> Result<(), ReplayError> {
    let heap = CampaignConfig {
        engine: EngineChoice::Heap,
        ..config.clone()
    };
    let wheel = CampaignConfig {
        engine: EngineChoice::Wheel,
        ..config.clone()
    };
    let trace = record_scenario(&heap, scenario, replay)?;

    let plan = scenario.plan(config.horizon, config.setup.bottom_cost);
    let mut machine = scenario_machine(&wheel, &plan, replay.monitored, replay.supervision)?;
    let schedule: TdmaSchedule = machine.schedule().clone();
    let horizon = Instant::ZERO + config.horizon;

    for k in 1..=trace.boundaries() {
        machine.run_until(schedule.boundary_time(k));
        let actual = machine.state_hash();
        let expected = trace.boundary_hashes[(k - 1) as usize];
        if actual != expected {
            return Err(ReplayError::Divergence(Violation::ReplayDivergence {
                slot: k,
                expected,
                actual,
                seed: trace.seed,
            }));
        }
        if k.is_multiple_of(replay.checkpoint_every) {
            // Snapshot/restore cut: continue from a freshly built machine
            // restored from the wheel snapshot, not the original.
            let snapshot = machine.snapshot();
            let mut resumed =
                scenario_machine(&wheel, &plan, replay.monitored, replay.supervision)?;
            resumed.restore(&snapshot);
            machine = resumed;
        }
    }

    machine.run_until(horizon);
    let report = machine.finish();
    let actual = fnv1a(format!("{report:?}").as_bytes());
    if actual != trace.report_digest {
        return Err(ReplayError::Divergence(Violation::ReplayDivergence {
            slot: trace.boundaries() + 1,
            expected: trace.report_digest,
            actual,
            seed: trace.seed,
        }));
    }
    Ok(())
}

/// 64-bit FNV-1a over raw bytes (the same digest family `state_hash`
/// uses for state words).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::FaultKind;
    use rthv::time::Duration;
    use rthv::IrqSourceId;

    fn config() -> CampaignConfig {
        CampaignConfig {
            horizon: Duration::from_millis(200),
            scenarios: Vec::new(),
            ..CampaignConfig::default()
        }
    }

    fn storm() -> FaultScenario {
        FaultScenario {
            id: 0,
            kind: FaultKind::IrqStorm {
                period: Duration::from_micros(300),
            },
            seed: 0xFA,
        }
    }

    #[test]
    fn clean_replay_verifies_from_every_checkpoint() {
        let config = config();
        let replay = ReplayConfig::default();
        let trace = record_scenario(&config, &storm(), &replay).expect("valid config");
        assert!(trace.boundaries() > 10);
        assert!(trace.checkpoints() > 1);
        for from_slot in [0, 1, 7, 8, 9, trace.boundaries()] {
            assert_eq!(
                verify_from(&config, &storm(), &replay, &trace, from_slot),
                Ok(()),
                "from_slot={from_slot}"
            );
        }
    }

    #[test]
    fn supervised_replay_verifies() {
        let config = config();
        let replay = ReplayConfig {
            supervision: Some(rthv::SupervisionPolicy::default()),
            ..ReplayConfig::default()
        };
        let trace = record_scenario(&config, &storm(), &replay).expect("valid config");
        assert_eq!(verify(&config, &storm(), &replay, &trace), Ok(()));
    }

    #[test]
    fn zero_checkpoint_period_is_a_typed_error() {
        let replay = ReplayConfig {
            checkpoint_every: 0,
            ..ReplayConfig::default()
        };
        assert!(matches!(
            record_scenario(&config(), &storm(), &replay),
            Err(CampaignConfigError::ZeroCheckpointPeriod)
        ));
    }

    #[test]
    fn injected_mutation_is_pinned_to_its_slot() {
        let config = config();
        let replay = ReplayConfig::default();
        let trace = record_scenario(&config, &storm(), &replay).expect("valid config");

        // Corrupt the machine right before the segment ending at boundary
        // 11: a δ⁻ swap silently changes future admissions. The oracle
        // must report slot 11 — not the end of the run.
        let verdict = verify_from_with(&config, &storm(), &replay, &trace, 0, |k, machine| {
            if k == 11 {
                let delta = rthv::monitor::DeltaFunction::from_dmin(Duration::from_millis(9))
                    .expect("valid δ⁻");
                assert!(machine.set_monitor_delta(IrqSourceId::new(0), delta));
            }
        });
        match verdict {
            Err(ReplayError::Divergence(Violation::ReplayDivergence {
                slot,
                expected,
                actual,
                seed,
            })) => {
                assert_eq!(slot, 11);
                assert_ne!(expected, actual);
                assert_eq!(seed, 0xFA);
            }
            other => panic!("expected a replay divergence, got {other:?}"),
        }
    }

    #[test]
    fn divergence_json_is_integer_only() {
        let v = Violation::ReplayDivergence {
            slot: 11,
            expected: 0xDEAD,
            actual: 0xBEEF,
            seed: 7,
        };
        assert_eq!(v.slug(), "replay-divergence");
        assert_eq!(
            v.to_json(),
            r#"{"kind":"replay-divergence","slot":11,"expected":57005,"actual":48879,"seed":7}"#
        );
        assert!(!v.to_json().contains('.'));
    }
}
