//! The `smp_storm` campaign: seeded traffic/fault scenarios driven through
//! the multi-core platform ([`MultiMachine`]) across core counts and two
//! placement arms — hierarchical affinity (every line lands on its
//! subscriber's core) versus round-robin (every aggressor line pays an
//! IPI hop) — once with the budgeted, δ⁻-admitted failover path and once
//! with failover discipline disabled (the ablation), every admitted
//! stream replayed through the per-victim-core Eq. 13–16 oracle.
//!
//! The campaign's claim extends the paper's temporal-independence argument
//! to the platform level:
//!
//! * **monitored clean** — with the reroute budget and a real-`d_min`
//!   failover twin, *no* per-victim-core admitted stream violates the
//!   oracle, across every arm, core count and crash/stall/storm plan;
//! * **victim identity** — the victim line's admission stream (home core
//!   0, which never crashes and hosts no aggressor line) is
//!   byte-identical across core counts {1, 2, 4} on crash-free plans:
//!   growing the platform — more cores, each bringing its own aggressor
//!   load and routing traffic — changes nothing the victim core can
//!   observe. This is deliberately a *cross-core* claim: co-located
//!   lines on one core share interposed-window hardware and interact
//!   within the Eq. 13–16 bound (that is the single-core campaign's
//!   subject), so the victim core carries exactly the victim line at
//!   every count;
//! * **ablation broken** — with the platform budget removed and the twin
//!   monitor opened to an admit-everything 1 ns δ⁻, a storm rerouted by a
//!   core crash demonstrably violates the fallback core's independence
//!   bound. The failover discipline is load-bearing, and the campaign
//!   proves it by turning it off.
//!
//! Scenario outcomes are pure functions of `(config, scenario)`; the
//! `smp_storm` binary fans them out with the bench crate's `SweepRunner`
//! and journals each [`SmpRecord`] for crash-resumable, byte-identical
//! report assembly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rthv::monitor::{DeltaFunction, ShaperConfig};
use rthv::obs::ObsConfig;
use rthv::time::{Duration, Instant};
use rthv::{
    CoreFault, CostModel, FailoverPolicy, FallbackRoute, HypervisorConfig, IrqHandlingMode,
    IrqSourceId, IrqSourceSpec, MultiMachine, MultiRunReport, PartitionId, PartitionSpec, Platform,
    PlatformError, PlatformScheduleError, PlatformSource, StepChoice,
};

use crate::inject::{FaultKind, FaultScenario};
use crate::oracle::check_admitted_stream;

/// Golden-ratio stride shared with [`crate::inject::standard_scenarios`]
/// for per-scenario and per-source seed derivation.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Campaign geometry: the per-core machine both arms share, the core
/// counts swept, the routing cost model and the traffic horizon.
#[derive(Debug, Clone)]
pub struct SmpConfig {
    /// Traffic/fault horizon per run.
    pub horizon: Duration,
    /// Monitoring distance `d_min` of every platform line (and of the
    /// failover twin outside the ablation).
    pub dmin: Duration,
    /// Bottom-handler WCET `C_BH` of every line.
    pub bottom_cost: Duration,
    /// Core counts the campaign sweeps (victim identity is asserted
    /// across all of them).
    pub core_counts: Vec<usize>,
    /// Platform IRQ lines at the largest core count: line 0 is the
    /// victim, pinned to core 0 (alone — the identity verdict is a
    /// cross-core claim); lines `1..sources` are aggressors homed on the
    /// non-victim cores, so a single-core platform carries only the
    /// victim line.
    pub sources: usize,
    /// Uniform cross-core routing cost (IPI latency).
    pub route_cost: Duration,
    /// Shared-interconnect penalty per cross-core hop.
    pub shared_penalty: Duration,
}

impl SmpConfig {
    /// The standard campaign: 4 lines over a 1 s horizon on core counts
    /// {1, 2, 4}, 5 µs routing + 1 µs interconnect penalty, the paper's
    /// `d_min = 3 ms` and `C_BH = 30 µs`.
    #[must_use]
    pub fn standard() -> Self {
        SmpConfig {
            horizon: Duration::from_millis(1000),
            dmin: Duration::from_millis(3),
            bottom_cost: Duration::from_micros(30),
            core_counts: vec![1, 2, 4],
            sources: 4,
            route_cost: Duration::from_micros(5),
            shared_penalty: Duration::from_micros(1),
        }
    }

    /// The smoke campaign: the same geometry over 250 ms — small enough
    /// for CI, same families and verdict.
    #[must_use]
    pub fn smoke() -> Self {
        SmpConfig {
            horizon: Duration::from_millis(250),
            ..SmpConfig::standard()
        }
    }

    /// `C'_BH` (Eq. 15): the per-admission charge the oracle replays.
    #[must_use]
    pub fn effective_cost(&self) -> Duration {
        CostModel::paper_arm926ejs().effective_bottom_cost(self.bottom_cost)
    }

    /// The largest swept core count (the ablation geometry).
    #[must_use]
    pub fn max_cores(&self) -> usize {
        self.core_counts.iter().copied().max().unwrap_or(1)
    }
}

/// Why an SMP campaign run could not be set up or driven.
#[derive(Debug, Clone, PartialEq)]
pub enum SmpError {
    /// `d_min` must be positive (a zero distance admits everything and
    /// the oracle bound degenerates).
    InvalidDmin {
        /// The rejected distance.
        dmin: Duration,
    },
    /// The assembled [`Platform`] failed validation.
    Platform(PlatformError),
    /// An arrival could not be scheduled.
    Schedule(PlatformScheduleError),
}

impl std::fmt::Display for SmpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmpError::InvalidDmin { dmin } => {
                write!(f, "invalid d_min {} ns: must be positive", dmin.as_nanos())
            }
            SmpError::Platform(error) => write!(f, "invalid platform: {error}"),
            SmpError::Schedule(error) => write!(f, "arrival rejected: {error:?}"),
        }
    }
}

impl std::error::Error for SmpError {}

impl From<PlatformError> for SmpError {
    fn from(error: PlatformError) -> Self {
        SmpError::Platform(error)
    }
}

/// IRQ-line placement policy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmpArm {
    /// Every line's hardware input lands on its subscriber's core: no
    /// steady-state IPIs, routing only on failover.
    HierAffinity,
    /// Aggressor lines land one core away from their subscriber, so every
    /// aggressor arrival pays a routing hop. The victim line stays local
    /// — its stream must not care how the rest of the platform routes.
    RoundRobin,
}

impl SmpArm {
    /// Stable machine-readable label.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            SmpArm::HierAffinity => "hier",
            SmpArm::RoundRobin => "rr",
        }
    }

    /// Both arms, in campaign order.
    pub const ALL: [SmpArm; 2] = [SmpArm::HierAffinity, SmpArm::RoundRobin];
}

/// What drives the platform lines in a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmpTraffic {
    /// Every line near `d_min`-spaced (jittered) — the conformant load.
    Nominal,
    /// Aggressor lines at `d_min / 4` (jittered) — far above the
    /// admissible rate; the victim line stays nominal.
    Storm,
}

impl SmpTraffic {
    /// Stable machine-readable label.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            SmpTraffic::Nominal => "nominal",
            SmpTraffic::Storm => "storm",
        }
    }
}

/// One SMP scenario: a traffic shape plus a core-fault adversity, both
/// pure functions of the scenario seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmpScenario {
    /// Position in the campaign (stable across runs; part of the label).
    pub id: u32,
    /// Line traffic shape.
    pub traffic: SmpTraffic,
    /// Core-fault adversity (kind + seed); [`FaultKind::Nominal`] means
    /// no platform faults.
    pub fault: FaultScenario,
}

impl SmpScenario {
    /// Stable scenario label, e.g. `03-storm-core-crash`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{:02}-{}-{}",
            self.id,
            self.traffic.slug(),
            self.fault.kind.slug()
        )
    }

    /// Crash/stall-free — the victim-identity verdict covers exactly
    /// these scenarios (identity in fact holds for every family, and the
    /// report records it per scenario, but the verdict claims only what
    /// the issue demands).
    #[must_use]
    pub fn identity_family(&self) -> bool {
        matches!(self.fault.kind, FaultKind::Nominal { .. })
    }

    /// Storm traffic rerouted by a core crash — the family whose ablation
    /// run must demonstrably violate independence.
    #[must_use]
    pub fn breakage_family(&self) -> bool {
        self.traffic == SmpTraffic::Storm && matches!(self.fault.kind, FaultKind::CoreCrash { .. })
    }
}

/// The five SMP families, cycled `count` times with per-scenario derived
/// seeds. Mirrors [`crate::inject::standard_scenarios`]'s shape: the list
/// is a pure function of `(count, base_seed)`.
#[must_use]
pub fn smp_scenarios(count: u32, base_seed: u64, horizon: Duration) -> Vec<SmpScenario> {
    let crash_period = Duration::from_nanos((horizon.as_nanos() / 4).max(1));
    let stall_period = Duration::from_nanos((horizon.as_nanos() / 4).max(1));
    let families: [(SmpTraffic, FaultKind); 5] = [
        (
            SmpTraffic::Nominal,
            FaultKind::Nominal {
                period: Duration::from_millis(3),
            },
        ),
        (
            SmpTraffic::Nominal,
            FaultKind::CoreCrash {
                period: crash_period,
                crashes: 1,
            },
        ),
        (
            SmpTraffic::Storm,
            FaultKind::Nominal {
                period: Duration::from_millis(3),
            },
        ),
        (
            SmpTraffic::Storm,
            FaultKind::CoreCrash {
                period: crash_period,
                crashes: 2,
            },
        ),
        (
            SmpTraffic::Storm,
            FaultKind::RouteStall {
                period: stall_period,
                stall: Duration::from_millis(2),
            },
        ),
    ];
    (0..count)
        .map(|i| {
            let (traffic, kind) = families[(i as usize) % families.len()];
            SmpScenario {
                id: i,
                traffic,
                fault: FaultScenario {
                    id: i,
                    kind,
                    seed: base_seed ^ u64::from(i).wrapping_mul(SEED_STRIDE),
                },
            }
        })
        .collect()
}

/// One core's hypervisor configuration: the paper's three-partition TDMA
/// table (6000/6000/2000 µs), one monitored local line per platform
/// source (distinct monitors, so co-located lines cannot pollute each
/// other's admission state) and the failover twin at index
/// `config.sources`, all subscribed by partition 1 under
/// [`IrqHandlingMode::Interposed`].
fn core_config(
    config: &SmpConfig,
    delta: &DeltaFunction,
    twin_delta: &DeltaFunction,
) -> HypervisorConfig {
    let mut sources = Vec::with_capacity(config.sources + 1);
    for line in 0..config.sources {
        let mut spec = IrqSourceSpec::new(
            format!("line{line}"),
            PartitionId::new(1),
            config.bottom_cost,
        );
        spec.monitor = Some(ShaperConfig::Delta(delta.clone()));
        sources.push(spec);
    }
    let mut twin = IrqSourceSpec::new("failover-in", PartitionId::new(1), config.bottom_cost);
    twin.monitor = Some(ShaperConfig::Delta(twin_delta.clone()));
    sources.push(twin);
    HypervisorConfig {
        partitions: vec![
            PartitionSpec::new("app1", Duration::from_micros(6_000)),
            PartitionSpec::new("app2", Duration::from_micros(6_000)),
            PartitionSpec::new("hk", Duration::from_micros(2_000)),
        ],
        sources,
        costs: CostModel::paper_arm926ejs(),
        mode: IrqHandlingMode::Interposed,
        policies: Default::default(),
        windows: None,
    }
}

/// Builds the platform for one `(arm, cores, failover)` case. With
/// `failover_enabled` the default budgeted policy and a real-`d_min` twin
/// guard the reroute path; without it the budget is removed and the twin
/// admits everything — the ablation the breakage verdict turns on.
///
/// # Errors
///
/// [`SmpError::InvalidDmin`] on a zero `d_min`; [`SmpError::Platform`]
/// when the assembled platform fails validation.
pub fn build_platform(
    config: &SmpConfig,
    arm: SmpArm,
    cores: usize,
    failover_enabled: bool,
) -> Result<Platform, SmpError> {
    if config.dmin.is_zero() {
        return Err(SmpError::InvalidDmin { dmin: config.dmin });
    }
    let delta = DeltaFunction::from_dmin(config.dmin)
        .map_err(|_| SmpError::InvalidDmin { dmin: config.dmin })?;
    let twin_delta = if failover_enabled {
        delta.clone()
    } else {
        DeltaFunction::from_dmin(Duration::from_nanos(1)).expect("1 ns d_min is valid")
    };
    let core = core_config(config, &delta, &twin_delta);
    let twin_id = IrqSourceId::new(config.sources as u32);
    // A single-core platform carries only the victim line: aggressors
    // live on the cores the sweep adds, so the victim core's workload —
    // and therefore the victim's admission stream — is invariant in the
    // core count.
    let line_count = if cores > 1 { config.sources } else { 1 };
    let sources = (0..line_count)
        .map(|line| {
            let home = if line == 0 {
                0
            } else {
                1 + (line - 1) % (cores - 1)
            };
            // The victim line (0) is pinned local in both arms: the
            // identity verdict compares its stream across core counts,
            // so its own path must not change with the routing policy.
            let origin = match arm {
                SmpArm::HierAffinity => home,
                SmpArm::RoundRobin if line == 0 => home,
                SmpArm::RoundRobin => (home + 1) % cores,
            };
            let fallback = (cores > 1).then_some(FallbackRoute {
                core: (home + 1) % cores,
                source: twin_id,
            });
            PlatformSource {
                origin,
                home,
                home_source: IrqSourceId::new(line as u32),
                fallback,
            }
        })
        .collect();
    let failover = if failover_enabled {
        FailoverPolicy::default()
    } else {
        FailoverPolicy {
            budget: None,
            ..FailoverPolicy::default()
        }
    };
    Ok(Platform {
        cores: vec![core; cores],
        route_cost: uniform_route(cores, config.route_cost),
        shared_penalty: config.shared_penalty,
        sources,
        failover,
    })
}

/// A square routing matrix with `cost` everywhere off the diagonal.
fn uniform_route(cores: usize, cost: Duration) -> Vec<Vec<Duration>> {
    (0..cores)
        .map(|from| {
            (0..cores)
                .map(|to| if from == to { Duration::ZERO } else { cost })
                .collect()
        })
        .collect()
}

/// One line's arrival schedule: a pure function of `(scenario seed,
/// line)`, independent of arm and core count — that independence is what
/// the victim-identity verdict leans on.
pub fn line_arrivals(config: &SmpConfig, scenario: &SmpScenario, line: usize) -> Vec<Instant> {
    let mut rng =
        StdRng::seed_from_u64(scenario.fault.seed ^ (line as u64 + 1).wrapping_mul(SEED_STRIDE));
    let dmin = config.dmin.as_nanos();
    let dense = scenario.traffic == SmpTraffic::Storm && line != 0;
    // Nominal lines hover just above d_min with jitter dipping below it
    // (some denials, deterministically); storm aggressors run at d_min/4.
    let (base, jitter) = if dense {
        (dmin / 4, dmin / 16)
    } else {
        (dmin + dmin / 8, dmin / 4)
    };
    let end = Instant::ZERO + config.horizon;
    let mut at = Instant::ZERO + Duration::from_nanos(1 + rng.gen_range(0..base.max(1)));
    let mut out = Vec::new();
    while at < end {
        out.push(at);
        at += Duration::from_nanos(base.max(1) + rng.gen_range(0..=jitter));
    }
    out
}

/// Derives the seeded [`CoreFault`] plan for one `(scenario, cores)`
/// case. Crash victims are distinct cores drawn from `1..cores` — core 0
/// hosts the victim line and must survive, exactly like the crash plans
/// one layer down never target shard 0's journal. Single-core platforms
/// have nothing to crash or stall; the plan degenerates to calm.
pub fn core_faults(scenario: &SmpScenario, cores: usize, horizon: Duration) -> Vec<CoreFault> {
    if cores <= 1 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(scenario.fault.seed ^ 0xC0DE_FA17);
    match scenario.fault.kind {
        FaultKind::CoreCrash { period, crashes } => {
            let mut pool: Vec<usize> = (1..cores).collect();
            let n = (crashes as usize).min(pool.len());
            (0..n)
                .map(|i| {
                    let pick = rng.gen_range(0..pool.len());
                    let core = pool.swap_remove(pick);
                    let jitter = rng.gen_range(0..=period.as_nanos() / 8);
                    let at = Instant::ZERO
                        + Duration::from_nanos(period.as_nanos() * (i as u64 + 1) + jitter);
                    CoreFault::Crash { at, core }
                })
                .collect()
        }
        FaultKind::RouteStall { period, stall } => {
            let mut out = Vec::new();
            let mut k = 1u64;
            while period.as_nanos() * k + stall.as_nanos() < horizon.as_nanos() {
                let from = rng.gen_range(0..cores);
                let mut to = rng.gen_range(0..cores);
                if to == from {
                    to = (to + 1) % cores;
                }
                let start = Instant::ZERO + Duration::from_nanos(period.as_nanos() * k);
                out.push(CoreFault::RouteStall {
                    from,
                    to,
                    start,
                    until: start + stall,
                });
                k += 1;
            }
            out
        }
        _ => Vec::new(),
    }
}

/// The distilled result of one `(arm, cores, failover)` platform run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmpCase {
    /// Placement arm.
    pub arm: SmpArm,
    /// Core count.
    pub cores: usize,
    /// Per-victim-core oracle violations (δ⁻ replay, η⁺ windows,
    /// Eq. 13–16 bound) summed over every `(core, line)` admitted stream.
    pub violations: u64,
    /// FNV-1a digest of the victim line's admission stream on core 0
    /// (per-record admit/deny flag and check-instant gap — shift- and
    /// interleaving-invariant, so it must not move across core counts).
    pub victim_digest: u64,
    /// Typed platform sheds.
    pub sheds: u64,
    /// In-flight activations lost to core crashes.
    pub lost: u64,
    /// Cross-core deliveries (IPIs received, platform-wide).
    pub ipi_in: u64,
    /// Failed-over arrivals accepted (platform-wide).
    pub failover_in: u64,
    /// Plain IPIs deferred behind stalled routes (platform-wide).
    pub stall_deferrals: u64,
    /// Cores lost to the crash plan.
    pub crashed: u32,
    /// Arrival/service conservation held and no core reported a defect.
    pub ledger_ok: bool,
}

/// Runs one `(arm, cores, failover)` case and distills it.
///
/// # Errors
///
/// Propagates [`build_platform`] errors; [`SmpError::Schedule`] when an
/// arrival lands outside the platform's accepted range.
pub fn run_smp_case(
    config: &SmpConfig,
    scenario: &SmpScenario,
    arm: SmpArm,
    cores: usize,
    failover_enabled: bool,
    metrics: Option<ObsConfig>,
) -> Result<(SmpCase, Option<String>), SmpError> {
    run_smp_case_stepped(
        config,
        scenario,
        arm,
        cores,
        failover_enabled,
        metrics,
        StepChoice::Auto,
    )
}

/// [`run_smp_case`] with an explicit stepping mode instead of the
/// `RTHV_PARALLEL` default — the hook the differential proptests and the
/// bench smp_scaling probe use to run the *same* case sequentially and in
/// parallel and compare bytes.
///
/// # Errors
///
/// As [`run_smp_case`].
pub fn run_smp_case_stepped(
    config: &SmpConfig,
    scenario: &SmpScenario,
    arm: SmpArm,
    cores: usize,
    failover_enabled: bool,
    metrics: Option<ObsConfig>,
    step: StepChoice,
) -> Result<(SmpCase, Option<String>), SmpError> {
    let platform = build_platform(config, arm, cores, failover_enabled)?;
    let line_count = platform.sources.len();
    let faults = core_faults(scenario, cores, config.horizon);
    let mut multi = MultiMachine::with_step(platform, &faults, step)?;
    if let Some(obs) = metrics {
        multi.enable_metrics(obs);
    }
    for line in 0..line_count {
        for at in line_arrivals(config, scenario, line) {
            multi.schedule_irq(line, at).map_err(SmpError::Schedule)?;
        }
    }
    multi.run_until(Instant::ZERO + config.horizon);
    let snapshot = multi.metrics_snapshot_json();
    let report = multi.finish();

    let delta = DeltaFunction::from_dmin(config.dmin)
        .map_err(|_| SmpError::InvalidDmin { dmin: config.dmin })?;
    let violations = platform_violations(&report, &delta, config.effective_cost());
    let counters = report
        .counters
        .iter()
        .fold(rthv::CoreCounters::default(), |acc, c| rthv::CoreCounters {
            ipi_in: acc.ipi_in + c.ipi_in,
            ipi_out: acc.ipi_out + c.ipi_out,
            failover_in: acc.failover_in + c.failover_in,
            failover_retries: acc.failover_retries + c.failover_retries,
            stall_deferrals: acc.stall_deferrals + c.stall_deferrals,
            shed: acc.shed + c.shed,
        });
    let ledger_ok = report.conserved() && report.cores.iter().all(|core| core.defect.is_none());
    Ok((
        SmpCase {
            arm,
            cores,
            violations,
            victim_digest: victim_digest(&report),
            sheds: report.shed_total(),
            lost: report.lost_in_flight(),
            ipi_in: counters.ipi_in,
            failover_in: counters.failover_in,
            stall_deferrals: counters.stall_deferrals,
            crashed: report.crashed.iter().filter(|c| **c).count() as u32,
            ledger_ok,
        },
        snapshot,
    ))
}

/// The per-victim-core oracle sweep: every `(core, line)` admitted stream
/// replayed through [`check_admitted_stream`] against the campaign's real
/// `d_min` — including the failover twin's stream, which is how the
/// ablation's blind reroutes are caught.
fn platform_violations(
    report: &MultiRunReport,
    delta: &DeltaFunction,
    effective_cost: Duration,
) -> u64 {
    let mut total = 0u64;
    for (core, run) in report.cores.iter().enumerate() {
        let line_count = run
            .admissions
            .iter()
            .map(|r| r.source.index() + 1)
            .max()
            .unwrap_or(0);
        for line in 0..line_count {
            let admitted: Vec<Instant> = run
                .admissions
                .iter()
                .filter(|r| r.admitted && r.source.index() == line)
                .map(|r| r.check_at)
                .collect();
            if admitted.is_empty() {
                continue;
            }
            total +=
                check_admitted_stream(core, line, &admitted, delta, effective_cost).len() as u64;
        }
    }
    total
}

/// FNV-1a digest of the victim line's admission stream on core 0: for
/// each record in order, the admit/deny flag and the gap to the previous
/// check instant. Gaps (not absolute instants) make the digest invariant
/// to constant routing shifts; per-line monitors make it invariant to
/// co-located aggressors. It must therefore be byte-identical across
/// core counts — the identity verdict.
fn victim_digest(report: &MultiRunReport) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut fnv = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    let victim = report.cores.first();
    let mut last: Option<Instant> = None;
    for record in victim.map(|r| r.admissions.as_slice()).unwrap_or(&[]) {
        if record.source.index() != 0 {
            continue;
        }
        fnv(u64::from(record.admitted));
        fnv(last.map_or(0, |prev| {
            record.check_at.saturating_duration_since(prev).as_nanos()
        }));
        last = Some(record.check_at);
    }
    hash
}

/// The full scenario outcome: every enabled `(arm, cores)` case, the
/// failover-disabled ablation, and the optional observability snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SmpOutcome {
    /// Scenario label.
    pub label: String,
    /// Scenario seed.
    pub seed: u64,
    /// Crash/stall-free scenario (identity verdict family)?
    pub identity_family: bool,
    /// Storm-plus-crash scenario (ablation breakage family)?
    pub breakage_family: bool,
    /// Every enabled case, arms × core counts in campaign order.
    pub cases: Vec<SmpCase>,
    /// The failover-disabled run (hierarchical arm, largest core count).
    pub ablation: SmpCase,
    /// Observability snapshot of the first enabled case, when requested.
    pub snapshot: Option<String>,
}

impl SmpOutcome {
    /// Victim digests identical across core counts within each arm (and,
    /// by construction, across arms — the digest is routing-invariant)?
    #[must_use]
    pub fn identity_ok(&self) -> bool {
        self.cases
            .windows(2)
            .all(|pair| pair[0].victim_digest == pair[1].victim_digest)
    }

    /// Oracle violations summed over every enabled case.
    #[must_use]
    pub fn enabled_violations(&self) -> u64 {
        self.cases.iter().map(|c| c.violations).sum()
    }

    /// Conservation and defect-freedom across every enabled case.
    #[must_use]
    pub fn ledger_ok(&self) -> bool {
        self.cases.iter().all(|c| c.ledger_ok)
    }

    /// The scenario's verbatim report fragment (compact JSON, integers
    /// and fixed keys only — byte-stable across runs and resumes).
    #[must_use]
    pub fn to_json_fragment(&self) -> String {
        let mut runs = String::new();
        for (i, case) in self.cases.iter().enumerate() {
            if i > 0 {
                runs.push(',');
            }
            runs.push_str(&case_json(case));
        }
        format!(
            "{{\"label\":\"{}\",\"seed\":{},\"identity_family\":{},\"breakage_family\":{},\"identity_ok\":{},\"runs\":[{}],\"ablation\":{}}}",
            self.label,
            self.seed,
            u8::from(self.identity_family),
            u8::from(self.breakage_family),
            u8::from(self.identity_ok()),
            runs,
            case_json(&self.ablation),
        )
    }

    /// Distills the journal/report record.
    #[must_use]
    pub fn record(&self) -> SmpRecord {
        SmpRecord {
            label: self.label.clone(),
            seed: self.seed,
            identity_family: self.identity_family,
            breakage_family: self.breakage_family,
            enabled_violations: self.enabled_violations(),
            ablation_violations: self.ablation.violations,
            identity_ok: self.identity_ok(),
            ledger_ok: self.ledger_ok() && self.ablation.ledger_ok,
            sheds: self.cases.iter().map(|c| c.sheds).sum(),
            lost: self.cases.iter().map(|c| c.lost).sum(),
            fragment: self.to_json_fragment(),
        }
    }
}

/// One case as a compact JSON object.
fn case_json(case: &SmpCase) -> String {
    format!(
        "{{\"arm\":\"{}\",\"cores\":{},\"violations\":{},\"victim_digest\":{},\"sheds\":{},\"lost\":{},\"ipi_in\":{},\"failover_in\":{},\"stall_deferrals\":{},\"crashed\":{},\"ledger_ok\":{}}}",
        case.arm.slug(),
        case.cores,
        case.violations,
        case.victim_digest,
        case.sheds,
        case.lost,
        case.ipi_in,
        case.failover_in,
        case.stall_deferrals,
        case.crashed,
        u8::from(case.ledger_ok),
    )
}

/// Runs one scenario: both arms across every configured core count with
/// the budgeted failover path, then the failover-disabled ablation on the
/// hierarchical arm at the largest core count. With `metrics` the first
/// enabled case re-runs nothing — the hub rides along on the first case
/// itself, and metrics are pure observation (the binary pins that by
/// comparing records).
///
/// # Errors
///
/// Propagates [`run_smp_case`] setup errors.
pub fn run_smp_scenario(
    config: &SmpConfig,
    scenario: &SmpScenario,
    metrics: Option<ObsConfig>,
) -> Result<SmpOutcome, SmpError> {
    let mut cases = Vec::with_capacity(SmpArm::ALL.len() * config.core_counts.len());
    let mut snapshot = None;
    let mut first = true;
    for arm in SmpArm::ALL {
        for &cores in &config.core_counts {
            let obs = if first { metrics } else { None };
            let (case, observed) = run_smp_case(config, scenario, arm, cores, true, obs)?;
            if first {
                snapshot = observed;
                first = false;
            }
            cases.push(case);
        }
    }
    let (ablation, _) = run_smp_case(
        config,
        scenario,
        SmpArm::HierAffinity,
        config.max_cores(),
        false,
        None,
    )?;
    Ok(SmpOutcome {
        label: scenario.label(),
        seed: scenario.fault.seed,
        identity_family: scenario.identity_family(),
        breakage_family: scenario.breakage_family(),
        cases,
        ablation,
        snapshot,
    })
}

/// The journal/report unit: the digest integers the verdict needs plus
/// the full JSON fragment spliced verbatim, so a `--resume` run assembles
/// a byte-identical report without re-serializing old results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmpRecord {
    /// Scenario label.
    pub label: String,
    /// Scenario seed.
    pub seed: u64,
    /// Crash/stall-free (identity verdict family)?
    pub identity_family: bool,
    /// Storm-plus-crash (ablation breakage family)?
    pub breakage_family: bool,
    /// Oracle violations summed over every enabled case.
    pub enabled_violations: u64,
    /// Oracle violations of the failover-disabled ablation.
    pub ablation_violations: u64,
    /// Victim digests identical across all enabled cases?
    pub identity_ok: bool,
    /// Conservation and defect-freedom across every run.
    pub ledger_ok: bool,
    /// Typed sheds summed over the enabled cases.
    pub sheds: u64,
    /// In-flight losses summed over the enabled cases.
    pub lost: u64,
    /// Verbatim scenario JSON fragment.
    pub fragment: String,
}

impl SmpRecord {
    /// One journal line: `label seed identity breakage enabled_viol
    /// ablation_viol identity_ok ledger_ok sheds lost fragment`.
    #[must_use]
    pub fn to_journal_line(&self) -> String {
        format!(
            "{} {} {} {} {} {} {} {} {} {} {}",
            self.label,
            self.seed,
            u8::from(self.identity_family),
            u8::from(self.breakage_family),
            self.enabled_violations,
            self.ablation_violations,
            u8::from(self.identity_ok),
            u8::from(self.ledger_ok),
            self.sheds,
            self.lost,
            self.fragment,
        )
    }

    /// Parses a journal line; `None` on any malformed field (torn tails
    /// are dropped by the journal reader before this sees them).
    #[must_use]
    pub fn parse_journal_line(line: &str) -> Option<SmpRecord> {
        fn flag(text: &str) -> Option<bool> {
            match text {
                "0" => Some(false),
                "1" => Some(true),
                _ => None,
            }
        }
        let mut parts = line.splitn(11, ' ');
        let label = parts.next()?.to_owned();
        let seed = parts.next()?.parse().ok()?;
        let identity_family = flag(parts.next()?)?;
        let breakage_family = flag(parts.next()?)?;
        let enabled_violations = parts.next()?.parse().ok()?;
        let ablation_violations = parts.next()?.parse().ok()?;
        let identity_ok = flag(parts.next()?)?;
        let ledger_ok = flag(parts.next()?)?;
        let sheds = parts.next()?.parse().ok()?;
        let lost = parts.next()?.parse().ok()?;
        let fragment = parts.next()?.to_owned();
        if !fragment.starts_with('{') || !fragment.ends_with('}') {
            return None;
        }
        Some(SmpRecord {
            label,
            seed,
            identity_family,
            breakage_family,
            enabled_violations,
            ablation_violations,
            identity_ok,
            ledger_ok,
            sheds,
            lost,
            fragment,
        })
    }
}

/// Assembles the deterministic campaign report from scenario records (in
/// campaign order): a config header, the verbatim fragments, totals and
/// the three-part verdict.
#[must_use]
pub fn assemble_smp_report(config: &SmpConfig, base_seed: u64, records: &[SmpRecord]) -> String {
    let enabled_violations: u64 = records.iter().map(|r| r.enabled_violations).sum();
    let sheds: u64 = records.iter().map(|r| r.sheds).sum();
    let lost: u64 = records.iter().map(|r| r.lost).sum();
    let identity_records = records.iter().filter(|r| r.identity_family).count();
    let breakage_records: Vec<&SmpRecord> = records.iter().filter(|r| r.breakage_family).collect();
    let monitored_clean = enabled_violations == 0 && records.iter().all(|r| r.ledger_ok);
    let identity_held = records
        .iter()
        .filter(|r| r.identity_family)
        .all(|r| r.identity_ok);
    let ablation_broken =
        !breakage_records.is_empty() && breakage_records.iter().all(|r| r.ablation_violations > 0);
    let pass = monitored_clean && identity_held && ablation_broken;

    let core_counts = config
        .core_counts
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"cores\":[{}],\"sources\":{},\"horizon_ns\":{},\"dmin_ns\":{},\"bottom_cost_ns\":{},\"route_cost_ns\":{},\"shared_penalty_ns\":{},\"base_seed\":{}}},\n",
        core_counts,
        config.sources,
        config.horizon.as_nanos(),
        config.dmin.as_nanos(),
        config.bottom_cost.as_nanos(),
        config.route_cost.as_nanos(),
        config.shared_penalty.as_nanos(),
        base_seed,
    ));
    out.push_str("  \"scenarios\": [\n");
    for (i, record) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        out.push_str(&format!("    {}{}\n", record.fragment, comma));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"totals\": {{\"scenarios\":{},\"identity_scenarios\":{},\"breakage_scenarios\":{},\"enabled_violations\":{},\"sheds\":{},\"lost_in_flight\":{}}},\n",
        records.len(),
        identity_records,
        breakage_records.len(),
        enabled_violations,
        sheds,
        lost,
    ));
    out.push_str(&format!(
        "  \"verdict\": {{\"monitored_clean\":{monitored_clean},\"identity_held\":{identity_held},\"ablation_broken\":{ablation_broken},\"pass\":{pass}}}\n",
    ));
    out.push_str("}\n");
    out
}

/// Whether an assembled report's verdict passes (used by the binary's
/// exit code and the smoke gate).
#[must_use]
pub fn smp_report_passes(report: &str) -> bool {
    report.contains("\"pass\":true")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> SmpConfig {
        SmpConfig::smoke()
    }

    fn scenario_by_family(family: usize) -> SmpScenario {
        smp_scenarios(5, 0xBEEF, smoke().horizon)[family]
    }

    #[test]
    fn scenario_list_is_a_pure_seed_function() {
        let a = smp_scenarios(7, 11, smoke().horizon);
        let b = smp_scenarios(7, 11, smoke().horizon);
        let c = smp_scenarios(7, 12, smoke().horizon);
        assert_eq!(a, b);
        assert_ne!(
            a.iter().map(|s| s.fault.seed).collect::<Vec<_>>(),
            c.iter().map(|s| s.fault.seed).collect::<Vec<_>>()
        );
        assert!(a[0].identity_family());
        assert!(a[3].breakage_family());
    }

    #[test]
    fn outcomes_are_deterministic() {
        let config = smoke();
        let scenario = scenario_by_family(3);
        let a = run_smp_scenario(&config, &scenario, None).expect("valid config");
        let b = run_smp_scenario(&config, &scenario, None).expect("valid config");
        assert_eq!(a.to_json_fragment(), b.to_json_fragment());
    }

    #[test]
    fn enabled_cases_are_violation_free_and_conserved() {
        let config = smoke();
        for family in 0..5 {
            let outcome =
                run_smp_scenario(&config, &scenario_by_family(family), None).expect("valid config");
            assert_eq!(
                outcome.enabled_violations(),
                0,
                "family {family} violated the bound under budgeted failover"
            );
            assert!(
                outcome.ledger_ok(),
                "family {family} lost arrivals silently"
            );
        }
    }

    #[test]
    fn victim_stream_is_identical_across_core_counts_and_arms() {
        let config = smoke();
        // Identity holds whenever nothing fails over *onto* the victim
        // core: both calm families (the verdict's claim) and the stall
        // family, whose deferrals never touch core 0's local line. Crash
        // families may legitimately land a monitored, bounded twin
        // stream on core 0 — that is the failover path working, not an
        // identity defect, and the verdict excludes them.
        for family in [0usize, 2, 4] {
            let outcome =
                run_smp_scenario(&config, &scenario_by_family(family), None).expect("valid config");
            assert!(
                outcome.identity_ok(),
                "family {family} victim digest moved across cases"
            );
        }
    }

    #[test]
    fn ablation_breaks_independence_under_rerouted_storms() {
        let config = smoke();
        let outcome =
            run_smp_scenario(&config, &scenario_by_family(3), None).expect("valid config");
        assert!(outcome.breakage_family);
        assert!(
            outcome.ablation.violations > 0,
            "failover-disabled ablation failed to demonstrate breakage"
        );
        // The same storm stays clean when the budget and twin monitor
        // are in place.
        assert_eq!(outcome.enabled_violations(), 0);
    }

    #[test]
    fn crash_families_exercise_failover_and_shed_typed() {
        let config = smoke();
        let outcome =
            run_smp_scenario(&config, &scenario_by_family(3), None).expect("valid config");
        let multi_core = outcome
            .cases
            .iter()
            .filter(|c| c.cores > 1)
            .collect::<Vec<_>>();
        assert!(multi_core.iter().any(|c| c.crashed > 0));
        assert!(multi_core.iter().any(|c| c.failover_in > 0));
        assert!(
            multi_core.iter().any(|c| c.sheds > 0),
            "a dense rerouted storm must exhaust the reroute budget"
        );
    }

    #[test]
    fn round_robin_pays_routing_hops() {
        let config = smoke();
        let outcome =
            run_smp_scenario(&config, &scenario_by_family(0), None).expect("valid config");
        let rr_multi = outcome
            .cases
            .iter()
            .find(|c| c.arm == SmpArm::RoundRobin && c.cores > 1)
            .expect("round-robin multi-core case");
        assert!(rr_multi.ipi_in > 0);
        let hier = outcome
            .cases
            .iter()
            .filter(|c| c.arm == SmpArm::HierAffinity)
            .collect::<Vec<_>>();
        assert!(hier.iter().all(|c| c.ipi_in == 0));
    }

    #[test]
    fn journal_lines_round_trip() {
        let config = smoke();
        let outcome =
            run_smp_scenario(&config, &scenario_by_family(1), None).expect("valid config");
        let record = outcome.record();
        let line = record.to_journal_line();
        assert_eq!(SmpRecord::parse_journal_line(&line), Some(record));
        assert_eq!(SmpRecord::parse_journal_line("garbage"), None);
        assert_eq!(SmpRecord::parse_journal_line("a 1 2 0 0 0 1 1 0 0 x"), None);
    }

    #[test]
    fn report_verdict_reflects_records() {
        let config = smoke();
        let scenarios = smp_scenarios(5, 0xBEEF, config.horizon);
        let records: Vec<SmpRecord> = scenarios
            .iter()
            .map(|s| {
                run_smp_scenario(&config, s, None)
                    .expect("valid config")
                    .record()
            })
            .collect();
        let report = assemble_smp_report(&config, 0xBEEF, &records);
        assert!(
            smp_report_passes(&report),
            "smoke campaign must pass:\n{report}"
        );
        let mut broken = records;
        broken[0].enabled_violations = 1;
        let report = assemble_smp_report(&config, 0xBEEF, &broken);
        assert!(!smp_report_passes(&report));
    }

    #[test]
    fn zero_dmin_is_a_typed_error() {
        let mut config = smoke();
        config.dmin = Duration::ZERO;
        let scenario = scenario_by_family(0);
        assert_eq!(
            run_smp_scenario(&config, &scenario, None),
            Err(SmpError::InvalidDmin {
                dmin: Duration::ZERO
            })
        );
    }

    #[test]
    fn metrics_are_pure_observation() {
        let config = smoke();
        let scenario = scenario_by_family(2);
        let plain = run_smp_scenario(&config, &scenario, None).expect("valid config");
        let observed =
            run_smp_scenario(&config, &scenario, Some(ObsConfig::default())).expect("valid config");
        assert!(observed.snapshot.is_some());
        assert_eq!(plain.record(), observed.record());
    }
}
