//! The supervised campaign: monitored-only vs monitored + runtime health
//! supervision under composite fault-then-calm plans.
//!
//! Each scenario's plan is **composite**: the fault family is active over
//! the first `fault_window_permille` of the horizon, then a δ⁻-conformant
//! *calm tail* (well-behaved arrivals spaced `calm_spacing_factor × d_min`)
//! runs to the horizon. The composite shape is what makes the recovery leg
//! of the quarantine state machine observable: supervision must first
//! quarantine the misbehaving source during the fault window and then walk
//! it back to `Healthy` during the calm tail.
//!
//! Each scenario runs twice, on the *same* composite plan:
//!
//! * **baseline** — the real δ⁻ monitor, no supervision (exactly the
//!   monitored arm of the base campaign);
//! * **supervised** — the same monitor plus the [`SupervisionPolicy`] under
//!   test. Both arms are held to the full oracle; the supervised arm is
//!   additionally checked by the quarantine-soundness oracle
//!   ([`check_supervision`]).
//!
//! The campaign's acceptance claims ([`SupervisedCampaignReport`]):
//!
//! * zero oracle violations in either arm of every scenario;
//! * zero quarantines on the nominal (no-fault) scenario;
//! * at least one justified quarantine **and** a subsequent full recovery
//!   under the IRQ-storm and bursty-flood families;
//! * under those families, *strictly less* worst-case victim service loss
//!   than the unsupervised baseline — graceful degradation must pay off,
//!   not just not hurt.
//!
//! Scenario outcomes are pure functions of `(config, scenario)`, so a
//! parallel fan-out assembling [`SupervisedCampaignReport::from_outcomes`]
//! in scenario order is byte-identical to [`run_supervised_campaign`].
//!
//! [`check_supervision`]: crate::oracle::check_supervision

use std::fmt::Write as _;

use rthv::time::{Duration, Instant};
use rthv::SupervisionPolicy;

use crate::campaign::{
    idle_reference, run_mode, run_mode_report, write_mode, CampaignConfig, CampaignConfigError,
    IdleReference, ModeOutcome,
};
use crate::inject::{standard_scenarios, FaultKind, FaultPlan, FaultScenario, InjectedArrival};
use crate::oracle::{check_supervision, Violation};

/// Parameters of the supervised campaign.
#[derive(Debug, Clone)]
pub struct SupervisedCampaignConfig {
    /// Platform, horizon, queue bound and scenario list (the supervised
    /// default replaces the base scenario list with
    /// [`supervised_scenarios`]).
    pub base: CampaignConfig,
    /// The supervision policy enabled in the supervised arm.
    pub policy: SupervisionPolicy,
    /// How much of the horizon the fault occupies, in permille; the rest is
    /// the conformant calm tail that exercises recovery.
    pub fault_window_permille: u32,
    /// Calm-tail arrival spacing, as a multiple of `d_min`.
    pub calm_spacing_factor: u32,
}

impl Default for SupervisedCampaignConfig {
    /// The standard supervised campaign: the base platform, the default
    /// supervision policy, faults over the first 60 % of the horizon, calm
    /// arrivals at `2 × d_min`, and one nominal plus all seven tier-1 fault
    /// scenarios.
    fn default() -> Self {
        SupervisedCampaignConfig {
            base: CampaignConfig {
                scenarios: supervised_scenarios(0xFA_2014),
                ..CampaignConfig::default()
            },
            policy: SupervisionPolicy::default(),
            fault_window_permille: 600,
            calm_spacing_factor: 2,
        }
    }
}

/// The supervised scenario list: a nominal (fault-free) ablation at id 0,
/// then the seven tier-1 fault families with stable ids 1–7.
#[must_use]
pub fn supervised_scenarios(base_seed: u64) -> Vec<FaultScenario> {
    let mut scenarios = vec![FaultScenario {
        id: 0,
        kind: FaultKind::Nominal {
            period: Duration::from_millis(6),
        },
        seed: base_seed,
    }];
    for (i, scenario) in standard_scenarios(7, base_seed).into_iter().enumerate() {
        scenarios.push(FaultScenario {
            id: (i + 1) as u32,
            ..scenario
        });
    }
    scenarios
}

/// Expands a scenario into its composite fault-then-calm plan: the
/// scenario's own arrivals truncated to the fault window, then conformant
/// arrivals spaced `calm_spacing_factor × d_min` up to the horizon.
#[must_use]
pub fn composite_plan(config: &SupervisedCampaignConfig, scenario: &FaultScenario) -> FaultPlan {
    let horizon_ns = config.base.horizon.as_nanos();
    let fault_end_ns = horizon_ns / 1000 * u64::from(config.fault_window_permille);
    let mut plan = scenario.plan(config.base.horizon, config.base.setup.bottom_cost);
    plan.arrivals.retain(|a| a.at.as_nanos() < fault_end_ns);

    let spacing = config
        .base
        .dmin
        .saturating_mul(u64::from(config.calm_spacing_factor.max(1)))
        .as_nanos();
    // First calm arrival one full spacing after the fault window, which also
    // puts it ≥ d_min after every fault arrival: the calm tail is raw
    // δ⁻-conformant from its very first activation.
    let mut t = fault_end_ns + spacing;
    while t < horizon_ns {
        plan.arrivals.push(InjectedArrival {
            at: Instant::from_nanos(t),
            work: config.base.setup.bottom_cost,
        });
        t += spacing;
    }
    plan
}

/// The supervised arm's outcome: the common mode fields plus the
/// supervision ledger and the quarantine-soundness verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisedModeOutcome {
    /// The common outcome fields (counters, victim loss, oracle verdict).
    pub mode: ModeOutcome,
    /// Edges into `Quarantined`.
    pub quarantines: u64,
    /// Full recoveries (`Recovering → Healthy`).
    pub recoveries: u64,
    /// Arrivals demoted to slot-local handling while quarantined.
    pub demoted_arrivals: u64,
    /// Interposed windows opened with a degraded (shrunk) budget.
    pub shrunk_windows: u64,
    /// What the quarantine-soundness oracle found (must be empty).
    pub supervision_violations: Vec<Violation>,
}

/// Both arms of one supervised scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisedScenarioOutcome {
    /// Stable scenario label (`id-slug`).
    pub label: String,
    /// The scenario's seed.
    pub seed: u64,
    /// Arrivals scheduled (identical in both arms).
    pub scheduled: u64,
    /// Monitored-only arm (no supervision).
    pub baseline: ModeOutcome,
    /// Monitored + supervised arm, on the same plan.
    pub supervised: SupervisedModeOutcome,
}

/// Runs one scenario in both arms. Pure in `(config, idle, scenario)`, so
/// campaign binaries can fan scenarios across threads and still assemble a
/// byte-identical report.
///
/// # Errors
///
/// [`CampaignConfigError`] if the campaign configuration cannot build or
/// schedule a machine.
pub fn run_supervised_scenario(
    config: &SupervisedCampaignConfig,
    idle: &IdleReference,
    scenario: &FaultScenario,
) -> Result<SupervisedScenarioOutcome, CampaignConfigError> {
    let plan = composite_plan(config, scenario);
    let baseline = run_mode(&config.base, idle, &plan, true)?;
    let (mode, report) = run_mode_report(&config.base, idle, &plan, true, Some(config.policy))?;

    let expect_nominal = matches!(scenario.kind, FaultKind::Nominal { .. });
    let supervision_violations = check_supervision(&report, expect_nominal);

    Ok(SupervisedScenarioOutcome {
        label: scenario.label(),
        seed: scenario.seed,
        scheduled: plan.arrivals.len() as u64,
        baseline,
        supervised: SupervisedModeOutcome {
            mode,
            quarantines: report.counters.quarantine_entries,
            recoveries: report.counters.recoveries,
            demoted_arrivals: report.counters.supervised_demotions,
            shrunk_windows: report.counters.shrunk_windows,
            supervision_violations,
        },
    })
}

/// The whole supervised campaign's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisedCampaignReport {
    /// Monitoring distance of both arms.
    pub dmin: Duration,
    /// Horizon per run.
    pub horizon: Duration,
    /// Subscriber queue bound (0 encodes unbounded in the JSON).
    pub queue_capacity: Option<usize>,
    /// The supervision policy the supervised arm ran under.
    pub policy: SupervisionPolicy,
    /// Fault-window share of the horizon, in permille.
    pub fault_window_permille: u32,
    /// Per-scenario outcomes, in scenario order.
    pub scenarios: Vec<SupervisedScenarioOutcome>,
}

impl SupervisedCampaignReport {
    /// Assembles a report from per-scenario outcomes **in scenario order**.
    #[must_use]
    pub fn from_outcomes(
        config: &SupervisedCampaignConfig,
        outcomes: Vec<SupervisedScenarioOutcome>,
    ) -> Self {
        SupervisedCampaignReport {
            dmin: config.base.dmin,
            horizon: config.base.horizon,
            queue_capacity: config.base.queue_capacity,
            policy: config.policy,
            fault_window_permille: config.fault_window_permille,
            scenarios: outcomes,
        }
    }

    /// Oracle violations across both arms of every scenario, including the
    /// quarantine-soundness checks (must be zero).
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.scenarios
            .iter()
            .map(|s| {
                (s.baseline.violations.len()
                    + s.supervised.mode.violations.len()
                    + s.supervised.supervision_violations.len()) as u64
            })
            .sum()
    }

    /// Quarantine entries on the nominal (fault-free) scenario — must be 0.
    #[must_use]
    pub fn nominal_quarantines(&self) -> u64 {
        self.scenarios
            .iter()
            .filter(|s| s.label.ends_with("nominal"))
            .map(|s| s.supervised.quarantines)
            .sum()
    }

    /// The storm/flood scenarios — the families the acceptance criteria
    /// single out for mandatory quarantine, recovery, and strict victim
    /// improvement.
    fn storm_flood(&self) -> impl Iterator<Item = &SupervisedScenarioOutcome> {
        self.scenarios
            .iter()
            .filter(|s| s.label.ends_with("irq-storm") || s.label.ends_with("bursty-flood"))
    }

    /// Checks every acceptance criterion and returns a human-readable line
    /// per failure (empty = the campaign passes).
    #[must_use]
    pub fn acceptance_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        if self.total_violations() != 0 {
            for s in &self.scenarios {
                for v in s
                    .baseline
                    .violations
                    .iter()
                    .chain(&s.supervised.mode.violations)
                    .chain(&s.supervised.supervision_violations)
                {
                    failures.push(format!("{}: oracle violation: {v}", s.label));
                }
            }
        }
        if self.nominal_quarantines() != 0 {
            failures.push(format!(
                "nominal scenario quarantined a healthy source ({} entries)",
                self.nominal_quarantines()
            ));
        }
        let mut storm_flood_seen = 0usize;
        for s in self.storm_flood() {
            storm_flood_seen += 1;
            if s.supervised.quarantines == 0 {
                failures.push(format!("{}: no quarantine under a {}", s.label, "fault"));
            }
            if s.supervised.recoveries == 0 {
                failures.push(format!("{}: quarantined source never recovered", s.label));
            }
            if s.supervised.mode.worst_victim_loss >= s.baseline.worst_victim_loss {
                failures.push(format!(
                    "{}: supervised victim loss {} ns not strictly below baseline {} ns",
                    s.label,
                    s.supervised.mode.worst_victim_loss.as_nanos(),
                    s.baseline.worst_victim_loss.as_nanos()
                ));
            }
        }
        if storm_flood_seen == 0 {
            failures.push("campaign has no storm/flood scenario to judge".to_string());
        }
        failures
    }

    /// Serializes the report as JSON. Every numeric field is an integer
    /// (nanoseconds or counts) and nothing reads the wall clock, so equal
    /// campaigns serialize byte-identically on any host.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, r#"  "campaign": "supervised-fault-injection","#);
        let _ = writeln!(out, r#"  "dmin_ns": {},"#, self.dmin.as_nanos());
        let _ = writeln!(out, r#"  "horizon_ns": {},"#, self.horizon.as_nanos());
        let _ = writeln!(
            out,
            r#"  "queue_capacity": {},"#,
            self.queue_capacity.unwrap_or(0)
        );
        let _ = writeln!(
            out,
            r#"  "fault_window_permille": {},"#,
            self.fault_window_permille
        );
        let _ = writeln!(out, r#"  "policy": {{"#);
        let _ = writeln!(out, r#"    "deny_penalty": {},"#, self.policy.deny_penalty);
        let _ = writeln!(out, r#"    "clip_penalty": {},"#, self.policy.clip_penalty);
        let _ = writeln!(
            out,
            r#"    "overflow_penalty": {},"#,
            self.policy.overflow_penalty
        );
        let _ = writeln!(
            out,
            r#"    "nonyield_penalty": {},"#,
            self.policy.nonyield_penalty
        );
        let _ = writeln!(
            out,
            r#"    "conform_credit": {},"#,
            self.policy.conform_credit
        );
        let _ = writeln!(
            out,
            r#"    "probation_score": {},"#,
            self.policy.probation_score
        );
        let _ = writeln!(
            out,
            r#"    "quarantine_score": {},"#,
            self.policy.quarantine_score
        );
        let _ = writeln!(
            out,
            r#"    "probation_window_ns": {},"#,
            self.policy.probation_window.as_nanos()
        );
        let _ = writeln!(
            out,
            r#"    "budget_shrink_divisor": {},"#,
            self.policy.budget_shrink_divisor
        );
        let _ = writeln!(
            out,
            r#"    "watchdog_factor": {}"#,
            self.policy.watchdog_factor
        );
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, r#"  "scenario_count": {},"#, self.scenarios.len());
        let _ = writeln!(out, r#"  "total_violations": {},"#, self.total_violations());
        let _ = writeln!(
            out,
            r#"  "nominal_quarantines": {},"#,
            self.nominal_quarantines()
        );
        let _ = writeln!(out, r#"  "scenarios": ["#);
        for (i, s) in self.scenarios.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, r#"      "label": "{}","#, s.label);
            let _ = writeln!(out, r#"      "seed": {},"#, s.seed);
            let _ = writeln!(out, r#"      "scheduled": {},"#, s.scheduled);
            let _ = writeln!(out, r#"      "quarantines": {},"#, s.supervised.quarantines);
            let _ = writeln!(out, r#"      "recoveries": {},"#, s.supervised.recoveries);
            let _ = writeln!(
                out,
                r#"      "demoted_arrivals": {},"#,
                s.supervised.demoted_arrivals
            );
            let _ = writeln!(
                out,
                r#"      "shrunk_windows": {},"#,
                s.supervised.shrunk_windows
            );
            let _ = writeln!(
                out,
                r#"      "supervision_violations": {},"#,
                s.supervised.supervision_violations.len()
            );
            write_mode(&mut out, "baseline", &s.baseline, ",");
            write_mode(&mut out, "supervised", &s.supervised.mode, "");
            let comma = if i + 1 < self.scenarios.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(out, "    }}{comma}");
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

/// Runs the whole supervised campaign sequentially (the reference path; the
/// `supervised` binary fans [`run_supervised_scenario`] over threads
/// instead and must produce a byte-identical report).
///
/// # Errors
///
/// [`CampaignConfigError`] if the campaign configuration cannot build or
/// schedule a machine.
pub fn run_supervised_campaign(
    config: &SupervisedCampaignConfig,
) -> Result<SupervisedCampaignReport, CampaignConfigError> {
    let idle = idle_reference(&config.base)?;
    let outcomes = config
        .base
        .scenarios
        .iter()
        .map(|s| run_supervised_scenario(config, &idle, s))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SupervisedCampaignReport::from_outcomes(config, outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A short supervised campaign: the nominal ablation, the storm, and
    /// the flood — the three scenarios the acceptance criteria pivot on.
    fn small() -> SupervisedCampaignConfig {
        let mut config = SupervisedCampaignConfig::default();
        config.base.horizon = Duration::from_millis(250);
        config.base.scenarios = supervised_scenarios(0xFA_2014)
            .into_iter()
            .filter(|s| s.id <= 2)
            .collect();
        config
    }

    #[test]
    fn nominal_scenario_never_quarantines() {
        let report = run_supervised_campaign(&small()).expect("valid config");
        assert_eq!(report.nominal_quarantines(), 0);
        let nominal = &report.scenarios[0];
        assert_eq!(nominal.supervised.quarantines, 0);
        assert_eq!(nominal.supervised.demoted_arrivals, 0);
        assert!(nominal.supervised.supervision_violations.is_empty());
    }

    #[test]
    fn storm_and_flood_quarantine_then_recover() {
        let report = run_supervised_campaign(&small()).expect("valid config");
        for s in &report.scenarios[1..] {
            assert!(s.supervised.quarantines >= 1, "{}: no quarantine", s.label);
            assert!(s.supervised.recoveries >= 1, "{}: no recovery", s.label);
            assert!(
                s.supervised.demoted_arrivals > 0,
                "{}: quarantine never demoted an arrival",
                s.label
            );
        }
    }

    #[test]
    fn supervision_strictly_reduces_victim_loss_under_storm_and_flood() {
        let report = run_supervised_campaign(&small()).expect("valid config");
        for s in &report.scenarios[1..] {
            assert!(
                s.supervised.mode.worst_victim_loss < s.baseline.worst_victim_loss,
                "{}: supervised {:?} vs baseline {:?}",
                s.label,
                s.supervised.mode.worst_victim_loss,
                s.baseline.worst_victim_loss
            );
        }
    }

    #[test]
    fn campaign_is_oracle_clean_and_accepted() {
        let report = run_supervised_campaign(&small()).expect("valid config");
        assert_eq!(
            report.acceptance_failures(),
            Vec::<String>::new(),
            "acceptance failed"
        );
    }

    #[test]
    fn sequential_and_manual_fanout_reports_are_byte_identical() {
        let config = small();
        let sequential = run_supervised_campaign(&config)
            .expect("valid config")
            .to_json();
        let idle = idle_reference(&config.base).expect("valid config");
        let mut outcomes: Vec<SupervisedScenarioOutcome> = config
            .base
            .scenarios
            .iter()
            .rev()
            .map(|s| run_supervised_scenario(&config, &idle, s).expect("valid config"))
            .collect();
        outcomes.reverse();
        let assembled = SupervisedCampaignReport::from_outcomes(&config, outcomes).to_json();
        assert_eq!(sequential, assembled);
    }

    #[test]
    fn json_shape_is_stable_and_integer_only() {
        let report = run_supervised_campaign(&small()).expect("valid config");
        let json = report.to_json();
        assert!(json.contains(r#""campaign": "supervised-fault-injection""#));
        assert!(json.contains(r#""label": "00-nominal""#));
        assert!(json.contains(r#""label": "01-irq-storm""#));
        assert!(json.contains(r#""nominal_quarantines": 0"#));
        assert!(json.contains(r#""baseline": {"#));
        assert!(json.contains(r#""supervised": {"#));
        // Integer-only: no floating-point fields anywhere.
        assert!(!json.contains('.'));
    }

    #[test]
    fn composite_plan_has_a_conformant_tail() {
        let config = small();
        let storm = &config.base.scenarios[1];
        let plan = composite_plan(&config, storm);
        let fault_end =
            config.base.horizon.as_nanos() / 1000 * u64::from(config.fault_window_permille);
        let tail: Vec<_> = plan
            .arrivals
            .iter()
            .filter(|a| a.at.as_nanos() >= fault_end)
            .collect();
        assert!(!tail.is_empty(), "no calm tail");
        let spacing = config
            .base
            .dmin
            .saturating_mul(u64::from(config.calm_spacing_factor))
            .as_nanos();
        for pair in tail.windows(2) {
            assert_eq!(pair[1].at.as_nanos() - pair[0].at.as_nanos(), spacing);
        }
        // Strictly increasing overall — schedulable as-is.
        for pair in plan.arrivals.windows(2) {
            assert!(pair[0].at < pair[1].at);
        }
    }
}
