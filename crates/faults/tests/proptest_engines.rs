//! Cross-engine differential properties: the hierarchical timing wheel and
//! the reference binary heap share nothing beyond the `Engine` contract,
//! so these tests are the strongest statement the repo makes about the
//! wheel — for every fault family, random seed and mode, both engines
//! produce byte-identical state hashes at every slot boundary, identical
//! final reports, and survive snapshot/restore cuts, while the compaction
//! guard keeps lazy-deletion debt bounded under a cancel storm.

use proptest::prelude::*;

use rthv::time::{Duration, Instant};
use rthv::{EngineChoice, EngineKind, SupervisionPolicy};
use rthv_faults::{
    scenario_machine, verify_cross_engine, CampaignConfig, FaultKind, FaultScenario, ReplayConfig,
};

/// All eleven fault families with representative tier-1 geometry.
fn kind(index: usize) -> FaultKind {
    match index {
        0 => FaultKind::IrqStorm {
            period: Duration::from_micros(300),
        },
        1 => FaultKind::BurstyFlood {
            burst: 8,
            spacing: Duration::from_micros(20),
            every: Duration::from_millis(2),
        },
        2 => FaultKind::SpuriousIrqs {
            period: Duration::from_millis(1),
            spurious_per_real: 3,
        },
        3 => FaultKind::DroppedIrqs {
            period: Duration::from_micros(500),
            drop_permille: 300,
        },
        4 => FaultKind::AdmissionClockJitter {
            period: Duration::from_millis(3),
        },
        5 => FaultKind::BudgetOverrun {
            period: Duration::from_millis(1),
            factor: 4,
        },
        6 => FaultKind::NonYieldingGuest {
            work: Duration::from_millis(6),
            every: Duration::from_millis(42),
        },
        7 => FaultKind::Nominal {
            period: Duration::from_millis(6),
        },
        8 => FaultKind::HarnessCrash {
            period: Duration::from_millis(6),
            crashes: 1,
        },
        9 => FaultKind::CoreCrash {
            period: Duration::from_millis(6),
            crashes: 1,
        },
        _ => FaultKind::RouteStall {
            period: Duration::from_millis(6),
            stall: Duration::from_millis(4),
        },
    }
}

fn campaign(engine: EngineChoice) -> CampaignConfig {
    CampaignConfig {
        horizon: Duration::from_millis(150),
        engine,
        scenarios: Vec::new(),
        ..CampaignConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(18))]

    /// Lockstep differential: the same plan on both engines, compared by
    /// `state_hash` at **every** slot boundary and at the horizon, then by
    /// the full `RunReport` rendering. Any ordering or accounting
    /// discrepancy between the engines pins the first diverging boundary.
    #[test]
    fn engines_agree_at_every_slot_boundary(
        kind_index in 0usize..11,
        seed in any::<u64>(),
        monitored in prop::bool::ANY,
        supervised in prop::bool::ANY,
    ) {
        let heap_config = campaign(EngineChoice::Heap);
        let wheel_config = campaign(EngineChoice::Wheel);
        let scenario = FaultScenario { id: 0, kind: kind(kind_index), seed };
        let plan = scenario.plan(heap_config.horizon, heap_config.setup.bottom_cost);
        let supervision = supervised.then(SupervisionPolicy::default);
        let horizon = Instant::ZERO + heap_config.horizon;

        let mut heap =
            scenario_machine(&heap_config, &plan, monitored, supervision).expect("valid config");
        let mut wheel =
            scenario_machine(&wheel_config, &plan, monitored, supervision).expect("valid config");
        prop_assert_eq!(heap.engine_kind(), EngineKind::Heap);
        prop_assert_eq!(wheel.engine_kind(), EngineKind::Wheel);
        prop_assert_eq!(heap.state_hash(), wheel.state_hash(), "initial state");

        let schedule = heap.schedule().clone();
        let mut k = 1u64;
        while schedule.boundary_time(k) <= horizon {
            let boundary = schedule.boundary_time(k);
            heap.run_until(boundary);
            wheel.run_until(boundary);
            prop_assert_eq!(
                heap.state_hash(),
                wheel.state_hash(),
                "engines diverged at slot boundary {}",
                k
            );
            k += 1;
        }
        heap.run_until(horizon);
        wheel.run_until(horizon);
        prop_assert_eq!(heap.state_hash(), wheel.state_hash(), "horizon state");
        let heap_report = format!("{:?}", heap.finish());
        let wheel_report = format!("{:?}", wheel.finish());
        prop_assert_eq!(heap_report, wheel_report, "final reports differ");
    }

    /// The checkpoint/replay oracle as a cross-engine differential test:
    /// record on the heap, re-execute on the wheel crossing a
    /// snapshot/restore cut at every checkpoint period — clean for every
    /// fault family.
    #[test]
    fn cross_engine_replay_oracle_is_clean(
        kind_index in 0usize..11,
        seed in any::<u64>(),
        monitored in prop::bool::ANY,
    ) {
        let config = campaign(EngineChoice::Auto);
        let scenario = FaultScenario { id: 0, kind: kind(kind_index), seed };
        let replay = ReplayConfig { monitored, ..ReplayConfig::default() };
        prop_assert_eq!(verify_cross_engine(&config, &scenario, &replay), Ok(()));
    }
}

/// A non-yielding guest demanding 6 ms of bottom work every 1 ms keeps a
/// bottom segment armed that each new arrival's top handler preempts,
/// cancelling the armed segment-end event — a sustained cancel storm. The
/// compaction guard in both engines must keep lazy-deletion debt bounded:
/// sampled on a 100 µs grid across the whole run, stale entries never
/// exceed twice the live population.
#[test]
fn cancel_storm_keeps_tombstone_debt_bounded() {
    for engine in [EngineChoice::Heap, EngineChoice::Wheel] {
        let config = campaign(engine);
        let scenario = FaultScenario {
            id: 0,
            kind: FaultKind::NonYieldingGuest {
                work: Duration::from_millis(6),
                every: Duration::from_millis(1),
            },
            seed: 0xCA11,
        };
        let plan = scenario.plan(config.horizon, config.setup.bottom_cost);
        let mut machine = scenario_machine(&config, &plan, true, None).expect("valid config");
        let horizon = Instant::ZERO + config.horizon;

        let mut saw_stale = false;
        let mut at = Instant::ZERO;
        while at < horizon {
            at += Duration::from_micros(100);
            machine.run_until(at);
            let stats = machine.engine_stats();
            saw_stale |= stats.stale > 0;
            assert!(
                stats.stale <= 2 * stats.live.max(1),
                "{engine:?}: at {at:?}: {} stale exceeds 2x {} live",
                stats.stale,
                stats.live
            );
        }
        assert!(
            saw_stale,
            "{engine:?}: the storm never produced a tombstone — scenario too tame"
        );
    }
}
