//! The degenerate-platform identity: a single-core, zero-routing
//! [`MultiMachine`] with no platform faults *is* the plain [`Machine`] it
//! wraps. For every fault family, random seed, monitoring mode,
//! supervision mode and event engine, both drive the identical arrival
//! stream and must agree — `state_hash` byte for byte at **every** slot
//! boundary and at the horizon, and the per-core `RunReport` verbatim.
//! This is what makes the multi-core campaign's claims transfer: every
//! single-machine guarantee (snapshot/restore, cross-engine determinism,
//! replay journals) holds on the platform because N = 1 adds nothing.

use proptest::prelude::*;

use rthv::monitor::DeltaFunction;
use rthv::time::{Duration, Instant};
use rthv::{
    EngineChoice, FailoverPolicy, HypervisorConfig, IrqHandlingMode, IrqSourceId, Machine,
    MultiMachine, PaperSetup, Platform, PlatformSource, StepChoice, SupervisionPolicy,
};
use rthv_faults::{
    build_platform, core_faults, line_arrivals, FaultKind, FaultScenario, SmpArm, SmpConfig,
    SmpScenario, SmpTraffic,
};

/// All eleven fault families with representative tier-1 geometry (the same
/// ladder as the cross-engine differential tests).
fn kind(index: usize) -> FaultKind {
    match index {
        0 => FaultKind::IrqStorm {
            period: Duration::from_micros(300),
        },
        1 => FaultKind::BurstyFlood {
            burst: 8,
            spacing: Duration::from_micros(20),
            every: Duration::from_millis(2),
        },
        2 => FaultKind::SpuriousIrqs {
            period: Duration::from_millis(1),
            spurious_per_real: 3,
        },
        3 => FaultKind::DroppedIrqs {
            period: Duration::from_micros(500),
            drop_permille: 300,
        },
        4 => FaultKind::AdmissionClockJitter {
            period: Duration::from_millis(3),
        },
        5 => FaultKind::BudgetOverrun {
            period: Duration::from_millis(1),
            factor: 4,
        },
        6 => FaultKind::NonYieldingGuest {
            work: Duration::from_millis(6),
            every: Duration::from_millis(42),
        },
        7 => FaultKind::Nominal {
            period: Duration::from_millis(6),
        },
        8 => FaultKind::HarnessCrash {
            period: Duration::from_millis(6),
            crashes: 1,
        },
        9 => FaultKind::CoreCrash {
            period: Duration::from_millis(6),
            crashes: 1,
        },
        _ => FaultKind::RouteStall {
            period: Duration::from_millis(6),
            stall: Duration::from_millis(4),
        },
    }
}

const HORIZON: Duration = Duration::from_millis(150);

/// The paper-geometry hypervisor configuration both sides run: interposed
/// mode, the scenario's admission clock, and either the real 3 ms δ⁻ or
/// the admit-everything 1 ns one.
fn paired_config(
    monitored: bool,
    supervised: bool,
    engine: EngineChoice,
    plan_clock: rthv::AdmissionClock,
) -> HypervisorConfig {
    let dmin = if monitored {
        Duration::from_millis(3)
    } else {
        Duration::from_nanos(1)
    };
    let delta = DeltaFunction::from_dmin(dmin).expect("positive d_min");
    let mut hv = PaperSetup::default().config(IrqHandlingMode::Interposed, Some(delta));
    hv.policies.admission_clock = plan_clock;
    hv.policies.supervision = supervised.then(SupervisionPolicy::default);
    hv.policies.engine = engine;
    hv
}

/// A one-core platform around `hv` with a zero-cost 1×1 routing matrix,
/// zero shared penalty and no fallback — the degenerate platform.
fn degenerate_platform(hv: HypervisorConfig) -> Platform {
    Platform {
        cores: vec![hv],
        route_cost: vec![vec![Duration::ZERO]],
        shared_penalty: Duration::ZERO,
        sources: vec![PlatformSource {
            origin: 0,
            home: 0,
            home_source: IrqSourceId::new(0),
            fallback: None,
        }],
        failover: FailoverPolicy::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(18))]

    /// Lockstep identity: plain machine and N = 1 platform drive the same
    /// plan and are compared by `state_hash` at every slot boundary, at
    /// the horizon, and by the final report rendering.
    #[test]
    fn single_core_platform_is_the_machine_at_every_slot_boundary(
        kind_index in 0usize..11,
        seed in any::<u64>(),
        monitored in prop::bool::ANY,
        supervised in prop::bool::ANY,
        wheel in prop::bool::ANY,
    ) {
        let engine = if wheel { EngineChoice::Wheel } else { EngineChoice::Heap };
        let scenario = FaultScenario { id: 0, kind: kind(kind_index), seed };
        let plan = scenario.plan(HORIZON, PaperSetup::default().bottom_cost);
        let horizon = Instant::ZERO + HORIZON;

        let hv = paired_config(monitored, supervised, engine, plan.admission_clock);
        let mut machine = Machine::new(hv.clone()).expect("paper config is valid");
        let mut multi =
            MultiMachine::new(degenerate_platform(hv), &[]).expect("degenerate platform is valid");
        machine.enable_service_trace();
        multi.enable_service_trace();
        prop_assert_eq!(machine.state_hash(), multi.state_hash(), "initial state");

        // Plans are strictly increasing in time (the injector canonicalizes
        // them), so the platform's per-source delivery ordering never has to
        // nudge anything; the platform rejects arrivals at t = 0, so both
        // sides skip them identically.
        for arrival in plan.arrivals.iter().filter(|a| a.at > Instant::ZERO) {
            machine
                .schedule_irq_with_work(IrqSourceId::new(0), arrival.at, arrival.work)
                .expect("machine accepts the plan");
            multi
                .schedule_irq_with_work(0, arrival.at, arrival.work)
                .expect("platform accepts the plan");
        }

        let schedule = machine.schedule().clone();
        let mut k = 1u64;
        while schedule.boundary_time(k) <= horizon {
            let boundary = schedule.boundary_time(k);
            machine.run_until(boundary);
            multi.run_until(boundary);
            prop_assert_eq!(
                machine.state_hash(),
                multi.state_hash(),
                "platform diverged from the machine at slot boundary {}",
                k
            );
            k += 1;
        }
        machine.run_until(horizon);
        multi.run_until(horizon);
        prop_assert_eq!(machine.state_hash(), multi.state_hash(), "horizon state");

        let machine_report = machine.finish();
        let multi_report = multi.finish();
        prop_assert!(multi_report.conserved(), "degenerate platform ledger leaked");
        prop_assert_eq!(multi_report.sheds.len(), 0, "degenerate platform shed traffic");
        prop_assert_eq!(
            format!("{machine_report:?}"),
            format!("{:?}", multi_report.cores[0]),
            "final reports differ"
        );
    }

    /// The platform's snapshot/restore must preserve the identity across a
    /// mid-run cut: snapshot the N = 1 platform at a boundary, run both to
    /// the horizon, restore the platform and re-run — the replay must land
    /// on the machine's exact horizon hash again.
    #[test]
    fn single_core_platform_restore_replays_to_the_machine_hash(
        kind_index in 0usize..11,
        seed in any::<u64>(),
        cut in 1u64..8,
        wheel in prop::bool::ANY,
    ) {
        let engine = if wheel { EngineChoice::Wheel } else { EngineChoice::Heap };
        let scenario = FaultScenario { id: 0, kind: kind(kind_index), seed };
        let plan = scenario.plan(HORIZON, PaperSetup::default().bottom_cost);
        let horizon = Instant::ZERO + HORIZON;

        let hv = paired_config(true, false, engine, plan.admission_clock);
        let mut machine = Machine::new(hv.clone()).expect("paper config is valid");
        let mut multi =
            MultiMachine::new(degenerate_platform(hv), &[]).expect("degenerate platform is valid");
        for arrival in plan.arrivals.iter().filter(|a| a.at > Instant::ZERO) {
            machine
                .schedule_irq_with_work(IrqSourceId::new(0), arrival.at, arrival.work)
                .expect("machine accepts the plan");
            multi
                .schedule_irq_with_work(0, arrival.at, arrival.work)
                .expect("platform accepts the plan");
        }

        let cut_at = machine.schedule().boundary_time(cut).min(horizon);
        machine.run_until(cut_at);
        multi.run_until(cut_at);
        let cut_hash = machine.state_hash();
        let checkpoint = multi.snapshot();
        prop_assert_eq!(checkpoint.taken_at(), cut_at);
        prop_assert_eq!(multi.state_hash(), cut_hash, "cut state");

        machine.run_until(horizon);
        multi.run_until(horizon);
        let reference = machine.state_hash();
        prop_assert_eq!(multi.state_hash(), reference, "pre-restore horizon state");

        multi.restore(&checkpoint);
        prop_assert_eq!(multi.state_hash(), cut_hash, "restored state");
        multi.run_until(horizon);
        prop_assert_eq!(multi.state_hash(), reference, "replayed horizon state");
    }

    /// Parallel stepping is byte-identical to sequential: the same smp
    /// campaign case driven by `StepChoice::Sequential` and
    /// `StepChoice::Parallel` must agree on `state_hash` at **every** slot
    /// boundary to the horizon, across all fault families × both engines ×
    /// cores {1, 2, 4}, and a snapshot/restore cut taken mid-scenario on
    /// the parallel machine must replay onto the same bytes.
    #[test]
    fn parallel_stepping_matches_sequential_at_every_slot_boundary(
        kind_index in 0usize..11,
        seed in any::<u64>(),
        cores_pick in 0usize..3,
        wheel in prop::bool::ANY,
        storm in prop::bool::ANY,
        cut in 1u64..6,
    ) {
        let cores = [1usize, 2, 4][cores_pick];
        let engine = if wheel { EngineChoice::Wheel } else { EngineChoice::Heap };
        let config = SmpConfig {
            horizon: Duration::from_millis(60),
            ..SmpConfig::smoke()
        };
        let scenario = SmpScenario {
            id: 0,
            traffic: if storm { SmpTraffic::Storm } else { SmpTraffic::Nominal },
            fault: FaultScenario { id: 0, kind: kind(kind_index), seed },
        };
        let mut platform = build_platform(&config, SmpArm::RoundRobin, cores, true)
            .expect("campaign platform is valid");
        for core in &mut platform.cores {
            core.policies.engine = engine;
        }
        let faults = core_faults(&scenario, cores, config.horizon);
        let lines = platform.sources.len();
        let build = |step| {
            let mut m = MultiMachine::with_step(platform.clone(), &faults, step)
                .expect("explicit step choice never fails");
            for line in 0..lines {
                for at in line_arrivals(&config, &scenario, line) {
                    m.schedule_irq(line, at).expect("campaign arrivals are in range");
                }
            }
            m
        };
        let mut seq = build(StepChoice::Sequential);
        let mut par = build(StepChoice::Parallel);

        // All cores share the campaign's TDMA geometry; probe it off core 0.
        let schedule = Machine::new(platform.cores[0].clone())
            .expect("campaign core config is valid")
            .schedule()
            .clone();
        let horizon = Instant::ZERO + config.horizon;
        let cut_at = schedule.boundary_time(cut).min(horizon);
        let mut checkpoint = None;
        let mut k = 1u64;
        while schedule.boundary_time(k) <= horizon {
            let boundary = schedule.boundary_time(k);
            seq.run_until(boundary);
            par.run_until(boundary);
            prop_assert_eq!(
                seq.state_hash(),
                par.state_hash(),
                "parallel diverged from sequential at slot boundary {}",
                k
            );
            if boundary == cut_at {
                checkpoint = Some(par.snapshot());
            }
            k += 1;
        }
        seq.run_until(horizon);
        par.run_until(horizon);
        let reference = seq.state_hash();
        prop_assert_eq!(par.state_hash(), reference, "horizon state");

        if let Some(checkpoint) = checkpoint {
            par.restore(&checkpoint);
            par.run_until(horizon);
            prop_assert_eq!(par.state_hash(), reference, "replayed horizon state");
        }

        let seq = seq.finish();
        let par = par.finish();
        prop_assert!(seq.conserved() && par.conserved(), "ledger leaked");
        prop_assert_eq!(&seq.counters, &par.counters, "counters differ");
        prop_assert_eq!(&seq.sheds, &par.sheds, "sheds differ");
    }
}
