//! Property test: for every fault family, checkpointing a campaign run at
//! a random slot boundary and restoring it yields a byte-identical end
//! state — the tentpole guarantee the replay oracle and the resumable
//! sweep runner are built on.

use proptest::prelude::*;

use rthv::time::{Duration, Instant};
use rthv::{Machine, SupervisionPolicy};
use rthv_faults::{scenario_machine, CampaignConfig, FaultKind, FaultScenario};

/// All eleven fault families with representative tier-1 geometry.
fn kind(index: usize) -> FaultKind {
    match index {
        0 => FaultKind::IrqStorm {
            period: Duration::from_micros(300),
        },
        1 => FaultKind::BurstyFlood {
            burst: 8,
            spacing: Duration::from_micros(20),
            every: Duration::from_millis(2),
        },
        2 => FaultKind::SpuriousIrqs {
            period: Duration::from_millis(1),
            spurious_per_real: 3,
        },
        3 => FaultKind::DroppedIrqs {
            period: Duration::from_micros(500),
            drop_permille: 300,
        },
        4 => FaultKind::AdmissionClockJitter {
            period: Duration::from_millis(3),
        },
        5 => FaultKind::BudgetOverrun {
            period: Duration::from_millis(1),
            factor: 4,
        },
        6 => FaultKind::NonYieldingGuest {
            work: Duration::from_millis(6),
            every: Duration::from_millis(42),
        },
        7 => FaultKind::Nominal {
            period: Duration::from_millis(6),
        },
        8 => FaultKind::HarnessCrash {
            period: Duration::from_millis(6),
            crashes: 1,
        },
        9 => FaultKind::CoreCrash {
            period: Duration::from_millis(6),
            crashes: 1,
        },
        _ => FaultKind::RouteStall {
            period: Duration::from_millis(6),
            stall: Duration::from_millis(4),
        },
    }
}

fn campaign() -> CampaignConfig {
    CampaignConfig {
        horizon: Duration::from_millis(150),
        scenarios: Vec::new(),
        ..CampaignConfig::default()
    }
}

/// End-state fingerprint: the state hash at the horizon plus the full
/// report rendering.
fn finish_fingerprint(mut machine: Machine, horizon: Instant) -> (u64, String) {
    machine.run_until(horizon);
    (machine.state_hash(), format!("{:?}", machine.finish()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Snapshot at a random slot boundary, restore onto a fresh machine,
    /// run both to the horizon: hashes and reports must match exactly,
    /// for every fault family, monitored or not, supervised or not.
    #[test]
    fn snapshot_restore_is_byte_identical(
        kind_index in 0usize..11,
        seed in any::<u64>(),
        cut_permille in 0u64..1000,
        monitored in prop::bool::ANY,
        supervised in prop::bool::ANY,
    ) {
        let config = campaign();
        let scenario = FaultScenario { id: 0, kind: kind(kind_index), seed };
        let plan = scenario.plan(config.horizon, config.setup.bottom_cost);
        let supervision = supervised.then(SupervisionPolicy::default);
        let horizon = Instant::ZERO + config.horizon;

        let mut original = scenario_machine(&config, &plan, monitored, supervision)
            .expect("valid config");
        let schedule = original.schedule().clone();

        // Cut at a random slot boundary inside the horizon.
        let mut boundaries = 0u64;
        while schedule.boundary_time(boundaries + 1) <= horizon {
            boundaries += 1;
        }
        let cut_slot = (boundaries * cut_permille / 1000).max(1);
        original.run_until(schedule.boundary_time(cut_slot));
        let checkpoint = original.snapshot();

        let mut restored = scenario_machine(&config, &plan, monitored, supervision)
            .expect("valid config");
        restored.restore(&checkpoint);
        prop_assert_eq!(restored.state_hash(), original.state_hash());

        let expected = finish_fingerprint(original, horizon);
        let actual = finish_fingerprint(restored, horizon);
        prop_assert_eq!(actual.0, expected.0, "state hash diverged after restore");
        prop_assert_eq!(actual.1, expected.1, "report diverged after restore");
    }
}
