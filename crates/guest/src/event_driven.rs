//! Event-driven guest replay: task activations from explicit release
//! traces instead of periodic generation.
//!
//! This is how IRQ *completions* from the hypervisor simulation become
//! guest-level work: the subscriber partition's consumer task is released
//! once per bottom-handler completion, and the measured end-to-end chain
//! (hardware IRQ → bottom handler → consumer-task completion) falls out of
//! composing the two records.

use rthv_hypervisor::{ServiceInterval, ServiceKind};
use rthv_time::{Duration, Instant};

use crate::{GuestReport, TaskReport};

/// One event-driven task: a fixed per-job execution demand, released by an
/// external trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventTask {
    /// Human-readable name used in reports.
    pub name: String,
    /// Execution demand per release.
    pub wcet: Duration,
    /// Relative deadline per release (for miss accounting).
    pub deadline: Duration,
    /// Release instants, time-ordered.
    pub releases: Vec<Instant>,
}

impl EventTask {
    /// Creates an event-driven task.
    ///
    /// # Panics
    ///
    /// Panics if `wcet` is zero or the releases are out of order.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        wcet: Duration,
        deadline: Duration,
        releases: Vec<Instant>,
    ) -> Self {
        assert!(!wcet.is_zero(), "event task needs a positive WCET");
        assert!(
            releases.windows(2).all(|w| w[0] <= w[1]),
            "releases must be time-ordered"
        );
        EventTask {
            name: name.into(),
            wcet,
            deadline,
            releases,
        }
    }
}

/// Replays event-driven tasks (priority = position, index 0 highest) over
/// the `User` service intervals of `supply`, FIFO within each task.
///
/// Semantics match [`replay`](crate::replay) except that releases come from
/// the tasks' explicit traces.
///
/// # Panics
///
/// Panics if the supply intervals are unsorted or overlap.
#[must_use]
pub fn replay_events(
    tasks: &[EventTask],
    supply: &[ServiceInterval],
    horizon: Instant,
) -> GuestReport {
    let user_supply: Vec<&ServiceInterval> = supply
        .iter()
        .filter(|interval| interval.kind == ServiceKind::User)
        .collect();
    for pair in user_supply.windows(2) {
        assert!(
            pair[0].end <= pair[1].start,
            "service intervals must be sorted and disjoint"
        );
    }

    #[derive(Debug, Clone, Copy)]
    struct Job {
        release: Instant,
        remaining: Duration,
    }

    let releases: Vec<&[Instant]> = tasks
        .iter()
        .map(|t| {
            let cut = t.releases.partition_point(|&r| r < horizon);
            &t.releases[..cut]
        })
        .collect();
    let mut next_release_idx = vec![0usize; tasks.len()];
    let mut ready: Vec<Vec<Job>> = vec![Vec::new(); tasks.len()];
    let mut responses: Vec<Vec<Duration>> = vec![Vec::new(); tasks.len()];
    let mut misses = vec![0u64; tasks.len()];
    let mut busy_time = Duration::ZERO;
    let mut idle_time = Duration::ZERO;

    let release_up_to =
        |now: Instant, ready: &mut Vec<Vec<Job>>, next_release_idx: &mut Vec<usize>| {
            for (task, task_releases) in releases.iter().enumerate() {
                while next_release_idx[task] < task_releases.len()
                    && task_releases[next_release_idx[task]] <= now
                {
                    ready[task].push(Job {
                        release: task_releases[next_release_idx[task]],
                        remaining: tasks[task].wcet,
                    });
                    next_release_idx[task] += 1;
                }
            }
        };
    let next_pending_release = |next_release_idx: &Vec<usize>| -> Option<Instant> {
        releases
            .iter()
            .enumerate()
            .filter_map(|(task, task_releases)| task_releases.get(next_release_idx[task]).copied())
            .min()
    };

    for interval in &user_supply {
        let mut now = interval.start;
        let end = interval.end.min(horizon);
        while now < end {
            release_up_to(now, &mut ready, &mut next_release_idx);
            let Some(task) = ready.iter().position(|jobs| !jobs.is_empty()) else {
                let next =
                    next_pending_release(&next_release_idx).map_or(end, |r| r.min(end).max(now));
                idle_time += next.max(now).duration_since(now);
                if next <= now {
                    continue;
                }
                now = next;
                continue;
            };
            let job = &mut ready[task][0];
            let mut until = (now + job.remaining).min(end);
            if let Some(next) = next_pending_release(&next_release_idx) {
                if next > now {
                    until = until.min(next);
                }
            }
            let ran = until.duration_since(now);
            job.remaining = job.remaining.saturating_sub(ran);
            busy_time += ran;
            now = until;
            if ready[task][0].remaining.is_zero() {
                let job = ready[task].remove(0);
                let response = now.duration_since(job.release);
                if response > tasks[task].deadline {
                    misses[task] += 1;
                }
                responses[task].push(response);
            }
        }
    }

    let task_reports = tasks
        .iter()
        .enumerate()
        .map(|(task, spec)| {
            let completed = responses[task].len() as u64;
            let mean_response = if completed == 0 {
                None
            } else {
                let total: u128 = responses[task]
                    .iter()
                    .map(|d| u128::from(d.as_nanos()))
                    .sum();
                Some(Duration::from_nanos(
                    u64::try_from(total / u128::from(completed)).unwrap_or(u64::MAX),
                ))
            };
            TaskReport {
                name: spec.name.clone(),
                released: releases[task].len() as u64,
                completed,
                deadline_misses: misses[task],
                observed_wcrt: responses[task].iter().max().copied(),
                mean_response,
            }
        })
        .collect();

    GuestReport {
        tasks: task_reports,
        busy_time,
        idle_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn at_ms(n: u64) -> Instant {
        Instant::ZERO + ms(n)
    }

    fn user(start_ms: u64, end_ms: u64) -> ServiceInterval {
        ServiceInterval {
            start: at_ms(start_ms),
            end: at_ms(end_ms),
            kind: ServiceKind::User,
        }
    }

    #[test]
    fn releases_drive_the_jobs() {
        let task = EventTask::new(
            "consumer",
            ms(2),
            ms(50),
            vec![at_ms(1), at_ms(10), at_ms(10)],
        );
        let report = replay_events(&[task], &[user(0, 100)], at_ms(100));
        assert_eq!(report.tasks[0].released, 3);
        assert_eq!(report.tasks[0].completed, 3);
        // Back-to-back releases at 10 ms queue FIFO: responses 2 and 4 ms.
        assert_eq!(report.tasks[0].observed_wcrt, Some(ms(4)));
        assert_eq!(report.busy_time, ms(6));
    }

    #[test]
    fn releases_beyond_horizon_are_ignored() {
        let task = EventTask::new("t", ms(1), ms(10), vec![at_ms(1), at_ms(99)]);
        let report = replay_events(&[task], &[user(0, 50)], at_ms(50));
        assert_eq!(report.tasks[0].released, 1);
    }

    #[test]
    fn priority_order_is_respected() {
        let hi = EventTask::new("hi", ms(3), ms(50), vec![at_ms(1)]);
        let lo = EventTask::new("lo", ms(3), ms(50), vec![at_ms(0)]);
        let report = replay_events(&[hi, lo], &[user(0, 100)], at_ms(100));
        // lo starts at 0 but hi preempts at 1: hi completes at 4,
        // lo resumes and completes at 6 → responses 3 and 6.
        assert_eq!(report.tasks[0].observed_wcrt, Some(ms(3)));
        assert_eq!(report.tasks[1].observed_wcrt, Some(ms(6)));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn unordered_releases_rejected() {
        let _ = EventTask::new("t", ms(1), ms(1), vec![at_ms(5), at_ms(1)]);
    }

    #[test]
    fn empty_release_trace_is_fine() {
        let task = EventTask::new("t", ms(1), ms(1), vec![]);
        let report = replay_events(&[task], &[user(0, 10)], at_ms(10));
        assert_eq!(report.tasks[0].released, 0);
        assert_eq!(report.tasks[0].observed_wcrt, None);
        assert_eq!(report.idle_time, ms(10));
    }
}
