//! Guest-OS layer: fixed-priority preemptive task sets executed over the
//! processor time a TDMA partition actually received.
//!
//! The paper's partitions host guest operating systems (uC/OS in the
//! original implementation). This crate closes that loop for the
//! reproduction: record a partition's *service intervals* with
//! [`Machine::enable_service_trace`], then [`replay`] a guest task set over
//! exactly those intervals to obtain guest-task response times — with and
//! without interposed-IRQ interference from other partitions. Together with
//! the supply-bound analysis in `rthv-analysis`, this makes the paper's
//! *sufficient temporal independence* claim checkable at the guest-task
//! level: observed response times stay below the hierarchical bound
//! computed from the TDMA supply minus the Eq. 14 interference.
//!
//! # Examples
//!
//! ```
//! use rthv_guest::{replay, GuestTask, GuestTaskSet};
//! use rthv_hypervisor::{ServiceInterval, ServiceKind};
//! use rthv_time::{Duration, Instant};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tasks = GuestTaskSet::new(vec![
//!     GuestTask::new("control", Duration::from_millis(10), Duration::from_millis(2)),
//!     GuestTask::new("logging", Duration::from_millis(50), Duration::from_millis(5)),
//! ])?;
//! // Full supply: the partition owned the CPU for the whole horizon.
//! let supply = [ServiceInterval {
//!     start: Instant::ZERO,
//!     end: Instant::ZERO + Duration::from_millis(100),
//!     kind: ServiceKind::User,
//! }];
//! let report = replay(&tasks, &supply, Instant::ZERO + Duration::from_millis(100));
//! assert_eq!(report.tasks[0].completed, 10);
//! assert_eq!(report.tasks[0].observed_wcrt, Some(Duration::from_millis(2)));
//! # Ok(())
//! # }
//! ```
//!
//! [`Machine::enable_service_trace`]: rthv_hypervisor::Machine::enable_service_trace

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event_driven;
mod replay;
mod task;

pub use event_driven::{replay_events, EventTask};
pub use replay::{replay, GuestReport, TaskReport};
pub use task::{GuestTask, GuestTaskSet, TaskSetError};
