//! Fixed-priority preemptive replay of a guest task set over recorded
//! service intervals.

use std::fmt;

use serde::{Deserialize, Serialize};

use rthv_hypervisor::{ServiceInterval, ServiceKind};
use rthv_time::{Duration, Instant};

use crate::GuestTaskSet;

/// Per-task outcome of a replay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskReport {
    /// Task name.
    pub name: String,
    /// Jobs released within the horizon.
    pub released: u64,
    /// Jobs that completed within the horizon.
    pub completed: u64,
    /// Jobs whose response exceeded the task deadline.
    pub deadline_misses: u64,
    /// Largest observed response time among completed jobs.
    pub observed_wcrt: Option<Duration>,
    /// Mean response time among completed jobs.
    pub mean_response: Option<Duration>,
}

/// Outcome of [`replay`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuestReport {
    /// Per-task outcomes, in priority order.
    pub tasks: Vec<TaskReport>,
    /// Total guest processor time consumed.
    pub busy_time: Duration,
    /// Supplied time the guest left idle (no pending job).
    pub idle_time: Duration,
}

impl fmt::Display for GuestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for task in &self.tasks {
            match task.observed_wcrt {
                Some(wcrt) => writeln!(
                    f,
                    "{:<16} {}/{} jobs, wcrt {}, misses {}",
                    task.name, task.completed, task.released, wcrt, task.deadline_misses
                )?,
                None => writeln!(
                    f,
                    "{:<16} {}/{} jobs, no completion",
                    task.name, task.completed, task.released
                )?,
            }
        }
        Ok(())
    }
}

/// One released job during the sweep.
#[derive(Debug, Clone, Copy)]
struct Job {
    release: Instant,
    remaining: Duration,
}

/// Replays `tasks` over the `User`-kind intervals of `supply` up to
/// `horizon`, under fixed-priority preemptive scheduling (index 0 wins;
/// within a task, jobs run FIFO).
///
/// Intervals of other kinds (bottom-handler time) are ignored: they model
/// the guest's ISR work, not its task-level supply. Jobs released but not
/// finished by the horizon count as `released` without `completed`.
///
/// # Panics
///
/// Panics if the supply intervals are unsorted or overlap — the hypervisor
/// records them in order, so this indicates caller-side tampering.
#[must_use]
pub fn replay(tasks: &GuestTaskSet, supply: &[ServiceInterval], horizon: Instant) -> GuestReport {
    let user_supply: Vec<&ServiceInterval> = supply
        .iter()
        .filter(|interval| interval.kind == ServiceKind::User)
        .collect();
    for pair in user_supply.windows(2) {
        assert!(
            pair[0].end <= pair[1].start,
            "service intervals must be sorted and disjoint"
        );
    }

    // Pre-compute all releases within the horizon, per task.
    let mut releases: Vec<Vec<Instant>> = Vec::with_capacity(tasks.len());
    for task in tasks.tasks() {
        let mut task_releases = Vec::new();
        let mut t = Instant::ZERO + task.offset;
        while t < horizon {
            task_releases.push(t);
            t += task.period;
        }
        releases.push(task_releases);
    }
    let mut next_release_idx = vec![0usize; tasks.len()];
    // Ready jobs per task, FIFO. The highest-priority non-empty task runs.
    let mut ready: Vec<Vec<Job>> = vec![Vec::new(); tasks.len()];
    let mut responses: Vec<Vec<Duration>> = vec![Vec::new(); tasks.len()];
    let mut misses = vec![0u64; tasks.len()];
    let mut busy_time = Duration::ZERO;
    let mut idle_time = Duration::ZERO;

    let release_up_to =
        |now: Instant, ready: &mut Vec<Vec<Job>>, next_release_idx: &mut Vec<usize>| {
            for (task, task_releases) in releases.iter().enumerate() {
                while next_release_idx[task] < task_releases.len()
                    && task_releases[next_release_idx[task]] <= now
                {
                    ready[task].push(Job {
                        release: task_releases[next_release_idx[task]],
                        remaining: tasks.tasks()[task].wcet,
                    });
                    next_release_idx[task] += 1;
                }
            }
        };

    let next_pending_release = |next_release_idx: &Vec<usize>| -> Option<Instant> {
        releases
            .iter()
            .enumerate()
            .filter_map(|(task, task_releases)| task_releases.get(next_release_idx[task]).copied())
            .min()
    };

    for interval in &user_supply {
        let mut now = interval.start;
        let end = interval.end.min(horizon);
        if now >= end {
            continue;
        }
        while now < end {
            release_up_to(now, &mut ready, &mut next_release_idx);
            // Highest-priority pending job.
            let Some(task) = ready.iter().position(|jobs| !jobs.is_empty()) else {
                // Idle inside supplied time until the next release or the
                // interval end.
                let next =
                    next_pending_release(&next_release_idx).map_or(end, |r| r.min(end).max(now));
                idle_time += next.max(now).duration_since(now);
                if next <= now {
                    // A release exactly at `now` — loop to pick it up.
                    continue;
                }
                now = next;
                continue;
            };
            let job = &mut ready[task][0];
            // Run until completion, interval end, or a (potentially
            // higher-priority) release.
            let mut until = (now + job.remaining).min(end);
            if let Some(next) = next_pending_release(&next_release_idx) {
                if next > now {
                    until = until.min(next);
                }
            }
            let ran = until.duration_since(now);
            job.remaining = job.remaining.saturating_sub(ran);
            busy_time += ran;
            now = until;
            if ready[task][0].remaining.is_zero() {
                let job = ready[task].remove(0);
                let response = now.duration_since(job.release);
                if response > tasks.tasks()[task].deadline {
                    misses[task] += 1;
                }
                responses[task].push(response);
            }
        }
    }

    let task_reports = tasks
        .tasks()
        .iter()
        .enumerate()
        .map(|(task, spec)| {
            let completed = responses[task].len() as u64;
            let observed_wcrt = responses[task].iter().max().copied();
            let mean_response = if completed == 0 {
                None
            } else {
                let total: u128 = responses[task]
                    .iter()
                    .map(|d| u128::from(d.as_nanos()))
                    .sum();
                Some(Duration::from_nanos(
                    u64::try_from(total / u128::from(completed)).unwrap_or(u64::MAX),
                ))
            };
            TaskReport {
                name: spec.name.clone(),
                released: releases[task].len() as u64,
                completed,
                deadline_misses: misses[task],
                observed_wcrt,
                mean_response,
            }
        })
        .collect();

    GuestReport {
        tasks: task_reports,
        busy_time,
        idle_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GuestTask;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn at_ms(n: u64) -> Instant {
        Instant::ZERO + ms(n)
    }

    fn user(start_ms: u64, end_ms: u64) -> ServiceInterval {
        ServiceInterval {
            start: at_ms(start_ms),
            end: at_ms(end_ms),
            kind: ServiceKind::User,
        }
    }

    fn full_supply(end_ms: u64) -> Vec<ServiceInterval> {
        vec![user(0, end_ms)]
    }

    #[test]
    fn single_task_full_supply() {
        let tasks = GuestTaskSet::new(vec![GuestTask::new("t", ms(10), ms(2))]).expect("valid");
        let report = replay(&tasks, &full_supply(100), at_ms(100));
        assert_eq!(report.tasks[0].released, 10);
        assert_eq!(report.tasks[0].completed, 10);
        assert_eq!(report.tasks[0].observed_wcrt, Some(ms(2)));
        assert_eq!(report.tasks[0].deadline_misses, 0);
        assert_eq!(report.busy_time, ms(20));
        assert_eq!(report.idle_time, ms(80));
    }

    #[test]
    fn classic_rate_monotonic_preemption() {
        // High: P=5, C=2; Low: P=20, C=6. Low's first job runs in the gaps
        // of High: [2,5) and [7,10), completing at t = 10 → response 10 ms
        // (the classic response-time fixed point: 6 + 2·⌈10/5⌉ = 10).
        let tasks = GuestTaskSet::new(vec![
            GuestTask::new("high", ms(5), ms(2)),
            GuestTask::new("low", ms(20), ms(6)),
        ])
        .expect("valid");
        let report = replay(&tasks, &full_supply(40), at_ms(40));
        assert_eq!(report.tasks[0].observed_wcrt, Some(ms(2)));
        assert_eq!(report.tasks[1].observed_wcrt, Some(ms(10)));
        assert_eq!(report.tasks[1].deadline_misses, 0);
    }

    #[test]
    fn tdma_like_supply_delays_tasks() {
        // Supply 6 ms of every 14 ms (the paper's slot share).
        let supply: Vec<ServiceInterval> = (0..10).map(|k| user(k * 14, k * 14 + 6)).collect();
        let tasks = GuestTaskSet::new(vec![GuestTask::new("t", ms(14), ms(2))]).expect("valid");
        let report = replay(&tasks, &supply, at_ms(140));
        assert_eq!(report.tasks[0].completed, 10);
        // Jobs released at k·14 run right at slot starts: response 2 ms.
        assert_eq!(report.tasks[0].observed_wcrt, Some(ms(2)));
        // Shift the task phase so releases land after the slot: response
        // includes the 8 ms no-supply gap.
        let shifted = GuestTaskSet::new(vec![GuestTask::new("t", ms(14), ms(2))
            .with_offset(ms(6))
            .with_deadline(ms(8))])
        .expect("valid");
        let report = replay(&shifted, &supply, at_ms(140));
        // Released at 6 ms, supply resumes at 14 ms, completes at 16 ms —
        // a 10 ms response that violates the 8 ms constrained deadline.
        assert_eq!(report.tasks[0].observed_wcrt, Some(ms(10)));
        assert_eq!(report.tasks[0].deadline_misses, report.tasks[0].completed);
    }

    #[test]
    fn bottom_intervals_are_not_supply() {
        let supply = vec![
            ServiceInterval {
                start: at_ms(0),
                end: at_ms(10),
                kind: ServiceKind::Bottom,
            },
            user(10, 20),
        ];
        let tasks = GuestTaskSet::new(vec![GuestTask::new("t", ms(50), ms(2))]).expect("valid");
        let report = replay(&tasks, &supply, at_ms(50));
        // Release at 0, but supply only from 10 ms → response 12 ms.
        assert_eq!(report.tasks[0].observed_wcrt, Some(ms(12)));
    }

    #[test]
    fn unfinished_jobs_are_reported() {
        let tasks = GuestTaskSet::new(vec![GuestTask::new("t", ms(10), ms(8))]).expect("valid");
        // Only 4 ms of supply for an 8 ms job.
        let report = replay(&tasks, &[user(0, 4)], at_ms(10));
        assert_eq!(report.tasks[0].released, 1);
        assert_eq!(report.tasks[0].completed, 0);
        assert_eq!(report.tasks[0].observed_wcrt, None);
        assert_eq!(report.busy_time, ms(4));
    }

    #[test]
    fn overloaded_guest_misses_deadlines() {
        let tasks = GuestTaskSet::new(vec![
            GuestTask::new("high", ms(10), ms(6)),
            GuestTask::new("low", ms(10), ms(6)),
        ])
        .expect("valid");
        let report = replay(&tasks, &full_supply(100), at_ms(100));
        assert!(report.tasks[1].deadline_misses > 0);
    }

    #[test]
    #[should_panic(expected = "sorted and disjoint")]
    fn overlapping_supply_rejected() {
        let tasks = GuestTaskSet::new(vec![GuestTask::new("t", ms(10), ms(1))]).expect("valid");
        let _ = replay(&tasks, &[user(0, 10), user(5, 15)], at_ms(20));
    }

    #[test]
    fn time_conservation_in_replay() {
        let supply: Vec<ServiceInterval> = (0..20).map(|k| user(k * 10, k * 10 + 4)).collect();
        let tasks = GuestTaskSet::new(vec![
            GuestTask::new("a", ms(20), ms(1)),
            GuestTask::new("b", ms(40), ms(3)),
        ])
        .expect("valid");
        let report = replay(&tasks, &supply, at_ms(200));
        let supplied: Duration = supply.iter().map(ServiceInterval::length).sum();
        assert_eq!(report.busy_time + report.idle_time, supplied);
    }

    #[test]
    fn display_lists_tasks() {
        let tasks = GuestTaskSet::new(vec![GuestTask::new("ctl", ms(10), ms(1))]).expect("valid");
        let report = replay(&tasks, &full_supply(20), at_ms(20));
        assert!(report.to_string().contains("ctl"));
        assert!(report.to_string().contains("2/2 jobs"));
    }
}
