//! Guest task definitions.

use std::fmt;

use serde::{Deserialize, Serialize};

use rthv_time::Duration;

/// One periodic guest task.
///
/// Priorities are implicit: tasks are scheduled rate-monotonically in the
/// order of the [`GuestTaskSet`] (index 0 = highest priority), which is the
/// classic uC/OS-style fixed-priority arrangement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuestTask {
    /// Human-readable name used in reports.
    pub name: String,
    /// Activation period.
    pub period: Duration,
    /// Worst-case execution time per job.
    pub wcet: Duration,
    /// Release offset of the first job.
    pub offset: Duration,
    /// Relative deadline (defaults to the period).
    pub deadline: Duration,
}

impl GuestTask {
    /// Creates a task with implicit deadline (= period) and zero offset.
    #[must_use]
    pub fn new(name: impl Into<String>, period: Duration, wcet: Duration) -> Self {
        GuestTask {
            name: name.into(),
            period,
            wcet,
            offset: Duration::ZERO,
            deadline: period,
        }
    }

    /// Sets the release offset (builder style).
    #[must_use]
    pub fn with_offset(mut self, offset: Duration) -> Self {
        self.offset = offset;
        self
    }

    /// Sets a constrained deadline (builder style).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// The task's processor utilization `C/P`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.wcet.as_nanos() as f64 / self.period.as_nanos() as f64
    }
}

impl fmt::Display for GuestTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(P={}, C={})", self.name, self.period, self.wcet)
    }
}

/// A validated, priority-ordered guest task set (index 0 = highest
/// priority).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuestTaskSet {
    tasks: Vec<GuestTask>,
}

/// Error returned by [`GuestTaskSet::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskSetError {
    /// The task list was empty.
    Empty,
    /// A task has a zero period.
    ZeroPeriod {
        /// Index of the offending task.
        index: usize,
    },
    /// A task has a zero WCET.
    ZeroWcet {
        /// Index of the offending task.
        index: usize,
    },
    /// A task's WCET exceeds its deadline — it can never finish in time.
    WcetExceedsDeadline {
        /// Index of the offending task.
        index: usize,
    },
}

impl fmt::Display for TaskSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskSetError::Empty => write!(f, "guest task set has no tasks"),
            TaskSetError::ZeroPeriod { index } => {
                write!(f, "guest task {index} has a zero period")
            }
            TaskSetError::ZeroWcet { index } => {
                write!(f, "guest task {index} has a zero WCET")
            }
            TaskSetError::WcetExceedsDeadline { index } => {
                write!(f, "guest task {index} has a WCET beyond its deadline")
            }
        }
    }
}

impl std::error::Error for TaskSetError {}

impl GuestTaskSet {
    /// Validates and wraps a priority-ordered task list.
    ///
    /// # Errors
    ///
    /// See [`TaskSetError`] for the rejected shapes.
    pub fn new(tasks: Vec<GuestTask>) -> Result<Self, TaskSetError> {
        if tasks.is_empty() {
            return Err(TaskSetError::Empty);
        }
        for (index, task) in tasks.iter().enumerate() {
            if task.period.is_zero() {
                return Err(TaskSetError::ZeroPeriod { index });
            }
            if task.wcet.is_zero() {
                return Err(TaskSetError::ZeroWcet { index });
            }
            if task.wcet > task.deadline {
                return Err(TaskSetError::WcetExceedsDeadline { index });
            }
        }
        Ok(GuestTaskSet { tasks })
    }

    /// The tasks, highest priority first.
    #[must_use]
    pub fn tasks(&self) -> &[GuestTask] {
        &self.tasks
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` only for the degenerate case that `new` rejects.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total processor utilization `Σ C_i/P_i`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(GuestTask::utilization).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn validates_task_shapes() {
        assert_eq!(GuestTaskSet::new(vec![]), Err(TaskSetError::Empty));
        let zero_period = GuestTask::new("t", Duration::ZERO, ms(1));
        assert!(matches!(
            GuestTaskSet::new(vec![zero_period]),
            Err(TaskSetError::ZeroPeriod { index: 0 })
        ));
        let zero_wcet = GuestTask::new("t", ms(10), Duration::ZERO);
        assert!(matches!(
            GuestTaskSet::new(vec![zero_wcet]),
            Err(TaskSetError::ZeroWcet { index: 0 })
        ));
        let hopeless = GuestTask::new("t", ms(10), ms(5)).with_deadline(ms(2));
        assert!(matches!(
            GuestTaskSet::new(vec![hopeless]),
            Err(TaskSetError::WcetExceedsDeadline { index: 0 })
        ));
    }

    #[test]
    fn defaults_are_implicit_deadline_zero_offset() {
        let task = GuestTask::new("t", ms(10), ms(2));
        assert_eq!(task.deadline, ms(10));
        assert_eq!(task.offset, Duration::ZERO);
        assert!((task.utilization() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn builders_apply() {
        let task = GuestTask::new("t", ms(10), ms(2))
            .with_offset(ms(3))
            .with_deadline(ms(7));
        assert_eq!(task.offset, ms(3));
        assert_eq!(task.deadline, ms(7));
    }

    #[test]
    fn utilization_sums() {
        let set = GuestTaskSet::new(vec![
            GuestTask::new("a", ms(10), ms(2)),
            GuestTask::new("b", ms(20), ms(5)),
        ])
        .expect("valid");
        assert!((set.utilization() - 0.45).abs() < 1e-12);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(TaskSetError::Empty.to_string().contains("no tasks"));
        assert!(TaskSetError::ZeroPeriod { index: 3 }
            .to_string()
            .contains("task 3"));
    }

    #[test]
    fn display_shows_parameters() {
        let task = GuestTask::new("ctl", ms(10), ms(2));
        assert_eq!(task.to_string(), "ctl(P=10ms, C=2ms)");
    }
}
