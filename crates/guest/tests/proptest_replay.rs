//! Cross-validation: the guest replay simulator against the hierarchical
//! supply-bound analysis. For random feasible task sets over strict TDMA
//! supply patterns, every observed response time must stay within the
//! analytic worst-case bound.

use proptest::prelude::*;

use rthv_analysis::{guest_task_wcrt, GuestTaskSpec, TdmaSupply};
use rthv_guest::{replay, GuestTask, GuestTaskSet};
use rthv_hypervisor::{ServiceInterval, ServiceKind};
use rthv_time::{Duration, Instant};

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// A TDMA-shaped availability pattern: `slot` of supply every `cycle`,
/// starting at a configurable phase.
fn tdma_supply_intervals(
    cycle: Duration,
    slot: Duration,
    phase: Duration,
    horizon: Instant,
) -> Vec<ServiceInterval> {
    let mut intervals = Vec::new();
    // The slot preceding `phase` may spill across t = 0 — include its tail,
    // otherwise the pattern's first gap exceeds cycle − slot and no longer
    // matches the TdmaSupply model.
    if phase + slot > cycle {
        let tail_end = Instant::ZERO + (phase + slot - cycle);
        intervals.push(ServiceInterval {
            start: Instant::ZERO,
            end: tail_end.min(horizon),
            kind: ServiceKind::User,
        });
    }
    let mut start = Instant::ZERO + phase;
    while start < horizon {
        intervals.push(ServiceInterval {
            start,
            end: (start + slot).min(horizon),
            kind: ServiceKind::User,
        });
        start += cycle;
    }
    intervals
}

#[derive(Debug, Clone)]
struct Case {
    cycle_ms: u64,
    slot_ms: u64,
    phase_ms: u64,
    /// (period_ms, wcet_ms) per task, rate-monotonic order enforced below.
    tasks: Vec<(u64, u64)>,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        4u64..20, // cycle
        1u64..4,  // slot (part of cycle)
        0u64..20, // phase
        prop::collection::vec((20u64..200, 1u64..4), 1..4),
    )
        .prop_map(|(cycle_extra, slot_ms, phase_ms, mut tasks)| {
            let cycle_ms = slot_ms + cycle_extra;
            tasks.sort_unstable();
            Case {
                cycle_ms,
                slot_ms,
                phase_ms: phase_ms % cycle_ms,
                tasks,
            }
        })
        .prop_filter("supply must cover the demand with slack", |case| {
            let demand: f64 = case.tasks.iter().map(|(p, c)| *c as f64 / *p as f64).sum();
            let supply = case.slot_ms as f64 / case.cycle_ms as f64;
            demand < supply * 0.7
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Observed guest response times never exceed the analytic bound.
    #[test]
    fn replay_respects_supply_bound_analysis(case in case_strategy()) {
        let cycle = ms(case.cycle_ms);
        let slot = ms(case.slot_ms);
        let horizon = Instant::ZERO + cycle * 60;
        let intervals = tdma_supply_intervals(cycle, slot, ms(case.phase_ms), horizon);

        let tasks = GuestTaskSet::new(
            case.tasks
                .iter()
                .enumerate()
                .map(|(i, (p, c))| {
                    // Deadline = period may exceed the bound; replay just
                    // reports misses, the assertion below uses the bound.
                    GuestTask::new(format!("t{i}"), ms(*p), ms(*c))
                })
                .collect(),
        )
        .expect("generated task set is valid");
        let report = replay(&tasks, &intervals, horizon);

        let supply = TdmaSupply::new(cycle, slot);
        let specs: Vec<GuestTaskSpec> = case
            .tasks
            .iter()
            .map(|(p, c)| GuestTaskSpec { wcet: ms(*c), period: ms(*p) })
            .collect();
        let bounds = guest_task_wcrt(&specs, &supply, cycle * 10_000);

        for (task_report, bound) in report.tasks.iter().zip(&bounds) {
            let bound = bound.as_ref().expect("filtered to feasible sets");
            if let Some(observed) = task_report.observed_wcrt {
                prop_assert!(
                    observed <= *bound,
                    "{}: observed {} exceeds bound {}",
                    task_report.name, observed, bound
                );
            }
        }
    }

    /// The replay never invents or loses supply: busy + idle equals the
    /// supplied time inside the horizon.
    #[test]
    fn replay_conserves_supply(case in case_strategy()) {
        let cycle = ms(case.cycle_ms);
        let slot = ms(case.slot_ms);
        let horizon = Instant::ZERO + cycle * 30;
        let intervals = tdma_supply_intervals(cycle, slot, ms(case.phase_ms), horizon);
        let tasks = GuestTaskSet::new(
            case.tasks
                .iter()
                .enumerate()
                .map(|(i, (p, c))| GuestTask::new(format!("t{i}"), ms(*p), ms(*c)))
                .collect(),
        )
        .expect("valid");
        let report = replay(&tasks, &intervals, horizon);
        let supplied: Duration = intervals.iter().map(ServiceInterval::length).sum();
        prop_assert_eq!(report.busy_time + report.idle_time, supplied);
    }
}
