//! Hypervisor configuration: cost model, partitions, IRQ sources.

use std::fmt;

use serde::{Deserialize, Serialize};

use rthv_monitor::{DeltaFunction, ShaperConfig};
use rthv_sim::EngineKind;
use rthv_time::{ClockModel, Duration};

use crate::{IrqSourceId, PartitionId, SupervisionPolicy};

/// Worst-case execution times of the hypervisor primitives, in virtual time.
///
/// These are the five constants the paper's analysis is parameterized over
/// (Sections 4–6). [`CostModel::paper_arm926ejs`] instantiates them from the
/// cycle counts reported in Section 6.2 for the 200 MHz ARM926ej-s.
///
/// # Examples
///
/// ```
/// use rthv_hypervisor::CostModel;
/// use rthv_time::Duration;
///
/// let costs = CostModel::paper_arm926ejs();
/// assert_eq!(costs.monitor_check, Duration::from_nanos(640)); // 128 cycles
/// assert_eq!(costs.context_switch, Duration::from_micros(50)); // ~10k cycles
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// `C_TH`: top handler (clear IRQ flags, push queue event).
    pub top_handler: Duration,
    /// `C_Mon`: the monitoring function called for foreign-slot IRQs
    /// (Eq. 15 adds this to the top handler when monitoring is enabled).
    pub monitor_check: Duration,
    /// `C_sched`: scheduler manipulation for an interposed bottom handler.
    pub sched_manip: Duration,
    /// `C_ctx`: one partition context switch (cache/TLB invalidation plus
    /// writeback on the paper's ARMv5 platform).
    pub context_switch: Duration,
}

impl CostModel {
    /// Cost model of the paper's evaluation platform (Section 6.2):
    /// ARM926ej-s @ 200 MHz, `gcc -O1`.
    ///
    /// * monitor check: 128 instructions → 640 ns,
    /// * scheduler manipulation: 877 instructions → 4385 ns,
    /// * context switch: ~5000 instructions for cache/TLB invalidation plus
    ///   ~5000 cycles of cache writeback → 50 µs,
    /// * top handler: the paper only says "minimal"; 400 cycles → 2 µs.
    #[must_use]
    pub fn paper_arm926ejs() -> Self {
        let clock = ClockModel::ARM926EJS_200MHZ;
        CostModel {
            top_handler: clock.cycles_to_duration(400),
            monitor_check: clock.cycles_to_duration(128),
            sched_manip: clock.cycles_to_duration(877),
            context_switch: clock.cycles_to_duration(10_000),
        }
    }

    /// A zero-overhead cost model, useful in unit tests that want pure
    /// queueing behaviour.
    #[must_use]
    pub fn zero() -> Self {
        CostModel {
            top_handler: Duration::ZERO,
            monitor_check: Duration::ZERO,
            sched_manip: Duration::ZERO,
            context_switch: Duration::ZERO,
        }
    }

    /// `C'_BH` (Eq. 13): the effective cost one interposed bottom handler of
    /// WCET `bottom_cost` imposes on the interrupted partition, including
    /// scheduler manipulation and the two extra context switches.
    #[must_use]
    pub fn effective_bottom_cost(&self, bottom_cost: Duration) -> Duration {
        bottom_cost + self.sched_manip + self.context_switch * 2
    }

    /// `C'_TH` (Eq. 15): the top handler cost when the monitoring function
    /// runs (i.e. for IRQs arriving in foreign slots under interposed mode).
    #[must_use]
    pub fn monitored_top_cost(&self) -> Duration {
        self.top_handler + self.monitor_check
    }
}

impl Default for CostModel {
    /// Defaults to [`CostModel::paper_arm926ejs`].
    fn default() -> Self {
        CostModel::paper_arm926ejs()
    }
}

/// Static description of one TDMA partition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// Human-readable name used in reports.
    pub name: String,
    /// TDMA slot length `T_i`.
    pub slot: Duration,
    /// Bound on the partition's IRQ event queue. `None` models the paper's
    /// unbounded emulated queue; `Some(n)` bounds it to `n` pending bottom
    /// handlers, with overflow resolved per
    /// [`PolicyOptions::overflow`](PolicyOptions) and counted in
    /// [`Counters`](crate::Counters) — a storm then degrades into counted
    /// losses instead of unbounded memory growth.
    pub queue_capacity: Option<usize>,
}

impl PartitionSpec {
    /// Creates a partition spec with an unbounded IRQ queue.
    #[must_use]
    pub fn new(name: impl Into<String>, slot: Duration) -> Self {
        PartitionSpec {
            name: name.into(),
            slot,
            queue_capacity: None,
        }
    }

    /// Bounds the partition's IRQ event queue (builder style).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }
}

/// How a source's pending state behaves when a new IRQ fires before the
/// previous one was processed.
///
/// The paper's Section 4 tolerates top handlers in foreign slots precisely
/// because "in most cases IRQ flags are not counting" — a masked or
/// unserviced source *loses* repeat events. [`IrqFlagSemantics::Counting`]
/// models the emulated event queue (every IRQ eventually gets a bottom
/// handler); [`IrqFlagSemantics::Flag`] models raw hardware flags, where an
/// IRQ arriving while an unserviced request of the same source is already
/// queued is coalesced into it (and thus never separately processed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum IrqFlagSemantics {
    /// Every arrival is queued individually (the hypervisor's emulated IRQ
    /// queue; the paper's evaluation setup).
    #[default]
    Counting,
    /// A non-counting hardware flag: arrivals coalesce into an already
    /// pending, not-yet-started request of the same source.
    Flag,
}

/// Static description of one interrupt source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IrqSourceSpec {
    /// Human-readable name used in reports.
    pub name: String,
    /// The partition whose bottom handler processes this IRQ.
    pub subscriber: PartitionId,
    /// `C_BH`: WCET of the bottom handler, also the enforced budget of an
    /// interposed execution window.
    pub bottom_cost: Duration,
    /// Admission shaper for interposing this source's bottom handler in
    /// foreign slots: the paper's δ⁻ monitor or a token-bucket throttler
    /// (related-work comparison). `None` means the source is never
    /// interposed (it is always delayed outside its own slot).
    pub monitor: Option<ShaperConfig>,
    /// Pending-state semantics (counting queue vs non-counting flag).
    pub flag_semantics: IrqFlagSemantics,
    /// Additional partitions that also react to this IRQ (Section 3: the
    /// top handler "pushes an event in the respective interrupt queue of
    /// each partition that has to react"). Each extra subscriber runs its
    /// own bottom handler of the same `C_BH` and yields its own completion
    /// record. Shared sources cannot be monitored — the paper notes
    /// interposing them "would be particularly complicated".
    pub extra_subscribers: Vec<PartitionId>,
}

impl IrqSourceSpec {
    /// Creates an unmonitored IRQ source (baseline behaviour).
    #[must_use]
    pub fn new(name: impl Into<String>, subscriber: PartitionId, bottom_cost: Duration) -> Self {
        IrqSourceSpec {
            name: name.into(),
            subscriber,
            bottom_cost,
            monitor: None,
            flag_semantics: IrqFlagSemantics::Counting,
            extra_subscribers: Vec::new(),
        }
    }

    /// Adds another partition that also reacts to this IRQ (builder style).
    #[must_use]
    pub fn also_subscribed_by(mut self, partition: PartitionId) -> Self {
        self.extra_subscribers.push(partition);
        self
    }

    /// All subscribers, primary first.
    pub fn subscribers(&self) -> impl Iterator<Item = PartitionId> + '_ {
        std::iter::once(self.subscriber).chain(self.extra_subscribers.iter().copied())
    }

    /// Attaches a δ⁻ monitoring condition, enabling interposed handling for
    /// this source (builder style).
    #[must_use]
    pub fn with_monitor(mut self, delta: DeltaFunction) -> Self {
        self.monitor = Some(ShaperConfig::Delta(delta));
        self
    }

    /// Attaches an arbitrary admission shaper (builder style).
    #[must_use]
    pub fn with_shaper(mut self, shaper: ShaperConfig) -> Self {
        self.monitor = Some(shaper);
        self
    }

    /// Switches the source to non-counting hardware-flag semantics
    /// (builder style): unserviced repeat IRQs coalesce and are lost.
    #[must_use]
    pub fn with_flag_semantics(mut self, flag_semantics: IrqFlagSemantics) -> Self {
        self.flag_semantics = flag_semantics;
        self
    }
}

/// How a TDMA slot boundary interacts with an open interposed window.
///
/// The paper does not spell this out; its measured Figure 6c ("no IRQ is
/// delayed") implies [`BoundaryPolicy::DeferToWindow`], which is the
/// default. [`BoundaryPolicy::AbortWindow`] is kept as an ablation: it
/// preserves strict boundary placement but demotes conformant IRQs whose
/// window straddles a boundary to delayed handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BoundaryPolicy {
    /// The rotation waits for the window to close (bounded by the enforced
    /// budget `C'_BH`, i.e. inside the Eq. 14 interference envelope).
    #[default]
    DeferToWindow,
    /// The rotation happens on time; the window is terminated and the
    /// unfinished bottom handler re-queued.
    AbortWindow,
}

/// Which timestamp the monitoring condition is evaluated on.
///
/// The paper's "monitoring condition is always satisfied" for
/// `d_min`-spaced arrivals implies [`AdmissionClock::IrqTimestamp`] (the
/// hardware timestamp timer), which is the default.
/// [`AdmissionClock::ProcessingTime`] is kept as an ablation: checking at
/// top-handler completion adds hypervisor-induced jitter that spuriously
/// denies conformant arrivals latched behind context switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AdmissionClock {
    /// The hardware IRQ timestamp (arrival time).
    #[default]
    IrqTimestamp,
    /// The (possibly latched) top-handler completion time.
    ProcessingTime,
}

/// What the top handler does when a bounded partition IRQ queue
/// ([`PartitionSpec::queue_capacity`]) is full.
///
/// Either way the event is *counted* ([`Counters::overflow_rejected`] /
/// [`Counters::overflow_dropped`]), never silently lost — the conservation
/// invariant checked by the fault-injection oracle accounts for both.
///
/// [`Counters::overflow_rejected`]: crate::Counters::overflow_rejected
/// [`Counters::overflow_dropped`]: crate::Counters::overflow_dropped
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum OverflowPolicy {
    /// The arriving event is not queued (tail drop). Preserves the oldest
    /// pending work; the default.
    #[default]
    RejectNewest,
    /// The oldest queued event is discarded to make room (head drop).
    /// Favours fresh events under sustained overload.
    DropOldest,
}

/// Which simulation engine backs the machine's event queue.
///
/// Both engines are **observation-equivalent**: identical event streams,
/// identical [`state_hash`](crate::Machine::state_hash) at every point —
/// the cross-engine differential suite in `rthv-faults` pins this. The
/// choice therefore only affects speed, and is deliberately *excluded*
/// from machine state hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EngineChoice {
    /// Resolve from the `RTHV_ENGINE` environment variable (`"heap"` or
    /// `"wheel"`), falling back to the heap engine. This is the default so
    /// the CI harness can sweep the whole tier-1 suite and every benchmark
    /// binary across engines without per-call-site plumbing.
    #[default]
    Auto,
    /// Binary-heap reference engine (`O(log n)`, trivially correct).
    Heap,
    /// Hierarchical timing wheel (`O(1)` amortised, closed-form
    /// fast-forward; levels sized from the TDMA cycle).
    Wheel,
}

impl EngineChoice {
    /// The concrete engine this choice selects, consulting `RTHV_ENGINE`
    /// (read once per process) for [`EngineChoice::Auto`].
    ///
    /// # Errors
    ///
    /// [`EngineSelectError`] when `RTHV_ENGINE` is set to something other
    /// than `"heap"` or `"wheel"`. A typo used to silently fall back to
    /// the heap engine — which made an engine-sweeping CI matrix *look*
    /// like it covered the wheel while actually running heap twice.
    pub fn try_resolve(self) -> Result<EngineKind, EngineSelectError> {
        match self {
            EngineChoice::Heap => Ok(EngineKind::Heap),
            EngineChoice::Wheel => Ok(EngineKind::Wheel),
            EngineChoice::Auto => ENV_ENGINE
                .get_or_init(|| match std::env::var("RTHV_ENGINE") {
                    Err(_) => Ok(EngineKind::Heap),
                    Ok(name) => EngineKind::parse(&name).ok_or(EngineSelectError { value: name }),
                })
                .clone(),
        }
    }
}

/// `RTHV_ENGINE` named no known engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSelectError {
    /// The rejected variable value.
    pub value: String,
}

impl fmt::Display for EngineSelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RTHV_ENGINE={:?} names no event engine (expected \"heap\" or \"wheel\")",
            self.value
        )
    }
}

impl std::error::Error for EngineSelectError {}

/// Process-wide cache of the `RTHV_ENGINE` resolution: the selection must
/// be stable for a whole run even if the environment mutates mid-process.
/// The rejection is cached too — a bad value fails every machine build,
/// not just the first.
static ENV_ENGINE: std::sync::OnceLock<Result<EngineKind, EngineSelectError>> =
    std::sync::OnceLock::new();

/// Tunable semantic choices of the modified top handler, separate from the
/// quantitative [`CostModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PolicyOptions {
    /// Boundary-vs-window interaction.
    pub boundary: BoundaryPolicy,
    /// Timestamp the δ⁻ monitor checks against.
    pub admission_clock: AdmissionClock,
    /// Behaviour of full bounded partition IRQ queues.
    pub overflow: OverflowPolicy,
    /// Runtime health supervision of monitored IRQ sources (quarantine,
    /// hysteresis recovery, degraded-mode budgets). `None` — the default —
    /// disables supervision; the machine then behaves exactly as before.
    pub supervision: Option<SupervisionPolicy>,
    /// Simulation engine behind the event queue. Performance-only: both
    /// engines produce byte-identical runs.
    pub engine: EngineChoice,
}

/// Which top handler variant the hypervisor runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IrqHandlingMode {
    /// Figure 4a: foreign-slot IRQs are always queued until the subscriber's
    /// own slot ("delayed IRQ handling").
    Baseline,
    /// Figure 4b: foreign-slot IRQs of monitored sources may be interposed
    /// when the monitoring condition admits them.
    Interposed,
}

impl fmt::Display for IrqHandlingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrqHandlingMode::Baseline => write!(f, "baseline"),
            IrqHandlingMode::Interposed => write!(f, "interposed"),
        }
    }
}

/// One window of an explicit ARINC653-style TDMA layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotSpec {
    /// The partition executing in this window.
    pub owner: PartitionId,
    /// Window length.
    pub length: Duration,
}

impl SlotSpec {
    /// Creates a window.
    #[must_use]
    pub fn new(owner: PartitionId, length: Duration) -> Self {
        SlotSpec { owner, length }
    }
}

/// Complete static configuration of the simulated hypervisor platform.
///
/// Validated by [`HypervisorConfig::validate`], which the
/// [`Machine`](crate::Machine) constructor runs ([C-VALIDATE]).
///
/// [C-VALIDATE]: https://rust-lang.github.io/api-guidelines/dependability.html
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HypervisorConfig {
    /// The TDMA partitions, in slot order.
    pub partitions: Vec<PartitionSpec>,
    /// The interrupt sources.
    pub sources: Vec<IrqSourceSpec>,
    /// Hypervisor primitive WCETs.
    pub costs: CostModel,
    /// Top handler variant.
    pub mode: IrqHandlingMode,
    /// Semantic policy choices (defaults reproduce the paper's measured
    /// behaviour; alternatives exist for ablation).
    pub policies: PolicyOptions,
    /// Optional explicit slot layout (ARINC653-style: a partition may own
    /// several windows per major frame). `None` uses the classic
    /// one-slot-per-partition rotation in declaration order; when set, the
    /// per-partition `PartitionSpec::slot` lengths are ignored in favour of
    /// the window lengths.
    pub windows: Option<Vec<SlotSpec>>,
}

/// Error returned by [`HypervisorConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The partition list was empty.
    NoPartitions,
    /// A partition's slot length was zero.
    ZeroSlot {
        /// The offending partition.
        partition: PartitionId,
    },
    /// A partition's bounded IRQ queue has capacity zero (it could never
    /// accept an event, so every IRQ would be lost by construction).
    ZeroQueueCapacity {
        /// The offending partition.
        partition: PartitionId,
    },
    /// An IRQ source subscribes to a partition index that does not exist.
    UnknownSubscriber {
        /// The offending source.
        source: IrqSourceId,
        /// The out-of-range partition id.
        subscriber: PartitionId,
    },
    /// An IRQ source's bottom handler WCET was zero.
    ZeroBottomCost {
        /// The offending source.
        source: IrqSourceId,
    },
    /// A shared (multi-subscriber) IRQ source carries a monitor — the paper
    /// excludes interposing shared IRQs ("particularly complicated").
    SharedSourceMonitored {
        /// The offending source.
        source: IrqSourceId,
    },
    /// A source lists the same subscriber twice.
    DuplicateSubscriber {
        /// The offending source.
        source: IrqSourceId,
        /// The duplicated partition.
        subscriber: PartitionId,
    },
    /// The explicit window layout is empty, references an unknown
    /// partition, contains a zero-length window, or starves a partition
    /// (every partition must own at least one window).
    InvalidWindowLayout {
        /// Human-readable reason.
        reason: String,
    },
    /// The supervision policy has inconsistent thresholds (zero scores or
    /// window, quarantine threshold not above the probation threshold, or
    /// a zero shrink divisor / watchdog factor).
    InvalidSupervision {
        /// Human-readable reason.
        reason: String,
    },
    /// [`EngineChoice::Auto`] found `RTHV_ENGINE` set to an unknown
    /// engine name. Surfaced as a config error (instead of a silent heap
    /// fallback) so a typo in an engine-sweeping harness fails loudly.
    UnknownEngine {
        /// The rejected `RTHV_ENGINE` value.
        value: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoPartitions => write!(f, "configuration has no partitions"),
            ConfigError::ZeroSlot { partition } => {
                write!(f, "partition {partition} has a zero-length TDMA slot")
            }
            ConfigError::ZeroQueueCapacity { partition } => {
                write!(f, "partition {partition} has a zero-capacity IRQ queue")
            }
            ConfigError::UnknownSubscriber { source, subscriber } => write!(
                f,
                "IRQ source {source} subscribes to unknown partition {subscriber}"
            ),
            ConfigError::ZeroBottomCost { source } => {
                write!(f, "IRQ source {source} has a zero bottom-handler WCET")
            }
            ConfigError::SharedSourceMonitored { source } => write!(
                f,
                "shared IRQ source {source} cannot be monitored (interposing shared \
                 IRQs is excluded by the paper)"
            ),
            ConfigError::DuplicateSubscriber { source, subscriber } => write!(
                f,
                "IRQ source {source} lists subscriber {subscriber} more than once"
            ),
            ConfigError::InvalidWindowLayout { reason } => {
                write!(f, "invalid TDMA window layout: {reason}")
            }
            ConfigError::InvalidSupervision { reason } => {
                write!(f, "invalid supervision policy: {reason}")
            }
            ConfigError::UnknownEngine { value } => write!(
                f,
                "RTHV_ENGINE={value:?} names no event engine (expected \"heap\" or \"wheel\")"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl HypervisorConfig {
    /// Checks the structural invariants of the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found; see its variants for the
    /// individual conditions.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.partitions.is_empty() {
            return Err(ConfigError::NoPartitions);
        }
        for (i, partition) in self.partitions.iter().enumerate() {
            if partition.slot.is_zero() {
                return Err(ConfigError::ZeroSlot {
                    partition: PartitionId::new(i as u32),
                });
            }
            if partition.queue_capacity == Some(0) {
                return Err(ConfigError::ZeroQueueCapacity {
                    partition: PartitionId::new(i as u32),
                });
            }
        }
        for (i, source) in self.sources.iter().enumerate() {
            let id = IrqSourceId::new(i as u32);
            let mut seen = Vec::new();
            for subscriber in source.subscribers() {
                if subscriber.index() >= self.partitions.len() {
                    return Err(ConfigError::UnknownSubscriber {
                        source: id,
                        subscriber,
                    });
                }
                if seen.contains(&subscriber) {
                    return Err(ConfigError::DuplicateSubscriber {
                        source: id,
                        subscriber,
                    });
                }
                seen.push(subscriber);
            }
            if source.bottom_cost.is_zero() {
                return Err(ConfigError::ZeroBottomCost { source: id });
            }
            if !source.extra_subscribers.is_empty() && source.monitor.is_some() {
                return Err(ConfigError::SharedSourceMonitored { source: id });
            }
        }
        if let Some(windows) = &self.windows {
            if windows.is_empty() {
                return Err(ConfigError::InvalidWindowLayout {
                    reason: "no windows".to_owned(),
                });
            }
            let mut covered = vec![false; self.partitions.len()];
            for window in windows {
                if window.owner.index() >= self.partitions.len() {
                    return Err(ConfigError::InvalidWindowLayout {
                        reason: format!("unknown partition {}", window.owner),
                    });
                }
                if window.length.is_zero() {
                    return Err(ConfigError::InvalidWindowLayout {
                        reason: format!("zero-length window for {}", window.owner),
                    });
                }
                covered[window.owner.index()] = true;
            }
            if let Some(missing) = covered.iter().position(|&c| !c) {
                return Err(ConfigError::InvalidWindowLayout {
                    reason: format!("partition P{missing} owns no window"),
                });
            }
        }
        if let Some(supervision) = &self.policies.supervision {
            let reason = if supervision.probation_score == 0 {
                Some("probation score must be positive")
            } else if supervision.quarantine_score <= supervision.probation_score {
                Some("quarantine score must exceed the probation score")
            } else if supervision.probation_window.is_zero() {
                Some("probation window must be positive")
            } else if supervision.budget_shrink_divisor == 0 {
                Some("budget shrink divisor must be positive")
            } else if supervision.watchdog_factor == 0 {
                Some("watchdog factor must be positive")
            } else {
                None
            };
            if let Some(reason) = reason {
                return Err(ConfigError::InvalidSupervision {
                    reason: reason.to_owned(),
                });
            }
        }
        Ok(())
    }

    /// Sum of all slot lengths: the TDMA cycle length `T_TDMA`.
    #[must_use]
    pub fn tdma_cycle(&self) -> Duration {
        match &self.windows {
            Some(windows) => windows.iter().map(|w| w.length).sum(),
            None => self.partitions.iter().map(|p| p.slot).sum(),
        }
    }

    /// The slot layout as `(owner, length)` windows (explicit layout when
    /// set, otherwise the classic one-slot-per-partition rotation).
    #[must_use]
    pub fn slot_windows(&self) -> Vec<(PartitionId, Duration)> {
        match &self.windows {
            Some(windows) => windows.iter().map(|w| (w.owner, w.length)).collect(),
            None => self
                .partitions
                .iter()
                .enumerate()
                .map(|(i, p)| (PartitionId::new(i as u32), p.slot))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_config() -> HypervisorConfig {
        HypervisorConfig {
            partitions: vec![
                PartitionSpec::new("app1", Duration::from_micros(6_000)),
                PartitionSpec::new("app2", Duration::from_micros(6_000)),
                PartitionSpec::new("housekeeping", Duration::from_micros(2_000)),
            ],
            sources: vec![IrqSourceSpec::new(
                "timer",
                PartitionId::new(1),
                Duration::from_micros(30),
            )],
            costs: CostModel::paper_arm926ejs(),
            mode: IrqHandlingMode::Baseline,
            policies: PolicyOptions::default(),
            windows: None,
        }
    }

    #[test]
    fn paper_costs_match_section_6_2() {
        let costs = CostModel::paper_arm926ejs();
        assert_eq!(costs.monitor_check, Duration::from_nanos(640));
        assert_eq!(costs.sched_manip, Duration::from_nanos(4_385));
        assert_eq!(costs.context_switch, Duration::from_micros(50));
        assert_eq!(costs, CostModel::default());
    }

    #[test]
    fn effective_bottom_cost_is_eq_13() {
        let costs = CostModel::paper_arm926ejs();
        let cbh = Duration::from_micros(30);
        assert_eq!(
            costs.effective_bottom_cost(cbh),
            cbh + costs.sched_manip + costs.context_switch * 2
        );
    }

    #[test]
    fn monitored_top_cost_is_eq_15() {
        let costs = CostModel::paper_arm926ejs();
        assert_eq!(
            costs.monitored_top_cost(),
            costs.top_handler + costs.monitor_check
        );
    }

    #[test]
    fn valid_config_passes() {
        assert_eq!(valid_config().validate(), Ok(()));
    }

    #[test]
    fn tdma_cycle_sums_slots() {
        assert_eq!(valid_config().tdma_cycle(), Duration::from_millis(14));
    }

    #[test]
    fn empty_partitions_rejected() {
        let mut cfg = valid_config();
        cfg.partitions.clear();
        assert_eq!(cfg.validate(), Err(ConfigError::NoPartitions));
    }

    #[test]
    fn zero_slot_rejected() {
        let mut cfg = valid_config();
        cfg.partitions[1].slot = Duration::ZERO;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ZeroSlot {
                partition: PartitionId::new(1)
            })
        );
    }

    #[test]
    fn unknown_subscriber_rejected() {
        let mut cfg = valid_config();
        cfg.sources[0].subscriber = PartitionId::new(9);
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, ConfigError::UnknownSubscriber { .. }));
        assert!(err.to_string().contains("unknown partition P9"));
    }

    #[test]
    fn zero_queue_capacity_rejected() {
        let mut cfg = valid_config();
        cfg.partitions[2].queue_capacity = Some(0);
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ZeroQueueCapacity {
                partition: PartitionId::new(2)
            })
        );
        cfg.partitions[2].queue_capacity = Some(1);
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn queue_capacity_builder_sets_bound() {
        let spec = PartitionSpec::new("app", Duration::from_millis(6)).with_queue_capacity(4);
        assert_eq!(spec.queue_capacity, Some(4));
    }

    #[test]
    fn zero_bottom_cost_rejected() {
        let mut cfg = valid_config();
        cfg.sources[0].bottom_cost = Duration::ZERO;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::ZeroBottomCost { .. })
        ));
    }

    #[test]
    fn with_monitor_enables_interposition_config() {
        let delta = DeltaFunction::from_dmin(Duration::from_micros(300)).expect("valid");
        let spec = IrqSourceSpec::new("can", PartitionId::new(0), Duration::from_micros(10))
            .with_monitor(delta.clone());
        assert_eq!(spec.monitor, Some(ShaperConfig::Delta(delta)));
    }

    #[test]
    fn mode_display() {
        assert_eq!(IrqHandlingMode::Baseline.to_string(), "baseline");
        assert_eq!(IrqHandlingMode::Interposed.to_string(), "interposed");
    }

    #[test]
    fn pinned_engine_choices_always_resolve() {
        // Only Auto consults RTHV_ENGINE (process-global, exercised end to
        // end by the campaign binaries under the CI engine matrix); the
        // pinned choices must never fail regardless of the environment.
        assert_eq!(EngineChoice::Heap.try_resolve(), Ok(EngineKind::Heap));
        assert_eq!(EngineChoice::Wheel.try_resolve(), Ok(EngineKind::Wheel));
    }

    #[test]
    fn unknown_engine_errors_name_the_offender() {
        let err = EngineSelectError {
            value: "whel".to_owned(),
        };
        assert!(err.to_string().contains("\"whel\""));
        let config = ConfigError::UnknownEngine {
            value: "whel".to_owned(),
        };
        assert!(config.to_string().contains("RTHV_ENGINE"));
    }
}
