//! Identifier newtypes for partitions and IRQ sources.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of an application partition in the hypervisor configuration.
///
/// # Examples
///
/// ```
/// use rthv_hypervisor::PartitionId;
///
/// let p = PartitionId::new(2);
/// assert_eq!(p.index(), 2);
/// assert_eq!(p.to_string(), "P2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PartitionId(u32);

impl PartitionId {
    /// Creates a partition id from its configuration index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        PartitionId(index)
    }

    /// The configuration index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Index of an interrupt source in the hypervisor configuration.
///
/// # Examples
///
/// ```
/// use rthv_hypervisor::IrqSourceId;
///
/// let irq = IrqSourceId::new(0);
/// assert_eq!(irq.to_string(), "IRQ0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct IrqSourceId(u32);

impl IrqSourceId {
    /// Creates an IRQ source id from its configuration index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        IrqSourceId(index)
    }

    /// The configuration index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for IrqSourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IRQ{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_index() {
        assert_eq!(PartitionId::new(3).index(), 3);
        assert_eq!(IrqSourceId::new(7).index(), 7);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(PartitionId::new(0) < PartitionId::new(1));
        assert!(IrqSourceId::new(1) < IrqSourceId::new(2));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(PartitionId::new(0).to_string(), "P0");
        assert_eq!(IrqSourceId::new(12).to_string(), "IRQ12");
    }
}
