//! TDMA real-time hypervisor platform model — baseline and interposed
//! interrupt handling.
//!
//! This crate is the executable substrate of the DAC'14 reproduction: a
//! deterministic simulation of the paper's uC/OS-MMU-style hypervisor on a
//! single CPU. It models
//!
//! * **TDMA partition scheduling** ([`TdmaSchedule`]) with per-slot context
//!   switches,
//! * **split interrupt handling**: top handlers in hypervisor context push
//!   events into per-partition IRQ queues; bottom handlers execute at
//!   partition level in FIFO order,
//! * the paper's **modified top handler** ([`IrqHandlingMode::Interposed`]):
//!   foreign-slot IRQs of monitored sources may run their bottom handler
//!   immediately inside an enforced, budgeted *interposed window* when the
//!   δ⁻ monitor admits them,
//! * an explicit **cost model** ([`CostModel`]) charging `C_TH`, `C_Mon`,
//!   `C_sched` and `C_ctx` along exactly the control paths of the paper's
//!   Figures 4a/4b.
//!
//! The main entry point is [`Machine`]; see its docs for a runnable example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod ids;
mod machine;
mod platform;
mod record;
mod schedule;
mod supervise;
mod timeline;

pub use config::{
    AdmissionClock, BoundaryPolicy, ConfigError, CostModel, EngineChoice, EngineSelectError,
    HypervisorConfig, IrqFlagSemantics, IrqHandlingMode, IrqSourceSpec, OverflowPolicy,
    PartitionSpec, PolicyOptions, SlotSpec,
};
pub use ids::{IrqSourceId, PartitionId};
pub use machine::{Machine, MachineError, MachineSnapshot, RunReport, ScheduleIrqError};
pub use platform::{
    CoreCounters, CoreFault, FailoverPolicy, FallbackRoute, MultiMachine, MultiRunReport,
    MultiSnapshot, Platform, PlatformError, PlatformScheduleError, PlatformSource, RerouteBudget,
    ShedReason, ShedRecord, StepChoice, StepKind, StepSelectError,
};
pub use record::{
    AdmissionRecord, Counters, HandlingClass, IrqCompletion, PartitionService, ServiceInterval,
    ServiceKind, Span, TraceRecorder,
};
pub use rthv_sim::{EngineKind, EngineStats};
pub use schedule::TdmaSchedule;
pub use supervise::{
    HealthSignal, HealthState, HealthTracker, HealthTransition, SupervisionEvent,
    SupervisionEventKind, SupervisionPolicy, SupervisionReport, Supervisor, TransitionCause,
};
pub use timeline::render_timeline;
