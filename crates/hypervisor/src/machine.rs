//! The simulated platform: a single CPU executing partitions under TDMA
//! control, with hypervisor interrupt handling.
//!
//! # Execution model
//!
//! The CPU is always doing exactly one of:
//!
//! * **partition-level work** — the active partition's bottom handlers
//!   (front of its IRQ queue, FIFO) or, when the queue is empty, its
//!   user-level task. Partition-level work is preemptible by IRQs and by
//!   TDMA slot boundaries.
//! * **hypervisor work** — top handlers (incl. the monitoring function),
//!   scheduler manipulation and context switches. Hypervisor work runs with
//!   interrupts latched: IRQs arriving inside it are queued and their top
//!   handlers run back-to-back at the end of the current block; a slot
//!   boundary inside it is deferred to the end of the block.
//!
//! An **interposed execution window** (the paper's contribution) is opened
//! when the modified top handler's monitoring function admits a foreign-slot
//! IRQ: the hypervisor charges `C_sched + C_ctx`, the subscriber partition
//! runs its queue front for at most the window budget (`C_BH` of the
//! admitted source), and a final `C_ctx` returns to the interrupted
//! partition. A TDMA boundary arriving during a window defers the rotation
//! until the window closes — the deferral is bounded by the enforced window
//! budget, so it stays inside the Eq. 14 interference envelope.

use std::collections::VecDeque;
use std::mem;

use rthv_monitor::{Admission, MonitorStats, Shaper, ShaperConfig};
use rthv_obs::{MetricsHub, ObsConfig, SourceObs};
use rthv_sim::{EngineKind, EngineQueue, EngineStats, EventId};
use rthv_time::{Duration, Instant};

use crate::{
    AdmissionClock, AdmissionRecord, BoundaryPolicy, ConfigError, Counters, HandlingClass,
    HealthSignal, HealthState, HypervisorConfig, IrqCompletion, IrqHandlingMode, IrqSourceId,
    OverflowPolicy, PartitionId, ServiceInterval, ServiceKind, Span, SupervisionEventKind,
    SupervisionReport, Supervisor, TdmaSchedule, TraceRecorder,
};

/// Events driving the machine.
#[derive(Debug, Clone)]
enum Event {
    /// A hardware IRQ fires.
    Arrival {
        source: IrqSourceId,
        seq: u64,
        /// Bottom-handler work this arrival demands. Normally the source's
        /// declared `C_BH`; fault injection schedules overrunning (or
        /// non-yielding) work through
        /// [`Machine::schedule_irq_with_work`]. The *enforced* interposition
        /// budget stays the declared `C_BH` regardless.
        work: Duration,
    },
    /// The current hypervisor block completes.
    HvEnd,
    /// The current partition-level bottom-handler segment ends (completion
    /// or interposition-budget expiry, whichever was scheduled).
    SegEnd,
    /// A TDMA slot boundary.
    Boundary { index: u64 },
}

/// What to do when the current hypervisor block finishes.
#[derive(Debug, Clone)]
enum HvCont {
    /// Top handler (and, in interposed mode for foreign IRQs, the monitoring
    /// function) completed.
    TopHandler {
        source: IrqSourceId,
        seq: u64,
        arrival: Instant,
        work: Duration,
    },
    /// Scheduler manipulation + context switch into the subscriber finished;
    /// open the interposed window.
    EnterInterposed {
        partition: PartitionId,
        budget: Duration,
        /// The admitted source (budget-clip attribution for supervision).
        source: IrqSourceId,
        /// Whether `budget` was shrunk by supervision's degraded mode —
        /// clips under a shrunk budget are expected and carry no penalty.
        shrunk: bool,
    },
    /// Context switch back from an interposed window finished.
    ExitInterposed,
    /// TDMA context switch finished; the new slot begins.
    SlotSwitch { slot: u64 },
}

/// Current partition-level activity (only meaningful while no hypervisor
/// block runs).
#[derive(Debug, Default, Clone)]
enum Activity {
    /// CPU is inside a hypervisor block (or between dispatch steps).
    #[default]
    None,
    /// The active partition's user-level task runs.
    User {
        partition: PartitionId,
        since: Instant,
    },
    /// The active partition processes its IRQ-queue front.
    Bottom {
        partition: PartitionId,
        since: Instant,
        end_event: EventId,
    },
}

/// A running hypervisor block: its continuation and start time (for exact
/// hypervisor-time accounting at block end).
#[derive(Debug, Clone)]
struct HvBlock {
    cont: HvCont,
    started: Instant,
}

/// An open interposed execution window.
#[derive(Debug, Clone, Copy)]
struct InterposedWindow {
    partition: PartitionId,
    opened: Instant,
    budget_end: Instant,
    /// The admitted source (budget-clip attribution for supervision).
    source: IrqSourceId,
    /// Whether the enforced budget was shrunk by supervision.
    shrunk: bool,
}

/// An IRQ that fired while the hypervisor had interrupts latched.
#[derive(Debug, Clone, Copy)]
struct LatchedIrq {
    source: IrqSourceId,
    seq: u64,
    arrival: Instant,
    work: Duration,
}

/// A queued bottom-handler request (the paper's per-partition IRQ event
/// queue of Figure 2).
#[derive(Debug, Clone, Copy)]
struct PendingIrq {
    source: IrqSourceId,
    seq: u64,
    arrival: Instant,
    /// Total bottom-handler work this request demands.
    work: Duration,
    /// Bottom-handler work left to execute.
    remaining: Duration,
}

/// Per-partition run-time state.
#[derive(Debug, Default, Clone)]
struct PartitionRt {
    queue: VecDeque<PendingIrq>,
}

/// Final result of a simulation run; returned by [`Machine::finish`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-IRQ completion records.
    pub recorder: TraceRecorder,
    /// Global counters (context switches, service accounting, …).
    pub counters: Counters,
    /// The virtual time at which the run was finalized.
    pub end: Instant,
    /// Final monitor statistics per IRQ source (`None` for unmonitored
    /// sources).
    pub monitor_stats: Vec<Option<MonitorStats>>,
    /// Admission timestamps of every interposed window, in order. The δ⁻
    /// conformance of this stream is what sufficient temporal independence
    /// rests on (Eq. 14).
    pub window_openings: Vec<Instant>,
    /// Every admission-monitor decision, in decision order. The admitted
    /// sub-stream's `check_at` timestamps are the exact stream the δ⁻
    /// condition constrains — the fault-injection oracle replays this.
    pub admissions: Vec<AdmissionRecord>,
    /// Bottom-handler completions still outstanding at the end of the run
    /// (scheduled work that never got processor time before `end`).
    pub outstanding: u64,
    /// First internal-invariant violation the machine detected, if any. A
    /// healthy run reports `None`; a `Some` means the run halted early and
    /// its records cover only the prefix up to the defect.
    pub defect: Option<MachineError>,
    /// Per-partition service intervals, if
    /// [`Machine::enable_service_trace`] was called (indexed by partition).
    pub service_intervals: Option<Vec<Vec<ServiceInterval>>>,
    /// Hypervisor block spans, if tracing was enabled.
    pub hv_spans: Option<Vec<Span>>,
    /// Interposed window spans (open to close), if tracing was enabled.
    pub window_spans: Option<Vec<Span>>,
    /// Health-supervision outcome (signal/transition log, final states,
    /// per-partition penalty ledger) when
    /// [`PolicyOptions::supervision`](crate::PolicyOptions) was enabled.
    pub supervision: Option<SupervisionReport>,
}

/// The simulated hypervisor platform.
///
/// Construct with a validated [`HypervisorConfig`], feed IRQ arrival traces
/// with [`schedule_irq_trace`](Machine::schedule_irq_trace), drive virtual
/// time with [`run_until`](Machine::run_until) or
/// [`run_until_complete`](Machine::run_until_complete), then harvest the
/// [`RunReport`] with [`finish`](Machine::finish).
///
/// # Examples
///
/// ```
/// use rthv_hypervisor::{
///     CostModel, HypervisorConfig, IrqHandlingMode, IrqSourceSpec, Machine,
///     PartitionId, PartitionSpec,
/// };
/// use rthv_time::{Duration, Instant};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = HypervisorConfig {
///     partitions: vec![
///         PartitionSpec::new("app1", Duration::from_micros(6_000)),
///         PartitionSpec::new("app2", Duration::from_micros(6_000)),
///     ],
///     sources: vec![IrqSourceSpec::new(
///         "timer",
///         PartitionId::new(1),
///         Duration::from_micros(30),
///     )],
///     costs: CostModel::paper_arm926ejs(),
///     mode: IrqHandlingMode::Baseline,
///     policies: Default::default(),
///     windows: None,
/// };
/// let mut machine = Machine::new(config)?;
/// machine.schedule_irq_trace(
///     rthv_hypervisor::IrqSourceId::new(0),
///     &[Instant::from_micros(100), Instant::from_micros(7_000)],
/// )?;
/// machine.run_until_complete(Instant::from_micros(100_000));
/// let report = machine.finish();
/// assert_eq!(report.recorder.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Machine {
    config: HypervisorConfig,
    schedule: TdmaSchedule,
    queue: EngineQueue<Event>,
    /// The running hypervisor block, if any.
    hv: Option<HvBlock>,
    activity: Activity,
    window: Option<InterposedWindow>,
    /// Latest slot index whose boundary passed while the hypervisor was busy.
    pending_boundary: Option<u64>,
    latched: VecDeque<LatchedIrq>,
    current_slot: u64,
    partitions: Vec<PartitionRt>,
    monitors: Vec<Option<Shaper>>,
    /// Runtime health supervision, when enabled by
    /// [`PolicyOptions::supervision`](crate::PolicyOptions).
    supervisor: Option<Supervisor>,
    recorder: TraceRecorder,
    counters: Counters,
    /// Per-source next sequence number.
    next_seq: Vec<u64>,
    /// Bottom-handler completions still expected (one per subscriber per
    /// scheduled arrival).
    expected_completions: u64,
    window_openings: Vec<Instant>,
    admissions: Vec<AdmissionRecord>,
    /// First detected internal-invariant violation; halts the run loops.
    defect: Option<MachineError>,
    /// Per-partition service intervals, populated when tracing is enabled.
    service_trace: Option<Vec<Vec<ServiceInterval>>>,
    /// Hypervisor block spans, populated when tracing is enabled.
    hv_trace: Option<Vec<Span>>,
    /// Interposed window spans, populated when tracing is enabled.
    window_trace: Option<Vec<Span>>,
    /// Observability hub (counters, latency histograms, headroom gauges,
    /// flight recorder), when enabled by
    /// [`enable_metrics`](Machine::enable_metrics). Pure observation: it
    /// never feeds back into any decision, so an instrumented run is
    /// byte-identical to a bare one.
    metrics: Option<MetricsHub>,
    /// Supervision-event watermark for the flight recorder: how many
    /// entries of the supervisor's event log have already been tailed into
    /// the metrics hub. Observability-only state (excluded from
    /// [`state_hash`](Machine::state_hash) alongside the hub itself).
    obs_supervision_seen: usize,
}

impl Machine {
    /// Builds a machine for the given configuration.
    ///
    /// The first TDMA slot (partition 0) starts immediately at
    /// [`Instant::ZERO`] without an initial context switch.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from
    /// [`HypervisorConfig::validate`](HypervisorConfig::validate).
    pub fn new(config: HypervisorConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let schedule = TdmaSchedule::from_windows(&config.slot_windows());
        let monitors: Vec<Option<Shaper>> = config
            .sources
            .iter()
            .map(|s| s.monitor.as_ref().map(Shaper::from_config))
            .collect();
        // Supervision covers exactly the monitored sources: unmonitored
        // sources are never interposed, so there is nothing to demote.
        let supervisor = config.policies.supervision.map(|policy| {
            let mut supervisor =
                Supervisor::new(policy, config.sources.len(), config.partitions.len());
            for (i, shaper) in monitors.iter().enumerate() {
                if let Some(shaper) = shaper {
                    supervisor.track(i, config.sources[i].subscriber.index(), shaper.watch());
                }
            }
            supervisor
        });
        // The engine is a performance choice only: both kinds produce
        // byte-identical runs (pinned by the cross-engine differential
        // suite), so the selection is config, not hashed state. The wheel's
        // level geometry is sized from the TDMA cycle so a full hypervisor
        // cycle fits in its level-1 rotation.
        let engine = config
            .policies
            .engine
            .try_resolve()
            .map_err(|e| ConfigError::UnknownEngine { value: e.value })?;
        let mut queue = EngineQueue::new(engine, schedule.cycle());
        // A fresh queue is at time zero, so the relative form cannot fail.
        queue.schedule_in(
            schedule.boundary_time(1).duration_since(Instant::ZERO),
            Event::Boundary { index: 1 },
        );
        let partition_count = config.partitions.len();
        let source_count = config.sources.len();
        Ok(Machine {
            schedule,
            queue,
            hv: None,
            activity: Activity::User {
                partition: PartitionId::new(0),
                since: Instant::ZERO,
            },
            window: None,
            pending_boundary: None,
            latched: VecDeque::new(),
            current_slot: 0,
            partitions: (0..partition_count)
                .map(|_| PartitionRt::default())
                .collect(),
            monitors,
            supervisor,
            recorder: TraceRecorder::new(),
            counters: Counters::new(partition_count),
            next_seq: vec![0; source_count],
            expected_completions: 0,
            window_openings: Vec::new(),
            admissions: Vec::new(),
            defect: None,
            service_trace: None,
            hv_trace: None,
            window_trace: None,
            metrics: None,
            obs_supervision_seen: 0,
            config,
        })
    }

    /// The machine's configuration.
    #[must_use]
    pub fn config(&self) -> &HypervisorConfig {
        &self.config
    }

    /// The derived TDMA schedule.
    #[must_use]
    pub fn schedule(&self) -> &TdmaSchedule {
        &self.schedule
    }

    /// Current virtual time (timestamp of the last processed event).
    #[must_use]
    pub fn now(&self) -> Instant {
        self.queue.now()
    }

    /// Completion records collected so far.
    #[must_use]
    pub fn recorder(&self) -> &TraceRecorder {
        &self.recorder
    }

    /// Counters collected so far.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Monitor statistics of one source, if it is monitored.
    ///
    /// # Panics
    ///
    /// Panics if the source index is out of range.
    #[must_use]
    pub fn monitor_stats(&self, source: IrqSourceId) -> Option<MonitorStats> {
        self.monitors[source.index()].as_ref().map(Shaper::stats)
    }

    /// Current supervision health state of one source — `None` when
    /// supervision is disabled or the source is unmonitored.
    ///
    /// # Panics
    ///
    /// Panics if the source index is out of range.
    #[must_use]
    pub fn supervision_state(&self, source: IrqSourceId) -> Option<HealthState> {
        assert!(source.index() < self.config.sources.len(), "unknown source");
        self.supervisor
            .as_ref()
            .and_then(|s| s.state(source.index()))
    }

    /// Enables per-partition service-interval recording (off by default —
    /// long runs would accumulate many intervals). Must be called before
    /// any partition-level execution is to be captured.
    ///
    /// The recorded intervals drive the guest-OS replay layer
    /// (`rthv-guest`), which schedules a guest task set over exactly the
    /// processor time the partition actually received.
    pub fn enable_service_trace(&mut self) {
        if self.service_trace.is_none() {
            self.service_trace = Some(vec![Vec::new(); self.config.partitions.len()]);
            self.hv_trace = Some(Vec::new());
            self.window_trace = Some(Vec::new());
        }
    }

    /// Enables the observability hub: scalar counters, per-source latency
    /// histograms, per-source bound-headroom gauges and the structured
    /// flight recorder (off by default).
    ///
    /// Each source's gauge compares the densest admission window observed
    /// against the Eq. 13–16 budget `η⁺(Δt) · C'_BH`, with `Δt` the
    /// configured gauge window, `η⁺` derived from the source's enforced
    /// shaper and `C'_BH = C_BH + C_sched + 2·C_ctx` from the cost model.
    /// Unmonitored sources get an unbudgeted gauge (observation only).
    ///
    /// The hub is pure observation — no machine decision reads it — so a
    /// run with metrics enabled is byte-identical (state hashes, reports)
    /// to the same run without. Calling this again replaces the hub with a
    /// fresh one of the new geometry.
    pub fn enable_metrics(&mut self, config: ObsConfig) {
        let sources: Vec<SourceObs> = self
            .config
            .sources
            .iter()
            .enumerate()
            .map(|(i, spec)| SourceObs {
                budget_events: self.monitors[i]
                    .as_ref()
                    .and_then(|shaper| shaper.window_budget(config.gauge_window)),
                effective_cost: self.config.costs.effective_bottom_cost(spec.bottom_cost),
            })
            .collect();
        self.metrics = Some(MetricsHub::new(config, &sources));
        self.obs_supervision_seen = self
            .supervisor
            .as_ref()
            .map_or(0, |supervisor| supervisor.events().len());
    }

    /// The default observability geometry for this machine: standard ring
    /// and histogram sizes, with the gauge window set to the TDMA cycle —
    /// the Δt the paper's per-cycle interference argument is about.
    #[must_use]
    pub fn default_obs_config(&self) -> ObsConfig {
        ObsConfig {
            gauge_window: self.schedule.cycle(),
            ..ObsConfig::default()
        }
    }

    /// The observability hub, when [`enable_metrics`](Machine::enable_metrics)
    /// was called.
    #[must_use]
    pub fn metrics(&self) -> Option<&MetricsHub> {
        self.metrics.as_ref()
    }

    /// Deterministic JSON snapshot of the observability hub, when metrics
    /// are enabled. Byte-identical across reruns with equal inputs.
    #[must_use]
    pub fn metrics_snapshot_json(&self) -> Option<String> {
        self.metrics.as_ref().map(MetricsHub::snapshot_json)
    }

    /// Writes the platform routing/failover gauge into this core's hub
    /// (no-op without metrics). Called by the multi-core machine when its
    /// routing ledger is finalized; pure observation, outside `state_hash`.
    pub fn record_platform_obs(&mut self, gauge: rthv_obs::PlatformObs) {
        if let Some(hub) = self.metrics.as_mut() {
            hub.record_platform(gauge);
        }
    }

    /// Switches the top-handler variant at run time.
    ///
    /// The Appendix-A scenario starts in [`IrqHandlingMode::Baseline`]
    /// during its learning phase ("only delayed and direct IRQ handling is
    /// active") and flips to [`IrqHandlingMode::Interposed`] when the
    /// monitored run mode begins.
    pub fn set_mode(&mut self, mode: IrqHandlingMode) {
        self.config.mode = mode;
    }

    /// Replaces the δ⁻ function of a monitored source at run time (used by
    /// the Appendix-A learn-then-run scenario).
    ///
    /// The stored configuration is updated alongside the live shaper, so
    /// [`config`](Machine::config) keeps describing the effective monitor
    /// and a machine built from that configuration matches this one after
    /// [`reset`](Machine::reset). The supervision conformance watch (when
    /// enabled) is rebuilt from the new δ⁻ as well.
    ///
    /// Returns `false` if the source is unmonitored (or throttled by a
    /// token bucket, which has no δ⁻ to replace).
    ///
    /// # Panics
    ///
    /// Panics if the source index is out of range.
    pub fn set_monitor_delta(
        &mut self,
        source: IrqSourceId,
        delta: rthv_monitor::DeltaFunction,
    ) -> bool {
        let Some(shaper) = self.monitors[source.index()].as_mut() else {
            return false;
        };
        if !shaper.set_delta(delta.clone()) {
            return false;
        }
        let watch = shaper.watch();
        self.config.sources[source.index()].monitor = Some(ShaperConfig::Delta(delta));
        if let Some(supervisor) = &mut self.supervisor {
            supervisor.set_watch(source.index(), watch);
        }
        true
    }

    /// Schedules a single IRQ arrival demanding the source's declared
    /// bottom-handler WCET.
    ///
    /// # Errors
    ///
    /// Returns an error if the source index is out of range or `at` lies in
    /// the simulated past.
    pub fn schedule_irq(
        &mut self,
        source: IrqSourceId,
        at: Instant,
    ) -> Result<(), ScheduleIrqError> {
        if source.index() >= self.config.sources.len() {
            return Err(ScheduleIrqError::UnknownSource { source });
        }
        let work = self.config.sources[source.index()].bottom_cost;
        self.schedule_irq_with_work(source, at, work)
    }

    /// Schedules an IRQ arrival whose bottom handler demands `work` instead
    /// of the source's declared `C_BH` — the fault-injection hook for
    /// budget-overrun attempts (`work > C_BH`) and non-yielding guest work
    /// (`work` on the order of a whole slot).
    ///
    /// The *enforced* interposition budget stays the declared `C_BH`: an
    /// admitted overrunning handler is clipped at the window budget (counted
    /// in [`Counters::expired_windows`]) and its remainder re-queued for the
    /// subscriber's own slot, exactly as the paper's enforcement demands.
    ///
    /// # Errors
    ///
    /// Same conditions as [`schedule_irq`](Machine::schedule_irq). `work`
    /// may be zero (a spurious, content-free IRQ): the completion is then
    /// recorded as soon as the queue front reaches partition level.
    pub fn schedule_irq_with_work(
        &mut self,
        source: IrqSourceId,
        at: Instant,
        work: Duration,
    ) -> Result<(), ScheduleIrqError> {
        if source.index() >= self.config.sources.len() {
            return Err(ScheduleIrqError::UnknownSource { source });
        }
        if self
            .supervisor
            .as_ref()
            .is_some_and(|s| s.is_quarantined(source.index()))
        {
            return Err(ScheduleIrqError::SourceQuarantined { source });
        }
        let seq = self.next_seq[source.index()];
        self.queue
            .schedule_at(at, Event::Arrival { source, seq, work })
            .map_err(|e| ScheduleIrqError::InPast {
                at: e.at,
                now: e.now,
            })?;
        self.next_seq[source.index()] += 1;
        // Shared sources yield one completion per subscriber.
        self.expected_completions +=
            self.config.sources[source.index()].subscribers().count() as u64;
        Ok(())
    }

    /// Schedules a whole arrival trace for one source.
    ///
    /// # Errors
    ///
    /// Same conditions as [`schedule_irq`](Machine::schedule_irq); arrivals
    /// before the first failing one remain scheduled.
    pub fn schedule_irq_trace(
        &mut self,
        source: IrqSourceId,
        arrivals: &[Instant],
    ) -> Result<(), ScheduleIrqError> {
        // The trace length is the scenario's own peak-population hint:
        // pre-sizing here removes heap/id-ring reallocation from the
        // scheduling path entirely (the heap engine's scaling cliff).
        self.reserve_events(arrivals.len());
        for &at in arrivals {
            self.schedule_irq(source, at)?;
        }
        Ok(())
    }

    /// Pre-sizes the event queue for `additional` more simultaneously
    /// scheduled events. Scenario builders that know their arrival count
    /// call this once up front so steady-state scheduling never
    /// reallocates.
    pub fn reserve_events(&mut self, additional: usize) {
        self.queue.reserve(additional);
    }

    /// Which simulation engine backs this machine's event queue.
    #[must_use]
    pub fn engine_kind(&self) -> EngineKind {
        self.queue.kind()
    }

    /// Engine health counters: live/stale population, compactions, and —
    /// on the wheel engine — cascade, occupancy and closed-form
    /// fast-forward activity. Observability only; never part of
    /// [`state_hash`](Machine::state_hash).
    #[must_use]
    pub fn engine_stats(&self) -> EngineStats {
        self.queue.stats()
    }

    /// Number of bottom-handler completions still outstanding (one per
    /// subscriber per scheduled arrival; queue entries lost to flag
    /// coalescing or to bounded-queue overflow will never complete and do
    /// not count).
    #[must_use]
    pub fn outstanding_irqs(&self) -> u64 {
        self.expected_completions
            - self.recorder.len() as u64
            - self.counters.coalesced_irqs
            - self.counters.overflow_rejected
            - self.counters.overflow_dropped
    }

    /// First internal-invariant violation detected, if any.
    ///
    /// A defect halts [`run_until`](Machine::run_until) and
    /// [`run_until_complete`](Machine::run_until_complete) — the fault shows
    /// up as *data* (here and in [`RunReport::defect`]) instead of a panic.
    #[must_use]
    pub fn defect(&self) -> Option<&MachineError> {
        self.defect.as_ref()
    }

    /// Records the first internal-invariant violation and freezes the run.
    fn fail(&mut self, context: &'static str) {
        if self.defect.is_none() {
            self.defect = Some(MachineError::InvariantViolated {
                context,
                at: self.now(),
            });
        }
    }

    /// Processes all events up to and including virtual time `until` (or up
    /// to the first detected defect).
    pub fn run_until(&mut self, until: Instant) {
        while self.defect.is_none() {
            let Some((_, event)) = self.queue.advance_to(until) else {
                break;
            };
            self.handle(event);
            self.supervise_tick();
        }
    }

    /// Runs until every scheduled IRQ has completed, or `deadline` is
    /// reached, or a defect is detected. Returns `true` when all IRQs
    /// completed.
    pub fn run_until_complete(&mut self, deadline: Instant) -> bool {
        while self.outstanding_irqs() > 0 {
            if self.defect.is_some() {
                return false;
            }
            let Some((_, event)) = self.queue.advance_to(deadline) else {
                return false;
            };
            self.handle(event);
            self.supervise_tick();
        }
        true
    }

    /// Rewinds the machine to its just-constructed state — virtual time
    /// zero, partition 0's user task running, no scheduled arrivals, empty
    /// records — while keeping every allocation: the event queue's heap and
    /// id ring, the per-partition IRQ [`VecDeque`]s, the recorder's
    /// completion vector and the trace buffers all retain their capacity,
    /// so a reset-and-rerun executes without heap allocation in steady
    /// state.
    ///
    /// Determinism: a reset machine fed the same arrival trace reproduces
    /// the original run event for event (asserted by the
    /// `reset_rerun_matches_fresh_machine` integration test). Runtime
    /// mutations made through [`set_mode`](Machine::set_mode) or
    /// [`set_monitor_delta`](Machine::set_monitor_delta) are configuration,
    /// not run state, and deliberately survive the reset.
    pub fn reset(&mut self) {
        self.queue.clear();
        // The cleared queue is back at time zero (relative scheduling
        // cannot fail there).
        self.queue.schedule_in(
            self.schedule.boundary_time(1).duration_since(Instant::ZERO),
            Event::Boundary { index: 1 },
        );
        self.hv = None;
        self.activity = Activity::User {
            partition: PartitionId::new(0),
            since: Instant::ZERO,
        };
        self.window = None;
        self.pending_boundary = None;
        self.latched.clear();
        self.current_slot = 0;
        for partition in &mut self.partitions {
            partition.queue.clear();
        }
        for monitor in self.monitors.iter_mut().flatten() {
            monitor.reset();
        }
        if let Some(supervisor) = &mut self.supervisor {
            supervisor.reset();
        }
        self.recorder.clear();
        self.counters.reset();
        self.next_seq.fill(0);
        self.expected_completions = 0;
        self.window_openings.clear();
        self.admissions.clear();
        self.defect = None;
        if let Some(per_partition) = &mut self.service_trace {
            for intervals in per_partition {
                intervals.clear();
            }
        }
        if let Some(spans) = &mut self.hv_trace {
            spans.clear();
        }
        if let Some(spans) = &mut self.window_trace {
            spans.clear();
        }
        if let Some(metrics) = &mut self.metrics {
            metrics.reset();
        }
        self.obs_supervision_seen = 0;
    }

    /// Finalizes the run: closes the books on the in-progress partition
    /// segment (so service accounting includes it) and returns the report.
    #[must_use]
    pub fn finish(mut self) -> RunReport {
        let end = self.now();
        self.preempt_activity();
        // Charge the elapsed part of an in-flight hypervisor block so the
        // time-conservation invariant (Σ service + hypervisor time = end)
        // holds exactly.
        if let Some(block) = self.hv.take() {
            self.counters.hypervisor_time += end.duration_since(block.started);
        }
        let outstanding = self.expected_completions
            - self.recorder.len() as u64
            - self.counters.coalesced_irqs
            - self.counters.overflow_rejected
            - self.counters.overflow_dropped;
        RunReport {
            recorder: self.recorder,
            counters: self.counters,
            end,
            monitor_stats: self
                .monitors
                .iter()
                .map(|m| m.as_ref().map(Shaper::stats))
                .collect(),
            window_openings: self.window_openings,
            admissions: self.admissions,
            outstanding,
            defect: self.defect,
            service_intervals: self.service_trace,
            hv_spans: self.hv_trace,
            window_spans: self.window_trace,
            supervision: self.supervisor.as_ref().map(Supervisor::report),
        }
    }

    /// Captures a deep checkpoint of the machine's complete state —
    /// scheduler position, event queue (ids and generations included),
    /// per-source monitor trace rings, supervision state machines,
    /// partition queues, counters and every record buffer.
    ///
    /// A machine [`restore`](Machine::restore)d from the snapshot continues
    /// the run exactly as the original would have: same events, same
    /// decisions, byte-identical [`RunReport`]. Snapshots are plain data —
    /// cheap to clone, safe to keep across further execution of the source
    /// machine.
    #[must_use]
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            config: self.config.clone(),
            schedule: self.schedule.clone(),
            queue: self.queue.clone(),
            hv: self.hv.clone(),
            activity: self.activity.clone(),
            window: self.window,
            pending_boundary: self.pending_boundary,
            latched: self.latched.clone(),
            current_slot: self.current_slot,
            partitions: self.partitions.clone(),
            monitors: self.monitors.clone(),
            supervisor: self.supervisor.clone(),
            recorder: self.recorder.clone(),
            counters: self.counters.clone(),
            next_seq: self.next_seq.clone(),
            expected_completions: self.expected_completions,
            window_openings: self.window_openings.clone(),
            admissions: self.admissions.clone(),
            defect: self.defect.clone(),
            service_trace: self.service_trace.clone(),
            hv_trace: self.hv_trace.clone(),
            window_trace: self.window_trace.clone(),
            metrics: self.metrics.clone(),
            obs_supervision_seen: self.obs_supervision_seen,
        }
    }

    /// Rewinds the machine to the state captured by
    /// [`snapshot`](Machine::snapshot), including runtime configuration
    /// mutations ([`set_mode`](Machine::set_mode),
    /// [`set_monitor_delta`](Machine::set_monitor_delta)) made before the
    /// snapshot was taken. Arrivals scheduled after the snapshot are
    /// forgotten; arrivals that were pending at snapshot time fire again.
    pub fn restore(&mut self, snapshot: &MachineSnapshot) {
        self.config = snapshot.config.clone();
        self.schedule = snapshot.schedule.clone();
        self.queue = snapshot.queue.clone();
        self.hv = snapshot.hv.clone();
        self.activity = snapshot.activity.clone();
        self.window = snapshot.window;
        self.pending_boundary = snapshot.pending_boundary;
        self.latched = snapshot.latched.clone();
        self.current_slot = snapshot.current_slot;
        self.partitions = snapshot.partitions.clone();
        self.monitors = snapshot.monitors.clone();
        self.supervisor = snapshot.supervisor.clone();
        self.recorder = snapshot.recorder.clone();
        self.counters = snapshot.counters.clone();
        self.next_seq = snapshot.next_seq.clone();
        self.expected_completions = snapshot.expected_completions;
        self.window_openings = snapshot.window_openings.clone();
        self.admissions = snapshot.admissions.clone();
        self.defect = snapshot.defect.clone();
        self.service_trace = snapshot.service_trace.clone();
        self.hv_trace = snapshot.hv_trace.clone();
        self.window_trace = snapshot.window_trace.clone();
        self.metrics = snapshot.metrics.clone();
        self.obs_supervision_seen = snapshot.obs_supervision_seen;
    }

    /// A cheap deterministic digest (64-bit FNV-1a over canonical state
    /// words) of the machine's live execution state.
    ///
    /// Two machines in behaviourally identical states — same virtual time,
    /// same scheduled events, same monitor histories, same supervision
    /// states, same counters — hash equal; a restored-vs-fresh divergence
    /// shows up at the first slot boundary where the hashes differ rather
    /// than only in the end-of-run report. Unbounded record buffers
    /// (completions, admissions, window openings) contribute their length
    /// and most recent entry, which pins down the divergence point without
    /// rescanning the whole history on every boundary.
    #[must_use]
    pub fn state_hash(&self) -> u64 {
        let mut words = Vec::with_capacity(256);
        self.state_words(&mut words);
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for word in words {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        }
        hash
    }

    /// Appends the machine's canonical state words (the preimage of
    /// [`state_hash`](Machine::state_hash)).
    ///
    /// The observability hub (`metrics`, `obs_supervision_seen`) is
    /// deliberately **excluded**: it is derived observation that never
    /// influences execution, and hashing it would make an instrumented
    /// run's boundary hashes differ from a bare run's — breaking the
    /// metrics-on/metrics-off byte-identity guarantee and replay-journal
    /// compatibility across the two. The hub still travels with
    /// [`snapshot`](Machine::snapshot)/[`restore`](Machine::restore), so a
    /// resumed run reproduces its metrics exactly.
    fn state_words(&self, out: &mut Vec<u64>) {
        out.push(self.queue.now().as_nanos());
        out.push(self.current_slot);
        out.push(match self.config.mode {
            IrqHandlingMode::Baseline => 0,
            IrqHandlingMode::Interposed => 1,
        });
        self.queue.for_each_scheduled(|at, seq, event| {
            out.push(at.as_nanos());
            out.push(seq);
            event_words(event, out);
        });
        match &self.hv {
            None => out.push(0),
            Some(block) => {
                out.push(1);
                out.push(block.started.as_nanos());
                hv_cont_words(&block.cont, out);
            }
        }
        match &self.activity {
            Activity::None => out.push(0),
            Activity::User { partition, since } => {
                out.push(1);
                out.push(partition.index() as u64);
                out.push(since.as_nanos());
            }
            Activity::Bottom {
                partition,
                since,
                end_event,
            } => {
                out.push(2);
                out.push(partition.index() as u64);
                out.push(since.as_nanos());
                out.push(u64::from(end_event.generation()));
                out.push(end_event.seq());
            }
        }
        match &self.window {
            None => out.push(0),
            Some(w) => {
                out.push(1);
                out.push(w.partition.index() as u64);
                out.push(w.opened.as_nanos());
                out.push(w.budget_end.as_nanos());
                out.push(w.source.index() as u64);
                out.push(u64::from(w.shrunk));
            }
        }
        match self.pending_boundary {
            None => out.push(0),
            Some(index) => {
                out.push(1);
                out.push(index);
            }
        }
        out.push(self.latched.len() as u64);
        for irq in &self.latched {
            out.push(irq.source.index() as u64);
            out.push(irq.seq);
            out.push(irq.arrival.as_nanos());
            out.push(irq.work.as_nanos());
        }
        for partition in &self.partitions {
            out.push(partition.queue.len() as u64);
            for pending in &partition.queue {
                out.push(pending.source.index() as u64);
                out.push(pending.seq);
                out.push(pending.arrival.as_nanos());
                out.push(pending.work.as_nanos());
                out.push(pending.remaining.as_nanos());
            }
        }
        for monitor in &self.monitors {
            match monitor {
                None => out.push(0),
                Some(shaper) => {
                    out.push(1);
                    shaper.state_words(out);
                }
            }
        }
        match &self.supervisor {
            None => out.push(0),
            Some(supervisor) => {
                out.push(1);
                supervisor.state_words(out);
            }
        }
        counter_words(&self.counters, out);
        out.extend(self.next_seq.iter().copied());
        out.push(self.expected_completions);
        out.push(self.recorder.len() as u64);
        if let Some(last) = self.recorder.completions().last() {
            out.push(last.source.index() as u64);
            out.push(last.seq);
            out.push(last.partition.index() as u64);
            out.push(last.arrival.as_nanos());
            out.push(last.completed.as_nanos());
            out.push(match last.class {
                HandlingClass::Direct => 0,
                HandlingClass::Interposed => 1,
                HandlingClass::Delayed => 2,
            });
        }
        out.push(self.window_openings.len() as u64);
        if let Some(last) = self.window_openings.last() {
            out.push(last.as_nanos());
        }
        out.push(self.admissions.len() as u64);
        if let Some(last) = self.admissions.last() {
            out.push(last.source.index() as u64);
            out.push(last.seq);
            out.push(last.check_at.as_nanos());
            out.push(u64::from(last.admitted));
        }
        out.push(u64::from(self.defect.is_some()));
    }

    /// Advances the supervision state machines to current virtual time,
    /// taking any time-based recovery edges that became due. Called after
    /// every processed event so a quarantined source that simply goes
    /// silent still recovers.
    fn supervise_tick(&mut self) {
        let now = self.queue.now();
        if let Some(supervisor) = &mut self.supervisor {
            supervisor.tick(now, &mut self.counters);
            // Tail any new health transitions into the flight recorder.
            // This runs after every handled event, so transitions raised
            // mid-event (signals) are captured in the same tick as
            // time-based recovery edges.
            if let Some(metrics) = &mut self.metrics {
                let events = supervisor.events();
                for event in &events[self.obs_supervision_seen..] {
                    if let SupervisionEventKind::Transition(transition) = event.kind {
                        metrics.record_health(
                            event.at,
                            event.source,
                            transition.from.slug(),
                            transition.to.slug(),
                        );
                    }
                }
                self.obs_supervision_seen = events.len();
            }
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, event: Event) {
        self.counters.events_processed += 1;
        match event {
            Event::Arrival { source, seq, work } => self.on_arrival(source, seq, work),
            Event::HvEnd => self.on_hv_end(),
            Event::SegEnd => self.on_segment_end(),
            Event::Boundary { index } => self.on_boundary(index),
        }
    }

    fn on_arrival(&mut self, source: IrqSourceId, seq: u64, work: Duration) {
        let arrival = self.now();
        // Supervision judges the *raw* hardware arrival stream (timestamp
        // timer semantics): conformant arrivals pay back penalty score and
        // drive recovery; violations restart the clean stretch. Latching
        // does not distort this — the hardware timestamp is `arrival`.
        if let Some(supervisor) = &mut self.supervisor {
            supervisor.observe_arrival(source.index(), arrival, &mut self.counters);
        }
        if let Some(metrics) = &mut self.metrics {
            metrics.record_raised(arrival, source.index());
        }
        if self.hv.is_some() {
            self.counters.latched_irqs += 1;
            if let Some(metrics) = &mut self.metrics {
                metrics.record_deferred(arrival, source.index());
            }
            self.latched.push_back(LatchedIrq {
                source,
                seq,
                arrival,
                work,
            });
            return;
        }
        self.preempt_activity();
        self.begin_top_handler(source, seq, arrival, work);
    }

    fn on_hv_end(&mut self) {
        let Some(block) = self.hv.take() else {
            return self.fail("HvEnd without running hypervisor block");
        };
        self.counters.hypervisor_time += self.now().duration_since(block.started);
        let ended = self.now();
        if let Some(trace) = &mut self.hv_trace {
            trace.push(Span {
                start: block.started,
                end: ended,
            });
        }
        match block.cont {
            HvCont::TopHandler {
                source,
                seq,
                arrival,
                work,
            } => self.after_top_handler(source, seq, arrival, work),
            HvCont::EnterInterposed {
                partition,
                budget,
                source,
                shrunk,
            } => {
                self.window = Some(InterposedWindow {
                    partition,
                    opened: self.now(),
                    budget_end: self.now() + budget,
                    source,
                    shrunk,
                });
                self.dispatch();
            }
            HvCont::ExitInterposed => self.dispatch(),
            HvCont::SlotSwitch { slot } => {
                self.current_slot = slot;
                self.dispatch();
            }
        }
    }

    fn on_segment_end(&mut self) {
        let now = self.now();
        let Activity::Bottom {
            partition, since, ..
        } = mem::take(&mut self.activity)
        else {
            return self.fail("SegEnd without a running bottom-handler segment");
        };
        let elapsed = now.duration_since(since);
        self.counters.service[partition.index()].bottom += elapsed;
        self.record_service(partition, since, now, ServiceKind::Bottom);
        let rt = &mut self.partitions[partition.index()];
        let Some(front) = rt.queue.front_mut() else {
            return self.fail("bottom segment without a pending IRQ");
        };
        front.remaining = front.remaining.saturating_sub(elapsed);
        if front.remaining.is_zero() {
            let Some(pending) = rt.queue.pop_front() else {
                return self.fail("completed queue front vanished");
            };
            let class = if self.window.is_some() {
                HandlingClass::Interposed
            } else if self.schedule.owner_at(pending.arrival) == partition {
                HandlingClass::Direct
            } else {
                HandlingClass::Delayed
            };
            if let Some(metrics) = &mut self.metrics {
                metrics.record_completion(
                    now,
                    pending.source.index(),
                    now.duration_since(pending.arrival),
                );
            }
            self.recorder.record(IrqCompletion {
                source: pending.source,
                seq: pending.seq,
                partition,
                arrival: pending.arrival,
                completed: now,
                class,
            });
            if self.window.is_some() {
                self.close_window();
            } else {
                self.dispatch();
            }
        } else {
            // The segment was cut by the interposition budget: the window
            // expired with work left, which re-queues at the front and waits
            // for the subscriber's own slot (or a later admission).
            debug_assert!(
                self.window.is_some_and(|w| now >= w.budget_end),
                "partial segment end must coincide with budget expiry"
            );
            self.counters.expired_windows += 1;
            self.signal_budget_clip(now);
            self.close_window();
        }
    }

    /// Charges a budget-clip penalty against the open window's source —
    /// unless the window ran under a supervision-shrunk budget, where a
    /// clip of full-`C_BH` work is the *expected* degraded-mode outcome
    /// and must not feed back into the score (that spiral would make
    /// recovery unreachable).
    fn signal_budget_clip(&mut self, now: Instant) {
        let Some(window) = self.window else {
            return;
        };
        // The flight recorder logs every clip, including expected ones
        // under a supervision-shrunk budget; only the health *penalty*
        // below is waived for those.
        if let Some(metrics) = &mut self.metrics {
            metrics.record_budget_clip(now, window.partition.index());
        }
        if window.shrunk {
            return;
        }
        if let Some(supervisor) = &mut self.supervisor {
            supervisor.signal(
                window.source.index(),
                HealthSignal::BudgetClip,
                now,
                &mut self.counters,
            );
        }
    }

    fn on_boundary(&mut self, index: u64) {
        let boundary_now = self.now();
        let engine = self.queue.stats();
        if let Some(metrics) = &mut self.metrics {
            metrics.record_slot_boundary(boundary_now, index as usize);
            metrics.record_engine(rthv_obs::EngineObs {
                live: engine.live as u64,
                stale: engine.stale as u64,
                compactions: engine.compactions,
                fast_forward_jumps: engine.fast_forward_jumps,
                cascades: engine.cascades,
                occupied_buckets: engine.occupied_buckets as u64,
                overflow_len: engine.overflow_len as u64,
            });
        }
        let next = index + 1;
        if self
            .queue
            .schedule_at(
                self.schedule.boundary_time(next),
                Event::Boundary { index: next },
            )
            .is_err()
        {
            return self.fail("next TDMA boundary not in the future");
        }
        if self.window.is_some() {
            match self.config.policies.boundary {
                BoundaryPolicy::DeferToWindow => {
                    // An interposed window is active (or being
                    // entered/exited): the rotation defers until the window
                    // closes. The deferral is bounded by the window budget
                    // plus the bracketing context switches — exactly the
                    // C'_BH interference Eq. 14 accounts.
                    self.counters.deferred_boundaries += 1;
                    self.pending_boundary = Some(index);
                }
                BoundaryPolicy::AbortWindow => {
                    if self.hv.is_some() {
                        // Terminate the window as soon as the hypervisor
                        // block ends.
                        self.pending_boundary = Some(index);
                    } else {
                        self.preempt_activity();
                        let Some(window) = self.window.take() else {
                            return self.fail("abort without an open window");
                        };
                        self.record_window_span(window);
                        self.counters.aborted_windows += 1;
                        self.start_slot_switch(index);
                    }
                }
            }
        } else if self.hv.is_some() {
            // Hypervisor primitives run with interrupts latched; the
            // rotation happens right after the current block.
            self.pending_boundary = Some(index);
        } else {
            self.preempt_activity();
            self.start_slot_switch(index);
        }
    }

    // ------------------------------------------------------------------
    // Transitions
    // ------------------------------------------------------------------

    /// Partition whose code runs at partition level right now: the window's
    /// partition during an interposed window, otherwise the slot owner.
    fn active_partition(&self) -> PartitionId {
        match &self.window {
            Some(w) => w.partition,
            None => self.schedule.owner_of_slot(self.current_slot),
        }
    }

    /// Starts a hypervisor block of `duration`; IRQs latch until it ends.
    fn start_hv(&mut self, duration: Duration, cont: HvCont) {
        debug_assert!(self.hv.is_none(), "hypervisor blocks never nest");
        debug_assert!(
            matches!(self.activity, Activity::None),
            "partition activity must be preempted before hypervisor work"
        );
        self.queue.schedule_in(duration, Event::HvEnd);
        self.hv = Some(HvBlock {
            cont,
            started: self.now(),
        });
    }

    /// Appends a service interval when tracing is enabled.
    fn record_service(
        &mut self,
        partition: PartitionId,
        start: Instant,
        end: Instant,
        kind: ServiceKind,
    ) {
        if start == end {
            return;
        }
        if let Some(trace) = &mut self.service_trace {
            trace[partition.index()].push(ServiceInterval { start, end, kind });
        }
    }

    /// Saves the progress of the current partition-level activity.
    fn preempt_activity(&mut self) {
        let now = self.now();
        match mem::take(&mut self.activity) {
            Activity::None => {}
            Activity::User { partition, since } => {
                self.counters.service[partition.index()].user += now.duration_since(since);
                self.record_service(partition, since, now, ServiceKind::User);
            }
            Activity::Bottom {
                partition,
                since,
                end_event,
            } => {
                self.queue.cancel(end_event);
                let elapsed = now.duration_since(since);
                self.counters.service[partition.index()].bottom += elapsed;
                self.record_service(partition, since, now, ServiceKind::Bottom);
                match self.partitions[partition.index()].queue.front_mut() {
                    Some(front) => front.remaining = front.remaining.saturating_sub(elapsed),
                    None => self.fail("bottom segment without a pending IRQ"),
                }
            }
        }
    }

    fn begin_top_handler(
        &mut self,
        source: IrqSourceId,
        seq: u64,
        arrival: Instant,
        work: Duration,
    ) {
        let spec = &self.config.sources[source.index()];
        let foreign = spec.subscriber != self.active_partition();
        let monitored = self.config.mode == IrqHandlingMode::Interposed
            && self.monitors[source.index()].is_some();
        // A quarantined source is demoted to slot-local handling: the
        // monitoring function is not consulted, so its C_Mon is not paid.
        let quarantined = self
            .supervisor
            .as_ref()
            .is_some_and(|s| s.is_quarantined(source.index()));
        // Eq. 15: the monitoring function extends the top handler for
        // foreign-slot IRQs of monitored sources.
        let cost = if foreign && monitored && !quarantined {
            self.config.costs.monitored_top_cost()
        } else {
            self.config.costs.top_handler
        };
        self.start_hv(
            cost,
            HvCont::TopHandler {
                source,
                seq,
                arrival,
                work,
            },
        );
    }

    fn after_top_handler(
        &mut self,
        source: IrqSourceId,
        seq: u64,
        arrival: Instant,
        work: Duration,
    ) {
        let now = self.now();
        let spec = &self.config.sources[source.index()];
        let subscriber = spec.subscriber;
        let budget = spec.bottom_cost;
        let flag = spec.flag_semantics;
        let subscribers: Vec<PartitionId> = spec.subscribers().collect();
        // The top handler pushes the event into the queue of *each*
        // subscribing partition (Figure 2 / Section 3); queues preserve
        // FIFO order. Under non-counting flag semantics an event whose
        // request is still pending unserviced is absorbed and lost — the
        // effect the paper warns about for masked sources.
        for &partition in &subscribers {
            if flag == crate::IrqFlagSemantics::Flag {
                let already_pending = self.partitions[partition.index()]
                    .queue
                    .iter()
                    .any(|p| p.source == source && p.remaining == p.work);
                if already_pending {
                    self.counters.coalesced_irqs += 1;
                    continue;
                }
            }
            // A bounded queue degrades gracefully: overflow is resolved by
            // policy and counted, never a silent loss or unbounded growth.
            if let Some(capacity) = self.config.partitions[partition.index()].queue_capacity {
                let queue = &mut self.partitions[partition.index()].queue;
                if queue.len() >= capacity {
                    match self.config.policies.overflow {
                        OverflowPolicy::RejectNewest => {
                            self.counters.overflow_rejected += 1;
                            if let Some(metrics) = &mut self.metrics {
                                metrics.record_overflow(now, source.index());
                            }
                            // The arriving source caused the pressure; the
                            // overflow is charged against its health score.
                            if let Some(supervisor) = &mut self.supervisor {
                                supervisor.signal(
                                    source.index(),
                                    HealthSignal::Overflow,
                                    now,
                                    &mut self.counters,
                                );
                            }
                            continue;
                        }
                        OverflowPolicy::DropOldest => {
                            // Partition activity is always preempted before
                            // hypervisor work, so the front is not mid-run.
                            queue.pop_front();
                            self.counters.overflow_dropped += 1;
                            if let Some(metrics) = &mut self.metrics {
                                metrics.record_overflow(now, source.index());
                            }
                            if let Some(supervisor) = &mut self.supervisor {
                                supervisor.signal(
                                    source.index(),
                                    HealthSignal::Overflow,
                                    now,
                                    &mut self.counters,
                                );
                            }
                        }
                    }
                }
            }
            self.partitions[partition.index()]
                .queue
                .push_back(PendingIrq {
                    source,
                    seq,
                    arrival,
                    work,
                    remaining: work,
                });
        }
        // Watchdog: a single activation demanding a non-yielding amount of
        // bottom-handler work (≥ factor × declared C_BH) is flagged before
        // any admission decision — the guest would not give the window back.
        if let Some(supervisor) = &mut self.supervisor {
            let factor = u64::from(supervisor.policy().watchdog_factor);
            if !budget.is_zero() && work.as_nanos() >= budget.as_nanos().saturating_mul(factor) {
                supervisor.signal(
                    source.index(),
                    HealthSignal::NonYielding,
                    now,
                    &mut self.counters,
                );
            }
        }
        let foreign = subscriber != self.active_partition();
        // A quarantined source is demoted to slot-local (delayed) handling:
        // interposition is suspended entirely and the monitor not consulted,
        // so no admission is recorded and no C_Mon is charged.
        let quarantined = self
            .supervisor
            .as_ref()
            .is_some_and(|s| s.is_quarantined(source.index()));
        let mut interpose = false;
        let mut enforced_budget = budget;
        let mut shrunk = false;
        if foreign
            && self.config.mode == IrqHandlingMode::Interposed
            && self.window.is_none()
            && !quarantined
        {
            if let Some(monitor) = &mut self.monitors[source.index()] {
                // By default the monitoring condition is evaluated on the
                // hardware IRQ timestamp (the paper's timestamp timer), not
                // on the — possibly latched — top-handler completion time;
                // otherwise hypervisor-induced jitter would spuriously deny
                // arrivals that conform to d_min. The processing-time
                // variant exists for ablation.
                let check_at = match self.config.policies.admission_clock {
                    AdmissionClock::IrqTimestamp => arrival,
                    AdmissionClock::ProcessingTime => now,
                };
                let admission = monitor.try_admit_detailed(check_at);
                let admitted = matches!(admission, Admission::Admitted);
                self.admissions.push(AdmissionRecord {
                    source,
                    seq,
                    check_at,
                    admitted,
                });
                if let Some(metrics) = &mut self.metrics {
                    match admission {
                        Admission::Admitted => {
                            metrics.record_admitted(check_at, source.index());
                        }
                        Admission::Denied { violated_distance } => metrics.record_denied(
                            check_at,
                            source.index(),
                            (violated_distance != usize::MAX).then_some(violated_distance as u64),
                        ),
                    }
                }
                if admitted {
                    interpose = true;
                    self.counters.monitor_admitted += 1;
                    // Degraded mode (Probation/Recovering): the enforced
                    // window budget shrinks, trading the source's own
                    // completion for tighter interference on its victims.
                    if let Some(supervisor) = &self.supervisor {
                        let (effective, was_shrunk) =
                            supervisor.effective_budget(source.index(), budget);
                        enforced_budget = effective;
                        shrunk = was_shrunk;
                    }
                } else {
                    self.counters.monitor_denied += 1;
                    if let Some(supervisor) = &mut self.supervisor {
                        supervisor.signal(
                            source.index(),
                            HealthSignal::Denied,
                            now,
                            &mut self.counters,
                        );
                    }
                }
            }
        } else if foreign
            && self.config.mode == IrqHandlingMode::Interposed
            && quarantined
            && self.monitors[source.index()].is_some()
        {
            self.counters.supervised_demotions += 1;
        }
        if interpose {
            if shrunk {
                self.counters.shrunk_windows += 1;
            }
            self.window_openings.push(now);
            self.counters.interposed_windows += 1;
            self.counters.context_switches += 1;
            self.start_hv(
                self.config.costs.sched_manip + self.config.costs.context_switch,
                HvCont::EnterInterposed {
                    partition: subscriber,
                    budget: enforced_budget,
                    source,
                    shrunk,
                },
            );
        } else {
            self.dispatch();
        }
    }

    /// Starts the TDMA context switch into slot `index`.
    fn start_slot_switch(&mut self, index: u64) {
        debug_assert!(self.window.is_none(), "rotation never preempts a window");
        self.counters.context_switches += 1;
        self.counters.slot_switches += 1;
        self.start_hv(
            self.config.costs.context_switch,
            HvCont::SlotSwitch { slot: index },
        );
    }

    /// Records a cleared window's span in the execution trace.
    fn record_window_span(&mut self, window: InterposedWindow) {
        let ended = self.now();
        if let Some(trace) = &mut self.window_trace {
            trace.push(Span {
                start: window.opened,
                end: ended,
            });
        }
    }

    /// Closes the open interposed window: one context switch back to the
    /// interrupted slot owner.
    fn close_window(&mut self) {
        let Some(window) = self.window.take() else {
            return self.fail("close without an open window");
        };
        self.record_window_span(window);
        self.counters.context_switches += 1;
        self.start_hv(self.config.costs.context_switch, HvCont::ExitInterposed);
    }

    /// Central dispatch after hypervisor work: drain latched IRQs, honour a
    /// deferred slot switch, then resume partition-level execution.
    fn dispatch(&mut self) {
        debug_assert!(self.hv.is_none());
        if let Some(latched) = self.latched.pop_front() {
            self.begin_top_handler(latched.source, latched.seq, latched.arrival, latched.work);
            return;
        }
        // A deferred rotation waits further while a window is still open
        // (defer policy) or terminates the window now (abort policy).
        if let Some(index) = self.pending_boundary {
            let rotate = match self.config.policies.boundary {
                BoundaryPolicy::DeferToWindow => self.window.is_none(),
                BoundaryPolicy::AbortWindow => {
                    if let Some(window) = self.window.take() {
                        self.record_window_span(window);
                        self.counters.aborted_windows += 1;
                    }
                    true
                }
            };
            if rotate {
                self.pending_boundary = None;
                self.start_slot_switch(index);
                return;
            }
        }
        self.resume_partition();
    }

    /// Resumes partition-level execution for the active partition.
    fn resume_partition(&mut self) {
        let now = self.now();
        if let Some(window) = self.window {
            if now >= window.budget_end {
                // The budget elapsed while the hypervisor was busy.
                if !self.partitions[window.partition.index()].queue.is_empty() {
                    self.counters.expired_windows += 1;
                    self.signal_budget_clip(now);
                }
                self.close_window();
                return;
            }
        }
        let partition = self.active_partition();
        let front_remaining = self.partitions[partition.index()]
            .queue
            .front()
            .map(|p| p.remaining);
        match front_remaining {
            Some(remaining) => {
                let mut end = now + remaining;
                if let Some(window) = self.window {
                    end = end.min(window.budget_end);
                }
                // `end >= now`: `remaining` is non-negative and an open
                // window's budget end was checked above to lie ahead of
                // `now`, so the clamp cannot move the end into the past.
                let Ok(end_event) = self.queue.schedule_at(end, Event::SegEnd) else {
                    return self.fail("segment end in the past");
                };
                self.activity = Activity::Bottom {
                    partition,
                    since: now,
                    end_event,
                };
            }
            None if self.window.is_some() => {
                // Nothing left to run in the window (the admitted IRQ was
                // already drained); hand the slot back.
                self.close_window();
            }
            None => {
                self.activity = Activity::User {
                    partition,
                    since: now,
                };
            }
        }
    }
}

/// A deep checkpoint of a [`Machine`]'s complete execution state, produced
/// by [`Machine::snapshot`] and consumed by [`Machine::restore`].
///
/// The snapshot is opaque plain data: it owns clones of every piece of
/// machine state — configuration (including runtime mutations), TDMA
/// schedule position, the event queue with its id/generation table, the
/// running hypervisor block, partition queues, per-source admission
/// monitors with their δ⁻ trace rings, the supervision state machines,
/// counters, and all record buffers. Restoring it onto any machine built
/// from a compatible configuration resumes the run bit-identically.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    config: HypervisorConfig,
    schedule: TdmaSchedule,
    queue: EngineQueue<Event>,
    hv: Option<HvBlock>,
    activity: Activity,
    window: Option<InterposedWindow>,
    pending_boundary: Option<u64>,
    latched: VecDeque<LatchedIrq>,
    current_slot: u64,
    partitions: Vec<PartitionRt>,
    monitors: Vec<Option<Shaper>>,
    supervisor: Option<Supervisor>,
    recorder: TraceRecorder,
    counters: Counters,
    next_seq: Vec<u64>,
    expected_completions: u64,
    window_openings: Vec<Instant>,
    admissions: Vec<AdmissionRecord>,
    defect: Option<MachineError>,
    service_trace: Option<Vec<Vec<ServiceInterval>>>,
    hv_trace: Option<Vec<Span>>,
    window_trace: Option<Vec<Span>>,
    metrics: Option<MetricsHub>,
    obs_supervision_seen: usize,
}

impl MachineSnapshot {
    /// Virtual time at which the snapshot was taken.
    #[must_use]
    pub fn taken_at(&self) -> Instant {
        self.queue.now()
    }
}

/// Appends the canonical word encoding of a scheduled [`Event`].
fn event_words(event: &Event, out: &mut Vec<u64>) {
    match event {
        Event::Arrival { source, seq, work } => {
            out.push(0);
            out.push(source.index() as u64);
            out.push(*seq);
            out.push(work.as_nanos());
        }
        Event::HvEnd => out.push(1),
        Event::SegEnd => out.push(2),
        Event::Boundary { index } => {
            out.push(3);
            out.push(*index);
        }
    }
}

/// Appends the canonical word encoding of a hypervisor-block continuation.
fn hv_cont_words(cont: &HvCont, out: &mut Vec<u64>) {
    match cont {
        HvCont::TopHandler {
            source,
            seq,
            arrival,
            work,
        } => {
            out.push(0);
            out.push(source.index() as u64);
            out.push(*seq);
            out.push(arrival.as_nanos());
            out.push(work.as_nanos());
        }
        HvCont::EnterInterposed {
            partition,
            budget,
            source,
            shrunk,
        } => {
            out.push(1);
            out.push(partition.index() as u64);
            out.push(budget.as_nanos());
            out.push(source.index() as u64);
            out.push(u64::from(*shrunk));
        }
        HvCont::ExitInterposed => out.push(2),
        HvCont::SlotSwitch { slot } => {
            out.push(3);
            out.push(*slot);
        }
    }
}

/// Appends every [`Counters`] scalar plus per-partition service accounting.
fn counter_words(counters: &Counters, out: &mut Vec<u64>) {
    out.push(counters.context_switches);
    out.push(counters.slot_switches);
    out.push(counters.hypervisor_time.as_nanos());
    out.push(counters.interposed_windows);
    out.push(counters.deferred_boundaries);
    out.push(counters.aborted_windows);
    out.push(counters.expired_windows);
    out.push(counters.latched_irqs);
    out.push(counters.coalesced_irqs);
    out.push(counters.overflow_rejected);
    out.push(counters.overflow_dropped);
    out.push(counters.monitor_admitted);
    out.push(counters.monitor_denied);
    out.push(counters.events_processed);
    out.push(counters.supervised_demotions);
    out.push(counters.shrunk_windows);
    out.push(counters.quarantine_entries);
    out.push(counters.recoveries);
    for service in &counters.service {
        out.push(service.user.as_nanos());
        out.push(service.bottom.as_nanos());
    }
}

/// Typed error hierarchy of the hypervisor machine.
///
/// Construction failures wrap [`ConfigError`], run-time scheduling failures
/// wrap [`ScheduleIrqError`], and internal-invariant violations — which
/// previously panicked — surface as [`MachineError::InvariantViolated`]
/// through [`Machine::defect`] / [`RunReport::defect`], so a corrupted run
/// degrades into inspectable data instead of a crash.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// An IRQ arrival could not be scheduled.
    Schedule(ScheduleIrqError),
    /// The machine detected an internal execution-model invariant breach
    /// and froze the run at `at`.
    InvariantViolated {
        /// Which invariant was violated.
        context: &'static str,
        /// Virtual time of detection.
        at: Instant,
    },
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::Config(e) => e.fmt(f),
            MachineError::Schedule(e) => e.fmt(f),
            MachineError::InvariantViolated { context, at } => {
                write!(f, "machine invariant violated at {at}: {context}")
            }
        }
    }
}

impl std::error::Error for MachineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MachineError::Config(e) => Some(e),
            MachineError::Schedule(e) => Some(e),
            MachineError::InvariantViolated { .. } => None,
        }
    }
}

impl From<ConfigError> for MachineError {
    fn from(e: ConfigError) -> Self {
        MachineError::Config(e)
    }
}

impl From<ScheduleIrqError> for MachineError {
    fn from(e: ScheduleIrqError) -> Self {
        MachineError::Schedule(e)
    }
}

/// Error returned by [`Machine::schedule_irq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleIrqError {
    /// The source index does not exist in the configuration.
    UnknownSource {
        /// The offending source id.
        source: IrqSourceId,
    },
    /// The requested arrival time is before current virtual time.
    InPast {
        /// The rejected arrival time.
        at: Instant,
        /// Current virtual time.
        now: Instant,
    },
    /// The source is currently quarantined by runtime health supervision:
    /// new arrivals for it are refused (and surfaced to the caller) rather
    /// than silently counted against a demoted source.
    SourceQuarantined {
        /// The quarantined source id.
        source: IrqSourceId,
    },
}

impl std::fmt::Display for ScheduleIrqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleIrqError::UnknownSource { source } => {
                write!(f, "unknown IRQ source {source}")
            }
            ScheduleIrqError::InPast { at, now } => {
                write!(f, "cannot schedule IRQ at {at}; simulation time is {now}")
            }
            ScheduleIrqError::SourceQuarantined { source } => {
                write!(f, "IRQ source {source} is quarantined by supervision")
            }
        }
    }
}

impl std::error::Error for ScheduleIrqError {}
